//! Abstract interpretation of workload CFGs over a strided-interval
//! byte-range domain.
//!
//! Every per-(rank, file) cursor is tracked as a *symbolic value*
//! `base + Σ kᵢ·strideᵢ + [0, spread]` where each `kᵢ ∈ [0, tripsᵢ)` is
//! the induction variable of an enclosing `repeat` loop. Loops are
//! handled in closed form: a *probe* pass runs the body once to learn
//! the per-iteration cursor and epoch deltas (all DSL transfer functions
//! are affine, so one probe is exact), then a *collection* pass runs the
//! body once more with a widened state carrying `(delta, trips)` as a
//! fresh stride dimension, and the loop's exit state is computed
//! directly as `entry + trips·delta`. There is no iteration budget
//! anywhere: a `repeat 1000000000` costs the same as a `repeat 2`.
//!
//! Cross-rank reasoning is symbolic in the rank: a shared file places
//! rank `r` at byte `r·lane`, so two accesses race iff there exist
//! iteration vectors and a rank distance `δ ≠ 0` with
//! `δ·lane ∈ (posₐ − pos_b − w_b, posₐ − pos_b + wₐ)` in the same
//! barrier epoch. After simplification each access contributes at most
//! one residual stride, and that decision reduces to "does an
//! arithmetic progression hit a residue window mod `lane`", solved
//! exactly in `O(log)` by a Euclidean descent ([`min_mod`]) — sound for
//! *any* number of ranks, not a sampled probe set.
//!
//! Diagnostics emitted here: `PIO019` (lane spill), `PIO020` (shared
//! write race), `PIO021` (barrier under `onrank`), `PIO022` (dead
//! code), `PIO023` (read never written), `PIO024` (access past the
//! declared file size).

use crate::cfg::{BlockKind, Cfg};
use crate::diag::{Code, LintReport};
use pioeval_types::{IoKind, MetaOp};
use pioeval_workloads::dsl::{DslWorkload, Scope, Stmt, StmtKind};
use std::collections::{HashMap, HashSet};

/// A symbolic byte offset: `base + Σ kᵢ·strides[i] + [0, spread]`.
#[derive(Clone, Debug, Default)]
struct SymVal {
    base: u64,
    /// Join slack from merging `onrank` branches (interval width).
    spread: u64,
    /// Per-loop strides, parallel to `Interp::loops` (outermost first).
    strides: Vec<u64>,
}

impl SymVal {
    fn zero(dims: usize) -> Self {
        SymVal {
            base: 0,
            spread: 0,
            strides: vec![0; dims],
        }
    }

    fn advance(&mut self, bytes: u64) {
        self.base = self.base.saturating_add(bytes);
    }

    /// Interval join (hull) with stride-wise max.
    fn merge(&mut self, other: &SymVal) {
        let lo = self.base.min(other.base);
        let hi =
            (self.base.saturating_add(self.spread)).max(other.base.saturating_add(other.spread));
        self.base = lo;
        self.spread = hi - lo;
        if self.strides.len() < other.strides.len() {
            self.strides.resize(other.strides.len(), 0);
        }
        for (i, s) in other.strides.iter().enumerate() {
            self.strides[i] = self.strides[i].max(*s);
        }
    }
}

/// Abstract machine state: one cursor per file plus the barrier epoch.
#[derive(Clone, Debug, Default)]
struct State {
    cursors: HashMap<String, SymVal>,
    epoch: SymVal,
}

impl State {
    fn merge(&mut self, other: &State) {
        let keys: Vec<String> = self
            .cursors
            .keys()
            .chain(other.cursors.keys())
            .cloned()
            .collect();
        for k in keys {
            let theirs = other.cursors.get(&k).cloned().unwrap_or_default();
            self.cursors.entry(k).or_default().merge(&theirs);
        }
        self.epoch.merge(&other.epoch);
    }
}

/// One stride dimension of an access: the enclosing loop's trip count
/// and how far the position / epoch move per iteration.
#[derive(Clone, Copy, Debug)]
struct RecDim {
    trips: u64,
    pos: u64,
    epoch: u64,
}

/// One data access, rank-relative, in closed form.
#[derive(Clone, Debug)]
struct AccessRec {
    line: u32,
    file: String,
    write: bool,
    /// `Some(r)` when the access sits under `onrank r`.
    guard: Option<u32>,
    base: u64,
    spread: u64,
    /// Bytes per placement.
    width: u64,
    dims: Vec<RecDim>,
    epoch_base: u64,
    epoch_spread: u64,
}

impl AccessRec {
    /// Highest rank-relative byte the access can reach (exclusive).
    fn reach(&self) -> u64 {
        let mut r = self
            .base
            .saturating_add(self.spread)
            .saturating_add(self.width);
        for d in &self.dims {
            r = r.saturating_add(d.pos.saturating_mul(d.trips.saturating_sub(1)));
        }
        r
    }
}

/// The interpreter: walks the CFG once per region, accumulating access
/// records and emitting position diagnostics.
struct Interp<'a> {
    w: &'a DslWorkload,
    cfg: &'a Cfg,
    /// Trip counts of the open loop nest, outermost first.
    loops: Vec<u64>,
    records: Vec<AccessRec>,
    overflow_warned: HashSet<u32>,
    size_warned: HashSet<u32>,
    dead_warned: HashSet<u32>,
    barrier_warned: HashSet<u32>,
}

/// Run the full analysis for one workload body.
pub(crate) fn analyze(w: &DslWorkload, cfg: &Cfg, report: &mut LintReport) {
    let mut it = Interp {
        w,
        cfg,
        loops: Vec::new(),
        records: Vec::new(),
        overflow_warned: HashSet::new(),
        size_warned: HashSet::new(),
        dead_warned: HashSet::new(),
        barrier_warned: HashSet::new(),
    };
    let mut state = State::default();
    it.run(cfg.entry, cfg.exit, &mut state, true, report);
    it.race_scan(report);
    it.read_never_written(report);
    for (_, line) in cfg.unreachable_regions() {
        report.warn(
            Code::UnreachableCode,
            Some(line),
            "statement is unreachable (enclosing `repeat 0` never executes)",
        );
    }
}

impl<'a> Interp<'a> {
    fn normalize(&self, v: &mut SymVal) {
        v.strides.resize(self.loops.len(), 0);
    }

    /// Interpret the region from `start` until `stop` (exclusive).
    fn run(
        &mut self,
        start: usize,
        stop: usize,
        state: &mut State,
        record: bool,
        report: &mut LintReport,
    ) {
        let cfg = self.cfg;
        let mut cur = start;
        while cur != stop {
            let block = &cfg.blocks[cur];
            match block.kind {
                BlockKind::Entry | BlockKind::Exit | BlockKind::Join => {
                    cur = block.succ[0];
                }
                BlockKind::Body => {
                    let guard = block.guards.last().copied();
                    for s in &block.stmts {
                        self.apply(s, guard, state, record, report);
                    }
                    cur = block.succ[0];
                }
                BlockKind::Barrier { line } => {
                    state.epoch.advance(1);
                    if record && !block.guards.is_empty() && self.barrier_warned.insert(line) {
                        report.error(
                            Code::RankDivergentBarrier,
                            Some(line),
                            format!(
                                "`barrier` inside `onrank {}` runs on one rank only; \
                                 the other ranks never reach it and the program \
                                 deadlocks",
                                block.guards.last().unwrap()
                            ),
                        );
                    }
                    cur = block.succ[0];
                }
                BlockKind::LoopHead {
                    trips,
                    body,
                    follow,
                    ..
                } => {
                    self.do_loop(trips, body, cur, state, record, report);
                    cur = follow;
                }
                BlockKind::RankGuard {
                    rank,
                    line,
                    body,
                    join,
                } => {
                    let conflict = block.guards.iter().any(|&g| g != rank);
                    if conflict {
                        if record && self.dead_warned.insert(line) {
                            report.warn(
                                Code::UnreachableCode,
                                Some(line),
                                format!(
                                    "`onrank {rank}` is nested inside an `onrank` \
                                     for a different rank and never executes"
                                ),
                            );
                        }
                    } else {
                        let mut taken = state.clone();
                        self.run(body, join, &mut taken, record, report);
                        state.merge(&taken);
                    }
                    cur = cfg.blocks[join].succ[0];
                }
            }
        }
    }

    /// Closed-form loop handling: probe once for the per-iteration
    /// delta, collect once with a widened state, exit directly at
    /// `entry + trips·delta`.
    fn do_loop(
        &mut self,
        trips: u64,
        body: usize,
        head: usize,
        state: &mut State,
        record: bool,
        report: &mut LintReport,
    ) {
        if trips == 0 {
            return;
        }
        if trips == 1 {
            self.run(body, head, state, record, report);
            return;
        }
        let entry = state.clone();
        let mut probe = state.clone();
        self.run(body, head, &mut probe, false, report);

        let mut keys: Vec<String> = probe.cursors.keys().cloned().collect();
        keys.sort(); // deterministic record order is irrelevant, state isn't observable — sort anyway
        let delta = |e: &SymVal, p: &SymVal| {
            (
                p.base.saturating_sub(e.base),
                p.spread.saturating_sub(e.spread),
            )
        };

        if record {
            let mut widened = entry.clone();
            self.loops.push(trips);
            for k in &keys {
                let e = entry.cursors.get(k).cloned().unwrap_or_default();
                let (d, ds) = delta(&e, &probe.cursors[k]);
                let v = widened.cursors.entry(k.clone()).or_default();
                self.normalize_to(v, self.loops.len() - 1);
                v.strides.push(d);
                v.spread = v.spread.saturating_add(ds.saturating_mul(trips - 1));
            }
            let (de, dse) = delta(&entry.epoch, &probe.epoch);
            self.normalize_to(&mut widened.epoch, self.loops.len() - 1);
            widened.epoch.strides.push(de);
            widened.epoch.spread = widened
                .epoch
                .spread
                .saturating_add(dse.saturating_mul(trips - 1));
            self.run(body, head, &mut widened, true, report);
            self.loops.pop();
        }

        for k in &keys {
            let e = entry.cursors.get(k).cloned().unwrap_or_default();
            let (d, ds) = delta(&e, &probe.cursors[k]);
            let v = state.cursors.entry(k.clone()).or_default();
            v.base = e.base.saturating_add(d.saturating_mul(trips));
            v.spread = e.spread.saturating_add(ds.saturating_mul(trips));
            v.strides = e.strides;
            self.normalize(v);
        }
        let (de, dse) = delta(&entry.epoch, &probe.epoch);
        state.epoch.base = entry.epoch.base.saturating_add(de.saturating_mul(trips));
        state.epoch.spread = entry.epoch.spread.saturating_add(dse.saturating_mul(trips));
    }

    fn normalize_to(&self, v: &mut SymVal, len: usize) {
        v.strides.resize(len, 0);
    }

    /// Transfer function for one straight-line statement.
    fn apply(
        &mut self,
        s: &Stmt,
        guard: Option<u32>,
        state: &mut State,
        record: bool,
        report: &mut LintReport,
    ) {
        let StmtKind::Data {
            kind,
            file,
            size,
            count,
            random,
            at,
        } = &s.kind
        else {
            return; // Meta/Compute do not move cursors
        };
        let Some(decl) = self.w.files.get(file) else {
            return; // PIO010 already
        };
        if *size == 0 || *count == 0 {
            return; // PIO016/PIO017 already
        }
        let shared = decl.scope == Scope::Shared;
        let width = size.saturating_mul(*count);

        let start = if *random {
            SymVal::zero(self.loops.len())
        } else if let Some(off) = at {
            let mut v = SymVal::zero(self.loops.len());
            v.base = *off;
            v
        } else {
            let cur = state.cursors.entry(file.clone()).or_default();
            self.normalize(cur);
            let start = cur.clone();
            cur.advance(width);
            start
        };

        if !record {
            return;
        }
        let mut epoch = state.epoch.clone();
        self.normalize(&mut epoch);

        let dims: Vec<RecDim> = self
            .loops
            .iter()
            .enumerate()
            .map(|(i, &trips)| RecDim {
                trips,
                pos: start.strides[i],
                epoch: epoch.strides[i],
            })
            .filter(|d| d.pos != 0 || d.epoch != 0)
            .collect();

        let rec = AccessRec {
            line: s.line,
            file: file.clone(),
            write: *kind == IoKind::Write,
            guard,
            base: start.base,
            spread: start.spread,
            width: if *random { decl.lane.max(*size) } else { width },
            dims,
            epoch_base: epoch.base,
            epoch_spread: epoch.spread,
        };

        // PIO019: the access leaves the rank's lane of a shared file.
        if shared {
            let spills = if *random {
                *size > decl.lane
            } else {
                rec.reach() > decl.lane
            };
            if spills && self.overflow_warned.insert(s.line) {
                let msg = if *random {
                    format!(
                        "random {} of {size} bytes exceeds the {}-byte lane \
                         of shared file `{file}`",
                        verb(*kind),
                        decl.lane
                    )
                } else {
                    format!(
                        "sequential {} reaches byte {} of the {}-byte lane of \
                         shared file `{file}` (spills into the next rank's lane)",
                        verb(*kind),
                        rec.reach(),
                        decl.lane
                    )
                };
                report.warn(Code::LaneOverflow, Some(s.line), msg);
            }
        }

        // PIO024: the access reaches past the declared file size.
        if let Some(declared) = decl.size {
            let over = if *random {
                decl.lane.max(*size) > declared
            } else {
                rec.reach() > declared
            };
            let cross_rank = shared && decl.lane > declared;
            if (over || cross_rank) && self.size_warned.insert(s.line) {
                let detail = if over {
                    format!("reaches byte {}", rec.reach())
                } else {
                    format!(
                        "puts rank 1 at byte {} (one {}-byte lane in)",
                        decl.lane, decl.lane
                    )
                };
                report.warn(
                    Code::CursorPastDeclaredSize,
                    Some(s.line),
                    format!(
                        "{} of `{file}` {detail}, past its declared \
                         {declared}-byte size",
                        verb(*kind),
                    ),
                );
            }
        }

        // Random reads have no meaningful range for PIO020/PIO023.
        if !(*random && *kind == IoKind::Read) {
            self.records.push(rec);
        }
    }

    /// PIO020: symbolic cross-rank overlap scan over shared-file writes.
    fn race_scan(&self, report: &mut LintReport) {
        let mut flagged: HashSet<(String, u32, u32)> = HashSet::new();
        let mut files: Vec<&str> = self
            .records
            .iter()
            .filter(|r| r.write)
            .map(|r| r.file.as_str())
            .collect();
        files.sort_unstable();
        files.dedup();
        for file in files {
            let Some(decl) = self.w.files.get(file) else {
                continue;
            };
            if decl.scope != Scope::Shared || decl.lane == 0 {
                continue;
            }
            let lane = decl.lane as i128;
            let writes: Vec<(&AccessRec, Simple)> = self
                .records
                .iter()
                .filter(|r| r.write && r.file == file)
                .map(|r| (r, simplify(r)))
                .collect();
            for (i, (ra, sa)) in writes.iter().enumerate() {
                for (rb, sb) in &writes[i..] {
                    if std::ptr::eq(*ra, *rb) && ra.guard.is_some() {
                        continue; // a guarded stmt exists on one rank only
                    }
                    let Some(approx) = pair_races(sa, sb, ra.guard, rb.guard, lane) else {
                        continue;
                    };
                    let (lo, hi) = (ra.line.min(rb.line), ra.line.max(rb.line));
                    if !flagged.insert((file.to_string(), lo, hi)) {
                        continue;
                    }
                    let who = match (ra.guard, rb.guard) {
                        (Some(x), Some(y)) => format!("ranks {} and {}", x.min(y), x.max(y)),
                        _ => "two ranks".to_string(),
                    };
                    let action = if approx { "may write" } else { "write" };
                    report.error(
                        Code::SharedWriteRace,
                        Some(lo),
                        format!(
                            "{who} {action} overlapping bytes of shared file \
                             `{file}` with no barrier between (lines {lo} and {hi})"
                        ),
                    );
                }
            }
        }
    }

    /// PIO023: a sequential/positioned read of a file this program
    /// creates, whose range no write statement can touch.
    fn read_never_written(&self, report: &mut LintReport) {
        // First lifecycle op per file, in source order.
        let mut first_op: HashMap<&str, MetaOp> = HashMap::new();
        fn scan<'b>(stmts: &'b [Stmt], first: &mut HashMap<&'b str, MetaOp>) {
            for s in stmts {
                match &s.kind {
                    StmtKind::Meta(op @ (MetaOp::Create | MetaOp::Open), f) => {
                        first.entry(f.as_str()).or_insert(*op);
                    }
                    StmtKind::Repeat(_, inner) | StmtKind::OnRank(_, inner) => {
                        scan(inner, first);
                    }
                    _ => {}
                }
            }
        }
        scan(&self.w.body, &mut first_op);

        let mut warned: HashSet<u32> = HashSet::new();
        for r in &self.records {
            if r.write || warned.contains(&r.line) {
                continue;
            }
            if first_op.get(r.file.as_str()) != Some(&MetaOp::Create) {
                continue; // opened pre-existing file: contents unknown, stay quiet
            }
            let decl = &self.w.files[&r.file];
            let (rlo, rhi) = (r.base, r.reach());
            let covered = self.records.iter().any(|w| {
                if !w.write || w.file != r.file {
                    return false;
                }
                let (wlo, mut whi) = (w.base, w.reach());
                if decl.scope == Scope::Shared && whi > decl.lane {
                    whi = u64::MAX; // spilling writes reach other ranks' lanes
                }
                wlo < rhi && rlo < whi
            });
            if !covered {
                warned.insert(r.line);
                report.warn(
                    Code::ReadNeverWritten,
                    Some(r.line),
                    format!(
                        "read of bytes [{rlo}, {rhi}) of `{}`, which no \
                         statement writes (the file is created empty in \
                         this program)",
                        r.file
                    ),
                );
            }
        }
    }
}

fn verb(kind: IoKind) -> &'static str {
    match kind {
        IoKind::Read => "read",
        IoKind::Write => "write",
    }
}

// ---------------------------------------------------------------------------
// Race decision procedure
// ---------------------------------------------------------------------------

/// An access reduced to at most one residual stride dimension.
#[derive(Clone, Copy, Debug)]
struct Simple {
    base: u64,
    /// Width including join slack and densified dimensions.
    width: u64,
    /// `(trips, pos_stride, epoch_stride)` of the surviving dimension.
    dim: Option<(u64, u64, u64)>,
    /// Epoch interval (inclusive) of the non-dimensional part.
    elo: u64,
    ehi: u64,
    /// Whether any over-approximation was applied.
    approx: bool,
}

/// Collapse an access record to at most one stride dimension.
///
/// Epoch-free dimensions whose placements tile contiguously
/// (`width ≥ stride`) densify exactly into the width, innermost first.
/// If more than one dimension survives, all but one are densified as an
/// over-approximation (`approx = true`); the kept dimension prefers an
/// epoch-coupled one so barrier reasoning stays exact.
fn simplify(r: &AccessRec) -> Simple {
    let mut width = r.width.saturating_add(r.spread);
    let elo = r.epoch_base;
    let mut ehi = r.epoch_base.saturating_add(r.epoch_spread);
    let mut approx = false;
    let mut kept: Vec<(u64, u64, u64)> = Vec::new();
    for d in r.dims.iter().rev() {
        if d.epoch == 0 {
            if d.pos == 0 {
                continue;
            }
            if width >= d.pos {
                width = width.saturating_add(d.pos.saturating_mul(d.trips - 1));
            } else {
                kept.push((d.trips, d.pos, d.epoch));
            }
        } else {
            kept.push((d.trips, d.pos, d.epoch));
        }
    }
    // Keep the best dimension exact, densify the rest.
    kept.sort_by_key(|&(t, p, e)| (e > 0, p.saturating_mul(t.saturating_sub(1))));
    let keeper = kept.pop();
    for (t, p, e) in kept {
        width = width.saturating_add(p.saturating_mul(t - 1));
        ehi = ehi.saturating_add(e.saturating_mul(t - 1));
        approx = true;
    }
    // Guard against astronomically large extents: fall back to a dense
    // hull so downstream i128 arithmetic cannot overflow.
    let dim = match keeper {
        Some((t, p, e)) if p.checked_mul(t - 1).is_none() || e.checked_mul(t - 1).is_none() => {
            width = u64::MAX;
            ehi = u64::MAX;
            approx = true;
            None
        }
        other => other,
    };
    Simple {
        base: r.base,
        width,
        dim,
        elo,
        ehi,
        approx,
    }
}

/// A one-variable position problem: the signed rank-relative distance
/// between two accesses is `X(u) = c + u·s` for `u ∈ [0, n)`, and they
/// overlap at rank distance δ iff `δ·lane ∈ (X − wb, X + wa)`.
#[derive(Clone, Copy, Debug)]
struct Prob {
    c: i128,
    s: i128,
    n: u64,
    wa: i128,
    wb: i128,
    approx: bool,
}

fn span(lo: u64, hi: u64, lo2: u64, hi2: u64) -> bool {
    lo <= hi2 && lo2 <= hi
}

/// Couple the two accesses' epochs and reduce to a [`Prob`], or `None`
/// when their epochs can never match.
fn couple(a: &Simple, b: &Simple) -> Option<Prob> {
    let mut wa = a.width as i128;
    let mut wb = b.width as i128;
    let approx = a.approx || b.approx;
    let c0 = a.base as i128 - b.base as i128;
    let prob = |c, s, n, wa, wb, approx| {
        Some(Prob {
            c,
            s,
            n,
            wa,
            wb,
            approx,
        })
    };

    match (a.dim, b.dim) {
        (None, None) => {
            if !span(a.elo, a.ehi, b.elo, b.ehi) {
                return None;
            }
            prob(c0, 0, 1, wa, wb, approx)
        }
        (Some((n, s, e)), None) => {
            if e == 0 {
                if !span(a.elo, a.ehi, b.elo, b.ehi) {
                    return None;
                }
                return prob(c0, s as i128, n, wa, wb, approx);
            }
            // a's epoch is elo + k·e (+slack); match b's interval.
            let (k1, k2) = epoch_k_range(a.elo, a.ehi, e, n, b.elo, b.ehi)?;
            prob(
                c0 + k1 as i128 * s as i128,
                s as i128,
                k2 - k1 + 1,
                wa,
                wb,
                approx,
            )
        }
        (None, Some((n, s, e))) => {
            if e == 0 {
                if !span(a.elo, a.ehi, b.elo, b.ehi) {
                    return None;
                }
                return prob(c0, -(s as i128), n, wa, wb, approx);
            }
            let (k1, k2) = epoch_k_range(b.elo, b.ehi, e, n, a.elo, a.ehi)?;
            prob(
                c0 - k1 as i128 * s as i128,
                -(s as i128),
                k2 - k1 + 1,
                wa,
                wb,
                approx,
            )
        }
        (Some((na, sa, ea)), Some((nb, sb, eb))) => {
            let (sa_i, sb_i) = (sa as i128, sb as i128);
            match (ea, eb) {
                (0, 0) => {
                    if !span(a.elo, a.ehi, b.elo, b.ehi) {
                        return None;
                    }
                    if sa == sb {
                        // m = ka − kb is a single free variable.
                        let n = na.saturating_add(nb) - 1;
                        prob(c0 - (nb as i128 - 1) * sa_i, sa_i, n, wa, wb, approx)
                    } else {
                        // Densify the smaller-extent side.
                        let (ext_a, ext_b) = (sa_i * (na as i128 - 1), sb_i * (nb as i128 - 1));
                        if ext_a <= ext_b {
                            wa += ext_a;
                            prob(c0, -sb_i, nb, wa, wb, true)
                        } else {
                            wb += ext_b;
                            prob(c0, sa_i, na, wa, wb, true)
                        }
                    }
                }
                (_, 0) => {
                    // a's epoch moves; pin ka to b's fixed epoch interval.
                    let (k1, k2) = epoch_k_range(a.elo, a.ehi, ea, na, b.elo, b.ehi)?;
                    two_var(c0, sa_i, k1, k2, sb_i, nb, wa, wb, approx)
                }
                (0, _) => {
                    let (k1, k2) = epoch_k_range(b.elo, b.ehi, eb, nb, a.elo, a.ehi)?;
                    let p = two_var(-c0, sb_i, k1, k2, sa_i, na, wb, wa, approx)?;
                    // Mirror back: X_ab = −X_ba, windows swap.
                    prob(
                        -(p.c + (p.n as i128 - 1) * p.s),
                        p.s,
                        p.n,
                        p.wb,
                        p.wa,
                        p.approx,
                    )
                }
                (_, _) => {
                    if a.ehi > a.elo || b.ehi > b.elo || ea > 1 << 32 || eb > 1 << 32 {
                        // Epoch slack: fall back to smeared intervals.
                        let ahi = a.ehi.saturating_add(ea.saturating_mul(na - 1));
                        let bhi = b.ehi.saturating_add(eb.saturating_mul(nb - 1));
                        if !span(a.elo, ahi, b.elo, bhi) {
                            return None;
                        }
                        wa += sa_i * (na as i128 - 1);
                        wb += sb_i * (nb as i128 - 1);
                        return prob(c0, 0, 1, wa, wb, true);
                    }
                    // Exact: elo_a + ka·ea = elo_b + kb·eb.
                    let (g, x, _) = ext_gcd(ea as i128, eb as i128);
                    let r = b.elo as i128 - a.elo as i128;
                    if r.rem_euclid(g) != 0 {
                        return None;
                    }
                    let (pa, pb) = (eb as i128 / g, ea as i128 / g);
                    // Normalize the Bezout base solution into [0, pa) so
                    // products below stay far from i128 overflow (the
                    // strides are capped at 2^32 above).
                    let ka0 = (x.rem_euclid(pa) * (r / g).rem_euclid(pa)).rem_euclid(pa);
                    // kb0 from the epoch equation.
                    let kb0 = (a.elo as i128 + ka0 * ea as i128 - b.elo as i128) / eb as i128;
                    // t ranges keeping ka ∈ [0, na), kb ∈ [0, nb).
                    let t1 = div_ceil(-ka0, pa).max(div_ceil(-kb0, pb));
                    let t2 = div_floor(na as i128 - 1 - ka0, pa)
                        .min(div_floor(nb as i128 - 1 - kb0, pb));
                    if t1 > t2 {
                        return None;
                    }
                    let s = sa_i * pa - sb_i * pb;
                    let c = c0 + (ka0 + t1 * pa) * sa_i - (kb0 + t1 * pb) * sb_i;
                    prob(c, s, (t2 - t1 + 1) as u64, wa, wb, approx)
                }
            }
        }
    }
}

/// `X = c0 + ka·sa − kb·sb`, `ka ∈ [k1, k2]`, `kb ∈ [0, nb)`: reduce to
/// one variable, densifying `ka` if the strides differ.
#[allow(clippy::too_many_arguments)]
fn two_var(
    c0: i128,
    sa: i128,
    k1: u64,
    k2: u64,
    sb: i128,
    nb: u64,
    wa: i128,
    wb: i128,
    approx: bool,
) -> Option<Prob> {
    let (k1i, k2i) = (k1 as i128, k2 as i128);
    if sa == 0 || k1 == k2 {
        // ka contributes a constant; kb is the free variable, presented
        // ascending via u = (nb−1) − kb.
        Some(Prob {
            c: c0 + k1i * sa - (nb as i128 - 1) * sb,
            s: sb,
            n: nb,
            wa,
            wb,
            approx,
        })
    } else if sb == 0 {
        Some(Prob {
            c: c0 + k1i * sa,
            s: sa,
            n: k2 - k1 + 1,
            wa,
            wb,
            approx,
        })
    } else if sa == sb {
        // m = ka − kb ∈ [k1 − (nb−1), k2].
        Some(Prob {
            c: c0 + (k1i - (nb as i128 - 1)) * sa,
            s: sa,
            n: (k2 - k1) + nb,
            wa,
            wb,
            approx,
        })
    } else {
        // Densify ka over [k1, k2].
        Some(Prob {
            c: c0 + k1i * sa,
            s: -sb,
            n: nb,
            wa: wa + (k2i - k1i) * sa,
            wb,
            approx: true,
        })
    }
}

/// Range of `k ∈ [0, n)` with `[elo + k·e, ehi + k·e] ∩ [blo, bhi] ≠ ∅`.
fn epoch_k_range(elo: u64, ehi: u64, e: u64, n: u64, blo: u64, bhi: u64) -> Option<(u64, u64)> {
    let (elo, ehi, e) = (elo as i128, ehi as i128, e as i128);
    let (blo, bhi) = (blo as i128, bhi as i128);
    let k1 = div_ceil(blo - ehi, e).max(0);
    let k2 = div_floor(bhi - elo, e).min(n as i128 - 1);
    if k1 > k2 {
        None
    } else {
        Some((k1 as u64, k2 as u64))
    }
}

/// Decide whether two simplified accesses can overlap on distinct ranks.
/// Returns `Some(approx)` on a race.
fn pair_races(
    a: &Simple,
    b: &Simple,
    ga: Option<u32>,
    gb: Option<u32>,
    lane: i128,
) -> Option<bool> {
    match (ga, gb) {
        (Some(x), Some(y)) if x == y => None,
        (Some(x), Some(y)) => {
            let p = couple(a, b)?;
            let d = y as i128 - x as i128;
            // δ·lane ∈ (X − wb, X + wa) ⟺ X ∈ (δ·lane − wa, δ·lane + wb).
            exists_in_open(p.c, p.s, p.n, d * lane - p.wa, d * lane + p.wb).then_some(p.approx)
        }
        _ => {
            let p = couple(a, b)?;
            // Direction 1: b's rank sits δ ≥ 1 above a's.
            let dmax1 = match gb {
                Some(0) => None, // b pinned to rank 0: nothing below it? no — above a means a < 0
                Some(g) => Some(g as i128),
                None => Some(i128::MAX),
            };
            // (gb = Some(g): a's rank = g − δ ≥ 0 ⇒ δ ≤ g.)
            let hit1 = match dmax1 {
                Some(d) if d >= 1 => exists_shift(p.c, p.s, p.n, p.wa, p.wb, lane, d),
                _ => false,
            };
            if hit1 {
                return Some(p.approx);
            }
            // Direction 2: a's rank sits δ ≥ 1 above b's. Mirror X.
            let dmax2 = match ga {
                Some(0) => None,
                Some(g) => Some(g as i128),
                None => Some(i128::MAX),
            };
            let hit2 = match dmax2 {
                Some(d) if d >= 1 => {
                    // X' = −X: reflect the progression, swap the widths.
                    let c2 = -(p.c + (p.n as i128 - 1) * p.s);
                    exists_shift(c2, p.s, p.n, p.wb, p.wa, lane, d)
                }
                _ => false,
            };
            hit2.then_some(p.approx)
        }
    }
}

/// `∃ u ∈ [0, n): lo < c + u·s < hi` (open interval).
fn exists_in_open(c: i128, s: i128, n: u64, lo: i128, hi: i128) -> bool {
    if n == 0 || lo + 1 > hi - 1 {
        return false;
    }
    let (c, s) = if s < 0 {
        (c + (n as i128 - 1) * s, -s) // reflect u → n−1−u
    } else {
        (c, s)
    };
    if s == 0 {
        return c > lo && c < hi;
    }
    let u1 = div_ceil(lo + 1 - c, s).max(0);
    let u2 = div_floor(hi - 1 - c, s).min(n as i128 - 1);
    u1 <= u2
}

/// `∃ u ∈ [0, n), δ ∈ [1, dmax]: δ·L ∈ (X − wb, X + wa)`, `X = c + u·s`.
///
/// Split on which multiple of `L` lands in the window: branch A takes
/// `δ = ⌊X/L⌋` (needs `X mod L < wb` and `X ≥ L`), branch B takes
/// `δ = ⌊X/L⌋ + 1` (needs `X mod L > L − wa` and `X ≥ 0`); together
/// they cover every multiple inside the window. Each branch restricts
/// `u` to the subrange where its `X` constraint holds (X is monotone in
/// `u`) and then asks whether the arithmetic progression hits the
/// residue window — exact via [`min_mod`].
fn exists_shift(c: i128, s: i128, n: u64, wa: i128, wb: i128, lane: i128, dmax: i128) -> bool {
    debug_assert!(lane > 0 && n >= 1 && dmax >= 1);
    if wa <= 0 || wb <= 0 {
        return false;
    }
    let (c, s) = if s < 0 {
        (c + (n as i128 - 1) * s, -s)
    } else {
        (c, s)
    };
    let xmax_a = dmax
        .checked_add(1)
        .and_then(|d| d.checked_mul(lane))
        .map(|v| v - 1);
    let xmax_b = dmax.checked_mul(lane).map(|v| v - 1);
    if branch_hits(c, s, n, lane, lane, xmax_a, 0, wb)
        || branch_hits(c, s, n, lane, 0, xmax_b, wa - 1, wa - 1)
    {
        return true;
    }
    // Widths wider than the lane reach X outside both kernel windows:
    // X < 0 still overlaps at δ = 1 when X > lane − wa, and X past the
    // δ = dmax window still overlaps there when X < dmax·lane + wb.
    // Both are plain interval checks (w = lane makes the kernel vacuous).
    if wa > lane && branch_hits(c, s, n, lane, lane - wa + 1, Some(-1), 0, lane) {
        return true;
    }
    if wb > lane {
        if let Some(xa) = xmax_a {
            let hi = (xa - lane + 1).saturating_add(wb - 1);
            if branch_hits(c, s, n, lane, xa + 1, Some(hi), 0, lane) {
                return true;
            }
        }
    }
    false
}

/// One branch of [`exists_shift`]: restrict `u` to `X(u) ∈ [xlo, xhi]`,
/// then decide `∃u: (X(u) + add) mod lane < w`.
#[allow(clippy::too_many_arguments)]
fn branch_hits(
    c: i128,
    s: i128,
    n: u64,
    lane: i128,
    xlo: i128,
    xhi: Option<i128>,
    add: i128,
    w: i128,
) -> bool {
    if w <= 0 {
        return false;
    }
    let (u1, u2) = if s == 0 {
        if c < xlo || xhi.is_some_and(|h| c > h) {
            return false;
        }
        (0i128, 0i128)
    } else {
        let u1 = div_ceil(xlo - c, s).max(0);
        let u2 = xhi
            .map(|h| div_floor(h - c, s))
            .unwrap_or(n as i128 - 1)
            .min(n as i128 - 1);
        if u1 > u2 {
            return false;
        }
        (u1, u2)
    };
    if w >= lane {
        return true;
    }
    let start = c + u1 * s + add;
    let a = start.rem_euclid(lane) as u128;
    let step = s.rem_euclid(lane) as u128;
    min_mod(a, step, lane as u128, (u2 - u1 + 1) as u128) < w as u128
}

/// Minimum of `(a + i·b) mod m` over `i ∈ [0, n)`, in `O(log m)`.
///
/// Between wraps the walk only increases, so the minimum is either `a`
/// or a just-after-wrap value; those values are themselves an
/// arithmetic progression mod `b` (`(a − j·m) mod b` for wrap `j`),
/// giving a Euclid-style descent on the modulus.
fn min_mod(a: u128, b: u128, m: u128, n: u128) -> u128 {
    debug_assert!(a < m && b < m && n >= 1);
    if b == 0 || n == 1 {
        return a;
    }
    // Number of wraps along the walk.
    let k = match b.checked_mul(n - 1) {
        Some(t) => (a + t) / m,
        None => u128::MAX, // astronomically many
    };
    if k == 0 {
        return a;
    }
    let bp = (b - m % b) % b; // ≡ −m (mod b)
    let a2 = (a % b + bp) % b; // first post-wrap value
                               // The post-wrap progression cycles within b steps.
    let kcap = k.min(b);
    a.min(min_mod(a2, bp, b, kcap))
}

fn div_floor(a: i128, b: i128) -> i128 {
    let (q, r) = (a / b, a % b);
    if r != 0 && (r < 0) != (b < 0) {
        q - 1
    } else {
        q
    }
}

fn div_ceil(a: i128, b: i128) -> i128 {
    let (q, r) = (a / b, a % b);
    if r != 0 && (r < 0) == (b < 0) {
        q + 1
    } else {
        q
    }
}

/// Extended gcd: returns `(g, x, y)` with `a·x + b·y = g`, `a, b > 0`.
fn ext_gcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = ext_gcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn min_mod_brute(a: u128, b: u128, m: u128, n: u128) -> u128 {
        (0..n).map(|i| (a + i * b) % m).min().unwrap()
    }

    // The vendored proptest shim only implements range strategies for
    // the native-width integers, so draw u64/i64 and widen inside.
    proptest! {
        #[test]
        fn min_mod_matches_brute_force(
            a in 0u64..97,
            b in 0u64..97,
            m in 1u64..97,
            n in 1u64..300,
        ) {
            let (a, b, m, n) = (a as u128 % m as u128, b as u128 % m as u128, m as u128, n as u128);
            prop_assert_eq!(min_mod(a, b, m, n), min_mod_brute(a, b, m, n));
        }

        #[test]
        fn exists_shift_matches_brute_force(
            c in -2000i64..2000,
            s in 0i64..60,
            n in 1u64..40,
            wa in 1i64..50,
            wb in 1i64..50,
            lane in 1i64..120,
            dmax in 1i64..8,
        ) {
            let (c, s, wa, wb, lane, dmax) =
                (c as i128, s as i128, wa as i128, wb as i128, lane as i128, dmax as i128);
            let brute = (0..n as i128).any(|u| {
                let x = c + u * s;
                (1..=dmax).any(|d| d * lane > x - wb && d * lane < x + wa)
            });
            prop_assert_eq!(
                exists_shift(c, s, n, wa, wb, lane, dmax),
                brute,
                "c={c} s={s} n={n} wa={wa} wb={wb} lane={lane} dmax={dmax}"
            );
        }

        #[test]
        fn exists_in_open_matches_brute_force(
            c in -500i64..500,
            s in -40i64..40,
            n in 1u64..50,
            lo in -500i64..500,
            len in 0i64..200,
        ) {
            let (c, s, lo) = (c as i128, s as i128, lo as i128);
            let hi = lo + len as i128;
            let brute = (0..n as i128).any(|u| {
                let x = c + u * s;
                x > lo && x < hi
            });
            prop_assert_eq!(exists_in_open(c, s, n, lo, hi), brute);
        }
    }

    #[test]
    fn min_mod_handles_large_inputs() {
        // 2^60-scale values must not overflow or recurse deeply.
        let m = 1u128 << 60;
        let v = min_mod(123_456_789, (1 << 59) + 12_345, m, 1 << 50);
        assert!(v < m);
    }

    #[test]
    fn ext_gcd_is_bezout() {
        for (a, b) in [(12, 18), (35, 64), (7, 7), (1, 99), (100, 1)] {
            let (g, x, y) = ext_gcd(a, b);
            assert_eq!(a * x + b * y, g);
            assert_eq!(a % g, 0);
            assert_eq!(b % g, 0);
        }
    }
}
