//! Control-flow graph lowering for DSL workloads.
//!
//! Each workload body becomes a per-rank CFG: straight-line statements
//! accumulate into basic blocks, `barrier` statements split blocks (they
//! delimit the epochs the race detector reasons about), `repeat` blocks
//! become loop-head nodes with a back edge and a known trip count, and
//! `onrank` blocks become rank-guard branch nodes. Campaign jobs are
//! parallel roots: every unit's CFG hangs off the virtual campaign root
//! in the rendered graph.
//!
//! The CFG is consumed by two clients:
//!
//! * the crate-private abstract interpreter (`absint`), which runs a
//!   fixed-point analysis over the graph (loop heads carry their trip
//!   counts so cursor evolution can be closed over `k` iterations), and
//! * external tooling via `pioeval lint --cfg-out` ([`ProgramCfg::to_dot`]
//!   / [`ProgramCfg::to_json`]), e.g. a fuzzer choosing which paths to
//!   mutate.
//!
//! Reachability over the graph yields the `PIO022` dead-code diagnostic:
//! a `repeat 0` head has no edge into its body, so the body subgraph is
//! unreachable from the entry node.

use pioeval_workloads::dsl::{CampaignDecl, DslProgram, DslWorkload, Stmt, StmtKind};

/// What a [`Block`] is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BlockKind {
    /// The unique entry node.
    Entry,
    /// The unique exit node.
    Exit,
    /// A straight-line basic block (holds the statements).
    Body,
    /// A `barrier` statement: splits blocks, increments the epoch.
    Barrier {
        /// Source line of the `barrier`.
        line: u32,
    },
    /// A `repeat` loop head with a known trip count.
    LoopHead {
        /// Number of iterations.
        trips: u64,
        /// Source line of the `repeat`.
        line: u32,
        /// Entry block of the loop body.
        body: usize,
        /// The block execution continues at after the loop.
        follow: usize,
    },
    /// An `onrank` guard: the body executes only on one rank.
    RankGuard {
        /// The guarded rank.
        rank: u32,
        /// Source line of the `onrank`.
        line: u32,
        /// Entry block of the guarded body.
        body: usize,
        /// Join node where the taken and skip paths meet.
        join: usize,
    },
    /// The join node closing a rank guard.
    Join,
}

/// One CFG node.
#[derive(Clone, Debug)]
pub struct Block {
    /// Node kind.
    pub kind: BlockKind,
    /// Statements, for [`BlockKind::Body`] blocks (empty otherwise).
    pub stmts: Vec<Stmt>,
    /// Successor block ids.
    pub succ: Vec<usize>,
    /// Predecessor block ids.
    pub pred: Vec<usize>,
    /// Ranks of the enclosing `onrank` guards, outermost first.
    pub guards: Vec<u32>,
}

/// The CFG of one workload body (a "unit": a `workload` block or main).
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Unit name (`main` or the workload block name).
    pub name: String,
    /// All blocks; ids index this vector.
    pub blocks: Vec<Block>,
    /// Id of the [`BlockKind::Entry`] block.
    pub entry: usize,
    /// Id of the [`BlockKind::Exit`] block.
    pub exit: usize,
}

/// A program's CFGs plus the campaign fan-out.
#[derive(Clone, Debug)]
pub struct ProgramCfg {
    /// One CFG per unit: workload blocks in declaration order, then
    /// `main` if present.
    pub units: Vec<Cfg>,
    /// Campaign jobs as `(workload, ranks, line)` — the parallel roots.
    pub jobs: Vec<(String, u32, u32)>,
}

struct Lowerer {
    blocks: Vec<Block>,
}

impl Lowerer {
    fn block(&mut self, kind: BlockKind, guards: Vec<u32>) -> usize {
        self.blocks.push(Block {
            kind,
            stmts: Vec::new(),
            succ: Vec::new(),
            pred: Vec::new(),
            guards,
        });
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        self.blocks[from].succ.push(to);
        self.blocks[to].pred.push(from);
    }

    /// Lower a statement sequence into a chain of blocks; returns the
    /// (entry, tail) block ids. The tail is always a `Body` block.
    fn seq(&mut self, stmts: &[Stmt], guards: &[u32]) -> (usize, usize) {
        let entry = self.block(BlockKind::Body, guards.to_vec());
        let mut cur = entry;
        for s in stmts {
            match &s.kind {
                StmtKind::Meta(..) | StmtKind::Data { .. } | StmtKind::Compute(_) => {
                    self.blocks[cur].stmts.push(s.clone());
                }
                StmtKind::Barrier => {
                    let b = self.block(BlockKind::Barrier { line: s.line }, guards.to_vec());
                    self.edge(cur, b);
                    cur = self.block(BlockKind::Body, guards.to_vec());
                    self.edge(b, cur);
                }
                StmtKind::Repeat(n, inner) => {
                    let head = self.block(
                        BlockKind::LoopHead {
                            trips: *n,
                            line: s.line,
                            body: 0,   // patched below
                            follow: 0, // patched below
                        },
                        guards.to_vec(),
                    );
                    self.edge(cur, head);
                    let (bentry, btail) = self.seq(inner, guards);
                    if *n > 0 {
                        self.edge(head, bentry);
                    }
                    self.edge(btail, head); // back edge
                    let follow = self.block(BlockKind::Body, guards.to_vec());
                    self.edge(head, follow);
                    if let BlockKind::LoopHead {
                        body, follow: f, ..
                    } = &mut self.blocks[head].kind
                    {
                        *body = bentry;
                        *f = follow;
                    }
                    cur = follow;
                }
                StmtKind::OnRank(r, inner) => {
                    let guard = self.block(
                        BlockKind::RankGuard {
                            rank: *r,
                            line: s.line,
                            body: 0, // patched below
                            join: 0, // patched below
                        },
                        guards.to_vec(),
                    );
                    self.edge(cur, guard);
                    let mut inner_guards = guards.to_vec();
                    inner_guards.push(*r);
                    let (bentry, btail) = self.seq(inner, &inner_guards);
                    self.edge(guard, bentry);
                    let join = self.block(BlockKind::Join, guards.to_vec());
                    self.edge(btail, join);
                    self.edge(guard, join); // skip path (rank != r)
                    if let BlockKind::RankGuard { body, join: j, .. } = &mut self.blocks[guard].kind
                    {
                        *body = bentry;
                        *j = join;
                    }
                    cur = self.block(BlockKind::Body, guards.to_vec());
                    let after = cur;
                    self.edge(join, after);
                }
            }
        }
        (entry, cur)
    }
}

/// Lower one workload body into a CFG.
pub fn lower_workload(name: &str, w: &DslWorkload) -> Cfg {
    let mut l = Lowerer { blocks: Vec::new() };
    let entry = l.block(BlockKind::Entry, Vec::new());
    let (bentry, btail) = l.seq(&w.body, &[]);
    l.edge(entry, bentry);
    let exit = l.block(BlockKind::Exit, Vec::new());
    l.edge(btail, exit);
    Cfg {
        name: name.to_string(),
        blocks: l.blocks,
        entry,
        exit,
    }
}

/// Lower every unit of a program, recording campaign jobs as roots.
pub fn lower_program(p: &DslProgram) -> ProgramCfg {
    let mut units = Vec::new();
    for (name, w) in &p.workloads {
        units.push(lower_workload(name, w));
    }
    if let Some(main) = &p.main {
        units.push(lower_workload("main", main));
    }
    let jobs = match &p.campaign {
        Some(CampaignDecl { jobs, .. }) => jobs
            .iter()
            .map(|j| (j.workload.clone(), j.ranks, j.line))
            .collect(),
        None => Vec::new(),
    };
    ProgramCfg { units, jobs }
}

impl Cfg {
    /// Block ids reachable from the entry node.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.blocks.len()];
        let mut stack = vec![self.entry];
        seen[self.entry] = true;
        while let Some(b) = stack.pop() {
            for &s in &self.blocks[b].succ {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Roots of unreachable regions: unreachable blocks none of whose
    /// predecessors is unreachable (so nested dead blocks report once),
    /// paired with the smallest source line in the region. Regions with
    /// no lines at all (empty bodies) are skipped.
    pub fn unreachable_regions(&self) -> Vec<(usize, u32)> {
        let seen = self.reachable();
        let mut out = Vec::new();
        for (id, b) in self.blocks.iter().enumerate() {
            if seen[id] || b.pred.iter().any(|&p| !seen[p]) {
                continue;
            }
            if let Some(line) = self.first_line_from(id, &seen) {
                out.push((id, line));
            }
        }
        out
    }

    /// Smallest source line in the unreachable region rooted at `root`.
    fn first_line_from(&self, root: usize, reachable: &[bool]) -> Option<u32> {
        let mut best: Option<u32> = None;
        let mut stack = vec![root];
        let mut visited = vec![false; self.blocks.len()];
        visited[root] = true;
        while let Some(id) = stack.pop() {
            let b = &self.blocks[id];
            let mut fold = |l: u32| best = Some(best.map_or(l, |b: u32| b.min(l)));
            match b.kind {
                BlockKind::Barrier { line }
                | BlockKind::LoopHead { line, .. }
                | BlockKind::RankGuard { line, .. } => fold(line),
                _ => {}
            }
            for s in &b.stmts {
                fold(s.line);
            }
            for &s in &b.succ {
                if !visited[s] && !reachable[s] {
                    visited[s] = true;
                    stack.push(s);
                }
            }
        }
        best
    }
}

/// Render a statement back to (normalized) DSL text for CFG dumps.
pub fn stmt_text(s: &Stmt) -> String {
    match &s.kind {
        StmtKind::Meta(op, f) => format!("{} {f}", format!("{op:?}").to_lowercase()),
        StmtKind::Data {
            kind,
            file,
            size,
            count,
            random,
            at,
        } => {
            let verb = match (kind, at) {
                (pioeval_types::IoKind::Write, None) => "write",
                (pioeval_types::IoKind::Read, None) => "read",
                (pioeval_types::IoKind::Write, Some(_)) => "writeat",
                (pioeval_types::IoKind::Read, Some(_)) => "readat",
            };
            let mut out = format!("{verb} {file}");
            if let Some(at) = at {
                out.push_str(&format!(" {at}"));
            }
            out.push_str(&format!(" {size}"));
            if *count != 1 {
                out.push_str(&format!(" x{count}"));
            }
            if *random {
                out.push_str(" random");
            }
            out
        }
        StmtKind::Compute(d) => format!("compute {}ns", d.as_nanos()),
        StmtKind::Barrier => "barrier".into(),
        StmtKind::Repeat(n, _) => format!("repeat {n}"),
        StmtKind::OnRank(r, _) => format!("onrank {r}"),
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

impl ProgramCfg {
    /// Render as Graphviz dot: one cluster per unit, campaign jobs as
    /// edges from a virtual root.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph pioeval_cfg {\n  node [shape=box, fontsize=10];\n");
        if !self.jobs.is_empty() {
            out.push_str("  campaign [shape=doubleoctagon];\n");
        }
        for (ui, unit) in self.units.iter().enumerate() {
            out.push_str(&format!(
                "  subgraph cluster_{ui} {{\n    label=\"{}\";\n",
                escape(&unit.name)
            ));
            for (bi, b) in unit.blocks.iter().enumerate() {
                let label = match &b.kind {
                    BlockKind::Entry => "entry".to_string(),
                    BlockKind::Exit => "exit".to_string(),
                    BlockKind::Join => "join".to_string(),
                    BlockKind::Barrier { line } => format!("barrier (line {line})"),
                    BlockKind::LoopHead { trips, line, .. } => {
                        format!("repeat {trips} (line {line})")
                    }
                    BlockKind::RankGuard { rank, line, .. } => {
                        format!("onrank {rank} (line {line})")
                    }
                    BlockKind::Body => {
                        if b.stmts.is_empty() {
                            String::new()
                        } else {
                            b.stmts
                                .iter()
                                .map(stmt_text)
                                .collect::<Vec<_>>()
                                .join("\\n")
                        }
                    }
                };
                out.push_str(&format!("    u{ui}b{bi} [label=\"{}\"];\n", escape(&label)));
            }
            for (bi, b) in unit.blocks.iter().enumerate() {
                for &s in &b.succ {
                    out.push_str(&format!("    u{ui}b{bi} -> u{ui}b{s};\n"));
                }
            }
            out.push_str("  }\n");
        }
        for (workload, ranks, _) in &self.jobs {
            if let Some(ui) = self.units.iter().position(|u| &u.name == workload) {
                let entry = self.units[ui].entry;
                out.push_str(&format!(
                    "  campaign -> u{ui}b{entry} [label=\"ranks={ranks}\"];\n"
                ));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Render as JSON (schema `pioeval-cfg/1`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"schema\":\"pioeval-cfg/1\",\"units\":[");
        for (ui, unit) in self.units.iter().enumerate() {
            if ui > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"entry\":{},\"exit\":{},\"blocks\":[",
                escape(&unit.name),
                unit.entry,
                unit.exit
            ));
            for (bi, b) in unit.blocks.iter().enumerate() {
                if bi > 0 {
                    out.push(',');
                }
                let (kind, extra) = match &b.kind {
                    BlockKind::Entry => ("entry", String::new()),
                    BlockKind::Exit => ("exit", String::new()),
                    BlockKind::Join => ("join", String::new()),
                    BlockKind::Body => ("body", String::new()),
                    BlockKind::Barrier { line } => ("barrier", format!(",\"line\":{line}")),
                    BlockKind::LoopHead {
                        trips,
                        line,
                        body,
                        follow,
                    } => (
                        "loop",
                        format!(",\"line\":{line},\"trips\":{trips},\"body\":{body},\"follow\":{follow}"),
                    ),
                    BlockKind::RankGuard {
                        rank,
                        line,
                        body,
                        join,
                    } => (
                        "onrank",
                        format!(",\"line\":{line},\"rank\":{rank},\"body\":{body},\"join\":{join}"),
                    ),
                };
                out.push_str(&format!(
                    "{{\"id\":{bi},\"kind\":\"{kind}\"{extra},\"stmts\":["
                ));
                for (si, s) in b.stmts.iter().enumerate() {
                    if si > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"line\":{},\"text\":\"{}\"}}",
                        s.line,
                        escape(&stmt_text(s))
                    ));
                }
                out.push_str(&format!("],\"succ\":{:?}}}", b.succ));
            }
            out.push_str("]}");
        }
        out.push_str("],\"campaign\":[");
        for (ji, (workload, ranks, line)) in self.jobs.iter().enumerate() {
            if ji > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"workload\":\"{}\",\"ranks\":{ranks},\"line\":{line}}}",
                escape(workload)
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_workloads::dsl::parse_dsl_ast;

    fn cfg(src: &str) -> Cfg {
        lower_workload("main", &parse_dsl_ast(src, 0).unwrap())
    }

    #[test]
    fn straight_line_is_one_body_block() {
        let c = cfg("file a shared\ncreate a\nwrite a 1m\nclose a");
        // entry -> body(3 stmts) -> exit
        let bodies: Vec<&Block> = c
            .blocks
            .iter()
            .filter(|b| b.kind == BlockKind::Body && !b.stmts.is_empty())
            .collect();
        assert_eq!(bodies.len(), 1);
        assert_eq!(bodies[0].stmts.len(), 3);
        assert!(c.reachable().iter().all(|&r| r));
    }

    #[test]
    fn barrier_splits_blocks() {
        let c = cfg("file a shared\ncreate a\nbarrier\nclose a");
        assert!(c
            .blocks
            .iter()
            .any(|b| matches!(b.kind, BlockKind::Barrier { line: 3 })));
        let bodies = c
            .blocks
            .iter()
            .filter(|b| b.kind == BlockKind::Body && !b.stmts.is_empty())
            .count();
        assert_eq!(bodies, 2);
    }

    #[test]
    fn repeat_lowers_to_loop_head_with_back_edge() {
        let c = cfg("file a shared\ncreate a\nrepeat 3\nwrite a 1m\nend\nclose a");
        let (id, body, follow) = c
            .blocks
            .iter()
            .enumerate()
            .find_map(|(i, b)| match b.kind {
                BlockKind::LoopHead {
                    trips: 3,
                    body,
                    follow,
                    ..
                } => Some((i, body, follow)),
                _ => None,
            })
            .expect("loop head");
        assert!(c.blocks[id].succ.contains(&body));
        assert!(c.blocks[id].succ.contains(&follow));
        // The body region loops back to the head.
        assert!(c.blocks[id].pred.len() >= 2, "back edge missing");
        assert!(c.reachable()[body]);
    }

    #[test]
    fn repeat_zero_body_is_unreachable() {
        let c = cfg("file a shared\ncreate a\nrepeat 0\nwrite a 1m\nbarrier\nend\nclose a");
        let regions = c.unreachable_regions();
        assert_eq!(regions.len(), 1, "{regions:?}");
        assert_eq!(regions[0].1, 4); // first dead stmt: the write on line 4
    }

    #[test]
    fn onrank_lowers_to_guard_and_join() {
        let c = cfg("file a perrank\ncreate a\nonrank 2\nwrite a 1m\nend\nclose a");
        let (body, join) = c
            .blocks
            .iter()
            .find_map(|b| match b.kind {
                BlockKind::RankGuard {
                    rank: 2,
                    body,
                    join,
                    ..
                } => Some((body, join)),
                _ => None,
            })
            .expect("rank guard");
        assert_eq!(c.blocks[body].guards, vec![2]);
        assert!(c.blocks[join].pred.len() == 2, "taken+skip paths");
        assert!(c.reachable()[body]);
    }

    #[test]
    fn dumps_are_well_formed() {
        let src = "
            workload w
              file f perrank
              create f
              repeat 2
                write f 1m
              end
              close f
            end
            campaign
              job w ranks 4
              job w ranks 2
            end
        ";
        let p = pioeval_workloads::dsl::parse_program_ast(src, 0).unwrap();
        let pc = lower_program(&p);
        let dot = pc.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("ranks=4"));
        assert!(dot.contains("repeat 2"));
        let json = pc.to_json();
        assert!(json.contains("\"schema\":\"pioeval-cfg/1\""));
        assert!(json.contains("\"kind\":\"loop\""));
        assert!(json.contains("\"ranks\":4"));
        // Every succ id in range.
        for u in &pc.units {
            for b in &u.blocks {
                for &s in &b.succ {
                    assert!(s < u.blocks.len());
                }
            }
        }
    }
}
