//! Cluster configuration analysis.
//!
//! Mirrors the hard invariants of `ClusterConfig::validate` as
//! diagnostics (so every problem is reported at once instead of
//! failing on the first), and adds softer checks the simulator
//! tolerates but that almost always indicate a configuration mistake:
//! stripe counts wider than the cluster, burst buffers smaller than a
//! single stripe, and lookahead settings that stall the conservative
//! parallel engine.

use crate::diag::{Code, LintReport};
use pioeval_objstore::{ObjStoreConfig, Placement};
use pioeval_pfs::ClusterConfig;
use pioeval_types::SimDuration;

/// Lint a cluster configuration against the engine `lookahead` it will
/// run under (`SimConfig::lookahead`; the `pioeval` CLI passes its
/// engine default).
pub fn lint_config(cfg: &ClusterConfig, lookahead: SimDuration) -> LintReport {
    let mut report = LintReport::new();

    // Structural emptiness: a cluster with no clients or no storage
    // cannot host a run at all.
    for (field, value) in [
        ("num_clients", cfg.num_clients),
        ("num_mds", cfg.num_mds),
        ("num_oss", cfg.num_oss),
        ("osts_per_oss", cfg.osts_per_oss),
    ] {
        if value == 0 {
            report.error(Code::StructuralZero, None, format!("{field} is 0"));
        }
    }
    if cfg.max_rpc_size == 0 {
        report.error(
            Code::StructuralZero,
            None,
            "max_rpc_size is 0: clients cannot form data RPCs",
        );
    }
    if cfg.num_ionodes > 0 && cfg.bb_drain_streams == 0 {
        report.error(
            Code::StructuralZero,
            None,
            "bb_drain_streams is 0: burst buffers would fill and never drain",
        );
    }
    for &(ost, _) in &cfg.ost_overrides {
        if ost as usize >= cfg.total_osts() {
            report.error(
                Code::StructuralZero,
                None,
                format!(
                    "ost override {ost} out of range (cluster has {} OSTs)",
                    cfg.total_osts()
                ),
            );
        }
    }

    // Layout sanity.
    if cfg.layout.stripe_size == 0 {
        report.error(Code::ZeroStripe, None, "layout.stripe_size is 0");
    }
    if cfg.layout.stripe_count == 0 {
        report.error(Code::ZeroStripe, None, "layout.stripe_count is 0");
    }
    let total = cfg.total_osts();
    if total > 0 && cfg.layout.stripe_count as usize > total {
        report.warn(
            Code::StripeOverOsts,
            None,
            format!(
                "layout.stripe_count {} exceeds the {} OSTs in the cluster \
                 (the MDS clamps it; widen the cluster or narrow the stripe)",
                cfg.layout.stripe_count, total
            ),
        );
    }

    // Fabrics.
    for (name, f) in [
        ("compute_fabric", &cfg.compute_fabric),
        ("storage_fabric", &cfg.storage_fabric),
    ] {
        if f.link_bw == 0 {
            report.error(
                Code::ZeroFabricBw,
                None,
                format!("{name}.link_bw is 0: transfers would never complete"),
            );
        }
        if f.latency < lookahead {
            report.error(
                Code::BadLookahead,
                None,
                format!(
                    "{name}.latency {} is below the engine lookahead {} — \
                     the conservative engine cannot schedule such messages",
                    f.latency, lookahead
                ),
            );
        }
    }
    if lookahead.is_zero() {
        report.error(
            Code::BadLookahead,
            None,
            "engine lookahead is 0: the conservative parallel engine's \
             synchronization windows degenerate and the run stalls",
        );
    }

    // Devices.
    for (name, d) in [
        ("ost_device", &cfg.ost_device),
        ("bb_device", &cfg.bb_device),
    ] {
        if d.read_bw == 0 || d.write_bw == 0 {
            report.error(
                Code::ZeroDeviceBw,
                None,
                format!("{name} has zero read or write bandwidth"),
            );
        }
    }
    for &(ost, d) in &cfg.ost_overrides {
        if d.read_bw == 0 || d.write_bw == 0 {
            report.error(
                Code::ZeroDeviceBw,
                None,
                format!("ost override {ost} has zero read or write bandwidth"),
            );
        }
    }

    // Burst-buffer capacity: an I/O node that cannot hold one stripe
    // thrashes on every absorb/drain cycle.
    if cfg.num_ionodes > 0 && cfg.layout.stripe_size > 0 && cfg.bb_capacity < cfg.layout.stripe_size
    {
        report.warn(
            Code::BurstBufferTooSmall,
            None,
            format!(
                "bb_capacity {} is smaller than one stripe ({}): every \
                 absorbed write spills straight through to the OSTs",
                cfg.bb_capacity, cfg.layout.stripe_size
            ),
        );
    }

    report.sort();
    report
}

/// Lint an object-store configuration (the `PIO05x` family), mirroring
/// `ObjStoreConfig::validate` as diagnostics so every problem is
/// reported at once, plus the shared fabric/device/lookahead checks.
pub fn lint_objstore_config(cfg: &ObjStoreConfig, lookahead: SimDuration) -> LintReport {
    let mut report = LintReport::new();

    for (field, value) in [
        ("num_clients", cfg.num_clients),
        ("num_shards", cfg.num_shards),
        ("num_storage", cfg.num_storage),
        ("devices_per_node", cfg.devices_per_node),
        ("gateway.slots", cfg.gateway.slots),
    ] {
        if value == 0 {
            report.error(Code::StructuralZero, None, format!("{field} is 0"));
        }
    }
    if cfg.gateway.proc_bw == 0 {
        report.error(
            Code::StructuralZero,
            None,
            "gateway.proc_bw is 0: data requests would never finish service",
        );
    }
    if cfg.num_gateways == 0 {
        report.error(
            Code::ObjNoGateways,
            None,
            "num_gateways is 0: every object request needs a gateway to enter the store",
        );
    }
    if cfg.part_size == 0 {
        report.error(
            Code::ObjZeroPartSize,
            None,
            "part_size is 0: multipart splitting would never terminate",
        );
    }

    // Placement vs. cluster width, for the default and every override.
    let mut placements = vec![("default placement".to_string(), cfg.placement)];
    for &(bucket, p) in &cfg.bucket_placements {
        if bucket >= cfg.num_buckets {
            report.error(
                Code::StructuralZero,
                None,
                format!(
                    "bucket override {bucket} out of range (store has {} buckets)",
                    cfg.num_buckets
                ),
            );
        }
        placements.push((format!("bucket {bucket} placement"), p));
    }
    for (name, p) in placements {
        match p {
            Placement::Replicate(n) => {
                if n == 0 {
                    report.error(
                        Code::ObjReplicationExceedsNodes,
                        None,
                        format!("{name}: replication factor is 0"),
                    );
                } else if n as usize > cfg.num_storage {
                    report.error(
                        Code::ObjReplicationExceedsNodes,
                        None,
                        format!(
                            "{name}: replication factor {n} exceeds the {} storage nodes \
                             (replicas must land on distinct nodes)",
                            cfg.num_storage
                        ),
                    );
                }
            }
            Placement::Erasure { data, parity } => {
                if data == 0 {
                    report.error(
                        Code::ObjErasureExceedsNodes,
                        None,
                        format!("{name}: erasure data width is 0"),
                    );
                } else if (data + parity) as usize > cfg.num_storage {
                    report.error(
                        Code::ObjErasureExceedsNodes,
                        None,
                        format!(
                            "{name}: erasure width {}+{} exceeds the {} storage nodes \
                             (shards must land on distinct nodes)",
                            data, parity, cfg.num_storage
                        ),
                    );
                }
            }
        }
    }

    // Fabrics and devices, same checks as the PFS path.
    for (name, f) in [
        ("compute_fabric", &cfg.compute_fabric),
        ("storage_fabric", &cfg.storage_fabric),
    ] {
        if f.link_bw == 0 {
            report.error(
                Code::ZeroFabricBw,
                None,
                format!("{name}.link_bw is 0: transfers would never complete"),
            );
        }
        if f.latency < lookahead {
            report.error(
                Code::BadLookahead,
                None,
                format!(
                    "{name}.latency {} is below the engine lookahead {} — \
                     the conservative engine cannot schedule such messages",
                    f.latency, lookahead
                ),
            );
        }
    }
    if lookahead.is_zero() {
        report.error(
            Code::BadLookahead,
            None,
            "engine lookahead is 0: the conservative parallel engine's \
             synchronization windows degenerate and the run stalls",
        );
    }
    if cfg.device.read_bw == 0 || cfg.device.write_bw == 0 {
        report.error(
            Code::ZeroDeviceBw,
            None,
            "storage-node device has zero read or write bandwidth",
        );
    }

    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_pfs::ClusterConfig;
    use pioeval_types::bytes;

    const LOOKAHEAD: SimDuration = SimDuration::from_micros(1);

    #[test]
    fn default_config_is_clean() {
        let r = lint_config(&ClusterConfig::default(), LOOKAHEAD);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(r.warning_count(), 0, "{:?}", r.diagnostics);
    }

    #[test]
    fn structural_zeros_pio036() {
        let cfg = ClusterConfig {
            num_clients: 0,
            num_oss: 0,
            ..ClusterConfig::default()
        };
        let r = lint_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::StructuralZero));
        // Both problems reported, not just the first.
        assert!(r.error_count() >= 2, "{:?}", r.diagnostics);
    }

    #[test]
    fn zero_stripe_pio031() {
        let mut cfg = ClusterConfig::default();
        cfg.layout.stripe_size = 0;
        let r = lint_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::ZeroStripe));
    }

    #[test]
    fn stripe_over_osts_pio030_is_warning() {
        let mut cfg = ClusterConfig::default();
        cfg.layout.stripe_count = 64; // default cluster has 8 OSTs
        let r = lint_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::StripeOverOsts));
        assert!(r.is_clean());
    }

    #[test]
    fn zero_fabric_bandwidth_pio032() {
        let mut cfg = ClusterConfig::default();
        cfg.storage_fabric.link_bw = 0;
        let r = lint_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::ZeroFabricBw));
    }

    #[test]
    fn zero_device_bandwidth_pio033() {
        let mut cfg = ClusterConfig::default();
        cfg.ost_device.write_bw = 0;
        let r = lint_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::ZeroDeviceBw));
    }

    #[test]
    fn lookahead_problems_pio034() {
        // Latency below lookahead.
        let r = lint_config(&ClusterConfig::default(), SimDuration::from_micros(5));
        assert!(r.has(Code::BadLookahead), "{:?}", r.diagnostics);
        // Zero lookahead stalls the conservative engine.
        let r = lint_config(&ClusterConfig::default(), SimDuration::ZERO);
        assert!(r.has(Code::BadLookahead), "{:?}", r.diagnostics);
    }

    #[test]
    fn burst_buffer_smaller_than_stripe_pio035() {
        let mut cfg = ClusterConfig {
            num_ionodes: 2,
            bb_capacity: bytes::kib(64),
            ..ClusterConfig::default()
        };
        cfg.layout.stripe_size = bytes::mib(1);
        let r = lint_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::BurstBufferTooSmall));
        assert!(r.is_clean()); // warning only
                               // Without burst buffers the capacity is irrelevant.
        let cfg2 = ClusterConfig {
            num_ionodes: 0,
            ..cfg
        };
        let r = lint_config(&cfg2, LOOKAHEAD);
        assert!(!r.has(Code::BurstBufferTooSmall));
    }

    #[test]
    fn override_out_of_range_pio036() {
        let cfg = ClusterConfig {
            ost_overrides: vec![(99, pioeval_pfs::DeviceConfig::nvme())],
            ..ClusterConfig::default()
        };
        let r = lint_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::StructuralZero));
    }

    #[test]
    fn default_objstore_config_is_clean() {
        let r = lint_objstore_config(&ObjStoreConfig::default(), LOOKAHEAD);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(r.warning_count(), 0, "{:?}", r.diagnostics);
    }

    #[test]
    fn replication_over_nodes_pio050() {
        let cfg = ObjStoreConfig {
            placement: Placement::Replicate(9), // default store has 4 nodes
            ..ObjStoreConfig::default()
        };
        let r = lint_objstore_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::ObjReplicationExceedsNodes));
        assert!(!r.is_clean());
        // Zero replication is the same family.
        let cfg = ObjStoreConfig {
            placement: Placement::Replicate(0),
            ..ObjStoreConfig::default()
        };
        assert!(lint_objstore_config(&cfg, LOOKAHEAD).has(Code::ObjReplicationExceedsNodes));
    }

    #[test]
    fn erasure_over_nodes_pio053() {
        let cfg = ObjStoreConfig {
            bucket_placements: vec![(0, Placement::Erasure { data: 4, parity: 2 })],
            ..ObjStoreConfig::default()
        };
        let r = lint_objstore_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::ObjErasureExceedsNodes));
        // The message names the offending bucket.
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == Code::ObjErasureExceedsNodes)
            .unwrap();
        assert!(d.message.contains("bucket 0"), "{}", d.message);
    }

    #[test]
    fn zero_part_size_pio051_and_no_gateways_pio052() {
        let cfg = ObjStoreConfig {
            part_size: 0,
            num_gateways: 0,
            ..ObjStoreConfig::default()
        };
        let r = lint_objstore_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::ObjZeroPartSize));
        assert!(r.has(Code::ObjNoGateways));
        // Both reported at once.
        assert!(r.error_count() >= 2, "{:?}", r.diagnostics);
    }

    #[test]
    fn objstore_shares_fabric_and_lookahead_checks() {
        let mut cfg = ObjStoreConfig::default();
        cfg.storage_fabric.link_bw = 0;
        cfg.device.write_bw = 0;
        let r = lint_objstore_config(&cfg, SimDuration::from_secs(1));
        assert!(r.has(Code::ZeroFabricBw));
        assert!(r.has(Code::ZeroDeviceBw));
        assert!(r.has(Code::BadLookahead));
    }

    #[test]
    fn objstore_bucket_override_out_of_range() {
        let cfg = ObjStoreConfig {
            num_buckets: 2,
            bucket_placements: vec![(7, Placement::Replicate(1))],
            ..ObjStoreConfig::default()
        };
        let r = lint_objstore_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::StructuralZero));
    }
}
