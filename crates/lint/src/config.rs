//! Cluster configuration analysis.
//!
//! Mirrors the hard invariants of `ClusterConfig::validate` as
//! diagnostics (so every problem is reported at once instead of
//! failing on the first), and adds softer checks the simulator
//! tolerates but that almost always indicate a configuration mistake:
//! stripe counts wider than the cluster, burst buffers smaller than a
//! single stripe, and lookahead settings that stall the conservative
//! parallel engine.

use crate::diag::{Code, LintReport};
use pioeval_objstore::{ObjStoreConfig, Placement};
use pioeval_pfs::ClusterConfig;
use pioeval_resil::{AckMode, FailureKind, FailureSchedule};
use pioeval_types::SimDuration;

/// Lint a cluster configuration against the engine `lookahead` it will
/// run under (`SimConfig::lookahead`; the `pioeval` CLI passes its
/// engine default).
pub fn lint_config(cfg: &ClusterConfig, lookahead: SimDuration) -> LintReport {
    let mut report = LintReport::new();

    // Structural emptiness: a cluster with no clients or no storage
    // cannot host a run at all.
    for (field, value) in [
        ("num_clients", cfg.num_clients),
        ("num_mds", cfg.num_mds),
        ("num_oss", cfg.num_oss),
        ("osts_per_oss", cfg.osts_per_oss),
    ] {
        if value == 0 {
            report.error(Code::StructuralZero, None, format!("{field} is 0"));
        }
    }
    if cfg.max_rpc_size == 0 {
        report.error(
            Code::StructuralZero,
            None,
            "max_rpc_size is 0: clients cannot form data RPCs",
        );
    }
    if cfg.num_ionodes > 0 && cfg.bb_drain_streams == 0 {
        report.error(
            Code::StructuralZero,
            None,
            "bb_drain_streams is 0: burst buffers would fill and never drain",
        );
    }
    for &(ost, _) in &cfg.ost_overrides {
        if ost as usize >= cfg.total_osts() {
            report.error(
                Code::StructuralZero,
                None,
                format!(
                    "ost override {ost} out of range (cluster has {} OSTs)",
                    cfg.total_osts()
                ),
            );
        }
    }

    // Layout sanity.
    if cfg.layout.stripe_size == 0 {
        report.error(Code::ZeroStripe, None, "layout.stripe_size is 0");
    }
    if cfg.layout.stripe_count == 0 {
        report.error(Code::ZeroStripe, None, "layout.stripe_count is 0");
    }
    let total = cfg.total_osts();
    if total > 0 && cfg.layout.stripe_count as usize > total {
        report.warn(
            Code::StripeOverOsts,
            None,
            format!(
                "layout.stripe_count {} exceeds the {} OSTs in the cluster \
                 (the MDS clamps it; widen the cluster or narrow the stripe)",
                cfg.layout.stripe_count, total
            ),
        );
    }

    // Fabrics.
    for (name, f) in [
        ("compute_fabric", &cfg.compute_fabric),
        ("storage_fabric", &cfg.storage_fabric),
    ] {
        if f.link_bw == 0 {
            report.error(
                Code::ZeroFabricBw,
                None,
                format!("{name}.link_bw is 0: transfers would never complete"),
            );
        }
        if f.latency < lookahead {
            report.error(
                Code::BadLookahead,
                None,
                format!(
                    "{name}.latency {} is below the engine lookahead {} — \
                     the conservative engine cannot schedule such messages",
                    f.latency, lookahead
                ),
            );
        }
    }
    if lookahead.is_zero() {
        report.error(
            Code::BadLookahead,
            None,
            "engine lookahead is 0: the conservative parallel engine's \
             synchronization windows degenerate and the run stalls",
        );
    }

    // Devices.
    for (name, d) in [
        ("ost_device", &cfg.ost_device),
        ("bb_device", &cfg.bb_device),
    ] {
        if d.read_bw == 0 || d.write_bw == 0 {
            report.error(
                Code::ZeroDeviceBw,
                None,
                format!("{name} has zero read or write bandwidth"),
            );
        }
    }
    for &(ost, d) in &cfg.ost_overrides {
        if d.read_bw == 0 || d.write_bw == 0 {
            report.error(
                Code::ZeroDeviceBw,
                None,
                format!("ost override {ost} has zero read or write bandwidth"),
            );
        }
    }

    // Resilience tier (PIO07x family).
    if let Some(resil) = &cfg.resil {
        // PIO070: the policy waits for a replica ACK that can never
        // arrive — the run behaves exactly like local_only while the
        // report claims a stronger policy.
        if resil.ack_mode.waits_for_replica() {
            if resil.replication < 2 {
                report.warn(
                    Code::ResilAckReplicaMismatch,
                    None,
                    format!(
                        "ack mode `{}` waits for a replica but replication is {}: \
                         writes ACK exactly as local_only would",
                        resil.ack_mode.as_str(),
                        resil.replication
                    ),
                );
            }
            if cfg.num_ionodes < 2 {
                report.warn(
                    Code::ResilAckReplicaMismatch,
                    None,
                    format!(
                        "ack mode `{}` needs a peer I/O node to replicate to but the \
                         cluster has {}",
                        resil.ack_mode.as_str(),
                        cfg.num_ionodes
                    ),
                );
            }
        }
        // PIO071: the geographic leg reads its cost from the site matrix.
        if resil.ack_mode == AckMode::Geographic {
            if resil.geo.sites.len() < 2 {
                report.error(
                    Code::ResilGeoMatrixInvalid,
                    None,
                    format!(
                        "geographic ack mode declares {} site(s); the cross-site \
                         replica leg needs at least 2",
                        resil.geo.sites.len()
                    ),
                );
            } else if !resil.geo.is_square() {
                report.error(
                    Code::ResilGeoMatrixInvalid,
                    None,
                    format!(
                        "geo latency matrix is not {n}x{n} for the {n} declared sites",
                        n = resil.geo.sites.len()
                    ),
                );
            } else if !resil.geo.is_symmetric() {
                report.warn(
                    Code::ResilGeoMatrixInvalid,
                    None,
                    "geo latency matrix is asymmetric: the replica leg uses the \
                     maximum cross-site entry",
                );
            }
        }
        lint_failure_schedule(&resil.failures, &mut report);
        // PIO073: targets and kinds the PFS backend cannot express.
        for ev in &resil.failures.scripted {
            match ev.kind {
                FailureKind::IoNodeLoss => {
                    if ev.target as usize >= cfg.num_ionodes {
                        report.error(
                            Code::ResilFailureTargetMissing,
                            None,
                            format!(
                                "failure targets I/O node {} but the cluster has {} \
                                 (the event would be silently skipped)",
                                ev.target, cfg.num_ionodes
                            ),
                        );
                    }
                }
                FailureKind::DegradedRead | FailureKind::GatewayFailover => {
                    report.warn(
                        Code::ResilFailureTargetMissing,
                        None,
                        format!(
                            "failure kind `{}` has no effect on the PFS backend \
                             (only I/O-node loss is injected there)",
                            ev.kind.as_str()
                        ),
                    );
                }
            }
        }
        if let Some(mtbf) = &resil.failures.mtbf {
            if mtbf.kind == FailureKind::IoNodeLoss && cfg.num_ionodes == 0 {
                report.error(
                    Code::ResilFailureTargetMissing,
                    None,
                    "MTBF schedule draws I/O-node failures but the cluster has no \
                     I/O nodes",
                );
            }
        }
    }

    // Burst-buffer capacity: an I/O node that cannot hold one stripe
    // thrashes on every absorb/drain cycle.
    if cfg.num_ionodes > 0 && cfg.layout.stripe_size > 0 && cfg.bb_capacity < cfg.layout.stripe_size
    {
        report.warn(
            Code::BurstBufferTooSmall,
            None,
            format!(
                "bb_capacity {} is smaller than one stripe ({}): every \
                 absorbed write spills straight through to the OSTs",
                cfg.bb_capacity, cfg.layout.stripe_size
            ),
        );
    }

    report.sort();
    report
}

/// Lint an object-store configuration (the `PIO05x` family), mirroring
/// `ObjStoreConfig::validate` as diagnostics so every problem is
/// reported at once, plus the shared fabric/device/lookahead checks.
pub fn lint_objstore_config(cfg: &ObjStoreConfig, lookahead: SimDuration) -> LintReport {
    let mut report = LintReport::new();

    for (field, value) in [
        ("num_clients", cfg.num_clients),
        ("num_shards", cfg.num_shards),
        ("num_storage", cfg.num_storage),
        ("devices_per_node", cfg.devices_per_node),
        ("gateway.slots", cfg.gateway.slots),
    ] {
        if value == 0 {
            report.error(Code::StructuralZero, None, format!("{field} is 0"));
        }
    }
    if cfg.gateway.proc_bw == 0 {
        report.error(
            Code::StructuralZero,
            None,
            "gateway.proc_bw is 0: data requests would never finish service",
        );
    }
    if cfg.num_gateways == 0 {
        report.error(
            Code::ObjNoGateways,
            None,
            "num_gateways is 0: every object request needs a gateway to enter the store",
        );
    }
    if cfg.part_size == 0 {
        report.error(
            Code::ObjZeroPartSize,
            None,
            "part_size is 0: multipart splitting would never terminate",
        );
    }

    // Placement vs. cluster width, for the default and every override.
    let mut placements = vec![("default placement".to_string(), cfg.placement)];
    for &(bucket, p) in &cfg.bucket_placements {
        if bucket >= cfg.num_buckets {
            report.error(
                Code::StructuralZero,
                None,
                format!(
                    "bucket override {bucket} out of range (store has {} buckets)",
                    cfg.num_buckets
                ),
            );
        }
        placements.push((format!("bucket {bucket} placement"), p));
    }
    for (name, p) in placements {
        match p {
            Placement::Replicate(n) => {
                if n == 0 {
                    report.error(
                        Code::ObjReplicationExceedsNodes,
                        None,
                        format!("{name}: replication factor is 0"),
                    );
                } else if n as usize > cfg.num_storage {
                    report.error(
                        Code::ObjReplicationExceedsNodes,
                        None,
                        format!(
                            "{name}: replication factor {n} exceeds the {} storage nodes \
                             (replicas must land on distinct nodes)",
                            cfg.num_storage
                        ),
                    );
                }
            }
            Placement::Erasure { data, parity } => {
                if data == 0 {
                    report.error(
                        Code::ObjErasureExceedsNodes,
                        None,
                        format!("{name}: erasure data width is 0"),
                    );
                } else if (data + parity) as usize > cfg.num_storage {
                    report.error(
                        Code::ObjErasureExceedsNodes,
                        None,
                        format!(
                            "{name}: erasure width {}+{} exceeds the {} storage nodes \
                             (shards must land on distinct nodes)",
                            data, parity, cfg.num_storage
                        ),
                    );
                }
            }
        }
    }

    // Fabrics and devices, same checks as the PFS path.
    for (name, f) in [
        ("compute_fabric", &cfg.compute_fabric),
        ("storage_fabric", &cfg.storage_fabric),
    ] {
        if f.link_bw == 0 {
            report.error(
                Code::ZeroFabricBw,
                None,
                format!("{name}.link_bw is 0: transfers would never complete"),
            );
        }
        if f.latency < lookahead {
            report.error(
                Code::BadLookahead,
                None,
                format!(
                    "{name}.latency {} is below the engine lookahead {} — \
                     the conservative engine cannot schedule such messages",
                    f.latency, lookahead
                ),
            );
        }
    }
    if lookahead.is_zero() {
        report.error(
            Code::BadLookahead,
            None,
            "engine lookahead is 0: the conservative parallel engine's \
             synchronization windows degenerate and the run stalls",
        );
    }
    if cfg.device.read_bw == 0 || cfg.device.write_bw == 0 {
        report.error(
            Code::ZeroDeviceBw,
            None,
            "storage-node device has zero read or write bandwidth",
        );
    }

    // Resilience tier (PIO07x family).
    if let Some(resil) = &cfg.resil {
        // PIO070: the object store's durability comes from placement
        // width; the burst-buffer ack policy does not apply.
        if resil.ack_mode != AckMode::LocalOnly {
            report.warn(
                Code::ResilAckReplicaMismatch,
                None,
                format!(
                    "ack mode `{}` has no effect on the object-store backend; \
                     durability there comes from placement width",
                    resil.ack_mode.as_str()
                ),
            );
        }
        lint_failure_schedule(&resil.failures, &mut report);
        // PIO073: node/read failures target storage nodes, gateway
        // failures target gateways.
        for ev in &resil.failures.scripted {
            let (pool, what) = match ev.kind {
                FailureKind::IoNodeLoss | FailureKind::DegradedRead => {
                    (cfg.num_storage, "storage node")
                }
                FailureKind::GatewayFailover => (cfg.num_gateways, "gateway"),
            };
            if ev.target as usize >= pool {
                report.error(
                    Code::ResilFailureTargetMissing,
                    None,
                    format!(
                        "failure targets {what} {} but the store has {pool} \
                         (the event would be silently skipped)",
                        ev.target
                    ),
                );
            }
        }
    }

    report.sort();
    report
}

/// Shared PIO072 checks on a failure schedule: scripted events past the
/// stated horizon (warning — they still fire, but the horizon suggests
/// the author expects them inside it), and MTBF sampling with no
/// horizon to draw from (error — the schedule can never produce an
/// event).
fn lint_failure_schedule(failures: &FailureSchedule, report: &mut LintReport) {
    if !failures.horizon.is_zero() {
        for ev in &failures.scripted {
            if ev.at > failures.horizon {
                report.warn(
                    Code::ResilFailureBeyondHorizon,
                    None,
                    format!(
                        "scripted {} failure at {} lies beyond the schedule horizon {}",
                        ev.kind.as_str(),
                        ev.at,
                        failures.horizon
                    ),
                );
            }
        }
    }
    if failures.mtbf.is_some() && failures.horizon.is_zero() {
        report.error(
            Code::ResilFailureBeyondHorizon,
            None,
            "MTBF schedule with a zero horizon can never draw a failure",
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_pfs::ClusterConfig;
    use pioeval_types::bytes;

    const LOOKAHEAD: SimDuration = SimDuration::from_micros(1);

    #[test]
    fn default_config_is_clean() {
        let r = lint_config(&ClusterConfig::default(), LOOKAHEAD);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(r.warning_count(), 0, "{:?}", r.diagnostics);
    }

    #[test]
    fn structural_zeros_pio036() {
        let cfg = ClusterConfig {
            num_clients: 0,
            num_oss: 0,
            ..ClusterConfig::default()
        };
        let r = lint_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::StructuralZero));
        // Both problems reported, not just the first.
        assert!(r.error_count() >= 2, "{:?}", r.diagnostics);
    }

    #[test]
    fn zero_stripe_pio031() {
        let mut cfg = ClusterConfig::default();
        cfg.layout.stripe_size = 0;
        let r = lint_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::ZeroStripe));
    }

    #[test]
    fn stripe_over_osts_pio030_is_warning() {
        let mut cfg = ClusterConfig::default();
        cfg.layout.stripe_count = 64; // default cluster has 8 OSTs
        let r = lint_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::StripeOverOsts));
        assert!(r.is_clean());
    }

    #[test]
    fn zero_fabric_bandwidth_pio032() {
        let mut cfg = ClusterConfig::default();
        cfg.storage_fabric.link_bw = 0;
        let r = lint_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::ZeroFabricBw));
    }

    #[test]
    fn zero_device_bandwidth_pio033() {
        let mut cfg = ClusterConfig::default();
        cfg.ost_device.write_bw = 0;
        let r = lint_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::ZeroDeviceBw));
    }

    #[test]
    fn lookahead_problems_pio034() {
        // Latency below lookahead.
        let r = lint_config(&ClusterConfig::default(), SimDuration::from_micros(5));
        assert!(r.has(Code::BadLookahead), "{:?}", r.diagnostics);
        // Zero lookahead stalls the conservative engine.
        let r = lint_config(&ClusterConfig::default(), SimDuration::ZERO);
        assert!(r.has(Code::BadLookahead), "{:?}", r.diagnostics);
    }

    #[test]
    fn burst_buffer_smaller_than_stripe_pio035() {
        let mut cfg = ClusterConfig {
            num_ionodes: 2,
            bb_capacity: bytes::kib(64),
            ..ClusterConfig::default()
        };
        cfg.layout.stripe_size = bytes::mib(1);
        let r = lint_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::BurstBufferTooSmall));
        assert!(r.is_clean()); // warning only
                               // Without burst buffers the capacity is irrelevant.
        let cfg2 = ClusterConfig {
            num_ionodes: 0,
            ..cfg
        };
        let r = lint_config(&cfg2, LOOKAHEAD);
        assert!(!r.has(Code::BurstBufferTooSmall));
    }

    #[test]
    fn override_out_of_range_pio036() {
        let cfg = ClusterConfig {
            ost_overrides: vec![(99, pioeval_pfs::DeviceConfig::nvme())],
            ..ClusterConfig::default()
        };
        let r = lint_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::StructuralZero));
    }

    #[test]
    fn default_objstore_config_is_clean() {
        let r = lint_objstore_config(&ObjStoreConfig::default(), LOOKAHEAD);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(r.warning_count(), 0, "{:?}", r.diagnostics);
    }

    #[test]
    fn replication_over_nodes_pio050() {
        let cfg = ObjStoreConfig {
            placement: Placement::Replicate(9), // default store has 4 nodes
            ..ObjStoreConfig::default()
        };
        let r = lint_objstore_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::ObjReplicationExceedsNodes));
        assert!(!r.is_clean());
        // Zero replication is the same family.
        let cfg = ObjStoreConfig {
            placement: Placement::Replicate(0),
            ..ObjStoreConfig::default()
        };
        assert!(lint_objstore_config(&cfg, LOOKAHEAD).has(Code::ObjReplicationExceedsNodes));
    }

    #[test]
    fn erasure_over_nodes_pio053() {
        let cfg = ObjStoreConfig {
            bucket_placements: vec![(0, Placement::Erasure { data: 4, parity: 2 })],
            ..ObjStoreConfig::default()
        };
        let r = lint_objstore_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::ObjErasureExceedsNodes));
        // The message names the offending bucket.
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == Code::ObjErasureExceedsNodes)
            .unwrap();
        assert!(d.message.contains("bucket 0"), "{}", d.message);
    }

    #[test]
    fn zero_part_size_pio051_and_no_gateways_pio052() {
        let cfg = ObjStoreConfig {
            part_size: 0,
            num_gateways: 0,
            ..ObjStoreConfig::default()
        };
        let r = lint_objstore_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::ObjZeroPartSize));
        assert!(r.has(Code::ObjNoGateways));
        // Both reported at once.
        assert!(r.error_count() >= 2, "{:?}", r.diagnostics);
    }

    #[test]
    fn objstore_shares_fabric_and_lookahead_checks() {
        let mut cfg = ObjStoreConfig::default();
        cfg.storage_fabric.link_bw = 0;
        cfg.device.write_bw = 0;
        let r = lint_objstore_config(&cfg, SimDuration::from_secs(1));
        assert!(r.has(Code::ZeroFabricBw));
        assert!(r.has(Code::ZeroDeviceBw));
        assert!(r.has(Code::BadLookahead));
    }

    fn resil(ack_mode: AckMode) -> pioeval_resil::ResilConfig {
        pioeval_resil::ResilConfig {
            ack_mode,
            ..pioeval_resil::ResilConfig::default()
        }
    }

    #[test]
    fn ack_replica_mismatch_pio070_is_warning() {
        // Waiting for a replica with replication 1 / a single I/O node.
        let cfg = ClusterConfig {
            num_ionodes: 1,
            resil: Some(pioeval_resil::ResilConfig {
                replication: 1,
                ..resil(AckMode::LocalPlusOne)
            }),
            ..ClusterConfig::default()
        };
        let r = lint_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::ResilAckReplicaMismatch));
        assert!(r.is_clean()); // warning only
        assert_eq!(r.warning_count(), 2, "{:?}", r.diagnostics);
        // A well-replicated pair is clean.
        let ok = ClusterConfig {
            num_ionodes: 2,
            resil: Some(pioeval_resil::ResilConfig {
                replication: 2,
                ..resil(AckMode::LocalPlusOne)
            }),
            ..ClusterConfig::default()
        };
        assert!(!lint_config(&ok, LOOKAHEAD).has(Code::ResilAckReplicaMismatch));
        // On the object store the ack mode is inert whatever its value.
        let obj = ObjStoreConfig {
            resil: Some(resil(AckMode::Geographic)),
            ..ObjStoreConfig::default()
        };
        let r = lint_objstore_config(&obj, LOOKAHEAD);
        assert!(r.has(Code::ResilAckReplicaMismatch));
        assert!(r.is_clean());
    }

    #[test]
    fn geo_matrix_problems_pio071() {
        // One site cannot stretch anywhere: error.
        let geo = pioeval_resil::GeoProfile {
            sites: vec!["local".into()],
            latency_us: vec![vec![500]],
            ..pioeval_resil::GeoProfile::default()
        };
        let cfg = ClusterConfig {
            num_ionodes: 2,
            resil: Some(pioeval_resil::ResilConfig {
                replication: 2,
                geo,
                ..resil(AckMode::Geographic)
            }),
            ..ClusterConfig::default()
        };
        let r = lint_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::ResilGeoMatrixInvalid));
        assert!(!r.is_clean());
        // Asymmetric matrix: warning.
        let geo = pioeval_resil::GeoProfile {
            sites: vec!["a".into(), "b".into()],
            latency_us: vec![vec![500, 250_000], vec![100_000, 500]],
            ..pioeval_resil::GeoProfile::default()
        };
        let cfg = ClusterConfig {
            num_ionodes: 2,
            resil: Some(pioeval_resil::ResilConfig {
                replication: 2,
                geo,
                ..resil(AckMode::Geographic)
            }),
            ..ClusterConfig::default()
        };
        let r = lint_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::ResilGeoMatrixInvalid));
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn failure_beyond_horizon_pio072() {
        use pioeval_resil::{FailureEvent, MtbfSchedule};
        let mut cfg = ClusterConfig {
            num_ionodes: 2,
            resil: Some(resil(AckMode::LocalOnly)),
            ..ClusterConfig::default()
        };
        let failures = &mut cfg.resil.as_mut().unwrap().failures;
        failures.horizon = SimDuration::from_secs(1);
        failures.scripted.push(FailureEvent {
            kind: FailureKind::IoNodeLoss,
            target: 0,
            at: SimDuration::from_secs(5),
        });
        let r = lint_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::ResilFailureBeyondHorizon));
        assert!(r.is_clean()); // still fires, warning only
                               // MTBF with no horizon can never draw: error.
        let failures = &mut cfg.resil.as_mut().unwrap().failures;
        failures.horizon = SimDuration::ZERO;
        failures.scripted.clear();
        failures.mtbf = Some(MtbfSchedule {
            kind: FailureKind::IoNodeLoss,
            targets: 0,
            mean: SimDuration::from_secs(1),
        });
        let r = lint_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::ResilFailureBeyondHorizon));
        assert!(!r.is_clean());
    }

    #[test]
    fn failure_target_missing_pio073() {
        use pioeval_resil::FailureEvent;
        // PFS: node index past the I/O-node count is an error.
        let mut cfg = ClusterConfig {
            num_ionodes: 2,
            resil: Some(resil(AckMode::LocalOnly)),
            ..ClusterConfig::default()
        };
        cfg.resil
            .as_mut()
            .unwrap()
            .failures
            .scripted
            .push(FailureEvent {
                kind: FailureKind::IoNodeLoss,
                target: 7,
                at: SimDuration::from_millis(1),
            });
        let r = lint_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::ResilFailureTargetMissing));
        assert!(!r.is_clean());
        // PFS: gateway failures are inert there — warning.
        cfg.resil.as_mut().unwrap().failures.scripted = vec![FailureEvent {
            kind: FailureKind::GatewayFailover,
            target: 0,
            at: SimDuration::from_millis(1),
        }];
        let r = lint_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::ResilFailureTargetMissing));
        assert!(r.is_clean());
        // Object store: gateway index checked against the gateway pool.
        let mut obj = ObjStoreConfig {
            resil: Some(resil(AckMode::LocalOnly)),
            ..ObjStoreConfig::default()
        };
        obj.resil.as_mut().unwrap().failures.scripted = vec![FailureEvent {
            kind: FailureKind::GatewayFailover,
            target: 9,
            at: SimDuration::from_millis(1),
        }];
        let r = lint_objstore_config(&obj, LOOKAHEAD);
        assert!(r.has(Code::ResilFailureTargetMissing));
        assert!(!r.is_clean());
        // In-range targets on both backends are clean.
        obj.resil.as_mut().unwrap().failures.scripted = vec![FailureEvent {
            kind: FailureKind::GatewayFailover,
            target: 1,
            at: SimDuration::from_millis(1),
        }];
        assert!(!lint_objstore_config(&obj, LOOKAHEAD).has(Code::ResilFailureTargetMissing));
    }

    #[test]
    fn objstore_bucket_override_out_of_range() {
        let cfg = ObjStoreConfig {
            num_buckets: 2,
            bucket_placements: vec![(7, Placement::Replicate(1))],
            ..ObjStoreConfig::default()
        };
        let r = lint_objstore_config(&cfg, LOOKAHEAD);
        assert!(r.has(Code::StructuralZero));
    }
}
