//! Workflow DAG analysis.
//!
//! `WorkflowDag` stages execute in vector order and each stage names at
//! most one upstream producer, so the dependency structure is a forest
//! over stage indices. The checks are correspondingly direct: an edge
//! pointing at the stage itself or a later stage is a cycle under the
//! execution order (PIO040), an edge past the end of the stage list is
//! dangling (PIO041), a non-final stage whose outputs nothing consumes
//! is dead weight in the pipeline (PIO042), and reading from a stage
//! that produces no files starves the consumer (PIO043).

use crate::diag::{Code, LintReport};
use pioeval_workloads::WorkflowDag;

/// Lint a workflow DAG.
pub fn lint_dag(dag: &WorkflowDag) -> LintReport {
    let mut report = LintReport::new();
    let n = dag.stages.len();
    if n == 0 {
        report.error(Code::StructuralZero, None, "workflow has no stages");
        return report;
    }

    let mut consumed = vec![false; n];
    for (i, stage) in dag.stages.iter().enumerate() {
        let Some(up) = stage.reads_stage else {
            continue;
        };
        if up >= n {
            report.error(
                Code::DagDangling,
                None,
                format!(
                    "stage {i} reads from stage {up}, but the workflow has \
                     only {n} stages"
                ),
            );
            continue;
        }
        if up == i {
            report.error(
                Code::DagCycle,
                None,
                format!("stage {i} reads its own outputs (self-cycle)"),
            );
            continue;
        }
        if up > i {
            report.error(
                Code::DagCycle,
                None,
                format!(
                    "stage {i} reads from stage {up}, which runs later — \
                     stages execute in index order, so this dependency can \
                     never be satisfied"
                ),
            );
            continue;
        }
        consumed[up] = true;
        if dag.stages[up].files_out_per_rank == 0 {
            report.error(
                Code::DagEmptyUpstream,
                None,
                format!(
                    "stage {i} reads from stage {up}, which produces no files \
                     (files_out_per_rank is 0)"
                ),
            );
        }
    }

    // Dead outputs: every stage but the last exists to feed something
    // downstream. The final stage's outputs are the workflow's results.
    for (i, stage) in dag.stages.iter().enumerate() {
        if i + 1 < n && stage.files_out_per_rank > 0 && !consumed[i] {
            report.warn(
                Code::DagDeadStage,
                None,
                format!(
                    "stage {i} writes {} file(s) per rank that no later stage \
                     reads",
                    stage.files_out_per_rank
                ),
            );
        }
        if stage.files_out_per_rank > 0 && stage.file_bytes == 0 {
            report.error(
                Code::ZeroSize,
                None,
                format!("stage {i} writes zero-byte output files"),
            );
        }
    }

    report.sort();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_types::{bytes, SimDuration};
    use pioeval_workloads::{Stage, WorkflowDag};

    fn stage(reads: Option<usize>, outs: u32) -> Stage {
        Stage {
            reads_stage: reads,
            files_out_per_rank: outs,
            file_bytes: bytes::kib(64),
            compute: SimDuration::from_millis(10),
            stat_before_read: false,
        }
    }

    #[test]
    fn default_three_stage_dag_is_clean() {
        let r = lint_dag(&WorkflowDag::three_stage_default(bytes::kib(64)));
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(r.warning_count(), 0, "{:?}", r.diagnostics);
    }

    #[test]
    fn self_and_forward_cycles_pio040() {
        let dag = WorkflowDag {
            stages: vec![stage(None, 2), stage(Some(1), 1)],
            base_file: 0,
        };
        let r = lint_dag(&dag);
        assert!(r.has(Code::DagCycle)); // self-cycle
        let dag = WorkflowDag {
            stages: vec![stage(Some(1), 2), stage(Some(0), 1)],
            base_file: 0,
        };
        let r = lint_dag(&dag);
        assert!(r.has(Code::DagCycle)); // forward edge
    }

    #[test]
    fn dangling_dependency_pio041() {
        let dag = WorkflowDag {
            stages: vec![stage(None, 2), stage(Some(7), 1)],
            base_file: 0,
        };
        let r = lint_dag(&dag);
        assert!(r.has(Code::DagDangling));
    }

    #[test]
    fn dead_stage_pio042() {
        // Stage 0 feeds nothing; stage 1 reads staged-in input.
        let dag = WorkflowDag {
            stages: vec![stage(None, 2), stage(None, 1)],
            base_file: 0,
        };
        let r = lint_dag(&dag);
        assert!(r.has(Code::DagDeadStage));
        assert!(r.is_clean()); // warning only
    }

    #[test]
    fn empty_upstream_pio043() {
        let dag = WorkflowDag {
            stages: vec![stage(None, 0), stage(Some(0), 1)],
            base_file: 0,
        };
        let r = lint_dag(&dag);
        assert!(r.has(Code::DagEmptyUpstream));
    }

    #[test]
    fn zero_byte_outputs_pio016() {
        let mut s = stage(None, 2);
        s.file_bytes = 0;
        let dag = WorkflowDag {
            stages: vec![s, stage(Some(0), 1)],
            base_file: 0,
        };
        let r = lint_dag(&dag);
        assert!(r.has(Code::ZeroSize));
    }

    #[test]
    fn empty_workflow_is_an_error() {
        let dag = WorkflowDag {
            stages: vec![],
            base_file: 0,
        };
        assert!(!lint_dag(&dag).is_clean());
    }
}
