//! Output-path pre-flight: catch telemetry sinks that will fail (or
//! vanish) at finalize *before* a long campaign runs.
//!
//! `--live-out` and `--trace-out` files are written at the end of a run
//! (the trace) or opened at its start (the live stream); either way, a
//! bad destination discovered after hours of simulation wastes the whole
//! run. These checks are deliberately cheap and side-effect-free: an
//! existing destination is opened for append (never created, never
//! truncated), and a missing one is probed through a uniquely named
//! sibling file that is always removed — the target itself is never
//! created, so a concurrently created file can never be deleted by the
//! probe.

use crate::diag::{Code, LintReport};
use std::fs::OpenOptions;
use std::path::{Component, Path};
use std::sync::atomic::{AtomicU64, Ordering};

/// Lint one output-file path (from a flag like `--live-out` or
/// `--trace-out`; `flag` names it in messages). Both findings are
/// warnings — the run proceeds, since the path may legitimately become
/// writable (or the user may not care) — but scripted users can grep
/// for the stable codes.
///
/// * [`Code::OutputInTarget`] (PIO060): any path component is `target` —
///   the cargo build directory, wiped by `cargo clean` and ignored by
///   git, so artifacts written there are almost always lost by accident.
/// * [`Code::OutputNotWritable`] (PIO061): the file cannot be opened for
///   appending at pre-flight (missing parent directory, permissions,
///   path is a directory, ...).
pub fn lint_output_path(flag: &str, path: &str) -> LintReport {
    let mut report = LintReport::new();
    let p = Path::new(path);
    if p.components()
        .any(|c| matches!(c, Component::Normal(n) if n == "target"))
    {
        report.warn(
            Code::OutputInTarget,
            None,
            format!(
                "{flag} path `{path}` is inside a `target/` directory — \
                 `cargo clean` deletes it and git ignores it"
            ),
        );
    }
    if let Err(e) = probe_writable(p) {
        report.warn(
            Code::OutputNotWritable,
            None,
            format!("{flag} path `{path}` is not writable: {e}"),
        );
    }
    report
}

/// Serial for unique sibling-probe names within this process.
static PROBE_SEQ: AtomicU64 = AtomicU64::new(0);

/// Check that `p` can be written, reporting the OS error if not.
///
/// An existing file is opened for append — no create, no truncate, and
/// nothing to clean up. A missing file is tested indirectly: a
/// `create_new` probe against a uniquely named sibling in the same
/// directory, removed again immediately. The target path itself is
/// never created, so there is no window in which a file created
/// concurrently by someone else could be mistaken for our probe and
/// deleted.
fn probe_writable(p: &Path) -> std::io::Result<()> {
    if p.exists() {
        return OpenOptions::new().append(true).open(p).map(drop);
    }
    let parent = match p.parent() {
        Some(d) if !d.as_os_str().is_empty() => d,
        _ => Path::new("."),
    };
    loop {
        let probe = parent.join(format!(
            ".pioeval_probe_{}_{}",
            std::process::id(),
            PROBE_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        match OpenOptions::new().write(true).create_new(true).open(&probe) {
            Ok(f) => {
                drop(f);
                let _ = std::fs::remove_file(&probe);
                return Ok(());
            }
            // A leftover from a previous crashed probe: pick a new name.
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => continue,
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_component_warns_pio060() {
        let r = lint_output_path("--trace-out", "target/trace.json");
        assert!(r.has(Code::OutputInTarget), "{:?}", r.diagnostics);
        assert!(r.is_clean(), "PIO060 is a warning, not an error");
        let r = lint_output_path("--live-out", "/some/target/deep/f.jsonl");
        assert!(r.has(Code::OutputInTarget));
        // `target` must be a whole component, not a substring.
        let r = lint_output_path(
            "--live-out",
            std::env::temp_dir()
                .join("targeted.jsonl")
                .to_str()
                .unwrap(),
        );
        assert!(!r.has(Code::OutputInTarget), "{:?}", r.diagnostics);
    }

    #[test]
    fn unwritable_path_warns_pio061_and_probe_leaves_no_file() {
        let dir = std::env::temp_dir().join(format!("pioeval_lint_out_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Missing parent directory → not writable.
        let bad = dir.join("no_such_dir").join("f.jsonl");
        let r = lint_output_path("--live-out", bad.to_str().unwrap());
        assert!(r.has(Code::OutputNotWritable), "{:?}", r.diagnostics);
        assert!(r.is_clean());
        // Writable path → clean, and the probe must not leave the file.
        let good = dir.join("fresh.jsonl");
        let r = lint_output_path("--live-out", good.to_str().unwrap());
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert!(!good.exists(), "probe file must be removed");
        // An existing file is probed but never deleted.
        std::fs::write(&good, "keep").unwrap();
        let r = lint_output_path("--live-out", good.to_str().unwrap());
        assert!(r.diagnostics.is_empty());
        assert_eq!(std::fs::read_to_string(&good).unwrap(), "keep");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn directory_path_is_not_writable() {
        let dir = std::env::temp_dir();
        let r = lint_output_path("--trace-out", dir.to_str().unwrap());
        assert!(r.has(Code::OutputNotWritable), "{:?}", r.diagnostics);
    }

    #[test]
    fn probe_leaves_directory_empty_and_reports_os_error() {
        let dir = std::env::temp_dir().join(format!("pioeval_lint_probe_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let r = lint_output_path("--live-out", dir.join("t.jsonl").to_str().unwrap());
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        // The sibling probe must not survive the check.
        let leftovers: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        // The PIO061 message carries the operating-system error text.
        let bad = dir.join("nope").join("t.jsonl");
        let r = lint_output_path("--live-out", bad.to_str().unwrap());
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == Code::OutputNotWritable)
            .unwrap();
        assert!(
            d.message.contains("os error") || d.message.contains("No such file"),
            "{}",
            d.message
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
