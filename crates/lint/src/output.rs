//! Output-path pre-flight: catch telemetry sinks that will fail (or
//! vanish) at finalize *before* a long campaign runs.
//!
//! `--live-out` and `--trace-out` files are written at the end of a run
//! (the trace) or opened at its start (the live stream); either way, a
//! bad destination discovered after hours of simulation wastes the whole
//! run. These checks are deliberately cheap and side-effect-free: the
//! writability probe creates the file only if it does not exist yet and
//! removes it again immediately.

use crate::diag::{Code, LintReport};
use std::fs::OpenOptions;
use std::path::{Component, Path};

/// Lint one output-file path (from a flag like `--live-out` or
/// `--trace-out`; `flag` names it in messages). Both findings are
/// warnings — the run proceeds, since the path may legitimately become
/// writable (or the user may not care) — but scripted users can grep
/// for the stable codes.
///
/// * [`Code::OutputInTarget`] (PIO060): any path component is `target` —
///   the cargo build directory, wiped by `cargo clean` and ignored by
///   git, so artifacts written there are almost always lost by accident.
/// * [`Code::OutputNotWritable`] (PIO061): the file cannot be opened for
///   appending at pre-flight (missing parent directory, permissions,
///   path is a directory, ...).
pub fn lint_output_path(flag: &str, path: &str) -> LintReport {
    let mut report = LintReport::new();
    let p = Path::new(path);
    if p.components()
        .any(|c| matches!(c, Component::Normal(n) if n == "target"))
    {
        report.warn(
            Code::OutputInTarget,
            None,
            format!(
                "{flag} path `{path}` is inside a `target/` directory — \
                 `cargo clean` deletes it and git ignores it"
            ),
        );
    }
    let existed = p.exists();
    match OpenOptions::new().create(true).append(true).open(p) {
        Ok(f) => {
            drop(f);
            if !existed {
                // The probe created it; leave no trace behind.
                let _ = std::fs::remove_file(p);
            }
        }
        Err(e) => {
            report.warn(
                Code::OutputNotWritable,
                None,
                format!("{flag} path `{path}` is not writable: {e}"),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_component_warns_pio060() {
        let r = lint_output_path("--trace-out", "target/trace.json");
        assert!(r.has(Code::OutputInTarget), "{:?}", r.diagnostics);
        assert!(r.is_clean(), "PIO060 is a warning, not an error");
        let r = lint_output_path("--live-out", "/some/target/deep/f.jsonl");
        assert!(r.has(Code::OutputInTarget));
        // `target` must be a whole component, not a substring.
        let r = lint_output_path(
            "--live-out",
            std::env::temp_dir()
                .join("targeted.jsonl")
                .to_str()
                .unwrap(),
        );
        assert!(!r.has(Code::OutputInTarget), "{:?}", r.diagnostics);
    }

    #[test]
    fn unwritable_path_warns_pio061_and_probe_leaves_no_file() {
        let dir = std::env::temp_dir().join(format!("pioeval_lint_out_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Missing parent directory → not writable.
        let bad = dir.join("no_such_dir").join("f.jsonl");
        let r = lint_output_path("--live-out", bad.to_str().unwrap());
        assert!(r.has(Code::OutputNotWritable), "{:?}", r.diagnostics);
        assert!(r.is_clean());
        // Writable path → clean, and the probe must not leave the file.
        let good = dir.join("fresh.jsonl");
        let r = lint_output_path("--live-out", good.to_str().unwrap());
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
        assert!(!good.exists(), "probe file must be removed");
        // An existing file is probed but never deleted.
        std::fs::write(&good, "keep").unwrap();
        let r = lint_output_path("--live-out", good.to_str().unwrap());
        assert!(r.diagnostics.is_empty());
        assert_eq!(std::fs::read_to_string(&good).unwrap(), "keep");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn directory_path_is_not_writable() {
        let dir = std::env::temp_dir();
        let r = lint_output_path("--trace-out", dir.to_str().unwrap());
        assert!(r.has(Code::OutputNotWritable), "{:?}", r.diagnostics);
    }
}
