//! Diagnostic primitives: stable codes, severities, source spans, and
//! report rendering (human and JSON).

use std::fmt;

/// Stable diagnostic codes. The `PIO0xx` string of each code is part of
/// the tool's public contract — scripts grep for them — so codes are
/// never renumbered; retired codes are left unassigned.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// PIO001: input could not be parsed at all.
    Syntax,
    /// PIO010: statement references a file that was never declared.
    UndeclaredFile,
    /// PIO011: file declared but never referenced.
    UnusedFile,
    /// PIO012: `create` on a file that is already open.
    DoubleCreate,
    /// PIO013: operation on a file before it is created or opened.
    IoBeforeCreate,
    /// PIO014: operation on a file after it was closed.
    UseAfterClose,
    /// PIO015: file still open at end of program.
    NeverClosed,
    /// PIO016: data operation transfers zero bytes.
    ZeroSize,
    /// PIO017: data operation with `x0` repeat count (a no-op).
    ZeroCount,
    /// PIO018: `repeat 0` block (dead code).
    EmptyRepeat,
    /// PIO019: sequential access runs past the rank's lane on a shared
    /// file, spilling into the next rank's lane.
    LaneOverflow,
    /// PIO020: two ranks write overlapping byte ranges of a shared file
    /// with no barrier ordering the writes.
    SharedWriteRace,
    /// PIO021: a `barrier` executes on only a subset of ranks (inside an
    /// `onrank` block), so barrier counts diverge across ranks and the
    /// program deadlocks at run time.
    RankDivergentBarrier,
    /// PIO022: statement is unreachable (inside `repeat 0`, or inside
    /// `onrank` blocks guarding contradictory ranks).
    UnreachableCode,
    /// PIO023: read of a byte range no statement ever writes (on a file
    /// created, not opened, by this program — so it starts empty).
    ReadNeverWritten,
    /// PIO024: the cursor runs past the file's declared `size`.
    CursorPastDeclaredSize,
    /// PIO030: stripe count exceeds the number of OSTs (will be clamped).
    StripeOverOsts,
    /// PIO031: zero stripe size or stripe count.
    ZeroStripe,
    /// PIO032: fabric with zero link bandwidth.
    ZeroFabricBw,
    /// PIO033: storage device with zero bandwidth.
    ZeroDeviceBw,
    /// PIO034: engine lookahead is zero, or a fabric latency is below
    /// the lookahead (either stalls / breaks the conservative engine).
    BadLookahead,
    /// PIO035: burst-buffer capacity smaller than one stripe.
    BurstBufferTooSmall,
    /// PIO036: structurally empty cluster (zero clients/servers/...).
    StructuralZero,
    /// PIO040: workflow stage reads from itself or a later stage.
    DagCycle,
    /// PIO041: workflow stage reads from a stage index that does not exist.
    DagDangling,
    /// PIO042: non-final workflow stage whose outputs nothing reads.
    DagDeadStage,
    /// PIO043: workflow stage reads from a stage that produces no files.
    DagEmptyUpstream,
    /// PIO044: interference campaign declares fewer than two jobs.
    CampaignTooFewJobs,
    /// PIO045: campaign job references a workload that was never declared.
    CampaignUnknownWorkload,
    /// PIO050: replication factor exceeds the number of storage nodes.
    ObjReplicationExceedsNodes,
    /// PIO051: object-store part size is zero.
    ObjZeroPartSize,
    /// PIO052: object store configured with no gateways.
    ObjNoGateways,
    /// PIO053: erasure width (data + parity) exceeds the storage nodes.
    ObjErasureExceedsNodes,
    /// PIO060: a live/trace output path points inside `target/` (wiped
    /// by `cargo clean`, ignored by git — almost always a mistake).
    OutputInTarget,
    /// PIO061: a live/trace output path is not writable at pre-flight,
    /// so a long campaign would only fail at finalize.
    OutputNotWritable,
    /// PIO070: the write-ack policy and replication setting disagree
    /// (waiting for a replica that can never exist, or replication on a
    /// backend where the ack mode has no effect).
    ResilAckReplicaMismatch,
    /// PIO071: geographic ack mode with a malformed site latency matrix
    /// (not square, missing sites, or asymmetric).
    ResilGeoMatrixInvalid,
    /// PIO072: a failure is scheduled beyond the stated horizon, or an
    /// MTBF schedule has no horizon to draw from.
    ResilFailureBeyondHorizon,
    /// PIO073: a failure targets an entity the cluster does not have.
    ResilFailureTargetMissing,
}

impl Code {
    /// The stable `PIO0xx` identifier.
    pub const fn as_str(self) -> &'static str {
        match self {
            Code::Syntax => "PIO001",
            Code::UndeclaredFile => "PIO010",
            Code::UnusedFile => "PIO011",
            Code::DoubleCreate => "PIO012",
            Code::IoBeforeCreate => "PIO013",
            Code::UseAfterClose => "PIO014",
            Code::NeverClosed => "PIO015",
            Code::ZeroSize => "PIO016",
            Code::ZeroCount => "PIO017",
            Code::EmptyRepeat => "PIO018",
            Code::LaneOverflow => "PIO019",
            Code::SharedWriteRace => "PIO020",
            Code::RankDivergentBarrier => "PIO021",
            Code::UnreachableCode => "PIO022",
            Code::ReadNeverWritten => "PIO023",
            Code::CursorPastDeclaredSize => "PIO024",
            Code::StripeOverOsts => "PIO030",
            Code::ZeroStripe => "PIO031",
            Code::ZeroFabricBw => "PIO032",
            Code::ZeroDeviceBw => "PIO033",
            Code::BadLookahead => "PIO034",
            Code::BurstBufferTooSmall => "PIO035",
            Code::StructuralZero => "PIO036",
            Code::DagCycle => "PIO040",
            Code::DagDangling => "PIO041",
            Code::DagDeadStage => "PIO042",
            Code::DagEmptyUpstream => "PIO043",
            Code::CampaignTooFewJobs => "PIO044",
            Code::CampaignUnknownWorkload => "PIO045",
            Code::ObjReplicationExceedsNodes => "PIO050",
            Code::ObjZeroPartSize => "PIO051",
            Code::ObjNoGateways => "PIO052",
            Code::ObjErasureExceedsNodes => "PIO053",
            Code::OutputInTarget => "PIO060",
            Code::OutputNotWritable => "PIO061",
            Code::ResilAckReplicaMismatch => "PIO070",
            Code::ResilGeoMatrixInvalid => "PIO071",
            Code::ResilFailureBeyondHorizon => "PIO072",
            Code::ResilFailureTargetMissing => "PIO073",
        }
    }

    /// Every assigned code, in `PIO0xx` order. Drives `--explain`
    /// listings and the uniqueness test.
    pub const ALL: &'static [Code] = &[
        Code::Syntax,
        Code::UndeclaredFile,
        Code::UnusedFile,
        Code::DoubleCreate,
        Code::IoBeforeCreate,
        Code::UseAfterClose,
        Code::NeverClosed,
        Code::ZeroSize,
        Code::ZeroCount,
        Code::EmptyRepeat,
        Code::LaneOverflow,
        Code::SharedWriteRace,
        Code::RankDivergentBarrier,
        Code::UnreachableCode,
        Code::ReadNeverWritten,
        Code::CursorPastDeclaredSize,
        Code::StripeOverOsts,
        Code::ZeroStripe,
        Code::ZeroFabricBw,
        Code::ZeroDeviceBw,
        Code::BadLookahead,
        Code::BurstBufferTooSmall,
        Code::StructuralZero,
        Code::DagCycle,
        Code::DagDangling,
        Code::DagDeadStage,
        Code::DagEmptyUpstream,
        Code::CampaignTooFewJobs,
        Code::CampaignUnknownWorkload,
        Code::ObjReplicationExceedsNodes,
        Code::ObjZeroPartSize,
        Code::ObjNoGateways,
        Code::ObjErasureExceedsNodes,
        Code::OutputInTarget,
        Code::OutputNotWritable,
        Code::ResilAckReplicaMismatch,
        Code::ResilGeoMatrixInvalid,
        Code::ResilFailureBeyondHorizon,
        Code::ResilFailureTargetMissing,
    ];

    /// Look up a code by its `PIO0xx` identifier (case-insensitive).
    pub fn parse(s: &str) -> Option<Code> {
        let s = s.to_ascii_uppercase();
        Code::ALL.iter().copied().find(|c| c.as_str() == s)
    }

    /// A short title for the code (the first line of `--explain`).
    pub const fn title(self) -> &'static str {
        match self {
            Code::Syntax => "input could not be parsed",
            Code::UndeclaredFile => "reference to an undeclared file",
            Code::UnusedFile => "file declared but never used",
            Code::DoubleCreate => "create of a file that is already open",
            Code::IoBeforeCreate => "operation before the file is created or opened",
            Code::UseAfterClose => "operation after the file was closed",
            Code::NeverClosed => "file still open at end of program",
            Code::ZeroSize => "data operation transfers zero bytes",
            Code::ZeroCount => "data operation repeated zero times",
            Code::EmptyRepeat => "`repeat 0` block never executes",
            Code::LaneOverflow => "access runs past the rank's lane",
            Code::SharedWriteRace => "cross-rank overlapping writes with no barrier",
            Code::RankDivergentBarrier => "barrier reached by a subset of ranks",
            Code::UnreachableCode => "statement can never execute",
            Code::ReadNeverWritten => "read of a byte range nothing writes",
            Code::CursorPastDeclaredSize => "access past the declared file size",
            Code::StripeOverOsts => "stripe count exceeds the OST count",
            Code::ZeroStripe => "zero stripe size or stripe count",
            Code::ZeroFabricBw => "fabric link with zero bandwidth",
            Code::ZeroDeviceBw => "storage device with zero bandwidth",
            Code::BadLookahead => "lookahead is zero or exceeds a fabric latency",
            Code::BurstBufferTooSmall => "burst buffer smaller than one stripe",
            Code::StructuralZero => "structurally empty cluster or job",
            Code::DagCycle => "workflow stage reads itself or a later stage",
            Code::DagDangling => "workflow stage reads a missing stage",
            Code::DagDeadStage => "workflow stage output nothing reads",
            Code::DagEmptyUpstream => "workflow stage reads a stage with no files",
            Code::CampaignTooFewJobs => "campaign with fewer than two jobs",
            Code::CampaignUnknownWorkload => "job references an unknown workload",
            Code::ObjReplicationExceedsNodes => "replication factor exceeds storage nodes",
            Code::ObjZeroPartSize => "object-store part size is zero",
            Code::ObjNoGateways => "object store with no gateways",
            Code::ObjErasureExceedsNodes => "erasure width exceeds storage nodes",
            Code::OutputInTarget => "output path inside target/",
            Code::OutputNotWritable => "output path not writable",
            Code::ResilAckReplicaMismatch => "ack policy and replication disagree",
            Code::ResilGeoMatrixInvalid => "geographic site matrix is malformed",
            Code::ResilFailureBeyondHorizon => "failure scheduled beyond the horizon",
            Code::ResilFailureTargetMissing => "failure targets a missing entity",
        }
    }

    /// A multi-line explanation of what the code means, why it matters,
    /// and how the analysis finds it (`pioeval lint --explain PIO0xx`).
    pub const fn explain(self) -> &'static str {
        match self {
            Code::Syntax => {
                "The input failed to parse; nothing else can be checked. The parse\n\
                 error (with its source line) is included in the message."
            }
            Code::UndeclaredFile => {
                "A statement names a file with no `file <name> ...` declaration.\n\
                 Expansion would have no lane or scope to assign, so this is an error."
            }
            Code::UnusedFile => {
                "The file is declared but no statement references it. Usually a typo\n\
                 in a statement (which then also raises PIO010) or leftover cruft."
            }
            Code::DoubleCreate => {
                "`create` ran while the file was already open — commonly a `create`\n\
                 inside a `repeat` block that should sit before the loop."
            }
            Code::IoBeforeCreate => {
                "A data or handle operation ran before any `create`/`open`. The\n\
                 lifecycle pass runs the open/close state machine over every path,\n\
                 executing `repeat` bodies twice so cross-iteration bugs surface."
            }
            Code::UseAfterClose => {
                "A data or handle operation ran after `close`. See PIO013 for how\n\
                 the lifecycle pass walks the program."
            }
            Code::NeverClosed => {
                "The file is still open when the program ends. Harmless for the\n\
                 simulator but usually indicates a missing `close`."
            }
            Code::ZeroSize => {
                "A read or write transfers 0 bytes. The simulator would accept it\n\
                 but it almost certainly means a bad size literal."
            }
            Code::ZeroCount => "`x0` makes the statement a no-op; dead code, warning only.",
            Code::EmptyRepeat => {
                "`repeat 0` never runs its body. The body is also reported\n\
                 unreachable (PIO022) via the control-flow graph."
            }
            Code::LaneOverflow => {
                "On a shared file each rank owns the byte lane\n\
                 [rank*lane, (rank+1)*lane). The abstract interpreter tracks every\n\
                 cursor as a strided interval (base + k*stride per loop level) and\n\
                 flags accesses whose closed-form maximum leaves the lane. Spilling\n\
                 into a neighbour's lane is legal but usually unintended — and a\n\
                 race (PIO020) if the neighbour writes there in the same epoch."
            }
            Code::SharedWriteRace => {
                "Two ranks write overlapping bytes of a shared file in the same\n\
                 barrier epoch, so the final contents depend on scheduling. The\n\
                 detector works on the program's control-flow graph: write ranges\n\
                 are strided intervals in closed form (no loop unrolling, no\n\
                 iteration budget), epochs are affine in loop counters, and the\n\
                 cross-rank shift is solved exactly over all rank distances — the\n\
                 result is sound for any rank count."
            }
            Code::RankDivergentBarrier => {
                "A `barrier` sits inside an `onrank` block, so only that rank\n\
                 arrives at the collective while every other rank skips it. Barrier\n\
                 counts diverge across ranks and the program deadlocks at run time."
            }
            Code::UnreachableCode => {
                "The statement can never execute: its basic block is unreachable in\n\
                 the control-flow graph (a `repeat 0` body) or its `onrank` guards\n\
                 contradict (nested `onrank` with different ranks)."
            }
            Code::ReadNeverWritten => {
                "A read covers a byte range that no statement in the program writes,\n\
                 on a file the program itself creates (so it starts empty). The\n\
                 simulator will happily read zeroes; real benchmarks usually intend\n\
                 to read data written earlier. Files `open`ed (pre-existing) are\n\
                 exempt. Best-effort: rank-guarded writes are credited to all ranks."
            }
            Code::CursorPastDeclaredSize => {
                "The file declares `size <bytes>` and some access's closed-form\n\
                 maximum reaches past it. For shared files the per-rank lane\n\
                 [0, lane) is checked against the declared size as well."
            }
            Code::StripeOverOsts => {
                "layout.stripe_count exceeds the number of OSTs; the simulator\n\
                 clamps it, so declared and effective layout disagree."
            }
            Code::ZeroStripe => "A zero stripe size or stripe count makes striping undefined.",
            Code::ZeroFabricBw => "A fabric link with zero bandwidth would never drain.",
            Code::ZeroDeviceBw => "A storage device with zero bandwidth would never drain.",
            Code::BadLookahead => {
                "The conservative parallel engine requires 0 < lookahead <= every\n\
                 cross-node fabric latency; violating either stalls or breaks it."
            }
            Code::BurstBufferTooSmall => {
                "A burst buffer smaller than one stripe cannot absorb any write."
            }
            Code::StructuralZero => {
                "A structurally empty configuration: zero clients, servers, or job\n\
                 ranks. Nothing can be simulated."
            }
            Code::DagCycle => {
                "Workflow stages execute in index order; a stage reading its own or\n\
                 a later stage's output can never be satisfied."
            }
            Code::DagDangling => "The stage reads from a stage index that does not exist.",
            Code::DagDeadStage => {
                "A non-final stage writes files that no later stage reads; its\n\
                 output is dead weight in the pipeline."
            }
            Code::DagEmptyUpstream => {
                "The stage reads from a stage that produces zero files per rank."
            }
            Code::CampaignTooFewJobs => {
                "An interference campaign needs at least two concurrent jobs to\n\
                 measure cross-job slowdown."
            }
            Code::CampaignUnknownWorkload => {
                "A `job` line names a workload block that was never declared."
            }
            Code::ObjReplicationExceedsNodes => {
                "Replication factor exceeds the number of storage nodes, so some\n\
                 replicas would share a node (no extra durability)."
            }
            Code::ObjZeroPartSize => "Multipart uploads with a zero part size make no progress.",
            Code::ObjNoGateways => "Every object request passes a gateway; zero gateways stall.",
            Code::ObjErasureExceedsNodes => {
                "data + parity shards exceed the storage nodes, so shards share\n\
                 nodes and the code cannot tolerate a node loss."
            }
            Code::OutputInTarget => {
                "The output path points inside target/ — wiped by `cargo clean`,\n\
                 ignored by git; almost always a mistake."
            }
            Code::OutputNotWritable => {
                "Pre-flight probed the output path (opening the file if it exists,\n\
                 otherwise creating and removing a sibling probe file) and the OS\n\
                 refused; a long campaign would only fail at finalize. The message\n\
                 carries the OS error string."
            }
            Code::ResilAckReplicaMismatch => {
                "The write-ack policy waits for replica acknowledgements\n\
                 (local_plus_one or geographic) but the configuration cannot\n\
                 provide one: replication below 2, or fewer than two I/O nodes\n\
                 to replicate between. Writes would ACK exactly as local_only\n\
                 does while the report claims a stronger policy. On the\n\
                 object-store backend the ack mode has no effect at all —\n\
                 durability there comes from placement width."
            }
            Code::ResilGeoMatrixInvalid => {
                "The geographic ack mode reads the cross-site latency from the\n\
                 site matrix; a matrix that is not square, names fewer than two\n\
                 sites, or is asymmetric gives the replica leg an undefined or\n\
                 direction-dependent cost. Missing/non-square matrices are\n\
                 errors; asymmetry is a warning (the maximum entry is used)."
            }
            Code::ResilFailureBeyondHorizon => {
                "A scripted failure fires after the schedule's stated horizon\n\
                 (it will still fire — the horizon only bounds MTBF sampling),\n\
                 or an MTBF schedule has a zero horizon and so can never draw\n\
                 an event. The former is a warning, the latter an error."
            }
            Code::ResilFailureTargetMissing => {
                "A scripted failure names a target index outside the cluster\n\
                 (node beyond the I/O-node or storage-node count, gateway\n\
                 beyond the gateway count), or a failure kind the backend\n\
                 cannot express (gateway/degraded-read failures on the PFS\n\
                 path, I/O-node semantics on a store without that tier). The\n\
                 simulator skips such events, so the run would silently\n\
                 measure less than the schedule promises."
            }
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but runnable; reported, does not fail the lint.
    Warning,
    /// The input is wrong; `pioeval run` refuses to start.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// 1-based source line, when the input has lines (DSL only).
    pub line: Option<u32>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(n) => {
                write!(
                    f,
                    "{} [{}] line {}: {}",
                    self.severity, self.code, n, self.message
                )
            }
            None => write!(f, "{} [{}] {}", self.severity, self.code, self.message),
        }
    }
}

/// The outcome of linting one input.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All findings, in source order where lines exist.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an error.
    pub fn error(&mut self, code: Code, line: Option<u32>, message: impl Into<String>) {
        self.diagnostics.push(Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            line,
        });
    }

    /// Record a warning.
    pub fn warn(&mut self, code: Code, line: Option<u32>, message: impl Into<String>) {
        self.diagnostics.push(Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            line,
        });
    }

    /// Fold another report's findings into this one.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// True when no error-severity findings exist (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// True when a finding with `code` exists.
    pub fn has(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Sort findings by line (unspanned findings last), then by code.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by_key(|d| (d.line.unwrap_or(u32::MAX), d.code));
    }

    /// Render for terminals: one line per finding plus a summary.
    ///
    /// `input` names the linted source (file path or `<config>`).
    pub fn render_human(&self, input: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            match d.line {
                Some(n) => out.push_str(&format!(
                    "{}:{}: {} [{}] {}\n",
                    input, n, d.severity, d.code, d.message
                )),
                None => out.push_str(&format!(
                    "{}: {} [{}] {}\n",
                    input, d.severity, d.code, d.message
                )),
            }
        }
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s)\n",
            input,
            self.error_count(),
            self.warning_count()
        ));
        out
    }

    /// Render as a JSON object:
    /// `{"errors": N, "warnings": N, "diagnostics": [{code, severity,
    /// line?, message}, ...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.error_count(),
            self.warning_count()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",",
                d.code, d.severity
            ));
            if let Some(n) = d.line {
                out.push_str(&format!("\"line\":{n},"));
            }
            out.push_str(&format!("\"message\":\"{}\"}}", escape_json(&d.message)));
        }
        out.push_str("]}");
        out
    }
}

/// Escape a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for &c in Code::ALL {
            let s = c.as_str();
            assert!(s.starts_with("PIO"), "{s}");
            assert_eq!(s.len(), 6, "{s}");
            assert!(seen.insert(s), "duplicate code {s}");
            assert!(!c.title().is_empty());
            assert!(!c.explain().is_empty());
            assert_eq!(Code::parse(s), Some(c));
            assert_eq!(Code::parse(&s.to_ascii_lowercase()), Some(c));
        }
        assert_eq!(seen.len(), Code::ALL.len());
        assert_eq!(Code::parse("PIO999"), None);
        // New codes slot into the DSL range in order.
        assert_eq!(Code::RankDivergentBarrier.as_str(), "PIO021");
        assert_eq!(Code::UnreachableCode.as_str(), "PIO022");
        assert_eq!(Code::ReadNeverWritten.as_str(), "PIO023");
        assert_eq!(Code::CursorPastDeclaredSize.as_str(), "PIO024");
    }

    #[test]
    fn report_counts_and_rendering() {
        let mut r = LintReport::new();
        r.warn(Code::LaneOverflow, Some(7), "spills into next lane");
        r.error(Code::UndeclaredFile, Some(3), "undeclared file `x`");
        r.error(Code::ZeroStripe, None, "stripe_size is 0");
        assert_eq!(r.error_count(), 2);
        assert_eq!(r.warning_count(), 1);
        assert!(!r.is_clean());
        assert!(r.has(Code::LaneOverflow));
        assert!(!r.has(Code::DagCycle));
        r.sort();
        assert_eq!(r.diagnostics[0].line, Some(3));
        assert_eq!(r.diagnostics[2].line, None);
        let human = r.render_human("a.pio");
        assert!(human.contains("a.pio:3: error [PIO010]"));
        assert!(human.contains("2 error(s), 1 warning(s)"));
        let json = r.to_json();
        assert!(json.contains("\"errors\":2"));
        assert!(json.contains("\"code\":\"PIO019\""));
        assert!(json.contains("\"line\":7"));
    }

    #[test]
    fn json_escapes_messages() {
        let mut r = LintReport::new();
        r.error(Code::Syntax, None, "bad \"quote\"\nnewline");
        let json = r.to_json();
        assert!(json.contains("bad \\\"quote\\\"\\nnewline"));
    }
}
