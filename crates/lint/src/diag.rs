//! Diagnostic primitives: stable codes, severities, source spans, and
//! report rendering (human and JSON).

use std::fmt;

/// Stable diagnostic codes. The `PIO0xx` string of each code is part of
/// the tool's public contract — scripts grep for them — so codes are
/// never renumbered; retired codes are left unassigned.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// PIO001: input could not be parsed at all.
    Syntax,
    /// PIO010: statement references a file that was never declared.
    UndeclaredFile,
    /// PIO011: file declared but never referenced.
    UnusedFile,
    /// PIO012: `create` on a file that is already open.
    DoubleCreate,
    /// PIO013: operation on a file before it is created or opened.
    IoBeforeCreate,
    /// PIO014: operation on a file after it was closed.
    UseAfterClose,
    /// PIO015: file still open at end of program.
    NeverClosed,
    /// PIO016: data operation transfers zero bytes.
    ZeroSize,
    /// PIO017: data operation with `x0` repeat count (a no-op).
    ZeroCount,
    /// PIO018: `repeat 0` block (dead code).
    EmptyRepeat,
    /// PIO019: sequential access runs past the rank's lane on a shared
    /// file, spilling into the next rank's lane.
    LaneOverflow,
    /// PIO020: two ranks write overlapping byte ranges of a shared file
    /// with no barrier ordering the writes.
    SharedWriteRace,
    /// PIO030: stripe count exceeds the number of OSTs (will be clamped).
    StripeOverOsts,
    /// PIO031: zero stripe size or stripe count.
    ZeroStripe,
    /// PIO032: fabric with zero link bandwidth.
    ZeroFabricBw,
    /// PIO033: storage device with zero bandwidth.
    ZeroDeviceBw,
    /// PIO034: engine lookahead is zero, or a fabric latency is below
    /// the lookahead (either stalls / breaks the conservative engine).
    BadLookahead,
    /// PIO035: burst-buffer capacity smaller than one stripe.
    BurstBufferTooSmall,
    /// PIO036: structurally empty cluster (zero clients/servers/...).
    StructuralZero,
    /// PIO040: workflow stage reads from itself or a later stage.
    DagCycle,
    /// PIO041: workflow stage reads from a stage index that does not exist.
    DagDangling,
    /// PIO042: non-final workflow stage whose outputs nothing reads.
    DagDeadStage,
    /// PIO043: workflow stage reads from a stage that produces no files.
    DagEmptyUpstream,
    /// PIO044: interference campaign declares fewer than two jobs.
    CampaignTooFewJobs,
    /// PIO045: campaign job references a workload that was never declared.
    CampaignUnknownWorkload,
    /// PIO050: replication factor exceeds the number of storage nodes.
    ObjReplicationExceedsNodes,
    /// PIO051: object-store part size is zero.
    ObjZeroPartSize,
    /// PIO052: object store configured with no gateways.
    ObjNoGateways,
    /// PIO053: erasure width (data + parity) exceeds the storage nodes.
    ObjErasureExceedsNodes,
    /// PIO060: a live/trace output path points inside `target/` (wiped
    /// by `cargo clean`, ignored by git — almost always a mistake).
    OutputInTarget,
    /// PIO061: a live/trace output path is not writable at pre-flight,
    /// so a long campaign would only fail at finalize.
    OutputNotWritable,
}

impl Code {
    /// The stable `PIO0xx` identifier.
    pub const fn as_str(self) -> &'static str {
        match self {
            Code::Syntax => "PIO001",
            Code::UndeclaredFile => "PIO010",
            Code::UnusedFile => "PIO011",
            Code::DoubleCreate => "PIO012",
            Code::IoBeforeCreate => "PIO013",
            Code::UseAfterClose => "PIO014",
            Code::NeverClosed => "PIO015",
            Code::ZeroSize => "PIO016",
            Code::ZeroCount => "PIO017",
            Code::EmptyRepeat => "PIO018",
            Code::LaneOverflow => "PIO019",
            Code::SharedWriteRace => "PIO020",
            Code::StripeOverOsts => "PIO030",
            Code::ZeroStripe => "PIO031",
            Code::ZeroFabricBw => "PIO032",
            Code::ZeroDeviceBw => "PIO033",
            Code::BadLookahead => "PIO034",
            Code::BurstBufferTooSmall => "PIO035",
            Code::StructuralZero => "PIO036",
            Code::DagCycle => "PIO040",
            Code::DagDangling => "PIO041",
            Code::DagDeadStage => "PIO042",
            Code::DagEmptyUpstream => "PIO043",
            Code::CampaignTooFewJobs => "PIO044",
            Code::CampaignUnknownWorkload => "PIO045",
            Code::ObjReplicationExceedsNodes => "PIO050",
            Code::ObjZeroPartSize => "PIO051",
            Code::ObjNoGateways => "PIO052",
            Code::ObjErasureExceedsNodes => "PIO053",
            Code::OutputInTarget => "PIO060",
            Code::OutputNotWritable => "PIO061",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How serious a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but runnable; reported, does not fail the lint.
    Warning,
    /// The input is wrong; `pioeval run` refuses to start.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Severity.
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// 1-based source line, when the input has lines (DSL only).
    pub line: Option<u32>,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(n) => {
                write!(
                    f,
                    "{} [{}] line {}: {}",
                    self.severity, self.code, n, self.message
                )
            }
            None => write!(f, "{} [{}] {}", self.severity, self.code, self.message),
        }
    }
}

/// The outcome of linting one input.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All findings, in source order where lines exist.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an error.
    pub fn error(&mut self, code: Code, line: Option<u32>, message: impl Into<String>) {
        self.diagnostics.push(Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            line,
        });
    }

    /// Record a warning.
    pub fn warn(&mut self, code: Code, line: Option<u32>, message: impl Into<String>) {
        self.diagnostics.push(Diagnostic {
            code,
            severity: Severity::Warning,
            message: message.into(),
            line,
        });
    }

    /// Fold another report's findings into this one.
    pub fn merge(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of error-severity findings.
    pub fn error_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity findings.
    pub fn warning_count(&self) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// True when no error-severity findings exist (warnings allowed).
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// True when a finding with `code` exists.
    pub fn has(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }

    /// Sort findings by line (unspanned findings last), then by code.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by_key(|d| (d.line.unwrap_or(u32::MAX), d.code));
    }

    /// Render for terminals: one line per finding plus a summary.
    ///
    /// `input` names the linted source (file path or `<config>`).
    pub fn render_human(&self, input: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            match d.line {
                Some(n) => out.push_str(&format!(
                    "{}:{}: {} [{}] {}\n",
                    input, n, d.severity, d.code, d.message
                )),
                None => out.push_str(&format!(
                    "{}: {} [{}] {}\n",
                    input, d.severity, d.code, d.message
                )),
            }
        }
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s)\n",
            input,
            self.error_count(),
            self.warning_count()
        ));
        out
    }

    /// Render as a JSON object:
    /// `{"errors": N, "warnings": N, "diagnostics": [{code, severity,
    /// line?, message}, ...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!(
            "\"errors\":{},\"warnings\":{},\"diagnostics\":[",
            self.error_count(),
            self.warning_count()
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"severity\":\"{}\",",
                d.code, d.severity
            ));
            if let Some(n) = d.line {
                out.push_str(&format!("\"line\":{n},"));
            }
            out.push_str(&format!("\"message\":\"{}\"}}", escape_json(&d.message)));
        }
        out.push_str("]}");
        out
    }
}

/// Escape a string for embedding in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = [
            Code::Syntax,
            Code::UndeclaredFile,
            Code::UnusedFile,
            Code::DoubleCreate,
            Code::IoBeforeCreate,
            Code::UseAfterClose,
            Code::NeverClosed,
            Code::ZeroSize,
            Code::ZeroCount,
            Code::EmptyRepeat,
            Code::LaneOverflow,
            Code::SharedWriteRace,
            Code::StripeOverOsts,
            Code::ZeroStripe,
            Code::ZeroFabricBw,
            Code::ZeroDeviceBw,
            Code::BadLookahead,
            Code::BurstBufferTooSmall,
            Code::StructuralZero,
            Code::DagCycle,
            Code::DagDangling,
            Code::DagDeadStage,
            Code::DagEmptyUpstream,
            Code::CampaignTooFewJobs,
            Code::CampaignUnknownWorkload,
            Code::ObjReplicationExceedsNodes,
            Code::ObjZeroPartSize,
            Code::ObjNoGateways,
            Code::ObjErasureExceedsNodes,
            Code::OutputInTarget,
            Code::OutputNotWritable,
        ];
        let mut seen = std::collections::HashSet::new();
        for c in all {
            let s = c.as_str();
            assert!(s.starts_with("PIO"), "{s}");
            assert_eq!(s.len(), 6, "{s}");
            assert!(seen.insert(s), "duplicate code {s}");
        }
    }

    #[test]
    fn report_counts_and_rendering() {
        let mut r = LintReport::new();
        r.warn(Code::LaneOverflow, Some(7), "spills into next lane");
        r.error(Code::UndeclaredFile, Some(3), "undeclared file `x`");
        r.error(Code::ZeroStripe, None, "stripe_size is 0");
        assert_eq!(r.error_count(), 2);
        assert_eq!(r.warning_count(), 1);
        assert!(!r.is_clean());
        assert!(r.has(Code::LaneOverflow));
        assert!(!r.has(Code::DagCycle));
        r.sort();
        assert_eq!(r.diagnostics[0].line, Some(3));
        assert_eq!(r.diagnostics[2].line, None);
        let human = r.render_human("a.pio");
        assert!(human.contains("a.pio:3: error [PIO010]"));
        assert!(human.contains("2 error(s), 1 warning(s)"));
        let json = r.to_json();
        assert!(json.contains("\"errors\":2"));
        assert!(json.contains("\"code\":\"PIO019\""));
        assert!(json.contains("\"line\":7"));
    }

    #[test]
    fn json_escapes_messages() {
        let mut r = LintReport::new();
        r.error(Code::Syntax, None, "bad \"quote\"\nnewline");
        let json = r.to_json();
        assert!(json.contains("bad \\\"quote\\\"\\nnewline"));
    }
}
