//! DSL program analysis: reference/lifecycle checks, size sanity, lane
//! overflow, and a static shared-write race detector.
//!
//! Position reasoning (lane overflow, cross-rank races, dead code,
//! never-written reads, declared-size checks) is done by lowering the
//! body into a CFG ([`crate::cfg`]) and abstractly interpreting it over
//! a strided-interval domain ([`crate::absint`]) — loop-closed-form,
//! with no iteration budget and symbolic in both the rank count and the
//! `repeat` trip counts. Barriers segment time into *epochs*: two
//! writes to the same shared file race iff they can come from different
//! ranks, touch overlapping bytes, and fall in the same epoch.
//!
//! The previous expansion-based detector (probe ranks + iteration
//! budget) is preserved under `#[cfg(test)]` as a differential oracle.

use crate::diag::{Code, LintReport};
use pioeval_types::{IoKind, MetaOp};
use pioeval_workloads::dsl::{DslProgram, DslWorkload, Stmt, StmtKind};
use std::collections::{HashMap, HashSet};

/// Lint a parsed DSL workload.
pub fn lint_program(w: &DslWorkload) -> LintReport {
    let mut report = LintReport::new();
    structural_pass(w, &mut report);
    lifecycle_pass(w, &mut report);
    let cfg = crate::cfg::lower_workload("workload", w);
    crate::absint::analyze(w, &cfg, &mut report);
    report.sort();
    report
}

/// Lint a parsed DSL *program*: every `workload` block, the main body,
/// and the `campaign` declaration (the `PIO044`/`PIO045` family).
pub fn lint_dsl_program(p: &DslProgram) -> LintReport {
    let mut report = LintReport::new();
    for (_, w) in &p.workloads {
        report.merge(lint_program(w));
    }
    if let Some(main) = &p.main {
        report.merge(lint_program(main));
    }
    if let Some(c) = &p.campaign {
        if c.jobs.len() < 2 {
            report.warn(
                Code::CampaignTooFewJobs,
                Some(c.line),
                format!(
                    "interference campaign declares {} job(s); measuring \
                     per-job slowdown needs at least 2 concurrent jobs",
                    c.jobs.len()
                ),
            );
        }
        for job in &c.jobs {
            if p.workload(&job.workload).is_none() {
                report.error(
                    Code::CampaignUnknownWorkload,
                    Some(job.line),
                    format!("job references unknown workload `{}`", job.workload),
                );
            }
            if job.ranks == 0 {
                report.error(Code::StructuralZero, Some(job.line), "job declares 0 ranks");
            }
        }
    }
    report.sort();
    report
}

/// Reference, size, and dead-code checks. Visits every statement once.
fn structural_pass(w: &DslWorkload, report: &mut LintReport) {
    let mut referenced: HashSet<&str> = HashSet::new();

    fn walk<'a>(
        stmts: &'a [Stmt],
        w: &DslWorkload,
        referenced: &mut HashSet<&'a str>,
        report: &mut LintReport,
    ) {
        for s in stmts {
            match &s.kind {
                StmtKind::Meta(_, f) => {
                    referenced.insert(f);
                    if !w.files.contains_key(f) {
                        report.error(
                            Code::UndeclaredFile,
                            Some(s.line),
                            format!("reference to undeclared file `{f}`"),
                        );
                    }
                }
                StmtKind::Data {
                    kind,
                    file: f,
                    size,
                    count,
                    ..
                } => {
                    referenced.insert(f);
                    if !w.files.contains_key(f) {
                        report.error(
                            Code::UndeclaredFile,
                            Some(s.line),
                            format!("reference to undeclared file `{f}`"),
                        );
                    }
                    if *size == 0 {
                        report.error(
                            Code::ZeroSize,
                            Some(s.line),
                            format!("{} of 0 bytes to `{f}`", verb(*kind)),
                        );
                    }
                    if *count == 0 {
                        report.warn(
                            Code::ZeroCount,
                            Some(s.line),
                            format!("`x0` makes this {} a no-op", verb(*kind)),
                        );
                    }
                }
                StmtKind::Repeat(n, inner) => {
                    if *n == 0 {
                        report.warn(
                            Code::EmptyRepeat,
                            Some(s.line),
                            "`repeat 0` block never executes",
                        );
                    }
                    walk(inner, w, referenced, report);
                }
                StmtKind::OnRank(_, inner) => walk(inner, w, referenced, report),
                StmtKind::Compute(_) | StmtKind::Barrier => {}
            }
        }
    }
    walk(&w.body, w, &mut referenced, report);

    for (name, decl) in &w.files {
        if !referenced.contains(name.as_str()) {
            report.warn(
                Code::UnusedFile,
                Some(decl.line),
                format!("file `{name}` declared but never used"),
            );
        }
    }
}

fn verb(kind: IoKind) -> &'static str {
    match kind {
        IoKind::Read => "read",
        IoKind::Write => "write",
    }
}

/// Per-file open/close state machine.
#[derive(Clone, Copy, PartialEq, Eq)]
enum FileState {
    /// Declared, not yet created or opened.
    Fresh,
    /// Created or opened.
    Open,
    /// Closed.
    Closed,
}

/// Lifecycle checks: double create, I/O before create, use after close,
/// never closed. Every rank runs the same statement sequence, so one
/// pass suffices; `repeat` bodies run twice so that cross-iteration
/// bugs (e.g. `repeat 2 { create f }`) surface.
fn lifecycle_pass(w: &DslWorkload, report: &mut LintReport) {
    let mut state: HashMap<&str, FileState> = w
        .files
        .keys()
        .map(|k| (k.as_str(), FileState::Fresh))
        .collect();
    // A repeat body executes more than once; report each (code, line)
    // at most once.
    let mut seen: HashSet<(Code, u32)> = HashSet::new();

    fn emit(
        report: &mut LintReport,
        seen: &mut HashSet<(Code, u32)>,
        code: Code,
        line: u32,
        msg: String,
    ) {
        if seen.insert((code, line)) {
            report.error(code, Some(line), msg);
        }
    }

    fn walk<'a>(
        stmts: &'a [Stmt],
        state: &mut HashMap<&'a str, FileState>,
        seen: &mut HashSet<(Code, u32)>,
        report: &mut LintReport,
    ) {
        for s in stmts {
            match &s.kind {
                StmtKind::Meta(op, f) => {
                    let Some(st) = state.get_mut(f.as_str()) else {
                        continue; // undeclared: already PIO010
                    };
                    match op {
                        MetaOp::Create => {
                            if *st == FileState::Open {
                                emit(
                                    report,
                                    seen,
                                    Code::DoubleCreate,
                                    s.line,
                                    format!("file `{f}` created while already open"),
                                );
                            }
                            *st = FileState::Open;
                        }
                        MetaOp::Open => *st = FileState::Open,
                        MetaOp::Close => match *st {
                            FileState::Open => *st = FileState::Closed,
                            FileState::Closed => emit(
                                report,
                                seen,
                                Code::UseAfterClose,
                                s.line,
                                format!("`close` of `{f}` after it was closed"),
                            ),
                            FileState::Fresh => emit(
                                report,
                                seen,
                                Code::IoBeforeCreate,
                                s.line,
                                format!("`close` of `{f}` before it is created or opened"),
                            ),
                        },
                        MetaOp::Fsync => match *st {
                            FileState::Open => {}
                            FileState::Closed => emit(
                                report,
                                seen,
                                Code::UseAfterClose,
                                s.line,
                                format!("`fsync` of `{f}` after it was closed"),
                            ),
                            FileState::Fresh => emit(
                                report,
                                seen,
                                Code::IoBeforeCreate,
                                s.line,
                                format!("`fsync` of `{f}` before it is created or opened"),
                            ),
                        },
                        // `unlink` removes the file; it may be recreated.
                        MetaOp::Unlink => *st = FileState::Fresh,
                        // Path-based operations; no open handle needed.
                        MetaOp::Stat | MetaOp::Mkdir | MetaOp::Readdir => {}
                    }
                }
                StmtKind::Data { kind, file: f, .. } => {
                    let Some(st) = state.get(f.as_str()) else {
                        continue;
                    };
                    match st {
                        FileState::Open => {}
                        FileState::Fresh => emit(
                            report,
                            seen,
                            Code::IoBeforeCreate,
                            s.line,
                            format!("{} of `{f}` before it is created or opened", verb(*kind)),
                        ),
                        FileState::Closed => emit(
                            report,
                            seen,
                            Code::UseAfterClose,
                            s.line,
                            format!("{} of `{f}` after it was closed", verb(*kind)),
                        ),
                    }
                }
                StmtKind::Repeat(n, inner) => {
                    for _ in 0..(*n).min(2) {
                        walk(inner, state, seen, report);
                    }
                }
                // The guarded rank sees the block; model its view.
                StmtKind::OnRank(_, inner) => walk(inner, state, seen, report),
                StmtKind::Compute(_) | StmtKind::Barrier => {}
            }
        }
    }
    walk(&w.body, &mut state, &mut seen, report);

    for (name, st) in &state {
        if *st == FileState::Open {
            let line = w.files[*name].line;
            report.warn(
                Code::NeverClosed,
                Some(line),
                format!("file `{name}` is still open at end of program"),
            );
        }
    }
}

/// The pre-CFG expansion-based lane/race detector, kept verbatim (plus
/// `writeat`/`onrank` support) as the differential-testing oracle for
/// the abstract interpreter. Unlike the shipping engine it samples
/// [`legacy::PROBE_RANKS`] concrete ranks and literally expands loops
/// under [`legacy::ITERATION_BUDGET`], so it is only trusted on
/// programs whose reach stays within the probe window and budget.
#[cfg(test)]
pub(crate) mod legacy {
    use super::*;
    use pioeval_workloads::dsl::Scope;

    /// Ranks used for symbolic expansion.
    pub(crate) const PROBE_RANKS: u32 = 3;

    /// Global budget of `repeat` iterations literally expanded per probe
    /// rank. Past the budget, cursor and epoch advancement continue in
    /// closed form and race detection degrades.
    pub(crate) const ITERATION_BUDGET: u64 = 4_000_000;

    /// A byte range one rank may write in one epoch.
    struct WriteInterval {
        rank: u32,
        epoch: u64,
        start: u64,
        end: u64,
        line: u32,
    }

    /// Symbolic per-rank expansion state for one probe rank.
    struct SymRank<'a> {
        w: &'a DslWorkload,
        rank: u32,
        cursors: HashMap<&'a str, u64>,
        epoch: u64,
        budget: u64,
        intervals: HashMap<&'a str, Vec<WriteInterval>>,
        /// Index of the last interval per (file, epoch, line), for
        /// merging contiguous/identical records.
        last: HashMap<(&'a str, u64, u32), usize>,
    }

    impl<'a> SymRank<'a> {
        fn record(&mut self, file: &'a str, start: u64, end: u64, line: u32) {
            let list = self.intervals.entry(file).or_default();
            let key = (file, self.epoch, line);
            if let Some(&i) = self.last.get(&key) {
                let prev = &mut list[i];
                if prev.end == start {
                    prev.end = end; // contiguous continuation (sequential)
                    return;
                }
                if prev.start == start && prev.end == end {
                    return; // identical potential range (random)
                }
            }
            list.push(WriteInterval {
                rank: self.rank,
                epoch: self.epoch,
                start,
                end,
                line,
            });
            self.last.insert(key, list.len() - 1);
        }

        fn walk(&mut self, stmts: &'a [Stmt], report: &mut LintReport, warned: &mut HashSet<u32>) {
            for s in stmts {
                match &s.kind {
                    StmtKind::Data {
                        kind,
                        file: name,
                        size,
                        count,
                        random,
                        at,
                    } => {
                        let Some(decl) = self.w.files.get(name) else {
                            continue;
                        };
                        if *size == 0 || *count == 0 {
                            continue; // flagged by the structural pass
                        }
                        let shared = decl.scope == Scope::Shared;
                        let lane_base = if shared {
                            self.rank as u64 * decl.lane
                        } else {
                            0
                        };
                        if let Some(off) = at {
                            // pwrite/pread: explicit offset, cursor untouched.
                            let end_rel = off + size * count;
                            if shared
                                && end_rel > decl.lane
                                && self.rank == 0
                                && warned.insert(s.line)
                            {
                                report.warn(
                                    Code::LaneOverflow,
                                    Some(s.line),
                                    format!(
                                        "sequential {} reaches byte {end_rel} of the \
                                         {}-byte lane of shared file `{name}` \
                                         (spills into the next rank's lane)",
                                        verb(*kind),
                                        decl.lane
                                    ),
                                );
                            }
                            if shared && *kind == IoKind::Write {
                                self.record(name, lane_base + off, lane_base + end_rel, s.line);
                            }
                        } else if *random {
                            // Offsets are drawn inside the lane; the
                            // reachable range is the lane itself (or the
                            // transfer, if it is even larger).
                            let reach = decl.lane.max(*size);
                            if shared
                                && *size > decl.lane
                                && self.rank == 0
                                && warned.insert(s.line)
                            {
                                report.warn(
                                    Code::LaneOverflow,
                                    Some(s.line),
                                    format!(
                                        "random {} of {} bytes exceeds the \
                                         {}-byte lane of shared file `{name}`",
                                        verb(*kind),
                                        size,
                                        decl.lane
                                    ),
                                );
                            }
                            if shared && *kind == IoKind::Write {
                                self.record(name, lane_base, lane_base + reach, s.line);
                            }
                        } else {
                            let cursor = self.cursors.entry(name).or_insert(0);
                            let start_rel = *cursor;
                            let end_rel = start_rel + size * count;
                            *cursor = end_rel;
                            if shared
                                && end_rel > decl.lane
                                && self.rank == 0
                                && warned.insert(s.line)
                            {
                                report.warn(
                                    Code::LaneOverflow,
                                    Some(s.line),
                                    format!(
                                        "sequential {} reaches byte {} of the \
                                         {}-byte lane of shared file `{name}` \
                                         (spills into the next rank's lane)",
                                        verb(*kind),
                                        end_rel,
                                        decl.lane
                                    ),
                                );
                            }
                            if shared && *kind == IoKind::Write {
                                self.record(
                                    name,
                                    lane_base + start_rel,
                                    lane_base + end_rel,
                                    s.line,
                                );
                            }
                        }
                    }
                    StmtKind::Barrier => self.epoch += 1,
                    StmtKind::Repeat(n, inner) => {
                        let epoch_before = self.epoch;
                        let cursors_before = self.cursors.clone();
                        let mut executed = 0u64;
                        while executed < *n && self.budget > 0 {
                            self.budget -= 1;
                            self.walk(inner, report, warned);
                            executed += 1;
                        }
                        if *n > executed && executed > 0 {
                            // Budget exhausted: apply the remaining
                            // iterations in closed form — each iteration
                            // advances every cursor and the epoch by the
                            // same amount.
                            let remaining = *n - executed;
                            let epoch_delta = (self.epoch - epoch_before) / executed;
                            self.epoch += epoch_delta * remaining;
                            for (file, cur) in self.cursors.iter_mut() {
                                let before = cursors_before.get(file).copied().unwrap_or(0);
                                let delta = (*cur - before) / executed;
                                *cur += delta * remaining;
                            }
                            // Lane departures past the literal horizon are
                            // still visible from the final cursor.
                            if self.rank == 0 {
                                for (file, cur) in &self.cursors {
                                    let Some(decl) = self.w.files.get(*file) else {
                                        continue;
                                    };
                                    let before = cursors_before.get(file).copied().unwrap_or(0);
                                    if decl.scope == Scope::Shared
                                        && *cur > decl.lane
                                        && *cur > before
                                        && warned.insert(s.line)
                                    {
                                        report.warn(
                                            Code::LaneOverflow,
                                            Some(s.line),
                                            format!(
                                                "repeated sequential access reaches \
                                                 byte {cur} of the {}-byte lane of \
                                                 shared file `{file}`",
                                                decl.lane
                                            ),
                                        );
                                    }
                                }
                            }
                        }
                    }
                    StmtKind::OnRank(r, inner) => {
                        if self.rank == *r {
                            self.walk(inner, report, warned);
                        }
                    }
                    StmtKind::Meta(..) | StmtKind::Compute(_) => {}
                }
            }
        }
    }

    /// Lane-overflow warnings plus the shared-write race detector.
    pub(crate) fn lane_and_race_pass(w: &DslWorkload, report: &mut LintReport) {
        let mut per_rank: Vec<SymRank<'_>> = Vec::new();
        let mut warned: HashSet<u32> = HashSet::new();
        for rank in 0..PROBE_RANKS {
            let mut sym = SymRank {
                w,
                rank,
                cursors: HashMap::new(),
                epoch: 0,
                budget: ITERATION_BUDGET,
                intervals: HashMap::new(),
                last: HashMap::new(),
            };
            sym.walk(&w.body, report, &mut warned);
            per_rank.push(sym);
        }

        // Cross-rank overlap scan, per shared file, same epoch only.
        let mut flagged: HashSet<(String, u32, u32)> = HashSet::new();
        let names: HashSet<&str> = per_rank
            .iter()
            .flat_map(|r| r.intervals.keys().copied())
            .collect();
        for name in names {
            let all: Vec<&WriteInterval> = per_rank
                .iter()
                .filter_map(|r| r.intervals.get(name))
                .flatten()
                .collect();
            for (i, a) in all.iter().enumerate() {
                for b in &all[i + 1..] {
                    if a.rank == b.rank || a.epoch != b.epoch {
                        continue;
                    }
                    if a.start < b.end && b.start < a.end {
                        let (lo, hi) = (a.line.min(b.line), a.line.max(b.line));
                        if !flagged.insert((name.to_string(), lo, hi)) {
                            continue;
                        }
                        let olo = a.start.max(b.start);
                        let ohi = a.end.min(b.end);
                        report.error(
                            Code::SharedWriteRace,
                            Some(lo),
                            format!(
                                "ranks {} and {} both write bytes [{olo}, {ohi}) \
                                 of shared file `{name}` with no barrier between \
                                 (lines {lo} and {hi})",
                                a.rank.min(b.rank),
                                a.rank.max(b.rank),
                            ),
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_workloads::parse_dsl_ast;

    fn lint(src: &str) -> LintReport {
        lint_program(&parse_dsl_ast(src, 1000).unwrap())
    }

    const CLEAN: &str = "
        file data shared lane 16m
        file out perrank
        create data
        create out
        repeat 2
          write data 1m x4
          compute 10ms
        end
        barrier
        read data 4k x8 random
        write out 64k x2
        close out
        close data
    ";

    #[test]
    fn clean_program_is_clean() {
        let r = lint(CLEAN);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert_eq!(r.warning_count(), 0, "{:?}", r.diagnostics);
    }

    #[test]
    fn undeclared_file_pio010() {
        let r = lint("file a shared\ncreate a\nwrite ghost 1m\nclose a");
        assert!(r.has(Code::UndeclaredFile));
        assert!(!r.is_clean());
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == Code::UndeclaredFile)
            .unwrap();
        assert_eq!(d.line, Some(3));
    }

    #[test]
    fn unused_file_pio011() {
        let r = lint("file a shared\nfile b shared\ncreate a\nclose a");
        assert!(r.has(Code::UnusedFile));
        assert!(r.is_clean()); // warning only
    }

    #[test]
    fn double_create_pio012() {
        let r = lint("file a shared\ncreate a\ncreate a\nclose a");
        assert!(r.has(Code::DoubleCreate));
        // ...including across repeat iterations.
        let r = lint("file a shared\nrepeat 2\ncreate a\nend\nclose a");
        assert!(r.has(Code::DoubleCreate), "{:?}", r.diagnostics);
    }

    #[test]
    fn io_before_create_pio013() {
        let r = lint("file a shared\nwrite a 1m\nclose a");
        assert!(r.has(Code::IoBeforeCreate));
    }

    #[test]
    fn use_after_close_pio014() {
        let r = lint("file a shared\ncreate a\nclose a\nread a 4k");
        assert!(r.has(Code::UseAfterClose));
        let r = lint("file a shared\ncreate a\nclose a\nclose a");
        assert!(r.has(Code::UseAfterClose));
    }

    #[test]
    fn never_closed_pio015() {
        let r = lint("file a shared\ncreate a\nwrite a 1m");
        assert!(r.has(Code::NeverClosed));
        assert!(r.is_clean()); // warning only
    }

    #[test]
    fn zero_size_pio016_and_zero_count_pio017() {
        let r = lint("file a shared\ncreate a\nwrite a 0\nclose a");
        assert!(r.has(Code::ZeroSize));
        assert!(!r.is_clean());
        let r = lint("file a shared\ncreate a\nwrite a 1m x0\nclose a");
        assert!(r.has(Code::ZeroCount));
        assert!(r.is_clean());
    }

    #[test]
    fn empty_repeat_pio018() {
        let r = lint("file a shared\ncreate a\nrepeat 0\nwrite a 1m\nend\nclose a");
        assert!(r.has(Code::EmptyRepeat));
    }

    #[test]
    fn lane_overflow_pio019() {
        // 9 x 2m = 18m > 16m lane.
        let r = lint("file a shared lane 16m\ncreate a\nwrite a 2m x9\nclose a");
        assert!(r.has(Code::LaneOverflow), "{:?}", r.diagnostics);
        // Exactly filling the lane is fine.
        let r = lint("file a shared lane 16m\ncreate a\nwrite a 2m x8\nclose a");
        assert!(!r.has(Code::LaneOverflow), "{:?}", r.diagnostics);
        // Per-rank files have no lane neighbors.
        let r = lint("file a perrank lane 1m\ncreate a\nwrite a 2m\nclose a");
        assert!(!r.has(Code::LaneOverflow), "{:?}", r.diagnostics);
    }

    #[test]
    fn shared_write_race_pio020() {
        // Each rank's second write lands in the next rank's first write.
        let r = lint("file d shared lane 1m\ncreate d\nwrite d 1m\nwrite d 1m\nclose d");
        assert!(r.has(Code::SharedWriteRace), "{:?}", r.diagnostics);
        assert!(!r.is_clean());
    }

    #[test]
    fn barrier_separated_writes_do_not_race() {
        let r = lint("file d shared lane 1m\ncreate d\nwrite d 1m\nbarrier\nwrite d 1m\nclose d");
        assert!(!r.has(Code::SharedWriteRace), "{:?}", r.diagnostics);
        // The overflow warning still fires — the second write leaves the
        // lane — but ordering makes it race-free.
        assert!(r.has(Code::LaneOverflow));
    }

    #[test]
    fn race_detected_inside_repeat_blocks() {
        // Overflow happens on the second iteration only.
        let r = lint("file d shared lane 2m\ncreate d\nrepeat 4\nwrite d 1m\nend\nclose d");
        assert!(r.has(Code::SharedWriteRace), "{:?}", r.diagnostics);
        // With a barrier per iteration each epoch's writes are disjoint
        // across ranks only when they stay in-lane; iterations 3 and 4
        // write the neighbor's lane but in distinct epochs, so no race.
        let r =
            lint("file d shared lane 2m\ncreate d\nrepeat 4\nwrite d 1m\nbarrier\nend\nclose d");
        assert!(!r.has(Code::SharedWriteRace), "{:?}", r.diagnostics);
    }

    #[test]
    fn random_writes_stay_in_lane() {
        let r = lint("file d shared lane 1m\ncreate d\nwrite d 4k x100 random\nclose d");
        assert!(!r.has(Code::SharedWriteRace), "{:?}", r.diagnostics);
        assert!(!r.has(Code::LaneOverflow));
    }

    #[test]
    fn huge_repeat_counts_are_cheap_and_exact() {
        // 1<<20 iterations of 1k writes = 1 GiB cursor advance per rank;
        // the lint must finish fast and still catch the lane departure.
        let src = "file d shared lane 64m\ncreate d\nrepeat 1048576\nwrite d 1k\nend\nclose d";
        let r = lint(src);
        assert!(r.has(Code::LaneOverflow), "{:?}", r.diagnostics);
        assert!(r.has(Code::SharedWriteRace), "{:?}", r.diagnostics);
    }

    // ---- CFG / abstract-interpretation era diagnostics ----------------

    #[test]
    fn rank_divergent_barrier_pio021() {
        let r = lint("file a shared\ncreate a\nonrank 0\nbarrier\nend\nwrite a 1m\nclose a");
        assert!(r.has(Code::RankDivergentBarrier), "{:?}", r.diagnostics);
        assert!(!r.is_clean());
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == Code::RankDivergentBarrier)
            .unwrap();
        assert_eq!(d.line, Some(4));
        // Unguarded barriers are collective and fine.
        let r = lint("file a shared\ncreate a\nbarrier\nwrite a 1m\nclose a");
        assert!(!r.has(Code::RankDivergentBarrier), "{:?}", r.diagnostics);
    }

    #[test]
    fn dead_code_pio022() {
        // A `repeat 0` body is structurally unreachable.
        let r = lint("file a shared\ncreate a\nrepeat 0\nwrite a 1m\nend\nclose a");
        assert!(r.has(Code::UnreachableCode), "{:?}", r.diagnostics);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == Code::UnreachableCode)
            .unwrap();
        assert_eq!(d.line, Some(4));
        // Conflicting nested rank guards can never both hold.
        let r = lint("file a shared\ncreate a\nonrank 0\nonrank 1\nwrite a 1m\nend\nend\nclose a");
        assert!(r.has(Code::UnreachableCode), "{:?}", r.diagnostics);
        // Redundant identical guards are reachable.
        let r = lint("file a shared\ncreate a\nonrank 0\nonrank 0\nwrite a 1m\nend\nend\nclose a");
        assert!(!r.has(Code::UnreachableCode), "{:?}", r.diagnostics);
    }

    #[test]
    fn read_never_written_pio023() {
        // Freshly created file, read but never written.
        let r = lint("file a perrank\ncreate a\nread a 4k\nclose a");
        assert!(r.has(Code::ReadNeverWritten), "{:?}", r.diagnostics);
        assert!(r.is_clean()); // warning only
                               // A positioned read of a written range is meaningful.
        let r = lint("file a perrank\ncreate a\nwrite a 4k\nreadat a 0 4k\nclose a");
        assert!(!r.has(Code::ReadNeverWritten), "{:?}", r.diagnostics);
        // Pre-existing (opened) files may hold content already.
        let r = lint("file a perrank\nopen a\nread a 4k\nclose a");
        assert!(!r.has(Code::ReadNeverWritten), "{:?}", r.diagnostics);
        // Random reads sample the whole lane; stay quiet.
        let r = lint("file a perrank\ncreate a\nread a 4k random\nclose a");
        assert!(!r.has(Code::ReadNeverWritten), "{:?}", r.diagnostics);
    }

    #[test]
    fn cursor_past_declared_size_pio024() {
        let r = lint("file a perrank size 8k\ncreate a\nwrite a 4k x3\nclose a");
        assert!(r.has(Code::CursorPastDeclaredSize), "{:?}", r.diagnostics);
        assert!(r.is_clean()); // warning only
        let r = lint("file a perrank size 16k\ncreate a\nwrite a 4k x3\nclose a");
        assert!(!r.has(Code::CursorPastDeclaredSize), "{:?}", r.diagnostics);
        // A shared file whose lane alone exceeds the declared size puts
        // every rank but 0 past the end before the first byte moves.
        let r = lint("file d shared lane 64m size 1m\ncreate d\nwrite d 4k\nclose d");
        assert!(r.has(Code::CursorPastDeclaredSize), "{:?}", r.diagnostics);
    }

    #[test]
    fn races_beyond_legacy_budget_are_caught() {
        // The legacy expansion-based detector spends its whole iteration
        // budget in the burn loop (2100 · (1 + 2000) literal iterations
        // > 4M), then reaches the raced loop with budget 0: zero
        // iterations execute, the closed-form continuation has nothing
        // to extrapolate from, and both the spill and the race are
        // silently missed. The CFG engine has no budget — every loop is
        // closed form — and catches both.
        let src = "file burn perrank\nfile d shared lane 64m\ncreate burn\ncreate d\n\
                   repeat 2100\nrepeat 2000\nwrite burn 256\nend\nend\n\
                   repeat 100000\nwriteat d 0 4k\nwrite d 1k\nend\nclose burn\nclose d";
        let w = parse_dsl_ast(src, 1000).unwrap();
        let new = lint_program(&w);
        assert!(new.has(Code::LaneOverflow), "{:?}", new.diagnostics);
        assert!(new.has(Code::SharedWriteRace), "{:?}", new.diagnostics);

        let mut old = LintReport::new();
        legacy::lane_and_race_pass(&w, &mut old);
        assert!(!old.has(Code::LaneOverflow), "{:?}", old.diagnostics);
        assert!(!old.has(Code::SharedWriteRace), "{:?}", old.diagnostics);
    }

    // ---- Differential testing against the legacy oracle ---------------

    /// One op template: (kind, file, size choice, count, offset choice).
    type DiffOp = (u8, usize, usize, u64, u64);

    const DIFF_SIZES: [&str; 3] = ["4k", "16k", "64k"];

    /// Render a generated shape whose reach stays under 3 lanes (so the
    /// legacy 3-probe-rank window sees every racing δ) and whose loops
    /// stay far under the legacy iteration budget.
    fn render_diff(prefix: &[DiffOp], body: &[DiffOp], trips: u64, suffix: &[DiffOp]) -> String {
        let mut s =
            String::from("file f0 shared lane 4m\nfile f1 shared lane 4m\ncreate f0\ncreate f1\n");
        fn emit(s: &mut String, &(kind, fsel, ssel, count, osel): &DiffOp) {
            let f = fsel % 2;
            let size = DIFF_SIZES[ssel % 3];
            let n = 1 + count % 3;
            match kind % 5 {
                0 => s.push_str(&format!("write f{f} {size} x{n}\n")),
                1 => {
                    let off = (osel % 64) * 128 * 1024;
                    s.push_str(&format!("writeat f{f} {off} {size} x{n}\n"));
                }
                2 => s.push_str(&format!("read f{f} {size} random\n")),
                3 => s.push_str("barrier\n"),
                _ => s.push_str("compute 1ms\n"),
            }
        }
        for op in prefix {
            emit(&mut s, op);
        }
        s.push_str(&format!("repeat {trips}\n"));
        for op in body {
            emit(&mut s, op);
        }
        s.push_str("end\n");
        for op in suffix {
            emit(&mut s, op);
        }
        s.push_str("close f0\nclose f1\n");
        s
    }

    fn pio019_lines(r: &LintReport) -> Vec<u32> {
        let mut v: Vec<u32> = r
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::LaneOverflow)
            .filter_map(|d| d.line)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Both engines end PIO020 messages with `(lines X and Y)`.
    fn pio020_pairs(r: &LintReport) -> Vec<(u32, u32)> {
        let mut v: Vec<(u32, u32)> = r
            .diagnostics
            .iter()
            .filter(|d| d.code == Code::SharedWriteRace)
            .map(|d| {
                let tail = d.message.rsplit("(lines ").next().unwrap();
                let nums: Vec<u32> = tail
                    .trim_end_matches(')')
                    .split(" and ")
                    .map(|t| t.trim().parse().unwrap())
                    .collect();
                (nums[0], nums[1])
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(128))]

        #[test]
        fn cfg_engine_agrees_with_legacy_oracle(
            prefix in proptest::collection::vec((0u8..5, 0usize..2, 0usize..3, 0u64..3, 0u64..64), 0..3),
            body in proptest::collection::vec((0u8..5, 0usize..2, 0usize..3, 0u64..3, 0u64..64), 0..4),
            trips in 1u64..5,
            suffix in proptest::collection::vec((0u8..5, 0usize..2, 0usize..3, 0u64..3, 0u64..64), 0..3),
        ) {
            let src = render_diff(&prefix, &body, trips, &suffix);
            let w = parse_dsl_ast(&src, 1000).unwrap();
            let new = lint_program(&w);
            let mut old = LintReport::new();
            legacy::lane_and_race_pass(&w, &mut old);
            proptest::prop_assert_eq!(pio019_lines(&new), pio019_lines(&old), "{}", &src);
            proptest::prop_assert_eq!(pio020_pairs(&new), pio020_pairs(&old), "{}", &src);
        }
    }
}
