#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # pioeval-lint
//!
//! Pre-flight static analysis for pioeval inputs. Evaluation runs are
//! expensive — the paper's central argument is that full-system I/O
//! evaluation means standing up a simulated cluster, replaying
//! workloads through a multi-layer stack, and characterizing the
//! result — so inputs that can only fail (or silently measure the
//! wrong thing) should be rejected *before* the cluster is built.
//! `pioeval lint <file>` runs these checks standalone; `pioeval run`
//! and `pioeval dsl` run them as a mandatory pre-flight.
//!
//! Three input families are analysed:
//!
//! * **DSL workload programs** ([`lint_program`], [`lint_dsl_program`],
//!   [`lint_dsl_source`]) — reference and lifecycle errors, degenerate
//!   transfer shapes, and a control-flow-graph abstract interpreter
//!   ([`mod@cfg`] lowers each workload into blocks split at `barrier`s with
//!   `repeat`/`onrank` as structured loop/guard nodes; a fixed-point
//!   pass then tracks per-file cursors as strided intervals, symbolic
//!   in the rank and in every enclosing loop's trip index). Lane
//!   overflow, cross-rank write races not ordered by a `barrier`,
//!   rank-divergent barriers, unreachable statements, reads of
//!   never-written ranges, and accesses past the declared file size are
//!   all decided in closed form — sound for any rank count and any
//!   `repeat` trip count, with no iteration budget or rank sampling.
//!   Campaign checks ride along (interference campaigns need ≥ 2 jobs
//!   naming declared workloads).
//! * **Cluster configurations** ([`lint_config`],
//!   [`lint_objstore_config`]) — structural holes, zero-bandwidth
//!   fabrics and devices, stripe layouts wider than the cluster, burst
//!   buffers smaller than a stripe, lookahead settings that stall the
//!   conservative parallel DES engine, and object-store placement
//!   policies wider than the storage tier.
//! * **Workflow DAGs** ([`lint_dag`]) — cycles under the execution
//!   order, dangling dependencies, and dead or empty stages.
//! * **Output paths** ([`lint_output_path`]) — live/trace telemetry
//!   destinations that sit inside `target/` or are not writable at
//!   pre-flight, so long campaigns don't fail (or lose their stream)
//!   at finalize.
//!
//! ## Diagnostic catalogue
//!
//! Codes are stable: scripts may grep for them. Severities: **E** means
//! `pioeval run` refuses to start; **W** is reported but does not fail
//! the lint.
//!
//! | Code | Sev | Meaning |
//! |---|---|---|
//! | PIO001 | E | input could not be parsed (syntax error) |
//! | PIO010 | E | reference to an undeclared file |
//! | PIO011 | W | file declared but never used |
//! | PIO012 | E | `create` of a file that is already open |
//! | PIO013 | E | operation on a file before it is created/opened |
//! | PIO014 | E | operation on a file after `close` |
//! | PIO015 | W | file still open at end of program |
//! | PIO016 | E | zero-byte data operation |
//! | PIO017 | W | `x0` repeat count (no-op statement) |
//! | PIO018 | W | `repeat 0` block (dead code) |
//! | PIO019 | W | sequential access spills out of a shared file's lane |
//! | PIO020 | E | cross-rank overlapping shared-file writes, no barrier |
//! | PIO021 | E | `barrier` inside `onrank` (rank-divergent collective) |
//! | PIO022 | W | structurally unreachable statements (dead code) |
//! | PIO023 | W | read of a byte range nothing ever writes |
//! | PIO024 | W | cursor runs past the file's declared `size` |
//! | PIO030 | W | stripe count exceeds the number of OSTs |
//! | PIO031 | E | zero stripe size or stripe count |
//! | PIO032 | E | fabric with zero link bandwidth |
//! | PIO033 | E | storage device with zero bandwidth |
//! | PIO034 | E | zero lookahead, or fabric latency below lookahead |
//! | PIO035 | W | burst-buffer capacity smaller than one stripe |
//! | PIO036 | E | structurally empty cluster / out-of-range override |
//! | PIO040 | E | workflow stage reads itself or a later stage (cycle) |
//! | PIO041 | E | workflow dependency on a nonexistent stage |
//! | PIO042 | W | non-final stage whose outputs nothing reads |
//! | PIO043 | E | workflow stage reads from a stage with no outputs |
//! | PIO044 | W | interference campaign declares fewer than 2 jobs |
//! | PIO045 | E | campaign job names a workload that was never declared |
//! | PIO050 | E | replication factor exceeds the storage-node count |
//! | PIO051 | E | object-store part size is zero |
//! | PIO052 | E | object store configured with no gateways |
//! | PIO053 | E | erasure width (data+parity) exceeds the storage nodes |
//! | PIO060 | W | live/trace output path is inside a `target/` directory |
//! | PIO061 | W | live/trace output path not writable at pre-flight |
//!
//! ```
//! use pioeval_lint::{lint_dsl_source, Code};
//!
//! let report = lint_dsl_source("file d shared lane 1m\ncreate d\nwrite d 1m\nwrite d 1m\nclose d");
//! assert!(report.has(Code::SharedWriteRace));
//! assert!(!report.is_clean());
//! ```

mod absint;
pub mod cfg;
mod config;
mod dag;
mod diag;
mod output;
mod program;

pub use cfg::{lower_program, lower_workload, ProgramCfg};
pub use config::{lint_config, lint_objstore_config};
pub use dag::lint_dag;
pub use diag::{Code, Diagnostic, LintReport, Severity};
pub use output::lint_output_path;
pub use program::{lint_dsl_program, lint_program};

use pioeval_workloads::parse_program_ast;

/// Lint DSL source text end to end.
///
/// Parse failures become a single `PIO001` diagnostic (carrying the
/// line the parser reported); otherwise the parsed program — workload
/// blocks, main body, and campaign declaration — is handed to
/// [`lint_dsl_program`].
pub fn lint_dsl_source(src: &str) -> LintReport {
    match parse_program_ast(src, 0) {
        Ok(p) => lint_dsl_program(&p),
        Err(e) => {
            let msg = e.to_string();
            let mut report = LintReport::new();
            report.error(Code::Syntax, parse_error_line(&msg), msg.clone());
            report
        }
    }
}

/// Extract the `line N` a parse error message points at, if any.
fn parse_error_line(msg: &str) -> Option<u32> {
    let rest = msg.split("line ").nth(1)?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn syntax_errors_become_pio001() {
        let r = lint_dsl_source("frobnicate the disks");
        assert!(r.has(Code::Syntax));
        assert!(!r.is_clean());
        let d = &r.diagnostics[0];
        assert_eq!(d.line, Some(1));
    }

    #[test]
    fn parse_error_line_extraction() {
        assert_eq!(parse_error_line("parse error: line 12: bad size"), Some(12));
        assert_eq!(parse_error_line("no location here"), None);
    }

    #[test]
    fn clean_source_round_trips() {
        let r = lint_dsl_source("file a shared\ncreate a\nwrite a 1m\nclose a");
        assert!(r.is_clean(), "{:?}", r.diagnostics);
    }

    #[test]
    fn single_job_campaign_pio044_is_warning() {
        let src = "workload w\n  file f perrank\n  create f\n  write f 1m\n  close f\nend\n\
                   campaign\n  job w ranks 4\nend";
        let r = lint_dsl_source(src);
        assert!(r.has(Code::CampaignTooFewJobs), "{:?}", r.diagnostics);
        assert!(r.is_clean()); // warning only
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == Code::CampaignTooFewJobs)
            .unwrap();
        assert_eq!(d.line, Some(7));
    }

    #[test]
    fn unknown_campaign_workload_pio045_is_error() {
        let src = "workload w\n  barrier\nend\ncampaign\n  job w ranks 2\n  job ghost ranks 2\nend";
        let r = lint_dsl_source(src);
        assert!(r.has(Code::CampaignUnknownWorkload), "{:?}", r.diagnostics);
        assert!(!r.is_clean());
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == Code::CampaignUnknownWorkload)
            .unwrap();
        assert_eq!(d.line, Some(6));
        assert!(d.message.contains("ghost"));
    }

    #[test]
    fn two_job_campaign_is_clean() {
        let src = "workload a\n  file f perrank\n  create f\n  write f 1m\n  close f\nend\n\
                   workload b\n  file g perrank\n  create g\n  read g 4k\n  close g\nend\n\
                   campaign\n  job a ranks 4\n  job b ranks 2 start 10ms\nend";
        let r = lint_dsl_source(src);
        assert!(r.is_clean(), "{:?}", r.diagnostics);
        assert!(!r.has(Code::CampaignTooFewJobs));
    }

    #[test]
    fn workload_block_findings_keep_their_lines() {
        // An undeclared file inside a workload block is still PIO010,
        // reported at the block's real source line.
        let src = "workload w\n  write ghost 1m\nend";
        let r = lint_dsl_source(src);
        assert!(r.has(Code::UndeclaredFile), "{:?}", r.diagnostics);
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.code == Code::UndeclaredFile)
            .unwrap();
        assert_eq!(d.line, Some(2));
    }
}
