//! The simulated wire protocol.
//!
//! All entities in the storage simulation exchange [`PfsMsg`] values.
//! Data and metadata requests carry an explicit *reply route* (the chain
//! of fabric entities a reply must traverse), so servers need no routing
//! tables; forwarding layers (the burst-buffer I/O nodes) rewrite the
//! route when they proxy requests, exactly as an I/O forwarding daemon
//! would.

use crate::striping::Layout;
use pioeval_des::EntityId;
use pioeval_types::{FileId, IoKind, MetaOp, OstId, SimDuration};

/// Correlates replies with outstanding requests (unique per requester).
pub type RequestId = u64;

/// A globally-unique request-trace id ([`pioeval_types::reqtrace`]);
/// `0` means the request is untraced and all recording is skipped.
pub type Tid = u64;

/// Fixed protocol header size added to every message, bytes.
pub const HEADER_BYTES: u64 = 256;

/// A data-path RPC: read or write one contiguous object extent on one OST.
#[derive(Clone, Debug)]
pub struct IoRequest {
    /// Requester-unique id echoed in the reply.
    pub id: RequestId,
    /// Entity to deliver the reply to.
    pub reply_to: EntityId,
    /// Fabric chain the reply traverses (outermost hop first).
    pub reply_via: Vec<EntityId>,
    /// Read or write.
    pub kind: IoKind,
    /// The logical file (for statistics and burst-buffer caching).
    pub file: FileId,
    /// Target OST (global index).
    pub ost: OstId,
    /// Offset within the file's backing object on that OST.
    pub obj_offset: u64,
    /// Transfer length in bytes.
    pub len: u64,
    /// Request-trace id (0 = untraced), echoed in the reply.
    pub tid: Tid,
}

impl IoRequest {
    /// Bytes this request occupies on the wire (header + payload for
    /// writes; header only for reads).
    pub fn wire_size(&self) -> u64 {
        match self.kind {
            IoKind::Write => HEADER_BYTES + self.len,
            IoKind::Read => HEADER_BYTES,
        }
    }
}

/// Completion of an [`IoRequest`].
#[derive(Clone, Debug)]
pub struct IoReply {
    /// Echoed request id.
    pub id: RequestId,
    /// Echoed direction.
    pub kind: IoKind,
    /// Echoed file.
    pub file: FileId,
    /// Echoed OST.
    pub ost: OstId,
    /// Echoed length.
    pub len: u64,
    /// True if a burst buffer absorbed/served this request.
    pub from_burst_buffer: bool,
    /// Time the request spent queued at the serving device.
    pub queue_delay: SimDuration,
    /// Echoed request-trace id (0 = untraced).
    pub tid: Tid,
}

impl IoReply {
    /// Bytes this reply occupies on the wire (header + payload for reads).
    pub fn wire_size(&self) -> u64 {
        match self.kind {
            IoKind::Read => HEADER_BYTES + self.len,
            IoKind::Write => HEADER_BYTES,
        }
    }
}

/// A metadata RPC against the MDS.
#[derive(Clone, Debug)]
pub struct MetaRequest {
    /// Requester-unique id echoed in the reply.
    pub id: RequestId,
    /// Entity to deliver the reply to.
    pub reply_to: EntityId,
    /// Fabric chain the reply traverses (outermost hop first).
    pub reply_via: Vec<EntityId>,
    /// Which namespace/attribute operation.
    pub op: MetaOp,
    /// Target file (or directory for `Mkdir`/`Readdir`).
    pub file: FileId,
    /// Size observed by the client (applied on `Close`/`Fsync`, mirroring
    /// Lustre's lazy size-on-MDS update).
    pub size_hint: u64,
    /// Request-trace id (0 = untraced), echoed in the reply.
    pub tid: Tid,
}

/// Completion of a [`MetaRequest`].
#[derive(Clone, Debug)]
pub struct MetaReply {
    /// Echoed request id.
    pub id: RequestId,
    /// Echoed operation.
    pub op: MetaOp,
    /// Echoed file.
    pub file: FileId,
    /// The file's layout (returned by `Create`/`Open`).
    pub layout: Option<Layout>,
    /// The file's size as known by the MDS (returned by `Stat`).
    pub size: u64,
    /// Time the request spent queued at the MDS.
    pub queue_delay: SimDuration,
    /// Echoed request-trace id (0 = untraced).
    pub tid: Tid,
}

/// One verb of the S3-like object protocol spoken between compute
/// clients and `pioeval-objstore` gateway nodes. The protocol lives in
/// this crate (next to the PFS verbs) because every entity in a storage
/// simulation shares one message type; the entities that *serve* these
/// verbs live in `pioeval-objstore`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObjVerb {
    /// Begin a multipart upload (allocates the object record).
    CreateUpload,
    /// Upload one part of a multipart upload.
    PutPart,
    /// Read a byte range of an object (range GET).
    GetRange,
    /// Fetch object attributes (HEAD).
    Head,
    /// Commit a multipart upload (reassembles parts into the object).
    CompleteUpload,
    /// Remove an object (DELETE).
    Delete,
    /// List keys in a bucket (LIST; flat namespace, per-call cost).
    List,
}

impl ObjVerb {
    /// True for the verbs that move object payload bytes.
    pub fn is_data(self) -> bool {
        matches!(self, ObjVerb::PutPart | ObjVerb::GetRange)
    }
}

/// An object-protocol request from a client to a gateway node.
#[derive(Clone, Debug)]
pub struct ObjRequest {
    /// Requester-unique id echoed in the reply.
    pub id: RequestId,
    /// Entity to deliver the reply to.
    pub reply_to: EntityId,
    /// Fabric chain the reply traverses (outermost hop first).
    pub reply_via: Vec<EntityId>,
    /// The protocol verb.
    pub verb: ObjVerb,
    /// Object key (flat namespace — no directory tree).
    pub key: FileId,
    /// Byte offset within the object (range GET / part placement).
    pub offset: u64,
    /// Transfer length in bytes (zero for pure metadata verbs).
    pub len: u64,
    /// Part number for `PutPart` (offset / part size).
    pub part: u32,
    /// Request-trace id (0 = untraced), echoed in the reply.
    pub tid: Tid,
}

impl ObjRequest {
    /// Bytes this request occupies on the wire (header + payload for
    /// part uploads; header only otherwise).
    pub fn wire_size(&self) -> u64 {
        match self.verb {
            ObjVerb::PutPart => HEADER_BYTES + self.len,
            _ => HEADER_BYTES,
        }
    }
}

/// Completion of an [`ObjRequest`].
#[derive(Clone, Debug)]
pub struct ObjReply {
    /// Echoed request id.
    pub id: RequestId,
    /// Echoed verb.
    pub verb: ObjVerb,
    /// Echoed key.
    pub key: FileId,
    /// Echoed transfer length.
    pub len: u64,
    /// Object size as known by the metadata shard (HEAD / complete).
    pub size: u64,
    /// Time the request waited in the gateway's bounded queue.
    pub queue_delay: SimDuration,
    /// Echoed request-trace id (0 = untraced).
    pub tid: Tid,
}

impl ObjReply {
    /// Bytes this reply occupies on the wire (header + payload for
    /// range GETs).
    pub fn wire_size(&self) -> u64 {
        match self.verb {
            ObjVerb::GetRange => HEADER_BYTES + self.len,
            _ => HEADER_BYTES,
        }
    }
}

/// A burst-buffer replication copy: a primary I/O node ships one
/// absorbed chunk to a peer SSD so the client ACK can cover two copies
/// (write-ack policies `local_plus_one` / `geographic`).
#[derive(Clone, Debug)]
pub struct ReplicaChunk {
    /// Primary-unique id echoed in the [`PfsMsg::ReplicaDone`] ack.
    pub id: RequestId,
    /// The primary I/O node the ack goes back to.
    pub reply_to: EntityId,
    /// Fabric chain the ack traverses (the replication fabric).
    pub reply_via: Vec<EntityId>,
    /// The logical file the chunk belongs to.
    pub file: FileId,
    /// OST the primary will eventually drain the chunk to (echoed so a
    /// surviving peer can re-drain it after the primary fails).
    pub ost: OstId,
    /// Offset within the file's backing object on that OST.
    pub obj_offset: u64,
    /// Chunk length in bytes.
    pub len: u64,
    /// Request-trace id of the replication leg (0 = untraced).
    pub tid: Tid,
}

impl ReplicaChunk {
    /// Bytes this copy occupies on the wire (header + payload).
    pub fn wire_size(&self) -> u64 {
        HEADER_BYTES + self.len
    }
}

/// Acknowledgement of a [`ReplicaChunk`].
#[derive(Clone, Debug)]
pub struct ReplicaAck {
    /// Echoed replication id.
    pub id: RequestId,
    /// Echoed chunk length.
    pub len: u64,
    /// False when the peer was itself failed and dropped the copy; the
    /// primary must not count the chunk as replicated.
    pub stored: bool,
    /// Echoed request-trace id (0 = untraced).
    pub tid: Tid,
}

/// A message in transit through a fabric: deliver `payload` to `dst`,
/// charging `size` bytes of serialization.
#[derive(Clone, Debug)]
pub struct NetPacket {
    /// Next-hop destination entity (a server, client, or another fabric).
    pub dst: EntityId,
    /// Wire size in bytes.
    pub size: u64,
    /// The message to deliver.
    pub payload: Box<PfsMsg>,
}

/// Every message exchanged in the storage simulation.
#[derive(Clone, Debug)]
pub enum PfsMsg {
    /// To a fabric entity: forward this packet.
    Route(NetPacket),
    /// To an OSS or I/O node: a data request.
    Io(IoRequest),
    /// To a requester: data request completion.
    IoDone(IoReply),
    /// To the MDS: a metadata request.
    Meta(MetaRequest),
    /// To a requester: metadata completion.
    MetaDone(MetaReply),
    /// To an object-store gateway: an object-protocol request.
    Obj(ObjRequest),
    /// To a requester: object-protocol completion.
    ObjDone(ObjReply),
    /// To a peer I/O node: absorb a replication copy of a burst-buffer
    /// chunk (rides the replication fabric).
    Replicate(ReplicaChunk),
    /// To a primary I/O node: the peer's replication acknowledgement.
    ReplicaDone(ReplicaAck),
    /// To a surviving peer: the named primary I/O node failed — re-drain
    /// any replica chunks held on its behalf to backing storage.
    Takeover {
        /// Entity index (`EntityId.0`) of the failed primary.
        primary: u32,
    },
    /// Failure-injector control message, scheduled directly at build
    /// time (never routed through a fabric): the receiving entity
    /// enacts the failure.
    Fail {
        /// What breaks.
        kind: pioeval_resil::FailureKind,
        /// Component index the failure names (interpretation depends on
        /// the receiving entity: storage-node index for gateways, the
        /// receiver itself for I/O nodes).
        target: u32,
    },
    /// Self-scheduled recovery: the failed component rejoins.
    Recover,
    /// Server-internal: a device finished the access identified by `token`.
    DeviceDone {
        /// Correlation token chosen by the server.
        token: u64,
    },
    /// Generic client-side timer (application compute phases, retries).
    Timer {
        /// Correlation token chosen by the client.
        token: u64,
    },
    /// Application-level message between client entities (collective-I/O
    /// shuffles, barrier tokens). Opaque to the storage system; `bytes`
    /// is the logical payload size charged on the wire.
    App {
        /// Application-chosen correlation tag.
        tag: u64,
        /// Logical payload bytes.
        bytes: u64,
    },
    /// Kick-off message delivered to client entities at their start time.
    Start,
}

/// Build a routed message: wraps `msg` so that it traverses the fabric
/// chain `via` (in order) and is finally delivered to `dst`. Returns the
/// first-hop entity to send to and the message to send.
///
/// With an empty `via`, the message is addressed directly to `dst`
/// (useful for tests with co-located entities).
pub fn route(via: &[EntityId], dst: EntityId, size: u64, msg: PfsMsg) -> (EntityId, PfsMsg) {
    let mut current_dst = dst;
    let mut current = msg;
    for hop in via.iter().rev() {
        current = PfsMsg::Route(NetPacket {
            dst: current_dst,
            size,
            payload: Box::new(current),
        });
        current_dst = *hop;
    }
    (current_dst, current)
}

/// The request-trace id carried by `msg`, looking through any nested
/// `Route` wrapping to the innermost request/reply. Returns 0 (untraced)
/// for messages that carry no request.
pub fn payload_tid(msg: &PfsMsg) -> Tid {
    match msg {
        PfsMsg::Route(p) => payload_tid(&p.payload),
        PfsMsg::Io(r) => r.tid,
        PfsMsg::IoDone(r) => r.tid,
        PfsMsg::Meta(r) => r.tid,
        PfsMsg::MetaDone(r) => r.tid,
        PfsMsg::Obj(r) => r.tid,
        PfsMsg::ObjDone(r) => r.tid,
        PfsMsg::Replicate(r) => r.tid,
        PfsMsg::ReplicaDone(r) => r.tid,
        _ => 0,
    }
}

/// The logical transfer length (bytes) carried by `msg`, looking
/// through any nested `Route` wrapping. Returns 0 for metadata and
/// control messages.
pub fn payload_bytes(msg: &PfsMsg) -> u64 {
    match msg {
        PfsMsg::Route(p) => payload_bytes(&p.payload),
        PfsMsg::Io(r) => r.len,
        PfsMsg::IoDone(r) => r.len,
        PfsMsg::Obj(r) => r.len,
        PfsMsg::ObjDone(r) => r.len,
        PfsMsg::Replicate(r) => r.len,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_sizes_account_for_payload_direction() {
        let mut req = IoRequest {
            id: 1,
            reply_to: EntityId(0),
            reply_via: vec![],
            kind: IoKind::Write,
            file: FileId::new(0),
            ost: OstId::new(0),
            obj_offset: 0,
            len: 4096,
            tid: 0,
        };
        assert_eq!(req.wire_size(), HEADER_BYTES + 4096);
        req.kind = IoKind::Read;
        assert_eq!(req.wire_size(), HEADER_BYTES);

        let mut rep = IoReply {
            id: 1,
            kind: IoKind::Read,
            file: FileId::new(0),
            ost: OstId::new(0),
            len: 4096,
            from_burst_buffer: false,
            queue_delay: SimDuration::ZERO,
            tid: 0,
        };
        assert_eq!(rep.wire_size(), HEADER_BYTES + 4096);
        rep.kind = IoKind::Write;
        assert_eq!(rep.wire_size(), HEADER_BYTES);
    }

    #[test]
    fn obj_wire_sizes_follow_payload_direction() {
        let mut req = ObjRequest {
            id: 1,
            reply_to: EntityId(0),
            reply_via: vec![],
            verb: ObjVerb::PutPart,
            key: FileId::new(0),
            offset: 0,
            len: 8192,
            part: 0,
            tid: 0,
        };
        assert_eq!(req.wire_size(), HEADER_BYTES + 8192);
        req.verb = ObjVerb::GetRange;
        assert_eq!(req.wire_size(), HEADER_BYTES);
        req.verb = ObjVerb::Head;
        assert_eq!(req.wire_size(), HEADER_BYTES);

        let mut rep = ObjReply {
            id: 1,
            verb: ObjVerb::GetRange,
            key: FileId::new(0),
            len: 8192,
            size: 0,
            queue_delay: SimDuration::ZERO,
            tid: 0,
        };
        assert_eq!(rep.wire_size(), HEADER_BYTES + 8192);
        rep.verb = ObjVerb::PutPart;
        assert_eq!(rep.wire_size(), HEADER_BYTES);
        assert!(ObjVerb::PutPart.is_data() && ObjVerb::GetRange.is_data());
        assert!(!ObjVerb::List.is_data());
    }

    #[test]
    fn route_nests_hops_in_order() {
        let (first, msg) = route(
            &[EntityId(10), EntityId(20)],
            EntityId(30),
            512,
            PfsMsg::Start,
        );
        assert_eq!(first, EntityId(10));
        let PfsMsg::Route(p1) = msg else {
            panic!("expected outer Route")
        };
        assert_eq!(p1.dst, EntityId(20));
        let PfsMsg::Route(p2) = *p1.payload else {
            panic!("expected inner Route")
        };
        assert_eq!(p2.dst, EntityId(30));
        assert!(matches!(*p2.payload, PfsMsg::Start));
    }

    #[test]
    fn route_with_no_hops_is_direct() {
        let (first, msg) = route(&[], EntityId(5), 0, PfsMsg::Start);
        assert_eq!(first, EntityId(5));
        assert!(matches!(msg, PfsMsg::Start));
    }
}
