//! Cluster configuration.
//!
//! Defaults approximate a small Lustre-class installation: a 100 Gb/s
//! compute fabric, a 10 GbE storage fabric (the "secondary, slower
//! fabric" of the paper's Fig. 1), HDD-backed OSTs, and SSD burst
//! buffers on the I/O nodes.

use pioeval_types::{bytes, Error, Result, SimDuration};
use serde::{Deserialize, Serialize};

/// A network fabric: propagation latency plus per-endpoint serialization
/// bandwidth, with an optional aggregate (backplane) bandwidth cap.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct FabricConfig {
    /// One-way propagation latency per message.
    pub latency: SimDuration,
    /// Per-endpoint link bandwidth, bytes/second.
    pub link_bw: u64,
    /// Aggregate fabric bandwidth cap, bytes/second (0 = uncapped).
    pub agg_bw: u64,
}

impl FabricConfig {
    /// 100 Gb/s InfiniBand-class compute fabric.
    pub fn infiniband() -> Self {
        FabricConfig {
            latency: SimDuration::from_micros(1),
            link_bw: 12_500_000_000, // 100 Gb/s
            agg_bw: 0,
        }
    }

    /// 10 GbE-class storage fabric.
    pub fn ten_gbe() -> Self {
        FabricConfig {
            latency: SimDuration::from_micros(10),
            link_bw: 1_250_000_000, // 10 Gb/s
            agg_bw: 0,
        }
    }
}

/// A storage device service model: per-operation overhead, positioning
/// (seek) cost for non-contiguous access, and directional bandwidth.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Fixed cost charged to every operation (controller/firmware).
    pub per_op: SimDuration,
    /// Positioning cost when an access does not start where the previous
    /// one ended (zero for SSD-class devices).
    pub seek: SimDuration,
    /// Sequential read bandwidth, bytes/second.
    pub read_bw: u64,
    /// Sequential write bandwidth, bytes/second.
    pub write_bw: u64,
}

impl DeviceConfig {
    /// A nearline HDD: ~4 ms positioning, 150/140 MB/s.
    pub fn hdd() -> Self {
        DeviceConfig {
            per_op: SimDuration::from_micros(100),
            seek: SimDuration::from_millis(4),
            read_bw: 150_000_000,
            write_bw: 140_000_000,
        }
    }

    /// An NVMe SSD (burst-buffer class): no positioning cost, 2 GB/s.
    pub fn nvme() -> Self {
        DeviceConfig {
            per_op: SimDuration::from_micros(10),
            seek: SimDuration::ZERO,
            read_bw: 2_500_000_000,
            write_bw: 2_000_000_000,
        }
    }
}

/// Metadata server service costs. All costs must be at least the engine
/// lookahead (validated by [`ClusterConfig::validate`]).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MdsConfig {
    /// Cost of a create (namespace insert + layout allocation).
    pub create: SimDuration,
    /// Cost of an open (lookup + layout fetch).
    pub open: SimDuration,
    /// Cost of a close.
    pub close: SimDuration,
    /// Cost of a stat.
    pub stat: SimDuration,
    /// Cost of an unlink.
    pub unlink: SimDuration,
    /// Cost of a mkdir.
    pub mkdir: SimDuration,
    /// Cost of a readdir (per call, not per entry).
    pub readdir: SimDuration,
    /// Cost of coordinating an fsync.
    pub fsync: SimDuration,
}

impl Default for MdsConfig {
    fn default() -> Self {
        MdsConfig {
            create: SimDuration::from_micros(150),
            open: SimDuration::from_micros(60),
            close: SimDuration::from_micros(25),
            stat: SimDuration::from_micros(30),
            unlink: SimDuration::from_micros(100),
            mkdir: SimDuration::from_micros(150),
            readdir: SimDuration::from_micros(200),
            fsync: SimDuration::from_micros(50),
        }
    }
}

impl MdsConfig {
    /// The service cost of one metadata operation.
    pub fn cost(&self, op: pioeval_types::MetaOp) -> SimDuration {
        use pioeval_types::MetaOp::*;
        match op {
            Create => self.create,
            Open => self.open,
            Close => self.close,
            Stat => self.stat,
            Unlink => self.unlink,
            Mkdir => self.mkdir,
            Readdir => self.readdir,
            Fsync => self.fsync,
        }
    }
}

/// Default file layout policy applied by the MDS at create time.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct LayoutPolicy {
    /// Stripe size in bytes.
    pub stripe_size: u64,
    /// Number of OSTs each file is striped over (clamped to the OST count).
    pub stripe_count: u32,
}

impl Default for LayoutPolicy {
    fn default() -> Self {
        LayoutPolicy {
            stripe_size: bytes::mib(1),
            stripe_count: 4,
        }
    }
}

/// Full cluster description (Fig. 1 of the paper).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of compute clients (the caller registers one client entity
    /// per slot; the cluster builder sizes routing tables from this).
    pub num_clients: usize,
    /// Number of I/O forwarding nodes with burst buffers (0 disables the
    /// tier; clients then address the storage cluster directly).
    pub num_ionodes: usize,
    /// Number of metadata servers (files are hashed across them,
    /// Lustre-DNE-style). Default 1 — the classic serial-MDS design.
    pub num_mds: usize,
    /// Number of object storage servers.
    pub num_oss: usize,
    /// OSTs (backing devices) per OSS.
    pub osts_per_oss: usize,
    /// Compute-side fabric.
    pub compute_fabric: FabricConfig,
    /// Storage-side fabric (typically slower — the paper's Fig. 1).
    pub storage_fabric: FabricConfig,
    /// Metadata service costs.
    pub mds: MdsConfig,
    /// OST device model.
    pub ost_device: DeviceConfig,
    /// Burst-buffer device model (I/O nodes).
    pub bb_device: DeviceConfig,
    /// Burst-buffer capacity per I/O node, bytes.
    pub bb_capacity: u64,
    /// Number of concurrent drain streams per I/O node.
    pub bb_drain_streams: usize,
    /// Maximum bytes per data RPC; clients split larger transfers.
    pub max_rpc_size: u64,
    /// Layout applied to newly created files.
    pub layout: LayoutPolicy,
    /// Per-OST device overrides (global OST index → device model), for
    /// degraded-device / straggler injection studies.
    pub ost_overrides: Vec<(u32, DeviceConfig)>,
    /// Resilience tier: write-ack policy, geo latency profile, and
    /// failure schedule for the burst buffers. `None` (the default, and
    /// what configs without the key deserialize to) keeps the historical
    /// local-only behavior with no failures.
    pub resil: Option<pioeval_resil::ResilConfig>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_clients: 8,
            num_ionodes: 0,
            num_mds: 1,
            num_oss: 4,
            osts_per_oss: 2,
            compute_fabric: FabricConfig::infiniband(),
            storage_fabric: FabricConfig::ten_gbe(),
            mds: MdsConfig::default(),
            ost_device: DeviceConfig::hdd(),
            bb_device: DeviceConfig::nvme(),
            bb_capacity: bytes::gib(16),
            bb_drain_streams: 4,
            max_rpc_size: bytes::mib(1),
            layout: LayoutPolicy::default(),
            ost_overrides: Vec::new(),
            resil: None,
        }
    }
}

impl ClusterConfig {
    /// Total number of OSTs in the cluster.
    pub fn total_osts(&self) -> usize {
        self.num_oss * self.osts_per_oss
    }

    /// Validate invariants the simulator depends on.
    pub fn validate(&self, lookahead: SimDuration) -> Result<()> {
        if self.num_clients == 0 {
            return Err(Error::Config("num_clients must be > 0".into()));
        }
        if self.num_oss == 0 || self.osts_per_oss == 0 {
            return Err(Error::Config("need at least one OSS and OST".into()));
        }
        if self.num_mds == 0 {
            return Err(Error::Config("need at least one MDS".into()));
        }
        if self.max_rpc_size == 0 {
            return Err(Error::Config("max_rpc_size must be > 0".into()));
        }
        if self.layout.stripe_size == 0 || self.layout.stripe_count == 0 {
            return Err(Error::Config(
                "stripe_size and stripe_count must be > 0".into(),
            ));
        }
        for (name, f) in [
            ("compute", &self.compute_fabric),
            ("storage", &self.storage_fabric),
        ] {
            if f.link_bw == 0 {
                return Err(Error::Config(format!("{name} fabric link_bw is 0")));
            }
            if f.latency < lookahead {
                return Err(Error::Config(format!(
                    "{name} fabric latency {} below engine lookahead {}",
                    f.latency, lookahead
                )));
            }
        }
        for (name, d) in [("ost", &self.ost_device), ("bb", &self.bb_device)] {
            if d.read_bw == 0 || d.write_bw == 0 {
                return Err(Error::Config(format!("{name} device bandwidth is 0")));
            }
        }
        if self.num_ionodes > 0 && self.bb_drain_streams == 0 {
            return Err(Error::Config("bb_drain_streams must be > 0".into()));
        }
        for &(ost, d) in &self.ost_overrides {
            if ost as usize >= self.total_osts() {
                return Err(Error::Config(format!(
                    "ost override {ost} out of range (total {})",
                    self.total_osts()
                )));
            }
            if d.read_bw == 0 || d.write_bw == 0 {
                return Err(Error::Config(format!(
                    "ost override {ost} has zero bandwidth"
                )));
            }
        }
        if let Some(resil) = &self.resil {
            if resil.ack_mode.waits_for_replica() {
                if !resil.geo.is_square() {
                    return Err(Error::Config(
                        "resil geo latency matrix must be square over the site list".into(),
                    ));
                }
                if resil.geo.link_bw == 0 {
                    return Err(Error::Config("resil geo link_bw is 0".into()));
                }
                // The replication fabric is a real DES entity; its
                // latency must cover the lookahead like any other fabric.
                let lat = resil.geo.replica_latency(resil.ack_mode);
                if lat < lookahead {
                    return Err(Error::Config(format!(
                        "replication fabric latency {lat} below engine lookahead {lookahead}"
                    )));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        let cfg = ClusterConfig::default();
        assert!(cfg.validate(SimDuration::from_micros(1)).is_ok());
        assert_eq!(cfg.total_osts(), 8);
    }

    #[test]
    fn zero_clients_rejected() {
        let cfg = ClusterConfig {
            num_clients: 0,
            ..ClusterConfig::default()
        };
        assert!(cfg.validate(SimDuration::ZERO).is_err());
    }

    #[test]
    fn fabric_latency_must_cover_lookahead() {
        let cfg = ClusterConfig::default();
        // Compute fabric latency is 1us; a 2us lookahead must be rejected.
        assert!(cfg.validate(SimDuration::from_micros(2)).is_err());
    }

    #[test]
    fn mds_costs_map_all_ops() {
        let mds = MdsConfig::default();
        for op in pioeval_types::MetaOp::ALL {
            assert!(mds.cost(op) > SimDuration::ZERO, "{op} has zero cost");
        }
    }

    #[test]
    fn storage_fabric_is_slower_than_compute() {
        // The paper's Fig. 1 shows the storage cluster behind a slower
        // secondary fabric; keep the defaults faithful to that.
        assert!(FabricConfig::ten_gbe().link_bw < FabricConfig::infiniband().link_bw);
    }
}
