//! Network fabric entity.
//!
//! A fabric is a crossbar with per-destination-endpoint egress
//! serialization and an optional aggregate backplane cap. A packet for
//! destination `d` begins transmission when both `d`'s egress port and
//! (if capped) the backplane are free, transmits for `size / bandwidth`,
//! and is delivered one propagation latency after transmission completes.
//!
//! Fan-in congestion — many clients writing to one OSS — therefore
//! queues at the OSS's egress port, which is the dominant effect the
//! paper's storage-side experiments rely on.

use crate::config::FabricConfig;
use crate::msg::{payload_tid, PfsMsg};
use pioeval_des::{Ctx, Entity, Envelope};
use pioeval_types::{ReqMark, ReqRecorder, SimDuration, SimTime};
use std::collections::HashMap;

/// Running transfer statistics for a fabric.
#[derive(Clone, Copy, Debug, Default)]
pub struct FabricStats {
    /// Packets forwarded.
    pub packets: u64,
    /// Payload bytes forwarded.
    pub bytes: u64,
    /// Total queueing delay experienced by packets (serialization waits).
    pub queue_wait: SimDuration,
}

/// The fabric entity.
pub struct Fabric {
    cfg: FabricConfig,
    /// Egress port free time, per destination entity.
    egress_free: HashMap<u32, SimTime>,
    /// Backplane free time (aggregate cap).
    agg_free: SimTime,
    /// Transfer statistics.
    pub stats: FabricStats,
    /// Per-request trace recorder (hop marks for traced payloads).
    pub reqtrace: ReqRecorder,
}

impl Fabric {
    /// A new idle fabric.
    pub fn new(cfg: FabricConfig) -> Self {
        Fabric {
            cfg,
            egress_free: HashMap::new(),
            agg_free: SimTime::ZERO,
            stats: FabricStats::default(),
            reqtrace: ReqRecorder::default(),
        }
    }

    /// Serialization time for `size` bytes on one link.
    fn link_time(&self, size: u64) -> SimDuration {
        SimDuration::from_nanos(
            ((size as u128 * 1_000_000_000).div_ceil(self.cfg.link_bw as u128)) as u64,
        )
    }

    /// Serialization time for `size` bytes on the backplane (zero if
    /// uncapped).
    fn agg_time(&self, size: u64) -> SimDuration {
        if self.cfg.agg_bw == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos(
            ((size as u128 * 1_000_000_000).div_ceil(self.cfg.agg_bw as u128)) as u64,
        )
    }
}

impl Entity<PfsMsg> for Fabric {
    fn on_event(&mut self, ev: Envelope<PfsMsg>, ctx: &mut Ctx<'_, PfsMsg>) {
        let PfsMsg::Route(packet) = ev.msg else {
            // Fabrics only understand routed packets; anything else is a
            // model bug.
            panic!("fabric received non-Route message: {:?}", ev.msg);
        };
        let now = ctx.now();
        let link_time = self.link_time(packet.size);
        let agg_time = self.agg_time(packet.size);
        let egress = self
            .egress_free
            .entry(packet.dst.0)
            .or_insert(SimTime::ZERO);

        // Backplane first (if capped), then the destination's egress port.
        let agg_start = now.max(self.agg_free);
        let agg_end = agg_start + agg_time;
        let tx_start = now.max(*egress);
        let tx_end = tx_start.max(agg_end) + link_time;
        *egress = tx_end;
        self.agg_free = agg_end;

        self.stats.packets += 1;
        self.stats.bytes += packet.size;
        self.stats.queue_wait += tx_start.since(now);

        let delivery = tx_end + self.cfg.latency;
        if self.reqtrace.enabled {
            self.reqtrace.record(
                payload_tid(&packet.payload),
                ctx.me().0,
                ReqMark::Hop {
                    arrive: now,
                    depart: delivery,
                },
            );
        }
        ctx.send(packet.dst, delivery.since(now), *packet.payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::NetPacket;
    use pioeval_des::{EntityId, SimConfig, Simulation};

    /// Records delivery times of everything it receives.
    struct Sink {
        deliveries: Vec<SimTime>,
    }
    impl Entity<PfsMsg> for Sink {
        fn on_event(&mut self, _ev: Envelope<PfsMsg>, ctx: &mut Ctx<'_, PfsMsg>) {
            self.deliveries.push(ctx.now());
        }
    }

    fn setup(cfg: FabricConfig) -> (Simulation<PfsMsg>, EntityId, EntityId, EntityId) {
        let mut sim = Simulation::new(SimConfig::default());
        let fabric = sim.add_entity("fabric", Box::new(Fabric::new(cfg)));
        let a = sim.add_entity("a", Box::new(Sink { deliveries: vec![] }));
        let b = sim.add_entity("b", Box::new(Sink { deliveries: vec![] }));
        (sim, fabric, a, b)
    }

    fn packet(dst: EntityId, size: u64) -> PfsMsg {
        PfsMsg::Route(NetPacket {
            dst,
            size,
            payload: Box::new(PfsMsg::Start),
        })
    }

    #[test]
    fn single_packet_pays_latency_plus_serialization() {
        let cfg = FabricConfig {
            latency: SimDuration::from_micros(5),
            link_bw: 1_000_000_000, // 1 GB/s
            agg_bw: 0,
        };
        let (mut sim, fabric, a, _) = setup(cfg);
        sim.schedule(SimTime::ZERO, fabric, packet(a, 1_000_000)); // 1 MB → 1 ms
        sim.run();
        let sink = sim.entity_ref::<Sink>(a).unwrap();
        assert_eq!(
            sink.deliveries,
            vec![SimTime::from_millis(1) + SimDuration::from_micros(5)]
        );
    }

    #[test]
    fn same_destination_serializes() {
        let cfg = FabricConfig {
            latency: SimDuration::from_micros(1),
            link_bw: 1_000_000_000,
            agg_bw: 0,
        };
        let (mut sim, fabric, a, _) = setup(cfg);
        sim.schedule(SimTime::ZERO, fabric, packet(a, 1_000_000));
        sim.schedule(SimTime::ZERO, fabric, packet(a, 1_000_000));
        sim.run();
        let d = &sim.entity_ref::<Sink>(a).unwrap().deliveries;
        assert_eq!(d.len(), 2);
        // Second delivery one full serialization later.
        assert_eq!(d[1].since(d[0]), SimDuration::from_millis(1));
    }

    #[test]
    fn different_destinations_transfer_in_parallel() {
        let cfg = FabricConfig {
            latency: SimDuration::from_micros(1),
            link_bw: 1_000_000_000,
            agg_bw: 0,
        };
        let (mut sim, fabric, a, b) = setup(cfg);
        sim.schedule(SimTime::ZERO, fabric, packet(a, 1_000_000));
        sim.schedule(SimTime::ZERO, fabric, packet(b, 1_000_000));
        sim.run();
        let da = sim.entity_ref::<Sink>(a).unwrap().deliveries[0];
        let db = sim.entity_ref::<Sink>(b).unwrap().deliveries[0];
        assert_eq!(da, db); // no shared bottleneck
    }

    #[test]
    fn aggregate_cap_throttles_parallel_transfers() {
        let cfg = FabricConfig {
            latency: SimDuration::from_micros(1),
            link_bw: 1_000_000_000,
            agg_bw: 1_000_000_000, // backplane == one link
        };
        let (mut sim, fabric, a, b) = setup(cfg);
        sim.schedule(SimTime::ZERO, fabric, packet(a, 1_000_000));
        sim.schedule(SimTime::ZERO, fabric, packet(b, 1_000_000));
        sim.run();
        let da = sim.entity_ref::<Sink>(a).unwrap().deliveries[0];
        let db = sim.entity_ref::<Sink>(b).unwrap().deliveries[0];
        // One of the two is pushed out by backplane contention.
        assert_ne!(da, db);
        assert!(da.max(db) >= SimTime::from_millis(2));
    }

    #[test]
    fn stats_accumulate() {
        let cfg = FabricConfig::infiniband();
        let (mut sim, fabric, a, _) = setup(cfg);
        sim.schedule(SimTime::ZERO, fabric, packet(a, 1000));
        sim.schedule(SimTime::ZERO, fabric, packet(a, 2000));
        sim.run();
        let f = sim.entity_ref::<Fabric>(fabric).unwrap();
        assert_eq!(f.stats.packets, 2);
        assert_eq!(f.stats.bytes, 3000);
    }
}
