//! Client-side protocol helper and a raw test client.
//!
//! [`ClientPort`] encapsulates everything a compute-node entity needs to
//! speak the PFS protocol: request-id allocation, layout caching, extent →
//! stripe-chunk → RPC splitting, and routing (directly to the storage
//! cluster, or through the node's assigned I/O forwarding node when the
//! burst-buffer tier is configured).
//!
//! [`RawClient`] is a minimal client entity that executes a
//! [`pioeval_types::RankProgram`]-style list
//! of logical operations one at a time — the workhorse for unit tests and
//! for experiments that need storage-side behaviour without the full
//! layered I/O stack of `pioeval-iostack`.

use crate::msg::{route, IoRequest, MetaReply, MetaRequest, PfsMsg, RequestId, HEADER_BYTES};
use crate::striping::Layout;
use pioeval_des::{Ctx, Entity, EntityId, Envelope};
use pioeval_types::{tid_for, Error, FileId, IoKind, IoOp, MetaOp, Result, SimTime};
use std::collections::{HashMap, HashSet};

/// Client-side protocol state for one compute client.
#[derive(Clone, Debug)]
pub struct ClientPort {
    me: EntityId,
    compute_fabric: EntityId,
    storage_fabric: EntityId,
    /// Assigned I/O forwarding node (None = address storage directly).
    ionode: Option<EntityId>,
    mds: Vec<EntityId>,
    /// Global OST index → hosting OSS entity.
    ost_route: Vec<EntityId>,
    total_osts: u32,
    max_rpc: u64,
    layouts: HashMap<FileId, Layout>,
    sizes: HashMap<FileId, u64>,
    next_id: RequestId,
    /// When set, outgoing requests carry a request-trace id derived from
    /// `me` and the request id; when clear they carry the untraced `tid 0`.
    trace: bool,
}

impl ClientPort {
    /// Build a port for client entity `me`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: EntityId,
        compute_fabric: EntityId,
        storage_fabric: EntityId,
        ionode: Option<EntityId>,
        mds: Vec<EntityId>,
        ost_route: Vec<EntityId>,
        max_rpc: u64,
    ) -> Self {
        let total_osts = ost_route.len() as u32;
        ClientPort {
            me,
            compute_fabric,
            storage_fabric,
            ionode,
            mds,
            ost_route,
            total_osts,
            max_rpc,
            layouts: HashMap::new(),
            sizes: HashMap::new(),
            next_id: 0,
            trace: false,
        }
    }

    /// Enable or disable request-trace id emission on outgoing requests.
    pub fn set_trace(&mut self, on: bool) {
        self.trace = on;
    }

    /// Is request-trace id emission enabled?
    pub fn trace_enabled(&self) -> bool {
        self.trace
    }

    fn fresh_id(&mut self) -> RequestId {
        self.next_id += 1;
        self.next_id
    }

    /// The trace id for request `id` (0 when tracing is off).
    fn tid(&self, id: RequestId) -> u64 {
        if self.trace {
            tid_for(self.me.0, id)
        } else {
            0
        }
    }

    /// The size this client believes `file` has (local view).
    pub fn file_size(&self, file: FileId) -> u64 {
        self.sizes.get(&file).copied().unwrap_or(0)
    }

    /// Cached layout for `file`, if an open/create reply delivered one.
    pub fn layout(&self, file: FileId) -> Option<Layout> {
        self.layouts.get(&file).copied()
    }

    /// The metadata server responsible for `file` (hash distribution,
    /// Lustre-DNE-style).
    fn mds_for(&self, file: FileId) -> EntityId {
        self.mds[file.index() % self.mds.len()]
    }

    /// Build a metadata request. Returns (first hop entity, message, id).
    /// The caller sends the message with at least the engine lookahead.
    pub fn meta(&mut self, op: MetaOp, file: FileId) -> (EntityId, PfsMsg, RequestId) {
        let id = self.fresh_id();
        let req = MetaRequest {
            id,
            reply_to: self.me,
            reply_via: vec![self.storage_fabric, self.compute_fabric],
            op,
            file,
            size_hint: self.file_size(file),
            tid: self.tid(id),
        };
        let (hop, msg) = route(
            &[self.compute_fabric, self.storage_fabric],
            self.mds_for(file),
            HEADER_BYTES,
            PfsMsg::Meta(req),
        );
        (hop, msg, id)
    }

    /// Build the data RPCs for a logical extent access: stripe-chunk the
    /// extent, split chunks at `max_rpc`, and route each RPC (through the
    /// I/O node when assigned, directly to the OSS otherwise).
    ///
    /// Fails with [`Error::UnknownFile`] if no layout is cached — the
    /// caller must open or create the file first, as a real client would.
    pub fn data(
        &mut self,
        kind: IoKind,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Result<Vec<(EntityId, PfsMsg, RequestId)>> {
        let layout = *self
            .layouts
            .get(&file)
            .ok_or_else(|| Error::UnknownFile(format!("{file} not opened")))?;
        if kind == IoKind::Write {
            let size = self.sizes.entry(file).or_insert(0);
            *size = (*size).max(offset + len);
        }
        let mut rpcs = Vec::new();
        for chunk in layout.map(offset, len, self.total_osts) {
            let mut pos = 0;
            while pos < chunk.len {
                let piece = (chunk.len - pos).min(self.max_rpc);
                let id = self.fresh_id();
                let (dst, via, reply_via) = match self.ionode {
                    Some(ionode) => (ionode, vec![self.compute_fabric], vec![self.compute_fabric]),
                    None => (
                        self.ost_route[chunk.ost.index()],
                        vec![self.compute_fabric, self.storage_fabric],
                        vec![self.storage_fabric, self.compute_fabric],
                    ),
                };
                let req = IoRequest {
                    id,
                    reply_to: self.me,
                    reply_via,
                    kind,
                    file,
                    ost: chunk.ost,
                    obj_offset: chunk.obj_offset + pos,
                    len: piece,
                    tid: self.tid(id),
                };
                let size = req.wire_size();
                let (hop, msg) = route(&via, dst, size, PfsMsg::Io(req));
                rpcs.push((hop, msg, id));
                pos += piece;
            }
        }
        Ok(rpcs)
    }

    /// Build an application-level message to another client entity,
    /// routed over the compute fabric. Returns (first hop, message).
    pub fn app(&self, dst: EntityId, tag: u64, bytes: u64) -> (EntityId, PfsMsg) {
        route(
            &[self.compute_fabric],
            dst,
            HEADER_BYTES + bytes,
            PfsMsg::App { tag, bytes },
        )
    }

    /// Digest a metadata reply (caches layouts from open/create).
    pub fn on_meta_reply(&mut self, rep: &MetaReply) {
        if let Some(layout) = rep.layout {
            self.layouts.insert(rep.file, layout);
        }
        if rep.op == MetaOp::Stat {
            let size = self.sizes.entry(rep.file).or_insert(0);
            *size = (*size).max(rep.size);
        }
    }
}

/// Completion record for one logical operation executed by a client.
#[derive(Clone, Debug)]
pub struct OpRecord {
    /// The operation.
    pub op: IoOp,
    /// When the client issued it.
    pub start: SimTime,
    /// When its last constituent RPC completed.
    pub end: SimTime,
    /// True if any constituent RPC was served by a burst buffer.
    pub burst_buffer: bool,
}

/// A minimal client entity: executes a program of logical operations
/// strictly one at a time (each op waits for the previous to complete).
pub struct RawClient {
    port: ClientPort,
    program: Vec<IoOp>,
    pc: usize,
    pending: HashSet<RequestId>,
    op_start: SimTime,
    op_hit_bb: bool,
    /// Per-operation completion records, in program order.
    pub records: Vec<OpRecord>,
    /// Set when the program has fully completed.
    pub finished_at: Option<SimTime>,
}

impl RawClient {
    /// A client that will execute `program` when it receives
    /// [`PfsMsg::Start`].
    pub fn new(port: ClientPort, program: Vec<IoOp>) -> Self {
        RawClient {
            port,
            program,
            pc: 0,
            pending: HashSet::new(),
            op_start: SimTime::ZERO,
            op_hit_bb: false,
            records: Vec::new(),
            finished_at: None,
        }
    }

    /// Read access to the protocol port (layout cache, sizes).
    pub fn port(&self) -> &ClientPort {
        &self.port
    }

    /// Total bytes moved by completed data operations.
    pub fn bytes_done(&self) -> u64 {
        self.records.iter().map(|r| r.op.transfer_bytes()).sum()
    }

    fn issue_next(&mut self, ctx: &mut Ctx<'_, PfsMsg>) {
        while self.pc < self.program.len() {
            let op = self.program[self.pc].clone();
            self.op_start = ctx.now();
            self.op_hit_bb = false;
            match op {
                IoOp::Compute { duration } => {
                    ctx.send_self(
                        duration,
                        PfsMsg::Timer {
                            token: self.pc as u64,
                        },
                    );
                    return;
                }
                IoOp::Barrier => {
                    // RawClient has no job-wide coordination; barriers are
                    // a no-op here (the iostack's job runtime implements
                    // them). Record and continue.
                    self.records.push(OpRecord {
                        op,
                        start: ctx.now(),
                        end: ctx.now(),
                        burst_buffer: false,
                    });
                    self.pc += 1;
                    continue;
                }
                IoOp::Meta { op: m, file } => {
                    let (hop, msg, id) = self.port.meta(m, file);
                    self.pending.insert(id);
                    ctx.send(hop, ctx.lookahead(), msg);
                    return;
                }
                IoOp::Data {
                    kind,
                    file,
                    offset,
                    size,
                } => {
                    let rpcs = self
                        .port
                        .data(kind, file, offset, size)
                        .expect("RawClient program accessed a file it never opened");
                    if rpcs.is_empty() {
                        // Zero-length access completes immediately.
                        self.records.push(OpRecord {
                            op,
                            start: ctx.now(),
                            end: ctx.now(),
                            burst_buffer: false,
                        });
                        self.pc += 1;
                        continue;
                    }
                    for (hop, msg, id) in rpcs {
                        self.pending.insert(id);
                        ctx.send(hop, ctx.lookahead(), msg);
                    }
                    return;
                }
            }
        }
        if self.finished_at.is_none() {
            self.finished_at = Some(ctx.now());
        }
    }

    fn complete_op(&mut self, ctx: &mut Ctx<'_, PfsMsg>) {
        let op = self.program[self.pc].clone();
        self.records.push(OpRecord {
            op,
            start: self.op_start,
            end: ctx.now(),
            burst_buffer: self.op_hit_bb,
        });
        self.pc += 1;
        self.issue_next(ctx);
    }
}

impl Entity<PfsMsg> for RawClient {
    fn on_event(&mut self, ev: Envelope<PfsMsg>, ctx: &mut Ctx<'_, PfsMsg>) {
        match ev.msg {
            PfsMsg::Start => self.issue_next(ctx),
            PfsMsg::Timer { .. } => self.complete_op(ctx),
            PfsMsg::MetaDone(rep) => {
                self.port.on_meta_reply(&rep);
                if self.pending.remove(&rep.id) && self.pending.is_empty() {
                    self.complete_op(ctx);
                }
            }
            PfsMsg::IoDone(rep) => {
                self.op_hit_bb |= rep.from_burst_buffer;
                if self.pending.remove(&rep.id) && self.pending.is_empty() {
                    self.complete_op(ctx);
                }
            }
            other => panic!("client received unexpected message: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_splits_extents_at_stripes_and_rpc_limit() {
        let mut port = ClientPort::new(
            EntityId(9),
            EntityId(0),
            EntityId(1),
            None,
            vec![EntityId(2)],
            vec![EntityId(3), EntityId(3), EntityId(4), EntityId(4)],
            1024, // max RPC 1 KiB
        );
        port.layouts.insert(
            FileId::new(1),
            Layout::new(4096, 2, 0, 4), // 4 KiB stripes over OSTs 0,1
        );
        // 8 KiB write at offset 0: two 4 KiB chunks, each split into 4 RPCs.
        let rpcs = port.data(IoKind::Write, FileId::new(1), 0, 8192).unwrap();
        assert_eq!(rpcs.len(), 8);
        // All first-hop sends go to the compute fabric.
        assert!(rpcs.iter().all(|(hop, _, _)| *hop == EntityId(0)));
        assert_eq!(port.file_size(FileId::new(1)), 8192);
    }

    #[test]
    fn data_without_open_fails() {
        let mut port = ClientPort::new(
            EntityId(9),
            EntityId(0),
            EntityId(1),
            None,
            vec![EntityId(2)],
            vec![EntityId(3)],
            1024,
        );
        assert!(port.data(IoKind::Read, FileId::new(5), 0, 10).is_err());
    }

    #[test]
    fn meta_reply_caches_layout() {
        let mut port = ClientPort::new(
            EntityId(9),
            EntityId(0),
            EntityId(1),
            None,
            vec![EntityId(2)],
            vec![EntityId(3)],
            1024,
        );
        let rep = MetaReply {
            id: 1,
            op: MetaOp::Open,
            file: FileId::new(5),
            layout: Some(Layout::new(1024, 1, 0, 1)),
            size: 0,
            queue_delay: pioeval_types::SimDuration::ZERO,
            tid: 0,
        };
        port.on_meta_reply(&rep);
        assert!(port.layout(FileId::new(5)).is_some());
        assert!(port.data(IoKind::Read, FileId::new(5), 0, 10).is_ok());
    }

    #[test]
    fn ionode_routing_targets_the_assigned_node() {
        let mut port = ClientPort::new(
            EntityId(9),
            EntityId(0),
            EntityId(1),
            Some(EntityId(7)),
            vec![EntityId(2)],
            vec![EntityId(3)],
            1 << 20,
        );
        port.layouts
            .insert(FileId::new(1), Layout::new(1 << 20, 1, 0, 1));
        let rpcs = port.data(IoKind::Write, FileId::new(1), 0, 4096).unwrap();
        assert_eq!(rpcs.len(), 1);
        // First hop is the compute fabric; the packet inside addresses the
        // I/O node.
        let (hop, msg, _) = &rpcs[0];
        assert_eq!(*hop, EntityId(0));
        let PfsMsg::Route(pkt) = msg else { panic!() };
        assert_eq!(pkt.dst, EntityId(7));
    }

    #[test]
    fn stat_reply_updates_size_view() {
        let mut port = ClientPort::new(
            EntityId(9),
            EntityId(0),
            EntityId(1),
            None,
            vec![EntityId(2)],
            vec![EntityId(3)],
            1024,
        );
        port.on_meta_reply(&MetaReply {
            id: 1,
            op: MetaOp::Stat,
            file: FileId::new(4),
            layout: None,
            size: 777,
            queue_delay: pioeval_types::SimDuration::ZERO,
            tid: 0,
        });
        assert_eq!(port.file_size(FileId::new(4)), 777);
    }
}
