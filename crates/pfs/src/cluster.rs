//! Cluster assembly: builds the full Fig. 1 topology into a simulation.

use crate::client::{ClientPort, OpRecord, RawClient};
use crate::config::{ClusterConfig, FabricConfig};
use crate::fabric::Fabric;
use crate::ionode::IoNode;
use crate::mds::MetadataServer;
use crate::msg::PfsMsg;
use crate::oss::Oss;
use crate::stats::ServerStats;
use pioeval_des::{EntityId, ExecMode, RunResult, SimConfig, Simulation};
use pioeval_resil::{FailureKind, ResilienceReport, ResilienceStats};
use pioeval_types::{IoOp, ReqEvent, Result, SimDuration, SimTime};

/// Entity ids of the cluster's fixed infrastructure.
#[derive(Clone, Debug)]
pub struct ClusterHandles {
    /// Compute-side fabric entity.
    pub compute_fabric: EntityId,
    /// Storage-side fabric entity.
    pub storage_fabric: EntityId,
    /// The metadata server entities (files hash across them).
    pub mds: Vec<EntityId>,
    /// I/O forwarding nodes (empty when the tier is disabled).
    pub ionodes: Vec<EntityId>,
    /// Object storage servers.
    pub oss: Vec<EntityId>,
    /// Global OST index → hosting OSS entity.
    pub ost_route: Vec<EntityId>,
    /// Replication fabric between I/O nodes (present when the ack mode
    /// waits for replicas; geo-stretched under `geographic`).
    pub repl_fabric: Option<EntityId>,
    /// The configuration the cluster was built from.
    pub config: ClusterConfig,
}

impl ClusterHandles {
    /// Build a protocol port for client entity `me`, the `index`-th client
    /// (used to assign an I/O forwarding node round-robin).
    pub fn port(&self, me: EntityId, index: usize) -> ClientPort {
        let ionode = if self.ionodes.is_empty() {
            None
        } else {
            Some(self.ionodes[index % self.ionodes.len()])
        };
        ClientPort::new(
            me,
            self.compute_fabric,
            self.storage_fabric,
            ionode,
            self.mds.clone(),
            self.ost_route.clone(),
            self.config.max_rpc_size,
        )
    }
}

/// A fully assembled storage cluster plus its simulation.
pub struct Cluster {
    /// The underlying discrete-event simulation.
    pub sim: Simulation<PfsMsg>,
    /// Infrastructure entity ids.
    pub handles: ClusterHandles,
    /// Raw clients registered via [`Cluster::add_raw_client`].
    pub clients: Vec<EntityId>,
    stats_bin: SimDuration,
    /// Failure events scheduled into this run (expanded at build time).
    failures_injected: u64,
}

impl Cluster {
    /// Build a cluster with the default statistics bin width (100 ms) and
    /// engine configuration.
    pub fn new(config: ClusterConfig) -> Result<Self> {
        Self::with_sim_config(config, SimConfig::default(), SimDuration::from_millis(100))
    }

    /// Build a cluster with explicit engine configuration and server
    /// statistics bin width.
    pub fn with_sim_config(
        config: ClusterConfig,
        sim_config: SimConfig,
        stats_bin: SimDuration,
    ) -> Result<Self> {
        config.validate(sim_config.lookahead)?;
        let mut sim = Simulation::new(sim_config);

        let compute_fabric = sim.add_entity(
            "compute-fabric",
            Box::new(Fabric::new(config.compute_fabric)),
        );
        let storage_fabric = sim.add_entity(
            "storage-fabric",
            Box::new(Fabric::new(config.storage_fabric)),
        );
        let mds: Vec<EntityId> = (0..config.num_mds)
            .map(|i| {
                sim.add_entity(
                    format!("mds{i}"),
                    Box::new(MetadataServer::new(
                        config.mds,
                        config.layout,
                        config.total_osts() as u32,
                        stats_bin,
                    )),
                )
            })
            .collect();
        let mut oss = Vec::new();
        let mut ost_route = Vec::new();
        for i in 0..config.num_oss {
            let first_ost = (i * config.osts_per_oss) as u32;
            let devices: Vec<_> = (0..config.osts_per_oss)
                .map(|j| {
                    let global = first_ost + j as u32;
                    config
                        .ost_overrides
                        .iter()
                        .find(|&&(o, _)| o == global)
                        .map(|&(_, d)| d)
                        .unwrap_or(config.ost_device)
                })
                .collect();
            let id = sim.add_entity(
                format!("oss{i}"),
                Box::new(Oss::with_devices(first_ost, devices, stats_bin)),
            );
            oss.push(id);
            for _ in 0..config.osts_per_oss {
                ost_route.push(id);
            }
        }
        let mut ionodes = Vec::new();
        for i in 0..config.num_ionodes {
            let id = sim.add_entity(
                format!("ionode{i}"),
                Box::new(IoNode::new(
                    config.bb_device,
                    config.bb_capacity,
                    config.bb_drain_streams,
                    storage_fabric,
                    ost_route.clone(),
                )),
            );
            ionodes.push(id);
        }

        // Resilience tier: replication fabric, ack-policy wiring on the
        // I/O nodes, and the expanded failure schedule as plain initial
        // events (so sequential and parallel executors see the same run).
        let mut repl_fabric = None;
        let mut failures_injected = 0u64;
        if let Some(resil) = config.resil.clone() {
            if !ionodes.is_empty() && resil.ack_mode.waits_for_replica() {
                repl_fabric = Some(sim.add_entity(
                    "repl-fabric",
                    Box::new(Fabric::new(FabricConfig {
                        latency: resil.geo.replica_latency(resil.ack_mode),
                        link_bw: resil.geo.link_bw,
                        agg_bw: 0,
                    })),
                ));
            }
            for (i, &id) in ionodes.iter().enumerate() {
                let peers: Vec<EntityId> = ionodes
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, &p)| p)
                    .collect();
                let node = sim.entity_mut::<IoNode>(id).expect("I/O node missing");
                node.set_resil(
                    resil.ack_mode,
                    resil.replicas(),
                    resil.rebuild_time,
                    peers,
                    repl_fabric,
                );
            }
            for ev in resil.failures.expand(ionodes.len() as u32) {
                // Only I/O-node loss applies to the PFS tier; other kinds
                // target the object store and are linted if present here.
                if ev.kind == FailureKind::IoNodeLoss && (ev.target as usize) < ionodes.len() {
                    // Failure control events are scheduled directly at the
                    // node, never routed through a fabric.
                    sim.schedule(
                        SimTime::ZERO + ev.at,
                        ionodes[ev.target as usize],
                        PfsMsg::Fail {
                            kind: ev.kind,
                            target: ev.target,
                        },
                    );
                    failures_injected += 1;
                }
            }
        }

        Ok(Cluster {
            sim,
            handles: ClusterHandles {
                compute_fabric,
                storage_fabric,
                mds,
                ionodes,
                oss,
                ost_route,
                repl_fabric,
                config,
            },
            clients: Vec::new(),
            stats_bin,
            failures_injected,
        })
    }

    /// The statistics bin width servers were built with.
    pub fn stats_bin(&self) -> SimDuration {
        self.stats_bin
    }

    /// Register a [`RawClient`] that executes `program`, starting at
    /// `start`. Returns its entity id.
    pub fn add_raw_client(&mut self, start: SimTime, program: Vec<IoOp>) -> EntityId {
        let index = self.clients.len();
        // Reserve the id first so the port can carry it.
        let me = EntityId(self.sim.num_entities() as u32);
        let port = self.handles.port(me, index);
        let id = self.sim.add_entity(
            format!("client{index}"),
            Box::new(RawClient::new(port, program)),
        );
        debug_assert_eq!(id, me);
        self.clients.push(id);
        self.sim.schedule(start, id, PfsMsg::Start);
        id
    }

    /// Run the simulation to completion (sequential executor).
    ///
    /// The run is recorded as a `pfs.cluster.run` span on the global
    /// [`pioeval_obs`] registry, and per-server service statistics are
    /// published to it afterwards (see [`Cluster::publish_telemetry`]).
    pub fn run(&mut self) -> RunResult {
        self.run_exec(&ExecMode::Sequential)
    }

    /// Run the simulation to completion with an explicit executor choice
    /// (sequential, or the conservative parallel engine with its window /
    /// partitioner / backend knobs). Same span and telemetry behaviour as
    /// [`Cluster::run`]; results are bit-identical across executors (see
    /// the determinism notes in `pioeval-des`).
    pub fn run_exec(&mut self, exec: &ExecMode) -> RunResult {
        let res = {
            let _obs_span = pioeval_obs::span(pioeval_obs::names::SPAN_PFS_RUN, "pfs");
            exec.run(&mut self.sim)
        };
        self.publish_telemetry();
        res
    }

    /// [`Cluster::run_exec`] with the parallel executor's scaling
    /// observatory enabled: also returns the merged per-worker phase
    /// profile (`None` when the run executed sequentially).
    pub fn run_exec_profiled(
        &mut self,
        exec: &ExecMode,
    ) -> (RunResult, Option<pioeval_types::ExecProfile>) {
        let out = {
            let _obs_span = pioeval_obs::span(pioeval_obs::names::SPAN_PFS_RUN, "pfs");
            exec.run_profiled(&mut self.sim)
        };
        self.publish_telemetry();
        out
    }

    /// Run sequentially while attributing processed events to entities.
    /// Returns the run result plus per-entity event counts — the profile
    /// that feeds `pioeval_des::Partitioner::greedy_from_counts` for
    /// load-aware partitioning of a subsequent parallel run.
    pub fn run_counted(&mut self) -> (RunResult, Vec<u64>) {
        let out = {
            let _obs_span = pioeval_obs::span(pioeval_obs::names::SPAN_PFS_RUN, "pfs");
            self.sim.run_counted()
        };
        self.publish_telemetry();
        out
    }

    /// Publish per-OSS/MDS service-time and queue-occupancy metrics to
    /// the global [`pioeval_obs`] registry. Called automatically by
    /// [`Cluster::run`]; safe to call again (stats finalization is
    /// idempotent, though counters accumulate per call by design).
    pub fn publish_telemetry(&mut self) {
        let obs = pioeval_obs::global();
        obs.counter(pioeval_obs::names::PFS_RUNS).inc();
        let mut peak_bin = 0u64;
        for stats in self.oss_stats() {
            obs.counter(pioeval_obs::names::PFS_OSS_REQUESTS)
                .add(stats.requests);
            obs.histogram(pioeval_obs::names::PFS_OSS_BUSY_US)
                .observe(stats.busy.as_nanos() / 1_000);
            obs.histogram(pioeval_obs::names::PFS_OSS_SERVICE_US)
                .observe(stats.mean_service_time().as_nanos() / 1_000);
            obs.histogram(pioeval_obs::names::PFS_OSS_QUEUE_WAIT_US)
                .observe(stats.mean_queue_wait().as_nanos() / 1_000);
            peak_bin = peak_bin.max(
                stats
                    .timelines
                    .iter()
                    .map(|t| t.peak_bin_bytes())
                    .max()
                    .unwrap_or(0),
            );
        }
        obs.gauge(pioeval_obs::names::PFS_OSS_PEAK_BIN_BYTES)
            .record(peak_bin);
        for i in 0..self.handles.mds.len() {
            let stats = &self.mds_at(i).stats;
            obs.counter(pioeval_obs::names::PFS_MDS_REQUESTS)
                .add(stats.requests);
            obs.histogram(pioeval_obs::names::PFS_MDS_SERVICE_US)
                .observe(stats.mean_service_time().as_nanos() / 1_000);
        }
        if let Some(r) = self.resilience() {
            obs.counter(pioeval_obs::names::RESIL_ACKED_BYTES)
                .add(r.acked_bytes);
            obs.counter(pioeval_obs::names::RESIL_REPLICATED_BYTES)
                .add(r.replicated_bytes);
            obs.counter(pioeval_obs::names::RESIL_DATA_LOSS_BYTES)
                .add(r.data_loss_bytes);
            obs.counter(pioeval_obs::names::RESIL_FAILURES)
                .add(r.failures_injected);
            obs.counter(pioeval_obs::names::RESIL_REQUEUED)
                .add(r.requeued);
            obs.gauge(pioeval_obs::names::RESIL_RECOVERY_US)
                .record(r.recovery.as_nanos() / 1_000);
            obs.histogram(pioeval_obs::names::RESIL_REPL_LAG_US)
                .observe(r.repl_lag_p99.as_nanos() / 1_000);
        }
        // Freshly published server stats deserve a frame now, not at the
        // next interval tick (a fast run may finish before one fires).
        pioeval_obs::live::pulse();
    }

    /// Aggregate the resilience report for this run. `Some` only when a
    /// resilience configuration was supplied (so default runs keep their
    /// reports unchanged); stats are folded in I/O-node index order.
    pub fn resilience(&self) -> Option<ResilienceReport> {
        let resil = self.handles.config.resil.as_ref()?;
        let stats: Vec<ResilienceStats> = self
            .handles
            .ionodes
            .iter()
            .map(|&id| {
                self.sim
                    .entity_ref::<IoNode>(id)
                    .expect("I/O node entity missing")
                    .resil
                    .clone()
            })
            .collect();
        // The PFS tier serves no degraded reads (that path lives on the
        // object store), so the amplification baseline is zero bytes.
        Some(ResilienceReport::from_stats(
            resil.ack_mode,
            self.failures_injected,
            0,
            &stats,
        ))
    }

    /// Completion records of a raw client.
    pub fn client_records(&self, id: EntityId) -> &[OpRecord] {
        &self
            .sim
            .entity_ref::<RawClient>(id)
            .expect("not a RawClient entity")
            .records
    }

    /// When a raw client finished its program (None = incomplete).
    pub fn client_finished(&self, id: EntityId) -> Option<SimTime> {
        self.sim
            .entity_ref::<RawClient>(id)
            .expect("not a RawClient entity")
            .finished_at
    }

    /// Borrow the primary metadata server (post-run inspection).
    pub fn mds(&self) -> &MetadataServer {
        self.mds_at(0)
    }

    /// Borrow metadata server `i`.
    pub fn mds_at(&self, i: usize) -> &MetadataServer {
        self.sim
            .entity_ref::<MetadataServer>(self.handles.mds[i])
            .expect("MDS entity missing")
    }

    /// Total metadata requests served across all metadata servers.
    pub fn mds_requests(&self) -> u64 {
        (0..self.handles.mds.len())
            .map(|i| self.mds_at(i).stats.requests)
            .sum()
    }

    /// Finalize and collect per-OSS server statistics.
    pub fn oss_stats(&mut self) -> Vec<ServerStats> {
        let ids = self.handles.oss.clone();
        ids.iter()
            .map(|&id| {
                let oss = self.sim.entity_mut::<Oss>(id).expect("OSS entity missing");
                oss.finalize_stats();
                oss.stats.clone()
            })
            .collect()
    }

    /// Transfer statistics of the (compute, storage) fabrics.
    pub fn fabric_stats(&self) -> (crate::fabric::FabricStats, crate::fabric::FabricStats) {
        let get = |id| {
            self.sim
                .entity_ref::<crate::fabric::Fabric>(id)
                .expect("fabric entity missing")
                .stats
        };
        (
            get(self.handles.compute_fabric),
            get(self.handles.storage_fabric),
        )
    }

    /// Burst-buffer statistics per I/O node (empty when tier disabled).
    pub fn ionode_stats(&self) -> Vec<crate::ionode::BurstBufferStats> {
        self.handles
            .ionodes
            .iter()
            .map(|&id| {
                self.sim
                    .entity_ref::<IoNode>(id)
                    .expect("I/O node entity missing")
                    .stats
            })
            .collect()
    }

    /// Enable per-request trace recording on every infrastructure entity
    /// (fabrics, MDSs, OSSs, I/O nodes). Client-side emission is enabled
    /// separately via [`ClientPort::set_trace`] — both are needed for a
    /// request to be traced end to end. Call before the run.
    pub fn enable_request_trace(&mut self) {
        let mut fabrics = vec![self.handles.compute_fabric, self.handles.storage_fabric];
        fabrics.extend(self.handles.repl_fabric);
        for id in fabrics {
            if let Some(f) = self.sim.entity_mut::<Fabric>(id) {
                f.reqtrace.enabled = true;
            }
        }
        for id in self.handles.mds.clone() {
            if let Some(m) = self.sim.entity_mut::<MetadataServer>(id) {
                m.reqtrace.enabled = true;
            }
        }
        for id in self.handles.oss.clone() {
            if let Some(o) = self.sim.entity_mut::<Oss>(id) {
                o.reqtrace.enabled = true;
            }
        }
        for id in self.handles.ionodes.clone() {
            if let Some(n) = self.sim.entity_mut::<IoNode>(id) {
                n.reqtrace.enabled = true;
            }
        }
    }

    /// Drain the request-trace events recorded by all infrastructure
    /// entities, in entity-id order (deterministic across executors —
    /// each entity's recorder is only ever appended to by that entity).
    pub fn drain_request_events(&mut self) -> Vec<ReqEvent> {
        let mut out = Vec::new();
        let mut ids = vec![self.handles.compute_fabric, self.handles.storage_fabric];
        ids.extend(self.handles.repl_fabric);
        ids.extend(self.handles.mds.iter().copied());
        ids.extend(self.handles.oss.iter().copied());
        ids.extend(self.handles.ionodes.iter().copied());
        ids.sort_by_key(|id| id.0);
        for id in ids {
            if let Some(f) = self.sim.entity_mut::<Fabric>(id) {
                out.extend(f.reqtrace.drain());
            } else if let Some(m) = self.sim.entity_mut::<MetadataServer>(id) {
                out.extend(m.reqtrace.drain());
            } else if let Some(o) = self.sim.entity_mut::<Oss>(id) {
                out.extend(o.reqtrace.drain());
            } else if let Some(n) = self.sim.entity_mut::<IoNode>(id) {
                out.extend(n.reqtrace.drain());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_types::{bytes, FileId, MetaOp};

    fn simple_program(file: u32, write_mb: u64) -> Vec<IoOp> {
        let f = FileId::new(file);
        let mut ops = vec![IoOp::meta(MetaOp::Create, f)];
        ops.push(IoOp::write(f, 0, write_mb * 1_000_000));
        ops.push(IoOp::meta(MetaOp::Close, f));
        ops
    }

    #[test]
    fn end_to_end_write_completes() {
        let mut cluster = Cluster::new(ClusterConfig::default()).unwrap();
        let c = cluster.add_raw_client(SimTime::ZERO, simple_program(1, 16));
        cluster.run();
        let finished = cluster.client_finished(c).expect("client never finished");
        assert!(finished > SimTime::ZERO);
        let records = cluster.client_records(c);
        assert_eq!(records.len(), 3);
        // The write moved 16 MB through two fabrics onto HDDs; the
        // end-to-end time must exceed the raw 10GbE serialization floor
        // (~12.8 ms) and the per-OST device time.
        let write = &records[1];
        assert!(write.end.since(write.start) > SimDuration::from_millis(10));
        let stats = cluster.oss_stats();
        let total_written: u64 = stats.iter().map(|s| s.bytes_written).sum();
        assert_eq!(total_written, 16_000_000);
    }

    #[test]
    fn striping_distributes_across_oss() {
        let cfg = ClusterConfig {
            layout: crate::config::LayoutPolicy {
                stripe_size: bytes::mib(1),
                stripe_count: 8,
            },
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(cfg).unwrap();
        let c = cluster.add_raw_client(SimTime::ZERO, simple_program(1, 32));
        cluster.run();
        assert!(cluster.client_finished(c).is_some());
        let stats = cluster.oss_stats();
        // All 4 OSS (8 OSTs) should have received data.
        assert!(stats.iter().all(|s| s.bytes_written > 0));
    }

    #[test]
    fn burst_buffer_tier_accelerates_app_visible_writes() {
        let base = ClusterConfig::default();
        let with_bb = ClusterConfig {
            num_ionodes: 2,
            ..base.clone()
        };

        let run = |cfg: ClusterConfig| -> (SimDuration, SimTime) {
            let mut cluster = Cluster::new(cfg).unwrap();
            let c = cluster.add_raw_client(SimTime::ZERO, simple_program(1, 64));
            cluster.run();
            let records = cluster.client_records(c);
            let write = &records[1];
            (
                write.end.since(write.start),
                cluster.client_finished(c).unwrap(),
            )
        };

        let (direct_write, _) = run(base);
        let (bb_write, _) = run(with_bb);
        // The SSD tier absorbs the 64 MB burst much faster than the
        // HDD-backed direct path.
        assert!(
            bb_write.as_nanos() * 2 < direct_write.as_nanos(),
            "burst buffer write {bb_write} not faster than direct {direct_write}"
        );
    }

    #[test]
    fn mds_sees_expected_op_mix() {
        let mut cluster = Cluster::new(ClusterConfig::default()).unwrap();
        for i in 0..4 {
            cluster.add_raw_client(SimTime::ZERO, simple_program(i, 1));
        }
        cluster.run();
        let mds = cluster.mds();
        assert_eq!(mds.op_counts[MetaOp::Create.index()], 4);
        assert_eq!(mds.op_counts[MetaOp::Close.index()], 4);
        assert_eq!(mds.num_files(), 4);
    }

    #[test]
    fn multiple_mds_share_the_namespace_load() {
        let cfg = ClusterConfig {
            num_mds: 2,
            ..ClusterConfig::default()
        };
        let mut cluster = Cluster::new(cfg).unwrap();
        // Files 0..8 hash across both MDSs (even ids → mds0, odd → mds1).
        let program: Vec<IoOp> = (0..8)
            .map(|i| IoOp::meta(MetaOp::Create, FileId::new(i)))
            .collect();
        cluster.add_raw_client(SimTime::ZERO, program);
        cluster.run();
        let a = cluster.mds_at(0).stats.requests;
        let b = cluster.mds_at(1).stats.requests;
        assert_eq!(a + b, 8);
        assert_eq!(a, 4);
        assert_eq!(b, 4);
        assert_eq!(cluster.mds_requests(), 8);
        // Namespaces are disjoint.
        assert_eq!(
            cluster.mds_at(0).num_files() + cluster.mds_at(1).num_files(),
            8
        );
    }

    #[test]
    fn clients_contend_on_shared_storage() {
        // One client writing 8 MB alone vs. eight clients doing the same:
        // the makespan must grow (the first client is FIFO-protected, but
        // later arrivals queue behind it at the shared OSTs and fabrics).
        let solo = {
            let mut cluster = Cluster::new(ClusterConfig::default()).unwrap();
            let c = cluster.add_raw_client(SimTime::ZERO, simple_program(0, 8));
            cluster.run();
            cluster.client_finished(c).unwrap()
        };
        let contended = {
            let mut cluster = Cluster::new(ClusterConfig::default()).unwrap();
            let clients: Vec<_> = (0..8)
                .map(|i| cluster.add_raw_client(SimTime::ZERO, simple_program(i, 8)))
                .collect();
            cluster.run();
            clients
                .iter()
                .map(|&c| cluster.client_finished(c).unwrap())
                .max()
                .unwrap()
        };
        assert!(
            contended.as_nanos() > 2 * solo.as_nanos(),
            "contended makespan {contended} should exceed 2x solo {solo}"
        );
    }
}
