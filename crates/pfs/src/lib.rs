#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # pioeval-pfs
//!
//! A discrete-event simulator of an HPC storage cluster, reproducing the
//! architecture of the paper's Fig. 1: compute nodes connected over a
//! fast compute fabric (InfiniBand-class), an optional tier of I/O
//! forwarding nodes with solid-state burst buffers, a slower storage
//! fabric (10GbE-class), and a storage cluster of one metadata server
//! (MDS) and several object storage servers (OSS), each hosting object
//! storage targets (OSTs, the backing devices).
//!
//! Files are striped across OSTs Lustre-style ([`striping`]); clients
//! obtain layouts from the MDS at create/open and address OSTs directly.
//! Every message traverses explicit fabric entities that model propagation
//! latency and per-endpoint serialization, so fan-in congestion (many
//! clients, one server) and the compute-vs-storage bandwidth gap emerge
//! from queueing rather than being asserted.
//!
//! The crate provides the *server side* plus a [`client::ClientPort`]
//! protocol helper; application-level clients (which run the layered I/O
//! software stack of Fig. 2) live in `pioeval-iostack`.

pub mod client;
pub mod cluster;
pub mod config;
pub mod device;
pub mod fabric;
pub mod ionode;
pub mod mds;
pub mod msg;
pub mod oss;
pub mod stats;
pub mod striping;

pub use client::{ClientPort, RawClient};
pub use cluster::{Cluster, ClusterHandles};
pub use config::{ClusterConfig, DeviceConfig, FabricConfig, LayoutPolicy, MdsConfig};
pub use fabric::FabricStats;
pub use ionode::BurstBufferStats;
pub use msg::{
    payload_bytes, payload_tid, IoReply, IoRequest, MetaReply, MetaRequest, NetPacket, ObjReply,
    ObjRequest, ObjVerb, PfsMsg, ReplicaAck, ReplicaChunk, RequestId, Tid,
};
pub use stats::{OstTimeline, ServerStats};
pub use striping::{Layout, StripeChunk};
