//! Object storage server (OSS).
//!
//! Hosts a contiguous range of OSTs. Each OST is an independent FIFO
//! device ([`crate::device::DeviceModel`]); requests to different OSTs on
//! the same OSS proceed in parallel, requests to the same OST queue.

use crate::config::DeviceConfig;
use crate::device::DeviceModel;
use crate::msg::{route, IoReply, PfsMsg};
use crate::stats::ServerStats;
use pioeval_des::{Ctx, Entity, Envelope};
use pioeval_types::{OstId, ReqMark, ReqRecorder, ServerKind, SimDuration};
use std::collections::HashMap;

/// One pending device access awaiting its completion event.
struct Pending {
    req: crate::msg::IoRequest,
    queue_delay: SimDuration,
}

/// The object storage server entity.
pub struct Oss {
    /// Global id of the first OST hosted here.
    first_ost: u32,
    /// Backing devices, indexed by local OST index.
    pub osts: Vec<DeviceModel>,
    pending: HashMap<u64, Pending>,
    next_token: u64,
    /// Aggregate service statistics (one timeline lane per OST).
    pub stats: ServerStats,
    /// Per-request trace recorder (device-service marks for traced requests).
    pub reqtrace: ReqRecorder,
}

impl Oss {
    /// A new OSS hosting `count` OSTs starting at global id `first_ost`,
    /// all with the same device model.
    pub fn new(first_ost: u32, count: usize, device: DeviceConfig, stats_bin: SimDuration) -> Self {
        Self::with_devices(first_ost, vec![device; count], stats_bin)
    }

    /// A new OSS with explicit per-OST device models (degraded-device
    /// injection).
    pub fn with_devices(
        first_ost: u32,
        devices: Vec<DeviceConfig>,
        stats_bin: SimDuration,
    ) -> Self {
        let count = devices.len();
        Oss {
            first_ost,
            osts: devices.into_iter().map(DeviceModel::new).collect(),
            pending: HashMap::new(),
            next_token: 0,
            stats: ServerStats::new(count, stats_bin),
            reqtrace: ReqRecorder::default(),
        }
    }

    /// Does this OSS host `ost`?
    pub fn hosts(&self, ost: OstId) -> bool {
        (ost.0 as usize) >= self.first_ost as usize
            && (ost.0 as usize) < self.first_ost as usize + self.osts.len()
    }

    fn local_index(&self, ost: OstId) -> usize {
        assert!(self.hosts(ost), "OSS does not host {ost}");
        (ost.0 - self.first_ost) as usize
    }

    /// Refresh the aggregate counters from the per-device models.
    pub fn finalize_stats(&mut self) {
        self.stats.bytes_read = self.osts.iter().map(|d| d.bytes_read).sum();
        self.stats.bytes_written = self.osts.iter().map(|d| d.bytes_written).sum();
        self.stats.seeks = self.osts.iter().map(|d| d.seeks).sum();
        self.stats.busy = self
            .osts
            .iter()
            .fold(SimDuration::ZERO, |acc, d| acc + d.busy);
        self.stats.lane_busy = self.osts.iter().map(|d| d.busy).collect();
    }
}

impl Entity<PfsMsg> for Oss {
    fn on_event(&mut self, ev: Envelope<PfsMsg>, ctx: &mut Ctx<'_, PfsMsg>) {
        match ev.msg {
            PfsMsg::Io(req) => {
                let now = ctx.now();
                let local = self.local_index(req.ost);
                let device = &mut self.osts[local];
                let queue_delay = device.queue_delay(now);
                let completion = device.access(now, req.kind, req.obj_offset, req.len);
                self.stats.requests += 1;
                self.stats.queue_wait += queue_delay;
                self.stats.timelines[local].record(completion, req.kind, req.len);
                self.reqtrace.record(
                    req.tid,
                    ctx.me().0,
                    ReqMark::Server {
                        kind: ServerKind::OssDevice,
                        arrive: now,
                        queue: queue_delay,
                        depart: completion,
                    },
                );

                let token = self.next_token;
                self.next_token += 1;
                self.pending.insert(token, Pending { req, queue_delay });
                ctx.send_self(completion.since(now), PfsMsg::DeviceDone { token });
            }
            PfsMsg::DeviceDone { token } => {
                let Pending { req, queue_delay } = self
                    .pending
                    .remove(&token)
                    .expect("completion for unknown device token");
                let reply = IoReply {
                    id: req.id,
                    kind: req.kind,
                    file: req.file,
                    ost: req.ost,
                    len: req.len,
                    from_burst_buffer: false,
                    queue_delay,
                    tid: req.tid,
                };
                let size = reply.wire_size();
                let (first_hop, msg) =
                    route(&req.reply_via, req.reply_to, size, PfsMsg::IoDone(reply));
                ctx.send(first_hop, ctx.lookahead(), msg);
            }
            other => panic!("OSS received unexpected message: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::IoRequest;
    use pioeval_des::{EntityId, SimConfig, Simulation};
    use pioeval_types::{FileId, IoKind, SimTime};

    struct Collector {
        replies: Vec<(SimTime, IoReply)>,
    }
    impl Entity<PfsMsg> for Collector {
        fn on_event(&mut self, ev: Envelope<PfsMsg>, ctx: &mut Ctx<'_, PfsMsg>) {
            if let PfsMsg::IoDone(rep) = ev.msg {
                self.replies.push((ctx.now(), rep));
            }
        }
    }

    fn setup(osts: usize) -> (Simulation<PfsMsg>, EntityId, EntityId) {
        let mut sim = Simulation::new(SimConfig::default());
        let oss = sim.add_entity(
            "oss",
            Box::new(Oss::new(
                0,
                osts,
                DeviceConfig::hdd(),
                SimDuration::from_secs(1),
            )),
        );
        let client = sim.add_entity("client", Box::new(Collector { replies: vec![] }));
        (sim, oss, client)
    }

    fn io_req(id: u64, client: EntityId, ost: u32, offset: u64, len: u64) -> PfsMsg {
        PfsMsg::Io(IoRequest {
            id,
            reply_to: client,
            reply_via: vec![],
            kind: IoKind::Write,
            file: FileId::new(0),
            ost: OstId::new(ost),
            obj_offset: offset,
            len,
            tid: 0,
        })
    }

    #[test]
    fn write_completes_and_replies() {
        let (mut sim, oss, client) = setup(2);
        // 140 MB at 140 MB/s ≈ 1 s.
        sim.schedule(SimTime::ZERO, oss, io_req(1, client, 0, 0, 140_000_000));
        sim.run();
        let replies = &sim.entity_ref::<Collector>(client).unwrap().replies;
        assert_eq!(replies.len(), 1);
        assert!(replies[0].0 >= SimTime::from_secs(1));
        assert_eq!(replies[0].1.id, 1);
        assert_eq!(replies[0].1.len, 140_000_000);
        assert!(!replies[0].1.from_burst_buffer);
    }

    #[test]
    fn same_ost_serializes_different_osts_parallelize() {
        let (mut sim, oss, client) = setup(2);
        sim.schedule(SimTime::ZERO, oss, io_req(1, client, 0, 0, 14_000_000));
        sim.schedule(
            SimTime::ZERO,
            oss,
            io_req(2, client, 0, 14_000_000, 14_000_000),
        );
        sim.schedule(SimTime::ZERO, oss, io_req(3, client, 1, 0, 14_000_000));
        sim.run();
        let replies = &sim.entity_ref::<Collector>(client).unwrap().replies;
        assert_eq!(replies.len(), 3);
        let t = |id: u64| replies.iter().find(|(_, r)| r.id == id).unwrap().0;
        // Request 3 (other OST) finishes with request 1, well before 2.
        assert_eq!(t(1), t(3));
        assert!(t(2) > t(1));
        // Request 2 reports the queueing delay behind request 1.
        let r2 = &replies.iter().find(|(_, r)| r.id == 2).unwrap().1;
        assert!(r2.queue_delay >= SimDuration::from_millis(90));
    }

    #[test]
    fn stats_finalize_aggregates_devices() {
        let (mut sim, oss, client) = setup(2);
        sim.schedule(SimTime::ZERO, oss, io_req(1, client, 0, 0, 1000));
        sim.schedule(SimTime::ZERO, oss, io_req(2, client, 1, 0, 2000));
        sim.run();
        let server = sim.entity_mut::<Oss>(oss).unwrap();
        server.finalize_stats();
        assert_eq!(server.stats.bytes_written, 3000);
        assert_eq!(server.stats.requests, 2);
        assert!(server.hosts(OstId::new(1)));
        assert!(!server.hosts(OstId::new(2)));
    }
}
