//! The metadata server (MDS).
//!
//! A single FIFO service queue with per-operation costs, a namespace map,
//! and layout allocation. The MDS is deliberately a *serial* resource:
//! metadata-intensive workloads (mdtest-style trees, small-file deep
//! learning datasets, workflow stage-in/out) saturate it long before the
//! OSTs — the "metadata performance can be a limiting factor" observation
//! of Sec. IV-A1.

use crate::config::{LayoutPolicy, MdsConfig};
use crate::msg::{route, MetaReply, PfsMsg, HEADER_BYTES};
use crate::stats::{OstTimeline, ServerStats};
use crate::striping::Layout;
use pioeval_des::{Ctx, Entity, Envelope};
use pioeval_types::{
    FileId, IoKind, MetaOp, ReqMark, ReqRecorder, ServerKind, SimDuration, SimTime,
};
use std::collections::HashMap;

/// Per-file namespace entry.
#[derive(Clone, Debug)]
pub struct FileMeta {
    /// Striping layout allocated at create time.
    pub layout: Layout,
    /// Size as lazily reported by clients on close/fsync.
    pub size: u64,
    /// Creation timestamp.
    pub created: SimTime,
}

/// A metadata-change event, in the style of FSMonitor (Paul et al.):
/// the storage-system-level metadata event stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetaEvent {
    /// When the operation completed at the MDS.
    pub time: SimTime,
    /// The operation.
    pub op: MetaOp,
    /// The file it touched.
    pub file: FileId,
}

/// The metadata server entity.
pub struct MetadataServer {
    cfg: MdsConfig,
    layout_policy: LayoutPolicy,
    total_osts: u32,
    /// Round-robin start OST for newly created files.
    next_start_ost: u32,
    namespace: HashMap<FileId, FileMeta>,
    /// FIFO service queue tail.
    next_free: SimTime,
    /// Per-op-kind service counts.
    pub op_counts: [u64; 8],
    /// Aggregate service statistics (timeline lane 0 records op *counts*
    /// as "bytes" in the write lane — one unit per op).
    pub stats: ServerStats,
    /// Metadata event stream (FSMonitor-style), in completion order.
    pub events: Vec<MetaEvent>,
    /// Whether to retain the event stream (large runs may disable it).
    pub record_events: bool,
    /// Per-request trace recorder (metadata-service marks for traced requests).
    pub reqtrace: ReqRecorder,
}

impl MetadataServer {
    /// A new MDS with an empty namespace.
    pub fn new(
        cfg: MdsConfig,
        layout_policy: LayoutPolicy,
        total_osts: u32,
        stats_bin: SimDuration,
    ) -> Self {
        MetadataServer {
            cfg,
            layout_policy,
            total_osts,
            next_start_ost: 0,
            namespace: HashMap::new(),
            next_free: SimTime::ZERO,
            op_counts: [0; 8],
            stats: ServerStats::new(1, stats_bin),
            events: Vec::new(),
            record_events: true,
            reqtrace: ReqRecorder::default(),
        }
    }

    /// Number of files currently in the namespace.
    pub fn num_files(&self) -> usize {
        self.namespace.len()
    }

    /// Look up a file's metadata (post-run inspection).
    pub fn file_meta(&self, file: FileId) -> Option<&FileMeta> {
        self.namespace.get(&file)
    }

    /// The timeline of operation counts (one unit per op, write lane).
    pub fn op_timeline(&self) -> &OstTimeline {
        &self.stats.timelines[0]
    }

    fn allocate_layout(&mut self) -> Layout {
        let layout = Layout::new(
            self.layout_policy.stripe_size,
            self.layout_policy.stripe_count,
            self.next_start_ost,
            self.total_osts,
        );
        self.next_start_ost = (self.next_start_ost + 1) % self.total_osts;
        layout
    }

    /// Apply the namespace side effects of `op` and build the reply body.
    fn apply(
        &mut self,
        op: MetaOp,
        file: FileId,
        size_hint: u64,
        now: SimTime,
    ) -> (Option<Layout>, u64) {
        match op {
            MetaOp::Create => {
                let layout = self.allocate_layout();
                self.namespace.insert(
                    file,
                    FileMeta {
                        layout,
                        size: 0,
                        created: now,
                    },
                );
                (Some(layout), 0)
            }
            MetaOp::Open => {
                // Open with implicit create (O_CREAT semantics) keeps
                // workload generators simple.
                if let Some(meta) = self.namespace.get(&file) {
                    (Some(meta.layout), meta.size)
                } else {
                    let layout = self.allocate_layout();
                    self.namespace.insert(
                        file,
                        FileMeta {
                            layout,
                            size: 0,
                            created: now,
                        },
                    );
                    (Some(layout), 0)
                }
            }
            MetaOp::Close | MetaOp::Fsync => {
                let mut size = 0;
                if let Some(meta) = self.namespace.get_mut(&file) {
                    meta.size = meta.size.max(size_hint);
                    size = meta.size;
                }
                (None, size)
            }
            MetaOp::Stat => {
                let size = self.namespace.get(&file).map(|m| m.size).unwrap_or(0);
                (None, size)
            }
            MetaOp::Unlink => {
                self.namespace.remove(&file);
                (None, 0)
            }
            MetaOp::Mkdir | MetaOp::Readdir => (None, 0),
        }
    }
}

impl Entity<PfsMsg> for MetadataServer {
    fn on_event(&mut self, ev: Envelope<PfsMsg>, ctx: &mut Ctx<'_, PfsMsg>) {
        let PfsMsg::Meta(req) = ev.msg else {
            panic!("MDS received non-Meta message: {:?}", ev.msg);
        };
        let now = ctx.now();
        let start = now.max(self.next_free);
        let queue_delay = start.since(now);
        let cost = self.cfg.cost(req.op).max(ctx.lookahead());
        let completion = start + cost;
        self.next_free = completion;

        self.op_counts[req.op.index()] += 1;
        self.stats.requests += 1;
        self.stats.queue_wait += queue_delay;
        self.stats.busy += cost;
        self.stats.timelines[0].record(completion, IoKind::Write, 1);
        if self.record_events {
            self.events.push(MetaEvent {
                time: completion,
                op: req.op,
                file: req.file,
            });
        }

        self.reqtrace.record(
            req.tid,
            ctx.me().0,
            ReqMark::Server {
                kind: ServerKind::Mds,
                arrive: now,
                queue: queue_delay,
                depart: completion,
            },
        );

        let (layout, size) = self.apply(req.op, req.file, req.size_hint, now);
        let reply = MetaReply {
            id: req.id,
            op: req.op,
            file: req.file,
            layout,
            size,
            queue_delay,
            tid: req.tid,
        };
        let (first_hop, msg) = route(
            &req.reply_via,
            req.reply_to,
            HEADER_BYTES,
            PfsMsg::MetaDone(reply),
        );
        ctx.send(first_hop, completion.since(now).max(ctx.lookahead()), msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{LayoutPolicy, MdsConfig};
    use crate::msg::MetaRequest;
    use pioeval_des::{EntityId, SimConfig, Simulation};

    /// Collects metadata replies.
    struct Collector {
        replies: Vec<(SimTime, MetaReply)>,
    }
    impl Entity<PfsMsg> for Collector {
        fn on_event(&mut self, ev: Envelope<PfsMsg>, ctx: &mut Ctx<'_, PfsMsg>) {
            if let PfsMsg::MetaDone(rep) = ev.msg {
                self.replies.push((ctx.now(), rep));
            }
        }
    }

    fn setup() -> (Simulation<PfsMsg>, EntityId, EntityId) {
        let mut sim = Simulation::new(SimConfig::default());
        let mds = sim.add_entity(
            "mds",
            Box::new(MetadataServer::new(
                MdsConfig::default(),
                LayoutPolicy::default(),
                8,
                SimDuration::from_secs(1),
            )),
        );
        let client = sim.add_entity("client", Box::new(Collector { replies: vec![] }));
        (sim, mds, client)
    }

    fn meta_req(id: u64, client: EntityId, op: MetaOp, file: u32) -> PfsMsg {
        PfsMsg::Meta(MetaRequest {
            id,
            reply_to: client,
            reply_via: vec![],
            op,
            file: FileId::new(file),
            size_hint: 0,
            tid: 0,
        })
    }

    #[test]
    fn create_allocates_round_robin_layouts() {
        let (mut sim, mds, client) = setup();
        sim.schedule(SimTime::ZERO, mds, meta_req(1, client, MetaOp::Create, 1));
        sim.schedule(SimTime::ZERO, mds, meta_req(2, client, MetaOp::Create, 2));
        sim.run();
        let replies = &sim.entity_ref::<Collector>(client).unwrap().replies;
        assert_eq!(replies.len(), 2);
        let l1 = replies[0].1.layout.unwrap();
        let l2 = replies[1].1.layout.unwrap();
        assert_eq!(l1.start_ost, 0);
        assert_eq!(l2.start_ost, 1);
        let server = sim.entity_ref::<MetadataServer>(mds).unwrap();
        assert_eq!(server.num_files(), 2);
        assert_eq!(server.op_counts[MetaOp::Create.index()], 2);
    }

    #[test]
    fn serial_queue_accumulates_delay() {
        let (mut sim, mds, client) = setup();
        for i in 0..10 {
            sim.schedule(
                SimTime::ZERO,
                mds,
                meta_req(i, client, MetaOp::Create, i as u32),
            );
        }
        sim.run();
        let replies = &sim.entity_ref::<Collector>(client).unwrap().replies;
        // Creates cost 150us each and queue FIFO: the last completes at
        // ~1.5ms, and queue delays grow monotonically.
        let last = replies.last().unwrap();
        assert!(last.0 >= SimTime::from_micros(1500));
        assert!(replies
            .windows(2)
            .all(|w| w[0].1.queue_delay <= w[1].1.queue_delay));
    }

    #[test]
    fn close_updates_size_stat_reads_it() {
        let (mut sim, mds, client) = setup();
        sim.schedule(SimTime::ZERO, mds, meta_req(1, client, MetaOp::Create, 7));
        let close = PfsMsg::Meta(MetaRequest {
            id: 2,
            reply_to: client,
            reply_via: vec![],
            op: MetaOp::Close,
            file: FileId::new(7),
            size_hint: 4096,
            tid: 0,
        });
        sim.schedule(SimTime::from_millis(1), mds, close);
        sim.schedule(
            SimTime::from_millis(2),
            mds,
            meta_req(3, client, MetaOp::Stat, 7),
        );
        sim.run();
        let replies = &sim.entity_ref::<Collector>(client).unwrap().replies;
        assert_eq!(replies[2].1.size, 4096);
    }

    #[test]
    fn unlink_removes_and_events_stream_records() {
        let (mut sim, mds, client) = setup();
        sim.schedule(SimTime::ZERO, mds, meta_req(1, client, MetaOp::Create, 3));
        sim.schedule(
            SimTime::from_millis(1),
            mds,
            meta_req(2, client, MetaOp::Unlink, 3),
        );
        sim.run();
        let server = sim.entity_ref::<MetadataServer>(mds).unwrap();
        assert_eq!(server.num_files(), 0);
        assert_eq!(server.events.len(), 2);
        assert_eq!(server.events[0].op, MetaOp::Create);
        assert_eq!(server.events[1].op, MetaOp::Unlink);
        assert!(server.events[0].time < server.events[1].time);
    }

    #[test]
    fn open_implicitly_creates() {
        let (mut sim, mds, client) = setup();
        sim.schedule(SimTime::ZERO, mds, meta_req(1, client, MetaOp::Open, 9));
        sim.run();
        let replies = &sim.entity_ref::<Collector>(client).unwrap().replies;
        assert!(replies[0].1.layout.is_some());
        assert_eq!(
            sim.entity_ref::<MetadataServer>(mds).unwrap().num_files(),
            1
        );
    }
}
