//! Lustre-style file striping.
//!
//! A file's data is distributed round-robin over `stripe_count` OSTs in
//! units of `stripe_size` bytes, starting at `start_ost`. [`Layout::map`]
//! translates a logical file extent into per-OST chunks; the inverse
//! bookkeeping (object offsets) follows the usual Lustre object layout:
//! the bytes a file stores on one OST are densely packed in that OST's
//! backing object.

use pioeval_types::OstId;
use serde::{Deserialize, Serialize};

/// A file's striping layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    /// Stripe unit in bytes.
    pub stripe_size: u64,
    /// Number of OSTs the file is striped over.
    pub stripe_count: u32,
    /// First OST index (global); stripes go round-robin from here.
    pub start_ost: u32,
}

/// One contiguous piece of a logical extent on a single OST.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StripeChunk {
    /// Target OST.
    pub ost: OstId,
    /// Offset within the file's backing object on that OST.
    pub obj_offset: u64,
    /// Offset within the logical file.
    pub file_offset: u64,
    /// Chunk length in bytes.
    pub len: u64,
}

impl Layout {
    /// A layout striped over `count` OSTs of `total_osts`, starting at
    /// `start`, with the given stripe size. `count` is clamped to
    /// `total_osts`.
    pub fn new(stripe_size: u64, count: u32, start: u32, total_osts: u32) -> Self {
        assert!(stripe_size > 0, "stripe size must be positive");
        assert!(total_osts > 0, "need at least one OST");
        Layout {
            stripe_size,
            stripe_count: count.clamp(1, total_osts),
            start_ost: start % total_osts,
        }
    }

    /// The OST (by position *within the stripe set*, 0-based) holding the
    /// byte at `offset`.
    fn stripe_index(&self, offset: u64) -> u32 {
        ((offset / self.stripe_size) % self.stripe_count as u64) as u32
    }

    /// Global OST id for stripe-set position `idx`, given the cluster's
    /// total OST count.
    fn ost_for(&self, idx: u32, total_osts: u32) -> OstId {
        OstId::new((self.start_ost + idx) % total_osts)
    }

    /// Offset within the backing object on the OST that holds file byte
    /// `offset`: full stripe rounds below it, plus the position inside the
    /// current stripe unit.
    fn object_offset(&self, offset: u64) -> u64 {
        let stripe_round = offset / (self.stripe_size * self.stripe_count as u64);
        stripe_round * self.stripe_size + offset % self.stripe_size
    }

    /// Split the logical extent `[offset, offset+len)` into per-OST chunks,
    /// in file-offset order. Produces no chunks for `len == 0`.
    pub fn map(&self, offset: u64, len: u64, total_osts: u32) -> Vec<StripeChunk> {
        let mut chunks = Vec::new();
        let mut pos = offset;
        let end = offset + len;
        while pos < end {
            let within = pos % self.stripe_size;
            let chunk_len = (self.stripe_size - within).min(end - pos);
            chunks.push(StripeChunk {
                ost: self.ost_for(self.stripe_index(pos), total_osts),
                obj_offset: self.object_offset(pos),
                file_offset: pos,
                len: chunk_len,
            });
            pos += chunk_len;
        }
        chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_stripe_within_unit() {
        let l = Layout::new(1024, 4, 0, 8);
        let chunks = l.map(100, 200, 8);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].ost, OstId::new(0));
        assert_eq!(chunks[0].obj_offset, 100);
        assert_eq!(chunks[0].len, 200);
    }

    #[test]
    fn extent_spanning_stripes_round_robins() {
        let l = Layout::new(1024, 4, 0, 8);
        // 4 KiB starting at 0 touches OSTs 0,1,2,3 with 1 KiB each.
        let chunks = l.map(0, 4096, 8);
        assert_eq!(chunks.len(), 4);
        for (i, c) in chunks.iter().enumerate() {
            assert_eq!(c.ost, OstId::new(i as u32));
            assert_eq!(c.obj_offset, 0);
            assert_eq!(c.len, 1024);
            assert_eq!(c.file_offset, i as u64 * 1024);
        }
    }

    #[test]
    fn second_stripe_round_advances_object_offset() {
        let l = Layout::new(1024, 2, 0, 4);
        // Bytes [2048, 3072) are stripe unit 2 → OST 0 again, object
        // offset 1024 (second unit stored on that OST).
        let chunks = l.map(2048, 1024, 4);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].ost, OstId::new(0));
        assert_eq!(chunks[0].obj_offset, 1024);
    }

    #[test]
    fn start_ost_offsets_the_rotation() {
        let l = Layout::new(1024, 2, 3, 4);
        let chunks = l.map(0, 2048, 4);
        assert_eq!(chunks[0].ost, OstId::new(3));
        assert_eq!(chunks[1].ost, OstId::new(0)); // wraps around total_osts
    }

    #[test]
    fn stripe_count_clamped_to_total() {
        let l = Layout::new(1024, 16, 0, 4);
        assert_eq!(l.stripe_count, 4);
    }

    #[test]
    fn zero_length_maps_to_nothing() {
        let l = Layout::new(1024, 2, 0, 4);
        assert!(l.map(500, 0, 4).is_empty());
    }

    #[test]
    fn chunks_partition_the_extent() {
        let l = Layout::new(1000, 3, 1, 5);
        let (off, len) = (2_345, 7_777);
        let chunks = l.map(off, len, 5);
        // Coverage: contiguous in file offsets, total length preserved.
        let mut pos = off;
        for c in &chunks {
            assert_eq!(c.file_offset, pos);
            assert!(c.len > 0 && c.len <= 1000);
            pos += c.len;
        }
        assert_eq!(pos, off + len);
    }

    #[test]
    fn bytes_on_one_ost_are_densely_packed() {
        // Walk a file sequentially; per-OST object offsets must grow
        // contiguously (0, stripe, 2*stripe, ...) — the Lustre object
        // layout invariant.
        let l = Layout::new(512, 4, 0, 4);
        let chunks = l.map(0, 512 * 16, 4);
        let mut next_obj = [0u64; 4];
        for c in chunks {
            let i = c.ost.index();
            assert_eq!(c.obj_offset, next_obj[i]);
            next_obj[i] += c.len;
        }
        assert_eq!(next_obj, [512 * 4; 4]);
    }
}
