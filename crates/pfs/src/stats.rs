//! Server-side statistics.
//!
//! The paper's measurement phase (Sec. IV-A2) lists *server-side
//! statistics* — load on the servers and storage devices — as a data
//! source complementary to client-side profiles and traces. Servers in
//! this simulator collect exactly that: binned per-OST transfer
//! timelines and aggregate service counters, which `pioeval-monitor`
//! later correlates with job-level logs.

use pioeval_types::{IoKind, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A binned time series of bytes transferred by one OST (or the MDS's
/// operation count series, reusing the write lane).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OstTimeline {
    /// Width of one bin.
    pub bin_width: SimDuration,
    /// Bytes read per bin.
    pub read_bins: Vec<u64>,
    /// Bytes written per bin.
    pub write_bins: Vec<u64>,
}

impl OstTimeline {
    /// A new empty timeline with the given bin width.
    pub fn new(bin_width: SimDuration) -> Self {
        assert!(!bin_width.is_zero(), "bin width must be positive");
        OstTimeline {
            bin_width,
            read_bins: Vec::new(),
            write_bins: Vec::new(),
        }
    }

    /// Record `bytes` transferred at time `t`.
    pub fn record(&mut self, t: SimTime, kind: IoKind, bytes: u64) {
        let bin = (t.as_nanos() / self.bin_width.as_nanos()) as usize;
        let lane = match kind {
            IoKind::Read => &mut self.read_bins,
            IoKind::Write => &mut self.write_bins,
        };
        if lane.len() <= bin {
            lane.resize(bin + 1, 0);
        }
        lane[bin] += bytes;
        // Keep both lanes the same length for easy zipping.
        let len = self.read_bins.len().max(self.write_bins.len());
        self.read_bins.resize(len, 0);
        self.write_bins.resize(len, 0);
    }

    /// Number of bins recorded.
    pub fn len(&self) -> usize {
        self.read_bins.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.read_bins.is_empty()
    }

    /// Bandwidth series: (bin start seconds, read MiB/s, write MiB/s).
    pub fn bandwidth_series(&self) -> Vec<(f64, f64, f64)> {
        let w = self.bin_width.as_secs_f64();
        let mib = 1024.0 * 1024.0;
        self.read_bins
            .iter()
            .zip(&self.write_bins)
            .enumerate()
            .map(|(i, (&r, &wr))| (i as f64 * w, r as f64 / mib / w, wr as f64 / mib / w))
            .collect()
    }

    /// Peak total (read+write) bytes in any single bin.
    pub fn peak_bin_bytes(&self) -> u64 {
        self.read_bins
            .iter()
            .zip(&self.write_bins)
            .map(|(r, w)| r + w)
            .max()
            .unwrap_or(0)
    }

    /// Total bytes across all bins.
    pub fn total_bytes(&self) -> u64 {
        self.read_bins.iter().sum::<u64>() + self.write_bins.iter().sum::<u64>()
    }

    /// Wall-clock span the recorded bins cover (bin width × bin count).
    /// An empty timeline covers a zero-duration window.
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_nanos(self.bin_width.as_nanos() * self.len() as u64)
    }
}

/// Aggregate service statistics for one server (OSS or MDS).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServerStats {
    /// Requests served.
    pub requests: u64,
    /// Bytes read from devices.
    pub bytes_read: u64,
    /// Bytes written to devices.
    pub bytes_written: u64,
    /// Total queueing delay requests experienced at devices.
    pub queue_wait: SimDuration,
    /// Total device busy time.
    pub busy: SimDuration,
    /// Positioning (seek) operations paid at devices.
    pub seeks: u64,
    /// Per-OST (or per-service) transfer timelines.
    pub timelines: Vec<OstTimeline>,
    /// Per-lane device busy time (filled by the server's finalize step).
    pub lane_busy: Vec<SimDuration>,
}

impl ServerStats {
    /// New stats with `lanes` timelines of the given bin width.
    pub fn new(lanes: usize, bin_width: SimDuration) -> Self {
        ServerStats {
            requests: 0,
            bytes_read: 0,
            bytes_written: 0,
            queue_wait: SimDuration::ZERO,
            busy: SimDuration::ZERO,
            seeks: 0,
            timelines: (0..lanes).map(|_| OstTimeline::new(bin_width)).collect(),
            lane_busy: vec![SimDuration::ZERO; lanes],
        }
    }

    /// Mean queueing delay per request.
    pub fn mean_queue_wait(&self) -> SimDuration {
        if self.requests == 0 {
            return SimDuration::ZERO;
        }
        self.queue_wait / self.requests
    }

    /// Mean device service time per request.
    pub fn mean_service_time(&self) -> SimDuration {
        if self.requests == 0 {
            return SimDuration::ZERO;
        }
        self.busy / self.requests
    }

    /// Load imbalance across lanes: max/mean of per-lane total bytes
    /// (1.0 = perfectly balanced). Returns 0 when nothing was recorded.
    pub fn imbalance(&self) -> f64 {
        let totals: Vec<u64> = self.timelines.iter().map(|t| t.total_bytes()).collect();
        let sum: u64 = totals.iter().sum();
        if sum == 0 || totals.is_empty() {
            return 0.0;
        }
        let mean = sum as f64 / totals.len() as f64;
        *totals.iter().max().unwrap() as f64 / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeline_bins_by_time() {
        let mut t = OstTimeline::new(SimDuration::from_secs(1));
        t.record(SimTime::from_millis(100), IoKind::Read, 10);
        t.record(SimTime::from_millis(2500), IoKind::Write, 20);
        assert_eq!(t.len(), 3);
        assert_eq!(t.read_bins, vec![10, 0, 0]);
        assert_eq!(t.write_bins, vec![0, 0, 20]);
        assert_eq!(t.total_bytes(), 30);
        assert_eq!(t.peak_bin_bytes(), 20);
    }

    #[test]
    fn bandwidth_series_converts_units() {
        let mut t = OstTimeline::new(SimDuration::from_secs(2));
        t.record(SimTime::ZERO, IoKind::Read, 4 * 1024 * 1024);
        let series = t.bandwidth_series();
        assert_eq!(series.len(), 1);
        let (start, read, write) = series[0];
        assert_eq!(start, 0.0);
        assert_eq!(read, 2.0); // 4 MiB over 2 s
        assert_eq!(write, 0.0);
    }

    #[test]
    fn imbalance_detects_hot_lane() {
        let mut s = ServerStats::new(4, SimDuration::from_secs(1));
        s.timelines[0].record(SimTime::ZERO, IoKind::Write, 300);
        for lane in 1..4 {
            s.timelines[lane].record(SimTime::ZERO, IoKind::Write, 100);
        }
        // mean = 150, max = 300 → imbalance 2.0
        assert!((s.imbalance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_neutral() {
        let s = ServerStats::new(2, SimDuration::from_secs(1));
        assert_eq!(s.mean_queue_wait(), SimDuration::ZERO);
        assert_eq!(s.mean_service_time(), SimDuration::ZERO);
        assert_eq!(s.imbalance(), 0.0);
    }

    #[test]
    fn zero_duration_window_is_well_defined() {
        // A timeline that never saw a transfer covers a zero-duration
        // window; derived series stay empty instead of dividing by zero.
        let t = OstTimeline::new(SimDuration::from_millis(100));
        assert!(t.is_empty());
        assert_eq!(t.duration(), SimDuration::ZERO);
        assert_eq!(t.peak_bin_bytes(), 0);
        assert_eq!(t.total_bytes(), 0);
        assert!(t.bandwidth_series().is_empty());
    }

    #[test]
    fn timeline_duration_tracks_last_bin() {
        let mut t = OstTimeline::new(SimDuration::from_secs(1));
        t.record(SimTime::from_millis(2500), IoKind::Write, 1);
        // Bins 0..=2 exist, so the window is 3 s wide.
        assert_eq!(t.duration(), SimDuration::from_secs(3));
    }

    #[test]
    fn single_lane_timeline_is_perfectly_balanced() {
        // One OST: max == mean by construction, so imbalance is exactly 1.
        let mut s = ServerStats::new(1, SimDuration::from_secs(1));
        s.timelines[0].record(SimTime::ZERO, IoKind::Read, 123);
        assert_eq!(s.imbalance(), 1.0);
    }

    #[test]
    fn mean_service_time_divides_busy_by_requests() {
        let mut s = ServerStats::new(1, SimDuration::from_secs(1));
        s.requests = 4;
        s.busy = SimDuration::from_micros(100);
        assert_eq!(s.mean_service_time(), SimDuration::from_micros(25));
    }
}
