//! Storage device service model.
//!
//! A device is a FIFO server: an access waits for the device to become
//! free, pays a fixed per-operation overhead, pays a positioning (seek)
//! cost if it does not start where the previous access ended, and then
//! transfers at the directional sequential bandwidth. This minimal model
//! is sufficient to reproduce the two behaviours the paper's experiments
//! hinge on: *random small accesses collapse HDD throughput* (seek-bound)
//! and *queueing under fan-in contention* (shared-resource bound).

use crate::config::DeviceConfig;
use pioeval_types::{IoKind, SimDuration, SimTime};

/// Mutable device state: when it frees up and where its head is.
#[derive(Clone, Debug)]
pub struct DeviceModel {
    cfg: DeviceConfig,
    next_free: SimTime,
    last_end: u64,
    /// Total busy time accumulated (service, not queueing).
    pub busy: SimDuration,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Number of accesses that paid the positioning cost.
    pub seeks: u64,
    /// Number of accesses served.
    pub ops: u64,
}

impl DeviceModel {
    /// A new idle device with its head at offset 0.
    pub fn new(cfg: DeviceConfig) -> Self {
        DeviceModel {
            cfg,
            next_free: SimTime::ZERO,
            last_end: 0,
            busy: SimDuration::ZERO,
            bytes_read: 0,
            bytes_written: 0,
            seeks: 0,
            ops: 0,
        }
    }

    /// The device's configuration.
    pub fn config(&self) -> DeviceConfig {
        self.cfg
    }

    /// When the device next becomes idle.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Pure transfer time for `len` bytes in direction `kind` (no queueing,
    /// overhead, or positioning).
    pub fn transfer_time(&self, kind: IoKind, len: u64) -> SimDuration {
        let bw = match kind {
            IoKind::Read => self.cfg.read_bw,
            IoKind::Write => self.cfg.write_bw,
        };
        // ceil(len * 1e9 / bw) without overflow for realistic sizes:
        // len < 2^44 (16 TiB) and bw >= 1 keeps len * 1e9 < 2^74 — so do
        // the division in u128.
        let ns = (len as u128 * 1_000_000_000u128).div_ceil(bw as u128);
        SimDuration::from_nanos(ns as u64)
    }

    /// Submit an access at `now`; returns its completion time.
    ///
    /// The access queues FIFO behind earlier submissions, pays the
    /// per-operation overhead, pays the positioning cost if non-contiguous
    /// with the previous access, and transfers at sequential bandwidth.
    pub fn access(&mut self, now: SimTime, kind: IoKind, offset: u64, len: u64) -> SimTime {
        let start = now.max(self.next_free);
        let mut service = self.cfg.per_op + self.transfer_time(kind, len);
        if offset != self.last_end {
            service += self.cfg.seek;
            self.seeks += 1;
        }
        self.ops += 1;
        match kind {
            IoKind::Read => self.bytes_read += len,
            IoKind::Write => self.bytes_written += len,
        }
        self.busy += service;
        self.last_end = offset + len;
        self.next_free = start + service;
        self.next_free
    }

    /// Queueing delay an access submitted at `now` would experience.
    pub fn queue_delay(&self, now: SimTime) -> SimDuration {
        self.next_free.since(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    fn hdd() -> DeviceModel {
        DeviceModel::new(DeviceConfig::hdd())
    }

    #[test]
    fn sequential_access_avoids_seeks() {
        let mut d = hdd();
        let t0 = SimTime::ZERO;
        let c1 = d.access(t0, IoKind::Write, 0, 1_000_000);
        let c2 = d.access(c1, IoKind::Write, 1_000_000, 1_000_000);
        // Head starts at 0; both accesses are contiguous, so no seeks.
        assert_eq!(d.seeks, 0);
        let _ = c2;
        assert_eq!(d.ops, 2);
        assert_eq!(d.bytes_written, 2_000_000);
    }

    #[test]
    fn first_access_at_zero_is_contiguous() {
        let mut d = hdd();
        d.access(SimTime::ZERO, IoKind::Read, 0, 4096);
        assert_eq!(d.seeks, 0);
    }

    #[test]
    fn random_access_pays_seek() {
        let mut d = hdd();
        let seq_done = {
            let mut s = hdd();
            let mut t = SimTime::ZERO;
            for i in 0..10u64 {
                t = s.access(t, IoKind::Read, i * 4096, 4096);
            }
            t
        };
        let mut t = SimTime::ZERO;
        for i in (0..10u64).rev() {
            t = d.access(t, IoKind::Read, i * 4096, 4096);
        }
        assert_eq!(d.seeks, 10);
        // Random (seek-bound) must be much slower than sequential.
        assert!(t.as_nanos() > 5 * seq_done.as_nanos());
    }

    #[test]
    fn fifo_queueing_accumulates() {
        let mut d = hdd();
        // Two submissions at t=0: the second starts when the first ends.
        let c1 = d.access(SimTime::ZERO, IoKind::Write, 0, 10_000_000);
        let c2 = d.access(SimTime::ZERO, IoKind::Write, 10_000_000, 10_000_000);
        assert!(c2 > c1);
        assert!(
            c2.since(SimTime::ZERO) >= c1.since(SimTime::ZERO) * 2 - SimDuration::from_micros(200)
        );
    }

    #[test]
    fn transfer_time_scales_with_size_and_direction() {
        let d = hdd();
        let r1 = d.transfer_time(IoKind::Read, 150_000_000);
        assert_eq!(r1, SimDuration::from_secs(1));
        let w = d.transfer_time(IoKind::Write, 140_000_000);
        assert_eq!(w, SimDuration::from_secs(1));
        assert_eq!(d.transfer_time(IoKind::Read, 0), SimDuration::ZERO);
    }

    #[test]
    fn ssd_has_no_seek_penalty() {
        let mut d = DeviceModel::new(DeviceConfig::nvme());
        let mut t = SimTime::ZERO;
        for i in (0..10u64).rev() {
            t = d.access(t, IoKind::Read, i * 4096, 4096);
        }
        assert_eq!(d.seeks, 10); // counted but free (head starts at 0)
                                 // 10 ops of (10us overhead + ~1.6us transfer): well under 1 ms.
        assert!(t < SimTime::from_millis(1));
    }

    #[test]
    fn queue_delay_reports_backlog() {
        let mut d = hdd();
        assert!(d.queue_delay(SimTime::ZERO).is_zero());
        d.access(SimTime::ZERO, IoKind::Write, 0, 140_000_000); // ~1 s
        assert!(d.queue_delay(SimTime::ZERO) >= SimDuration::from_millis(900));
    }
}
