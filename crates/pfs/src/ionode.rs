//! I/O forwarding node with burst buffer.
//!
//! The paper's Fig. 1 describes I/O nodes that "handle requests forwarded
//! by the scientific applications" and "integrate a tier of solid-state
//! devices to absorb the burst of random or high volume operations, so
//! that transfers to/from the staging area from/to the traditional
//! parallel file system can be done more efficiently". This entity
//! implements exactly that:
//!
//! * **Writes** are absorbed into the node's SSD when capacity allows; the
//!   client is acknowledged at SSD speed, and the data drains to the OSS
//!   over the storage fabric in the background (bounded drain streams).
//! * **Reads** are served from the SSD when they hit not-yet-drained data,
//!   and forwarded to the OSS otherwise.
//! * When the buffer is full, writes degrade to write-through forwarding —
//!   the "absorption limit" that burst-buffer sizing studies measure.
//!
//! # Write-ack policies and failure injection
//!
//! The node additionally implements the `pioeval-resil` write-back tier:
//! under [`AckMode::LocalOnly`] the client is ACKed as soon as the local
//! SSD write lands (the historical behavior); under
//! [`AckMode::LocalPlusOne`] / [`AckMode::Geographic`] the ACK is *held*
//! until peer I/O nodes confirm replication copies shipped over the
//! replication fabric. Every absorbed chunk is tracked from ACK to its
//! first durable home (background drain to the OSS, or a stored replica),
//! maintaining the conservation identity `acked = replicated + lost`:
//! when a [`PfsMsg::Fail`] event kills the node, ACKed-but-unreplicated
//! bytes are counted into the data-loss window, held client ACKs are
//! flushed, surviving peers re-drain the replicas they hold for this
//! node ([`PfsMsg::Takeover`]), and the node rejoins empty after the
//! rebuild time, forwarding write-through while down.
//!
//! Approximations (documented for DESIGN.md): the SSD read performed by a
//! drain is not charged (SSD read bandwidth is an order of magnitude above
//! OST write bandwidth), a region re-written while its first copy is
//! draining may be conservatively treated as clean after the first drain
//! completes, and replica copies held for peers are charged SSD device
//! time but not buffer capacity (they live in a separate replica
//! partition).

use crate::config::DeviceConfig;
use crate::device::DeviceModel;
use crate::msg::{route, IoReply, IoRequest, PfsMsg, ReplicaAck, ReplicaChunk, RequestId};
use pioeval_des::{Ctx, Entity, EntityId, Envelope};
use pioeval_resil::{AckMode, FailureKind, ResilienceStats};
use pioeval_types::{
    tid_for, FileId, IoKind, OstId, ReqMark, ReqRecorder, ServerKind, SimDuration, SimTime,
};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// A unit of data awaiting drain to the PFS. `token` links the drain
/// back to the chunk's durability accounting; `0` marks a re-drain of a
/// replica held for a failed peer (accounted at the failed primary).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct DrainChunk {
    file: FileId,
    ost: OstId,
    obj_offset: u64,
    len: u64,
    token: u64,
}

/// Why a local SSD completion is pending.
enum SsdPending {
    /// A client write absorbed into the buffer; reply when SSD finishes.
    Absorb {
        req: IoRequest,
        queue_delay: SimDuration,
    },
    /// A client write absorbed under a replica-waiting ack mode; the SSD
    /// completion releases half of the ack gate keyed by the same token.
    AbsorbGated,
    /// A client read served from the buffer; reply when SSD finishes.
    CachedRead {
        req: IoRequest,
        queue_delay: SimDuration,
    },
    /// A replication copy landing on this (peer) SSD; acknowledge the
    /// primary when it finishes.
    ReplicaWrite { chunk: ReplicaChunk },
}

/// Why a reply from the OSS is pending.
enum OssPending {
    /// A forwarded client request; relay the reply to the original client.
    Forwarded { orig: IoRequest, arrived: SimTime },
    /// A background drain write; free buffer space on completion.
    Drain { chunk: DrainChunk },
}

/// A held client ACK waiting on SSD completion plus replica
/// confirmations (ack modes that wait for replicas).
struct AckGate {
    req: IoRequest,
    queue_delay: SimDuration,
    ssd_done: bool,
    awaiting: u32,
}

/// Durability lifecycle of one absorbed chunk, from absorb to its first
/// durable home. Maintains `acked = replicated + lost` exactly: a chunk
/// leaves the map once it has been ACKed *and* either replicated or
/// counted into the loss window.
struct ChunkState {
    len: u64,
    absorbed_at: SimTime,
    acked: bool,
    durable: bool,
    /// Set when the node failed before the chunk reached a durable home:
    /// its eventual ACK counts into the data-loss window.
    doomed: bool,
}

/// Burst-buffer occupancy and traffic counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct BurstBufferStats {
    /// Writes absorbed into the SSD.
    pub absorbed_writes: u64,
    /// Bytes absorbed.
    pub absorbed_bytes: u64,
    /// Reads served from not-yet-drained data.
    pub cached_reads: u64,
    /// Requests forwarded to the OSS (reads missing + writes while full).
    pub forwarded: u64,
    /// Drain writes completed.
    pub drains_completed: u64,
    /// High-water mark of buffer occupancy, bytes.
    pub peak_used: u64,
}

/// The I/O forwarding node entity.
pub struct IoNode {
    ssd: DeviceModel,
    capacity: u64,
    used: u64,
    /// Dirty (absorbed, not yet drained) extents per (file, ost).
    dirty: HashMap<(FileId, OstId), Vec<(u64, u64)>>,
    drain_queue: VecDeque<DrainChunk>,
    active_drains: usize,
    drain_streams: usize,
    /// Route from this node to each OST's OSS entity (index = global OST).
    ost_route: Vec<EntityId>,
    /// The storage fabric between this node and the storage cluster.
    storage_fabric: EntityId,
    ssd_pending: HashMap<u64, SsdPending>,
    oss_pending: HashMap<RequestId, OssPending>,
    next_token: u64,
    next_req_id: RequestId,
    // --- resilience tier ---
    ack_mode: AckMode,
    /// Replication copies to place beyond the local one.
    replicas: u32,
    /// Peer I/O nodes replication copies are spread over.
    peers: Vec<EntityId>,
    /// Fabric replication traffic rides (geo or local replication
    /// fabric); falls back to the storage fabric when unset.
    repl_fabric: Option<EntityId>,
    rebuild_time: SimDuration,
    failed: bool,
    fail_time: SimTime,
    /// Held client ACKs (BTreeMap: failure-time flushes iterate in
    /// deterministic token order).
    gates: BTreeMap<u64, AckGate>,
    /// Replication-leg request id → chunk token.
    repl_pending: HashMap<RequestId, u64>,
    /// Durability lifecycle per chunk token.
    chunks: BTreeMap<u64, ChunkState>,
    /// Replica chunks held on behalf of each primary (`EntityId.0`),
    /// re-drained to the OSS if that primary fails.
    held: BTreeMap<u32, Vec<DrainChunk>>,
    /// Takeover re-drains still in flight after a primary failed.
    takeover_outstanding: u64,
    takeover_started: SimTime,
    /// Traffic counters.
    pub stats: BurstBufferStats,
    /// Durability accounting for the resilience report.
    pub resil: ResilienceStats,
    /// Per-request trace recorder (buffer-service and forwarding marks).
    pub reqtrace: ReqRecorder,
}

impl IoNode {
    /// A new I/O node with an empty buffer, local-only acks, and no
    /// failure wiring (use [`IoNode::set_resil`] after construction).
    pub fn new(
        device: DeviceConfig,
        capacity: u64,
        drain_streams: usize,
        storage_fabric: EntityId,
        ost_route: Vec<EntityId>,
    ) -> Self {
        IoNode {
            ssd: DeviceModel::new(device),
            capacity,
            used: 0,
            dirty: HashMap::new(),
            drain_queue: VecDeque::new(),
            active_drains: 0,
            drain_streams: drain_streams.max(1),
            ost_route,
            storage_fabric,
            ssd_pending: HashMap::new(),
            oss_pending: HashMap::new(),
            // Chunk tokens start at 1: token 0 marks replica re-drains,
            // which are accounted at the failed primary, not here.
            next_token: 1,
            next_req_id: 0,
            ack_mode: AckMode::LocalOnly,
            replicas: 0,
            peers: Vec::new(),
            repl_fabric: None,
            rebuild_time: SimDuration::from_millis(500),
            failed: false,
            fail_time: SimTime::ZERO,
            gates: BTreeMap::new(),
            repl_pending: HashMap::new(),
            chunks: BTreeMap::new(),
            held: BTreeMap::new(),
            takeover_outstanding: 0,
            takeover_started: SimTime::ZERO,
            stats: BurstBufferStats::default(),
            resil: ResilienceStats::default(),
            reqtrace: ReqRecorder::default(),
        }
    }

    /// Wire the resilience tier: ack policy, replica count, rebuild
    /// time, peer nodes, and the fabric replication traffic rides.
    /// Called by the cluster builder after all entities exist.
    pub fn set_resil(
        &mut self,
        ack_mode: AckMode,
        replicas: u32,
        rebuild_time: SimDuration,
        peers: Vec<EntityId>,
        repl_fabric: Option<EntityId>,
    ) {
        self.ack_mode = ack_mode;
        self.replicas = replicas;
        self.rebuild_time = rebuild_time;
        self.peers = peers;
        self.repl_fabric = repl_fabric;
    }

    /// Bytes currently buffered (absorbed, not yet drained).
    pub fn used(&self) -> u64 {
        self.used
    }

    /// True when all absorbed data has drained to the PFS.
    pub fn fully_drained(&self) -> bool {
        self.used == 0 && self.drain_queue.is_empty() && self.active_drains == 0
    }

    fn dirty_covers(&self, file: FileId, ost: OstId, offset: u64, len: u64) -> bool {
        let Some(extents) = self.dirty.get(&(file, ost)) else {
            return false;
        };
        // Merge-and-check over a sorted copy: extents lists are short
        // (bounded by in-flight chunks for one file on one OST).
        let mut sorted = extents.clone();
        sorted.sort_unstable();
        let (start, end) = (offset, offset + len);
        let mut covered_to = start;
        for (o, l) in sorted {
            if o > covered_to {
                break;
            }
            covered_to = covered_to.max(o + l);
            if covered_to >= end {
                return true;
            }
        }
        covered_to >= end
    }

    fn remove_dirty(&mut self, chunk: &DrainChunk) {
        if let Some(extents) = self.dirty.get_mut(&(chunk.file, chunk.ost)) {
            if let Some(pos) = extents
                .iter()
                .position(|&(o, l)| o == chunk.obj_offset && l == chunk.len)
            {
                extents.swap_remove(pos);
            }
            if extents.is_empty() {
                self.dirty.remove(&(chunk.file, chunk.ost));
            }
        }
    }

    /// The chunk reached its first durable home (drained to the OSS or
    /// stored on a replica). Counts replicated bytes and the
    /// replication-lag sample exactly once per chunk.
    fn mark_durable(&mut self, token: u64, now: SimTime) {
        let Some(st) = self.chunks.get_mut(&token) else {
            return;
        };
        if st.doomed || st.durable {
            return;
        }
        st.durable = true;
        self.resil.replicated_bytes += st.len;
        self.resil
            .repl_lag_ns
            .push(now.since(st.absorbed_at).as_nanos());
        if st.acked {
            self.chunks.remove(&token);
        }
    }

    /// The chunk's client ACK went out. Doomed chunks (node failed
    /// before they reached a durable home) count into the loss window
    /// here, closing the `acked = replicated + lost` identity.
    fn mark_acked(&mut self, token: u64) {
        let Some(st) = self.chunks.get_mut(&token) else {
            return;
        };
        if st.acked {
            return;
        }
        st.acked = true;
        self.resil.acked_bytes += st.len;
        if st.doomed {
            self.resil.data_loss_bytes += st.len;
            self.chunks.remove(&token);
        } else if st.durable {
            self.chunks.remove(&token);
        }
    }

    /// Release a held ACK once both the SSD write and all replica
    /// confirmations are in.
    fn try_release(&mut self, token: u64, ctx: &mut Ctx<'_, PfsMsg>) {
        let ready = self
            .gates
            .get(&token)
            .is_some_and(|g| g.ssd_done && g.awaiting == 0);
        if !ready {
            return;
        }
        let gate = self.gates.remove(&token).expect("gate vanished");
        self.reply_to_client(&gate.req, true, gate.queue_delay, ctx);
        self.mark_acked(token);
    }

    /// Ship replication copies of an absorbed chunk to peer nodes over
    /// the replication fabric; returns how many copies were sent.
    fn replicate(&mut self, req: &IoRequest, token: u64, ctx: &mut Ctx<'_, PfsMsg>) -> u32 {
        let copies = (self.replicas as usize).min(self.peers.len());
        let fabric = self.repl_fabric.unwrap_or(self.storage_fabric);
        for r in 0..copies {
            let peer = self.peers[(token as usize + r) % self.peers.len()];
            let id = self.next_req_id;
            self.next_req_id += 1;
            // Traced parents spawn a traced replication leg so `pioeval
            // requests` can attribute replication tails.
            let child_tid = if req.tid != 0 {
                tid_for(ctx.me().0, id)
            } else {
                0
            };
            if child_tid != 0 {
                self.reqtrace.record(
                    req.tid,
                    ctx.me().0,
                    ReqMark::Spawn {
                        child: child_tid,
                        at: ctx.now(),
                    },
                );
            }
            let chunk = ReplicaChunk {
                id,
                reply_to: ctx.me(),
                reply_via: vec![fabric],
                file: req.file,
                ost: req.ost,
                obj_offset: req.obj_offset,
                len: req.len,
                tid: child_tid,
            };
            self.repl_pending.insert(id, token);
            let size = chunk.wire_size();
            let (hop, msg) = route(&[fabric], peer, size, PfsMsg::Replicate(chunk));
            ctx.send(hop, ctx.lookahead(), msg);
        }
        copies as u32
    }

    /// Enact an injected I/O-node loss: count the data-loss window,
    /// flush held ACKs, drop the buffer, hand replicas to peers, and
    /// schedule the rebuild.
    fn fail_node(&mut self, ctx: &mut Ctx<'_, PfsMsg>) {
        if self.failed {
            return;
        }
        self.failed = true;
        self.fail_time = ctx.now();
        self.resil.failures += 1;
        // Chunks that never reached a durable home are the loss window:
        // count ACKed ones now; doom un-ACKed ones so their eventual ACK
        // (in-flight SSD completion or the gate flush below) counts too.
        let tokens: Vec<u64> = self.chunks.keys().copied().collect();
        for token in tokens {
            let st = self.chunks.get_mut(&token).expect("chunk vanished");
            if st.durable {
                continue;
            }
            if st.acked {
                self.resil.data_loss_bytes += st.len;
                self.chunks.remove(&token);
            } else {
                st.doomed = true;
            }
        }
        // Flush held ACKs: clients must not hang on a dead node. A
        // chunk that already reached a durable home ACKs normally (the
        // gate was only waiting on slower replicas). For the rest the
        // durability promise was never made, so the reply reports
        // write-through-style service and the bytes count neither as
        // ACKed nor as lost — failing mid-replication under a gated
        // policy shrinks the loss window instead of widening it, which
        // is exactly what the ack policy buys.
        let gated: Vec<u64> = self.gates.keys().copied().collect();
        for token in gated {
            let gate = self.gates.remove(&token).expect("gate vanished");
            let durable = self.chunks.get(&token).is_some_and(|st| st.durable);
            self.reply_to_client(&gate.req, durable, gate.queue_delay, ctx);
            if durable {
                self.mark_acked(token);
            } else {
                self.chunks.remove(&token);
            }
        }
        self.repl_pending.clear();
        // The buffer content is gone; in-flight drain completions are
        // tolerated (their chunks are doomed or already durable).
        self.used = 0;
        self.dirty.clear();
        self.drain_queue.clear();
        // Replicas held for other primaries died with the SSD.
        self.held.clear();
        // Surviving peers re-drain the replicas they hold for us.
        if self.ack_mode.waits_for_replica() {
            let fabric = self.repl_fabric.unwrap_or(self.storage_fabric);
            let me = ctx.me().0;
            for peer in self.peers.clone() {
                let (hop, msg) = route(
                    &[fabric],
                    peer,
                    crate::msg::HEADER_BYTES,
                    PfsMsg::Takeover { primary: me },
                );
                ctx.send(hop, ctx.lookahead(), msg);
            }
        }
        ctx.send_self(self.rebuild_time, PfsMsg::Recover);
    }

    fn forward(&mut self, req: IoRequest, ctx: &mut Ctx<'_, PfsMsg>) {
        self.stats.forwarded += 1;
        let now = ctx.now();
        let id = self.next_req_id;
        self.next_req_id += 1;
        // Traced parents spawn a traced child request so the downstream
        // OSS/fabric segments can be re-attributed to the original request.
        let child_tid = if req.tid != 0 {
            tid_for(ctx.me().0, id)
        } else {
            0
        };
        if child_tid != 0 {
            self.reqtrace.record(
                req.tid,
                ctx.me().0,
                ReqMark::Spawn {
                    child: child_tid,
                    at: now,
                },
            );
        }
        let oss = self.ost_route[req.ost.index()];
        let fwd = IoRequest {
            id,
            reply_to: ctx.me(),
            reply_via: vec![self.storage_fabric],
            kind: req.kind,
            file: req.file,
            ost: req.ost,
            obj_offset: req.obj_offset,
            len: req.len,
            tid: child_tid,
        };
        self.oss_pending.insert(
            id,
            OssPending::Forwarded {
                orig: req,
                arrived: now,
            },
        );
        let size = fwd.wire_size();
        let (hop, msg) = route(&[self.storage_fabric], oss, size, PfsMsg::Io(fwd));
        ctx.send(hop, ctx.lookahead(), msg);
    }

    fn start_drains(&mut self, ctx: &mut Ctx<'_, PfsMsg>) {
        while self.active_drains < self.drain_streams {
            let Some(chunk) = self.drain_queue.pop_front() else {
                break;
            };
            self.active_drains += 1;
            let id = self.next_req_id;
            self.next_req_id += 1;
            let oss = self.ost_route[chunk.ost.index()];
            // Background drains are never traced: they are decoupled from
            // any client request's latency.
            let req = IoRequest {
                id,
                reply_to: ctx.me(),
                reply_via: vec![self.storage_fabric],
                kind: IoKind::Write,
                file: chunk.file,
                ost: chunk.ost,
                obj_offset: chunk.obj_offset,
                len: chunk.len,
                tid: 0,
            };
            self.oss_pending.insert(id, OssPending::Drain { chunk });
            let size = req.wire_size();
            let (hop, msg) = route(&[self.storage_fabric], oss, size, PfsMsg::Io(req));
            ctx.send(hop, ctx.lookahead(), msg);
        }
    }

    fn reply_to_client(
        &self,
        req: &IoRequest,
        from_burst_buffer: bool,
        queue_delay: SimDuration,
        ctx: &mut Ctx<'_, PfsMsg>,
    ) {
        let reply = IoReply {
            id: req.id,
            kind: req.kind,
            file: req.file,
            ost: req.ost,
            len: req.len,
            from_burst_buffer,
            queue_delay,
            tid: req.tid,
        };
        let size = reply.wire_size();
        let (hop, msg) = route(&req.reply_via, req.reply_to, size, PfsMsg::IoDone(reply));
        ctx.send(hop, ctx.lookahead(), msg);
    }
}

impl Entity<PfsMsg> for IoNode {
    fn on_event(&mut self, ev: Envelope<PfsMsg>, ctx: &mut Ctx<'_, PfsMsg>) {
        match ev.msg {
            PfsMsg::Io(req) => {
                let now = ctx.now();
                match req.kind {
                    IoKind::Write if !self.failed && self.used + req.len <= self.capacity => {
                        // Absorb into the burst buffer.
                        self.used += req.len;
                        self.stats.peak_used = self.stats.peak_used.max(self.used);
                        self.stats.absorbed_writes += 1;
                        self.stats.absorbed_bytes += req.len;
                        self.dirty
                            .entry((req.file, req.ost))
                            .or_default()
                            .push((req.obj_offset, req.len));
                        let queue_delay = self.ssd.queue_delay(now);
                        let completion =
                            self.ssd.access(now, IoKind::Write, req.obj_offset, req.len);
                        self.reqtrace.record(
                            req.tid,
                            ctx.me().0,
                            ReqMark::Server {
                                kind: ServerKind::IoNodeSsd,
                                arrive: now,
                                queue: queue_delay,
                                depart: completion,
                            },
                        );
                        let token = self.next_token;
                        self.next_token += 1;
                        self.drain_queue.push_back(DrainChunk {
                            file: req.file,
                            ost: req.ost,
                            obj_offset: req.obj_offset,
                            len: req.len,
                            token,
                        });
                        self.chunks.insert(
                            token,
                            ChunkState {
                                len: req.len,
                                absorbed_at: now,
                                acked: false,
                                durable: false,
                                doomed: false,
                            },
                        );
                        if self.ack_mode.waits_for_replica() {
                            // Hold the client ACK for replica copies.
                            let awaiting = self.replicate(&req, token, ctx);
                            self.gates.insert(
                                token,
                                AckGate {
                                    req,
                                    queue_delay,
                                    ssd_done: false,
                                    awaiting,
                                },
                            );
                            self.ssd_pending.insert(token, SsdPending::AbsorbGated);
                        } else {
                            self.ssd_pending
                                .insert(token, SsdPending::Absorb { req, queue_delay });
                        }
                        ctx.send_self(completion.since(now), PfsMsg::DeviceDone { token });
                        self.start_drains(ctx);
                    }
                    IoKind::Read
                        if !self.failed
                            && self.dirty_covers(req.file, req.ost, req.obj_offset, req.len) =>
                    {
                        // Serve from the buffer.
                        self.stats.cached_reads += 1;
                        let queue_delay = self.ssd.queue_delay(now);
                        let completion =
                            self.ssd.access(now, IoKind::Read, req.obj_offset, req.len);
                        self.reqtrace.record(
                            req.tid,
                            ctx.me().0,
                            ReqMark::Server {
                                kind: ServerKind::IoNodeSsd,
                                arrive: now,
                                queue: queue_delay,
                                depart: completion,
                            },
                        );
                        let token = self.next_token;
                        self.next_token += 1;
                        self.ssd_pending
                            .insert(token, SsdPending::CachedRead { req, queue_delay });
                        ctx.send_self(completion.since(now), PfsMsg::DeviceDone { token });
                    }
                    _ => self.forward(req, ctx),
                }
            }
            PfsMsg::DeviceDone { token } => {
                match self
                    .ssd_pending
                    .remove(&token)
                    .expect("SSD completion for unknown token")
                {
                    SsdPending::Absorb { req, queue_delay } => {
                        self.reply_to_client(&req, true, queue_delay, ctx);
                        self.mark_acked(token);
                    }
                    SsdPending::AbsorbGated => {
                        if let Some(gate) = self.gates.get_mut(&token) {
                            gate.ssd_done = true;
                            self.try_release(token, ctx);
                        }
                        // No gate: it was flushed when the node failed.
                    }
                    SsdPending::CachedRead { req, queue_delay } => {
                        self.reply_to_client(&req, true, queue_delay, ctx);
                    }
                    SsdPending::ReplicaWrite { chunk } => {
                        // Copy landed: remember it for takeover and ack
                        // the primary.
                        let stored = !self.failed;
                        if stored {
                            self.held
                                .entry(chunk.reply_to.0)
                                .or_default()
                                .push(DrainChunk {
                                    file: chunk.file,
                                    ost: chunk.ost,
                                    obj_offset: chunk.obj_offset,
                                    len: chunk.len,
                                    token: 0,
                                });
                        }
                        let ack = ReplicaAck {
                            id: chunk.id,
                            len: chunk.len,
                            stored,
                            tid: chunk.tid,
                        };
                        let size = crate::msg::HEADER_BYTES;
                        let (hop, msg) = route(
                            &chunk.reply_via,
                            chunk.reply_to,
                            size,
                            PfsMsg::ReplicaDone(ack),
                        );
                        ctx.send(hop, ctx.lookahead(), msg);
                    }
                }
            }
            PfsMsg::IoDone(rep) => {
                match self
                    .oss_pending
                    .remove(&rep.id)
                    .expect("OSS reply for unknown request")
                {
                    OssPending::Forwarded { orig, arrived } => {
                        // Close the forwarding interval on the parent
                        // request; the spawned child's own marks let the
                        // analyzer re-attribute this span into fabric /
                        // queue / device portions.
                        self.reqtrace.record(
                            orig.tid,
                            ctx.me().0,
                            ReqMark::Server {
                                kind: ServerKind::IoNodeSsd,
                                arrive: arrived,
                                queue: SimDuration::ZERO,
                                depart: ctx.now(),
                            },
                        );
                        // A write-through reply means the bytes are
                        // durable on the OSS at the moment of the ACK.
                        if orig.kind == IoKind::Write {
                            self.resil.acked_bytes += orig.len;
                            self.resil.replicated_bytes += orig.len;
                        }
                        self.reply_to_client(&orig, false, rep.queue_delay, ctx);
                    }
                    OssPending::Drain { chunk } => {
                        self.stats.drains_completed += 1;
                        self.active_drains -= 1;
                        if chunk.token == 0 {
                            // Takeover re-drain on behalf of a failed
                            // primary: its recovery completes when the
                            // last held replica reaches the OSS.
                            self.takeover_outstanding = self.takeover_outstanding.saturating_sub(1);
                            if self.takeover_outstanding == 0 {
                                let span = ctx.now().since(self.takeover_started).as_nanos();
                                self.resil.recovery_ns = self.resil.recovery_ns.max(span);
                            }
                        } else {
                            self.used = self.used.saturating_sub(chunk.len);
                            self.remove_dirty(&chunk);
                            self.mark_durable(chunk.token, ctx.now());
                        }
                        self.start_drains(ctx);
                    }
                }
            }
            PfsMsg::Replicate(chunk) => {
                let now = ctx.now();
                if self.failed {
                    // A dead peer stores nothing; tell the primary so it
                    // does not count the copy as durable.
                    let ack = ReplicaAck {
                        id: chunk.id,
                        len: chunk.len,
                        stored: false,
                        tid: chunk.tid,
                    };
                    let size = crate::msg::HEADER_BYTES;
                    let (hop, msg) = route(
                        &chunk.reply_via,
                        chunk.reply_to,
                        size,
                        PfsMsg::ReplicaDone(ack),
                    );
                    ctx.send(hop, ctx.lookahead(), msg);
                    return;
                }
                // Charge the peer SSD for the copy (device time only;
                // replicas live outside the absorb capacity).
                let queue_delay = self.ssd.queue_delay(now);
                let completion = self
                    .ssd
                    .access(now, IoKind::Write, chunk.obj_offset, chunk.len);
                self.reqtrace.record(
                    chunk.tid,
                    ctx.me().0,
                    ReqMark::Server {
                        kind: ServerKind::Replica,
                        arrive: now,
                        queue: queue_delay,
                        depart: completion,
                    },
                );
                let token = self.next_token;
                self.next_token += 1;
                self.ssd_pending
                    .insert(token, SsdPending::ReplicaWrite { chunk });
                ctx.send_self(completion.since(now), PfsMsg::DeviceDone { token });
            }
            PfsMsg::ReplicaDone(ack) => {
                if let Some(token) = self.repl_pending.remove(&ack.id) {
                    if ack.stored {
                        self.mark_durable(token, ctx.now());
                    }
                    if let Some(gate) = self.gates.get_mut(&token) {
                        gate.awaiting = gate.awaiting.saturating_sub(1);
                        self.try_release(token, ctx);
                    }
                }
                // Unknown id: the gate was flushed by a failure; the
                // chunk's accounting is already settled.
            }
            PfsMsg::Takeover { primary } => {
                if let Some(chunks) = self.held.remove(&primary) {
                    if !chunks.is_empty() {
                        if self.takeover_outstanding == 0 {
                            self.takeover_started = ctx.now();
                        }
                        self.takeover_outstanding += chunks.len() as u64;
                        self.resil.requeued += chunks.len() as u64;
                        self.drain_queue.extend(chunks);
                        self.start_drains(ctx);
                    }
                }
            }
            PfsMsg::Fail { kind, .. } => {
                if kind == FailureKind::IoNodeLoss {
                    self.fail_node(ctx);
                }
                // Other kinds target the object store; the cluster
                // builder never schedules them here.
            }
            PfsMsg::Recover => {
                self.failed = false;
                let span = ctx.now().since(self.fail_time).as_nanos();
                self.resil.recovery_ns = self.resil.recovery_ns.max(span);
            }
            other => panic!("I/O node received unexpected message: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use crate::fabric::Fabric;
    use crate::msg::IoRequest;
    use crate::oss::Oss;
    use pioeval_des::{SimConfig, Simulation};
    use pioeval_types::SimTime;

    struct Collector {
        replies: Vec<(SimTime, IoReply)>,
    }
    impl Entity<PfsMsg> for Collector {
        fn on_event(&mut self, ev: Envelope<PfsMsg>, ctx: &mut Ctx<'_, PfsMsg>) {
            if let PfsMsg::IoDone(rep) = ev.msg {
                self.replies.push((ctx.now(), rep));
            }
        }
    }

    /// A tiny world: client-side collector, one I/O node, storage fabric,
    /// one OSS with one HDD OST.
    fn setup(capacity: u64) -> (Simulation<PfsMsg>, EntityId, EntityId, EntityId) {
        let mut sim = Simulation::new(SimConfig::default());
        let sfab = sim.add_entity(
            "storage-fabric",
            Box::new(Fabric::new(crate::config::FabricConfig::ten_gbe())),
        );
        let oss = sim.add_entity(
            "oss0",
            Box::new(Oss::new(
                0,
                1,
                DeviceConfig::hdd(),
                SimDuration::from_secs(1),
            )),
        );
        let ionode = sim.add_entity(
            "ionode0",
            Box::new(IoNode::new(
                DeviceConfig::nvme(),
                capacity,
                2,
                sfab,
                vec![oss],
            )),
        );
        let client = sim.add_entity("client", Box::new(Collector { replies: vec![] }));
        (sim, ionode, client, oss)
    }

    /// Two I/O nodes sharing the fabric/OSS, wired as replication peers
    /// under the given ack mode.
    fn setup_pair(mode: AckMode) -> (Simulation<PfsMsg>, EntityId, EntityId, EntityId) {
        let mut sim = Simulation::new(SimConfig::default());
        let sfab = sim.add_entity(
            "storage-fabric",
            Box::new(Fabric::new(crate::config::FabricConfig::ten_gbe())),
        );
        let oss = sim.add_entity(
            "oss0",
            Box::new(Oss::new(
                0,
                1,
                DeviceConfig::hdd(),
                SimDuration::from_secs(1),
            )),
        );
        let mk = || IoNode::new(DeviceConfig::nvme(), 1 << 30, 2, sfab, vec![oss]);
        let n0 = sim.add_entity("ionode0", Box::new(mk()));
        let n1 = sim.add_entity("ionode1", Box::new(mk()));
        let rebuild = SimDuration::from_millis(500);
        sim.entity_mut::<IoNode>(n0)
            .unwrap()
            .set_resil(mode, 1, rebuild, vec![n1], None);
        sim.entity_mut::<IoNode>(n1)
            .unwrap()
            .set_resil(mode, 1, rebuild, vec![n0], None);
        let client = sim.add_entity("client", Box::new(Collector { replies: vec![] }));
        (sim, n0, n1, client)
    }

    fn write_req(id: u64, client: EntityId, offset: u64, len: u64) -> PfsMsg {
        PfsMsg::Io(IoRequest {
            id,
            reply_to: client,
            reply_via: vec![],
            kind: IoKind::Write,
            file: FileId::new(0),
            ost: OstId::new(0),
            obj_offset: offset,
            len,
            tid: 0,
        })
    }

    fn read_req(id: u64, client: EntityId, offset: u64, len: u64) -> PfsMsg {
        PfsMsg::Io(IoRequest {
            id,
            reply_to: client,
            reply_via: vec![],
            kind: IoKind::Read,
            file: FileId::new(0),
            ost: OstId::new(0),
            obj_offset: offset,
            len,
            tid: 0,
        })
    }

    #[test]
    fn absorbed_write_acks_at_ssd_speed_then_drains() {
        let (mut sim, ionode, client, _) = setup(1 << 30);
        // 20 MB write: SSD (2 GB/s) acks in ~10 ms; HDD (140 MB/s) drain
        // takes ~143 ms.
        sim.schedule(SimTime::ZERO, ionode, write_req(1, client, 0, 20_000_000));
        sim.run();
        let replies = &sim.entity_ref::<Collector>(client).unwrap().replies;
        assert_eq!(replies.len(), 1);
        assert!(replies[0].1.from_burst_buffer);
        assert!(
            replies[0].0 < SimTime::from_millis(30),
            "ack too slow: {}",
            replies[0].0
        );
        let node = sim.entity_ref::<IoNode>(ionode).unwrap();
        assert!(node.fully_drained());
        assert_eq!(node.stats.absorbed_writes, 1);
        assert_eq!(node.stats.drains_completed, 1);
        // Local-only accounting: the byte was ACKed and became durable
        // when the drain landed.
        assert_eq!(node.resil.acked_bytes, 20_000_000);
        assert_eq!(node.resil.replicated_bytes, 20_000_000);
        assert_eq!(node.resil.data_loss_bytes, 0);
        assert_eq!(node.resil.repl_lag_ns.len(), 1);
        // Simulation end time reflects the drain reaching the HDD.
        assert!(sim.now() >= SimTime::from_millis(100));
    }

    #[test]
    fn full_buffer_degrades_to_write_through() {
        let (mut sim, ionode, client, _) = setup(1_000_000); // 1 MB buffer
        sim.schedule(SimTime::ZERO, ionode, write_req(1, client, 0, 900_000));
        sim.schedule(
            SimTime::from_micros(1),
            ionode,
            write_req(2, client, 900_000, 900_000),
        );
        sim.run();
        let replies = &sim.entity_ref::<Collector>(client).unwrap().replies;
        assert_eq!(replies.len(), 2);
        let r1 = &replies.iter().find(|(_, r)| r.id == 1).unwrap().1;
        let r2 = &replies.iter().find(|(_, r)| r.id == 2).unwrap().1;
        assert!(r1.from_burst_buffer);
        assert!(
            !r2.from_burst_buffer,
            "second write should bypass the full buffer"
        );
        let node = sim.entity_ref::<IoNode>(ionode).unwrap();
        assert_eq!(node.stats.forwarded, 1);
        // Write-through bytes are durable at ACK time.
        assert_eq!(node.resil.acked_bytes, 1_800_000);
        assert_eq!(node.resil.replicated_bytes, 1_800_000);
    }

    #[test]
    fn read_hits_buffered_data_misses_go_to_oss() {
        let (mut sim, ionode, client, _) = setup(1 << 30);
        sim.schedule(SimTime::ZERO, ionode, write_req(1, client, 0, 4096));
        // Read of buffered region shortly after the write (before the
        // ~4 ms HDD drain completes): served from SSD.
        sim.schedule(
            SimTime::from_micros(100),
            ionode,
            read_req(2, client, 0, 4096),
        );
        // Read of an unbuffered region: forwarded.
        sim.schedule(
            SimTime::from_micros(100),
            ionode,
            read_req(3, client, 1 << 20, 4096),
        );
        sim.run();
        let replies = &sim.entity_ref::<Collector>(client).unwrap().replies;
        let r2 = &replies.iter().find(|(_, r)| r.id == 2).unwrap().1;
        let r3 = &replies.iter().find(|(_, r)| r.id == 3).unwrap().1;
        assert!(r2.from_burst_buffer);
        assert!(!r3.from_burst_buffer);
    }

    #[test]
    fn dirty_coverage_requires_full_overlap() {
        let node = {
            let (mut sim, ionode, client, _) = setup(1 << 30);
            sim.schedule(SimTime::ZERO, ionode, write_req(1, client, 0, 4096));
            sim.schedule(SimTime::ZERO, ionode, write_req(2, client, 8192, 4096));
            // Stop before drains complete so extents are still dirty.
            let cfg = SimConfig {
                time_limit: Some(SimTime::from_millis(1)),
                ..SimConfig::default()
            };
            let _ = cfg;
            sim.run();
            let n = sim.entity_ref::<IoNode>(ionode).unwrap();
            (
                n.dirty_covers(FileId::new(0), OstId::new(0), 0, 4096),
                n.dirty_covers(FileId::new(0), OstId::new(0), 4096, 4096),
                n.dirty_covers(FileId::new(0), OstId::new(0), 0, 12288),
            )
        };
        // After full drain nothing is covered.
        assert_eq!(node, (false, false, false));
    }

    #[test]
    fn coverage_merges_adjacent_extents() {
        let mut n = IoNode::new(
            DeviceConfig::nvme(),
            1 << 30,
            1,
            EntityId(0),
            vec![EntityId(0)],
        );
        let key = (FileId::new(1), OstId::new(0));
        n.dirty.insert(key, vec![(4096, 4096), (0, 4096)]);
        assert!(n.dirty_covers(FileId::new(1), OstId::new(0), 0, 8192));
        assert!(n.dirty_covers(FileId::new(1), OstId::new(0), 1000, 2000));
        assert!(!n.dirty_covers(FileId::new(1), OstId::new(0), 0, 8193));
        assert!(!n.dirty_covers(FileId::new(1), OstId::new(0), 10000, 10));
    }

    #[test]
    fn gated_ack_waits_for_replica_confirmation() {
        // Same write under local_only vs local_plus_one: the gated ACK
        // must land strictly later (it waits for the peer round trip)
        // but still well before the HDD drain.
        let ack_at = |mode: AckMode| {
            let (mut sim, n0, _, client) = setup_pair(mode);
            sim.schedule(SimTime::ZERO, n0, write_req(1, client, 0, 20_000_000));
            sim.run();
            let replies = &sim.entity_ref::<Collector>(client).unwrap().replies;
            assert_eq!(replies.len(), 1);
            assert!(replies[0].1.from_burst_buffer);
            replies[0].0
        };
        let local = ack_at(AckMode::LocalOnly);
        let plus_one = ack_at(AckMode::LocalPlusOne);
        assert!(
            plus_one > local,
            "gated ack ({plus_one}) must wait for the replica ({local})"
        );
        assert!(
            plus_one < SimTime::from_millis(60),
            "ack stalled: {plus_one}"
        );
    }

    #[test]
    fn replica_ack_marks_bytes_durable_before_drain() {
        let (mut sim, n0, n1, client) = setup_pair(AckMode::LocalPlusOne);
        sim.schedule(SimTime::ZERO, n0, write_req(1, client, 0, 20_000_000));
        sim.run();
        let primary = sim.entity_ref::<IoNode>(n0).unwrap();
        assert_eq!(primary.resil.acked_bytes, 20_000_000);
        assert_eq!(primary.resil.replicated_bytes, 20_000_000);
        assert_eq!(primary.resil.data_loss_bytes, 0);
        // The replica landed on the peer's SSD and is held for takeover.
        let peer = sim.entity_ref::<IoNode>(n1).unwrap();
        assert_eq!(peer.held.get(&n0.0).map(Vec::len), Some(1));
    }

    #[test]
    fn node_loss_under_local_only_opens_a_loss_window() {
        let (mut sim, n0, _, client) = setup_pair(AckMode::LocalOnly);
        // 20 MB absorbs in ~10 ms (SSD) but needs ~143 ms to drain to
        // the HDD; kill the node at 50 ms — after the ACK, mid-drain.
        sim.schedule(SimTime::ZERO, n0, write_req(1, client, 0, 20_000_000));
        sim.schedule(
            SimTime::from_millis(50),
            n0,
            PfsMsg::Fail {
                kind: FailureKind::IoNodeLoss,
                target: 0,
            },
        );
        sim.run();
        let node = sim.entity_ref::<IoNode>(n0).unwrap();
        assert_eq!(node.resil.failures, 1);
        assert_eq!(node.resil.acked_bytes, 20_000_000);
        assert_eq!(
            node.resil.data_loss_bytes, 20_000_000,
            "local_only exposes ACKed-but-undrained bytes"
        );
        assert_eq!(
            node.resil.acked_bytes,
            node.resil.replicated_bytes + node.resil.data_loss_bytes,
            "conservation: acked = replicated + lost"
        );
        assert!(
            node.resil.recovery_ns >= 500_000_000,
            "rebuild span recorded"
        );
    }

    #[test]
    fn node_loss_under_plus_one_loses_nothing_and_peer_redrains() {
        let (mut sim, n0, n1, client) = setup_pair(AckMode::LocalPlusOne);
        sim.schedule(SimTime::ZERO, n0, write_req(1, client, 0, 20_000_000));
        sim.schedule(
            SimTime::from_millis(50),
            n0,
            PfsMsg::Fail {
                kind: FailureKind::IoNodeLoss,
                target: 0,
            },
        );
        sim.run();
        let primary = sim.entity_ref::<IoNode>(n0).unwrap();
        assert_eq!(primary.resil.acked_bytes, 20_000_000);
        assert_eq!(
            primary.resil.data_loss_bytes, 0,
            "replicated bytes survive the node loss"
        );
        assert_eq!(
            primary.resil.acked_bytes,
            primary.resil.replicated_bytes + primary.resil.data_loss_bytes
        );
        // The surviving peer re-drained the replica to the OSS.
        let peer = sim.entity_ref::<IoNode>(n1).unwrap();
        assert_eq!(peer.resil.requeued, 1);
        assert_eq!(peer.takeover_outstanding, 0);
        assert!(peer.resil.recovery_ns > 0, "takeover span recorded");
        assert!(!peer.held.contains_key(&n0.0));
    }

    #[test]
    fn failed_node_forwards_writes_until_recovery() {
        let (mut sim, n0, _, client) = setup_pair(AckMode::LocalOnly);
        sim.schedule(
            SimTime::ZERO,
            n0,
            PfsMsg::Fail {
                kind: FailureKind::IoNodeLoss,
                target: 0,
            },
        );
        // While down (rebuild = 500 ms): write-through.
        sim.schedule(SimTime::from_millis(10), n0, write_req(1, client, 0, 4096));
        // After recovery: absorbed again.
        sim.schedule(SimTime::from_secs(2), n0, write_req(2, client, 0, 4096));
        sim.run();
        let replies = &sim.entity_ref::<Collector>(client).unwrap().replies;
        let r1 = &replies.iter().find(|(_, r)| r.id == 1).unwrap().1;
        let r2 = &replies.iter().find(|(_, r)| r.id == 2).unwrap().1;
        assert!(!r1.from_burst_buffer, "failed node must write through");
        assert!(r2.from_burst_buffer, "recovered node absorbs again");
        let node = sim.entity_ref::<IoNode>(n0).unwrap();
        assert_eq!(
            node.resil.acked_bytes,
            node.resil.replicated_bytes + node.resil.data_loss_bytes
        );
    }
}
