//! I/O forwarding node with burst buffer.
//!
//! The paper's Fig. 1 describes I/O nodes that "handle requests forwarded
//! by the scientific applications" and "integrate a tier of solid-state
//! devices to absorb the burst of random or high volume operations, so
//! that transfers to/from the staging area from/to the traditional
//! parallel file system can be done more efficiently". This entity
//! implements exactly that:
//!
//! * **Writes** are absorbed into the node's SSD when capacity allows; the
//!   client is acknowledged at SSD speed, and the data drains to the OSS
//!   over the storage fabric in the background (bounded drain streams).
//! * **Reads** are served from the SSD when they hit not-yet-drained data,
//!   and forwarded to the OSS otherwise.
//! * When the buffer is full, writes degrade to write-through forwarding —
//!   the "absorption limit" that burst-buffer sizing studies measure.
//!
//! Approximations (documented for DESIGN.md): the SSD read performed by a
//! drain is not charged (SSD read bandwidth is an order of magnitude above
//! OST write bandwidth), and a region re-written while its first copy is
//! draining may be conservatively treated as clean after the first drain
//! completes.

use crate::config::DeviceConfig;
use crate::device::DeviceModel;
use crate::msg::{route, IoReply, IoRequest, PfsMsg, RequestId};
use pioeval_des::{Ctx, Entity, EntityId, Envelope};
use pioeval_types::{
    tid_for, FileId, IoKind, OstId, ReqMark, ReqRecorder, ServerKind, SimDuration, SimTime,
};
use std::collections::{HashMap, VecDeque};

/// A unit of data awaiting drain to the PFS.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct DrainChunk {
    file: FileId,
    ost: OstId,
    obj_offset: u64,
    len: u64,
}

/// Why a local SSD completion is pending.
enum SsdPending {
    /// A client write absorbed into the buffer; reply when SSD finishes.
    Absorb {
        req: IoRequest,
        queue_delay: SimDuration,
    },
    /// A client read served from the buffer; reply when SSD finishes.
    CachedRead {
        req: IoRequest,
        queue_delay: SimDuration,
    },
}

/// Why a reply from the OSS is pending.
enum OssPending {
    /// A forwarded client request; relay the reply to the original client.
    Forwarded { orig: IoRequest, arrived: SimTime },
    /// A background drain write; free buffer space on completion.
    Drain { chunk: DrainChunk },
}

/// Burst-buffer occupancy and traffic counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct BurstBufferStats {
    /// Writes absorbed into the SSD.
    pub absorbed_writes: u64,
    /// Bytes absorbed.
    pub absorbed_bytes: u64,
    /// Reads served from not-yet-drained data.
    pub cached_reads: u64,
    /// Requests forwarded to the OSS (reads missing + writes while full).
    pub forwarded: u64,
    /// Drain writes completed.
    pub drains_completed: u64,
    /// High-water mark of buffer occupancy, bytes.
    pub peak_used: u64,
}

/// The I/O forwarding node entity.
pub struct IoNode {
    ssd: DeviceModel,
    capacity: u64,
    used: u64,
    /// Dirty (absorbed, not yet drained) extents per (file, ost).
    dirty: HashMap<(FileId, OstId), Vec<(u64, u64)>>,
    drain_queue: VecDeque<DrainChunk>,
    active_drains: usize,
    drain_streams: usize,
    /// Route from this node to each OST's OSS entity (index = global OST).
    ost_route: Vec<EntityId>,
    /// The storage fabric between this node and the storage cluster.
    storage_fabric: EntityId,
    ssd_pending: HashMap<u64, SsdPending>,
    oss_pending: HashMap<RequestId, OssPending>,
    next_token: u64,
    next_req_id: RequestId,
    /// Traffic counters.
    pub stats: BurstBufferStats,
    /// Per-request trace recorder (buffer-service and forwarding marks).
    pub reqtrace: ReqRecorder,
}

impl IoNode {
    /// A new I/O node with an empty buffer.
    pub fn new(
        device: DeviceConfig,
        capacity: u64,
        drain_streams: usize,
        storage_fabric: EntityId,
        ost_route: Vec<EntityId>,
    ) -> Self {
        IoNode {
            ssd: DeviceModel::new(device),
            capacity,
            used: 0,
            dirty: HashMap::new(),
            drain_queue: VecDeque::new(),
            active_drains: 0,
            drain_streams: drain_streams.max(1),
            ost_route,
            storage_fabric,
            ssd_pending: HashMap::new(),
            oss_pending: HashMap::new(),
            next_token: 0,
            next_req_id: 0,
            stats: BurstBufferStats::default(),
            reqtrace: ReqRecorder::default(),
        }
    }

    /// Bytes currently buffered (absorbed, not yet drained).
    pub fn used(&self) -> u64 {
        self.used
    }

    /// True when all absorbed data has drained to the PFS.
    pub fn fully_drained(&self) -> bool {
        self.used == 0 && self.drain_queue.is_empty() && self.active_drains == 0
    }

    fn dirty_covers(&self, file: FileId, ost: OstId, offset: u64, len: u64) -> bool {
        let Some(extents) = self.dirty.get(&(file, ost)) else {
            return false;
        };
        // Merge-and-check over a sorted copy: extents lists are short
        // (bounded by in-flight chunks for one file on one OST).
        let mut sorted = extents.clone();
        sorted.sort_unstable();
        let (start, end) = (offset, offset + len);
        let mut covered_to = start;
        for (o, l) in sorted {
            if o > covered_to {
                break;
            }
            covered_to = covered_to.max(o + l);
            if covered_to >= end {
                return true;
            }
        }
        covered_to >= end
    }

    fn remove_dirty(&mut self, chunk: &DrainChunk) {
        if let Some(extents) = self.dirty.get_mut(&(chunk.file, chunk.ost)) {
            if let Some(pos) = extents
                .iter()
                .position(|&(o, l)| o == chunk.obj_offset && l == chunk.len)
            {
                extents.swap_remove(pos);
            }
            if extents.is_empty() {
                self.dirty.remove(&(chunk.file, chunk.ost));
            }
        }
    }

    fn forward(&mut self, req: IoRequest, ctx: &mut Ctx<'_, PfsMsg>) {
        self.stats.forwarded += 1;
        let now = ctx.now();
        let id = self.next_req_id;
        self.next_req_id += 1;
        // Traced parents spawn a traced child request so the downstream
        // OSS/fabric segments can be re-attributed to the original request.
        let child_tid = if req.tid != 0 {
            tid_for(ctx.me().0, id)
        } else {
            0
        };
        if child_tid != 0 {
            self.reqtrace.record(
                req.tid,
                ctx.me().0,
                ReqMark::Spawn {
                    child: child_tid,
                    at: now,
                },
            );
        }
        let oss = self.ost_route[req.ost.index()];
        let fwd = IoRequest {
            id,
            reply_to: ctx.me(),
            reply_via: vec![self.storage_fabric],
            kind: req.kind,
            file: req.file,
            ost: req.ost,
            obj_offset: req.obj_offset,
            len: req.len,
            tid: child_tid,
        };
        self.oss_pending.insert(
            id,
            OssPending::Forwarded {
                orig: req,
                arrived: now,
            },
        );
        let size = fwd.wire_size();
        let (hop, msg) = route(&[self.storage_fabric], oss, size, PfsMsg::Io(fwd));
        ctx.send(hop, ctx.lookahead(), msg);
    }

    fn start_drains(&mut self, ctx: &mut Ctx<'_, PfsMsg>) {
        while self.active_drains < self.drain_streams {
            let Some(chunk) = self.drain_queue.pop_front() else {
                break;
            };
            self.active_drains += 1;
            let id = self.next_req_id;
            self.next_req_id += 1;
            let oss = self.ost_route[chunk.ost.index()];
            // Background drains are never traced: they are decoupled from
            // any client request's latency.
            let req = IoRequest {
                id,
                reply_to: ctx.me(),
                reply_via: vec![self.storage_fabric],
                kind: IoKind::Write,
                file: chunk.file,
                ost: chunk.ost,
                obj_offset: chunk.obj_offset,
                len: chunk.len,
                tid: 0,
            };
            self.oss_pending.insert(id, OssPending::Drain { chunk });
            let size = req.wire_size();
            let (hop, msg) = route(&[self.storage_fabric], oss, size, PfsMsg::Io(req));
            ctx.send(hop, ctx.lookahead(), msg);
        }
    }

    fn reply_to_client(
        &self,
        req: &IoRequest,
        from_burst_buffer: bool,
        queue_delay: SimDuration,
        ctx: &mut Ctx<'_, PfsMsg>,
    ) {
        let reply = IoReply {
            id: req.id,
            kind: req.kind,
            file: req.file,
            ost: req.ost,
            len: req.len,
            from_burst_buffer,
            queue_delay,
            tid: req.tid,
        };
        let size = reply.wire_size();
        let (hop, msg) = route(&req.reply_via, req.reply_to, size, PfsMsg::IoDone(reply));
        ctx.send(hop, ctx.lookahead(), msg);
    }
}

impl Entity<PfsMsg> for IoNode {
    fn on_event(&mut self, ev: Envelope<PfsMsg>, ctx: &mut Ctx<'_, PfsMsg>) {
        match ev.msg {
            PfsMsg::Io(req) => {
                let now = ctx.now();
                match req.kind {
                    IoKind::Write if self.used + req.len <= self.capacity => {
                        // Absorb into the burst buffer.
                        self.used += req.len;
                        self.stats.peak_used = self.stats.peak_used.max(self.used);
                        self.stats.absorbed_writes += 1;
                        self.stats.absorbed_bytes += req.len;
                        self.dirty
                            .entry((req.file, req.ost))
                            .or_default()
                            .push((req.obj_offset, req.len));
                        self.drain_queue.push_back(DrainChunk {
                            file: req.file,
                            ost: req.ost,
                            obj_offset: req.obj_offset,
                            len: req.len,
                        });
                        let queue_delay = self.ssd.queue_delay(now);
                        let completion =
                            self.ssd.access(now, IoKind::Write, req.obj_offset, req.len);
                        self.reqtrace.record(
                            req.tid,
                            ctx.me().0,
                            ReqMark::Server {
                                kind: ServerKind::IoNodeSsd,
                                arrive: now,
                                queue: queue_delay,
                                depart: completion,
                            },
                        );
                        let token = self.next_token;
                        self.next_token += 1;
                        self.ssd_pending
                            .insert(token, SsdPending::Absorb { req, queue_delay });
                        ctx.send_self(completion.since(now), PfsMsg::DeviceDone { token });
                        self.start_drains(ctx);
                    }
                    IoKind::Read
                        if self.dirty_covers(req.file, req.ost, req.obj_offset, req.len) =>
                    {
                        // Serve from the buffer.
                        self.stats.cached_reads += 1;
                        let queue_delay = self.ssd.queue_delay(now);
                        let completion =
                            self.ssd.access(now, IoKind::Read, req.obj_offset, req.len);
                        self.reqtrace.record(
                            req.tid,
                            ctx.me().0,
                            ReqMark::Server {
                                kind: ServerKind::IoNodeSsd,
                                arrive: now,
                                queue: queue_delay,
                                depart: completion,
                            },
                        );
                        let token = self.next_token;
                        self.next_token += 1;
                        self.ssd_pending
                            .insert(token, SsdPending::CachedRead { req, queue_delay });
                        ctx.send_self(completion.since(now), PfsMsg::DeviceDone { token });
                    }
                    _ => self.forward(req, ctx),
                }
            }
            PfsMsg::DeviceDone { token } => {
                match self
                    .ssd_pending
                    .remove(&token)
                    .expect("SSD completion for unknown token")
                {
                    SsdPending::Absorb { req, queue_delay }
                    | SsdPending::CachedRead { req, queue_delay } => {
                        self.reply_to_client(&req, true, queue_delay, ctx);
                    }
                }
            }
            PfsMsg::IoDone(rep) => {
                match self
                    .oss_pending
                    .remove(&rep.id)
                    .expect("OSS reply for unknown request")
                {
                    OssPending::Forwarded { orig, arrived } => {
                        // Close the forwarding interval on the parent
                        // request; the spawned child's own marks let the
                        // analyzer re-attribute this span into fabric /
                        // queue / device portions.
                        self.reqtrace.record(
                            orig.tid,
                            ctx.me().0,
                            ReqMark::Server {
                                kind: ServerKind::IoNodeSsd,
                                arrive: arrived,
                                queue: SimDuration::ZERO,
                                depart: ctx.now(),
                            },
                        );
                        self.reply_to_client(&orig, false, rep.queue_delay, ctx);
                    }
                    OssPending::Drain { chunk } => {
                        self.used = self.used.saturating_sub(chunk.len);
                        self.stats.drains_completed += 1;
                        self.active_drains -= 1;
                        self.remove_dirty(&chunk);
                        self.start_drains(ctx);
                    }
                }
            }
            other => panic!("I/O node received unexpected message: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;
    use crate::fabric::Fabric;
    use crate::msg::IoRequest;
    use crate::oss::Oss;
    use pioeval_des::{SimConfig, Simulation};
    use pioeval_types::SimTime;

    struct Collector {
        replies: Vec<(SimTime, IoReply)>,
    }
    impl Entity<PfsMsg> for Collector {
        fn on_event(&mut self, ev: Envelope<PfsMsg>, ctx: &mut Ctx<'_, PfsMsg>) {
            if let PfsMsg::IoDone(rep) = ev.msg {
                self.replies.push((ctx.now(), rep));
            }
        }
    }

    /// A tiny world: client-side collector, one I/O node, storage fabric,
    /// one OSS with one HDD OST.
    fn setup(capacity: u64) -> (Simulation<PfsMsg>, EntityId, EntityId, EntityId) {
        let mut sim = Simulation::new(SimConfig::default());
        let sfab = sim.add_entity(
            "storage-fabric",
            Box::new(Fabric::new(crate::config::FabricConfig::ten_gbe())),
        );
        let oss = sim.add_entity(
            "oss0",
            Box::new(Oss::new(
                0,
                1,
                DeviceConfig::hdd(),
                SimDuration::from_secs(1),
            )),
        );
        let ionode = sim.add_entity(
            "ionode0",
            Box::new(IoNode::new(
                DeviceConfig::nvme(),
                capacity,
                2,
                sfab,
                vec![oss],
            )),
        );
        let client = sim.add_entity("client", Box::new(Collector { replies: vec![] }));
        (sim, ionode, client, oss)
    }

    fn write_req(id: u64, client: EntityId, offset: u64, len: u64) -> PfsMsg {
        PfsMsg::Io(IoRequest {
            id,
            reply_to: client,
            reply_via: vec![],
            kind: IoKind::Write,
            file: FileId::new(0),
            ost: OstId::new(0),
            obj_offset: offset,
            len,
            tid: 0,
        })
    }

    fn read_req(id: u64, client: EntityId, offset: u64, len: u64) -> PfsMsg {
        PfsMsg::Io(IoRequest {
            id,
            reply_to: client,
            reply_via: vec![],
            kind: IoKind::Read,
            file: FileId::new(0),
            ost: OstId::new(0),
            obj_offset: offset,
            len,
            tid: 0,
        })
    }

    #[test]
    fn absorbed_write_acks_at_ssd_speed_then_drains() {
        let (mut sim, ionode, client, _) = setup(1 << 30);
        // 20 MB write: SSD (2 GB/s) acks in ~10 ms; HDD (140 MB/s) drain
        // takes ~143 ms.
        sim.schedule(SimTime::ZERO, ionode, write_req(1, client, 0, 20_000_000));
        sim.run();
        let replies = &sim.entity_ref::<Collector>(client).unwrap().replies;
        assert_eq!(replies.len(), 1);
        assert!(replies[0].1.from_burst_buffer);
        assert!(
            replies[0].0 < SimTime::from_millis(30),
            "ack too slow: {}",
            replies[0].0
        );
        let node = sim.entity_ref::<IoNode>(ionode).unwrap();
        assert!(node.fully_drained());
        assert_eq!(node.stats.absorbed_writes, 1);
        assert_eq!(node.stats.drains_completed, 1);
        // Simulation end time reflects the drain reaching the HDD.
        assert!(sim.now() >= SimTime::from_millis(100));
    }

    #[test]
    fn full_buffer_degrades_to_write_through() {
        let (mut sim, ionode, client, _) = setup(1_000_000); // 1 MB buffer
        sim.schedule(SimTime::ZERO, ionode, write_req(1, client, 0, 900_000));
        sim.schedule(
            SimTime::from_micros(1),
            ionode,
            write_req(2, client, 900_000, 900_000),
        );
        sim.run();
        let replies = &sim.entity_ref::<Collector>(client).unwrap().replies;
        assert_eq!(replies.len(), 2);
        let r1 = &replies.iter().find(|(_, r)| r.id == 1).unwrap().1;
        let r2 = &replies.iter().find(|(_, r)| r.id == 2).unwrap().1;
        assert!(r1.from_burst_buffer);
        assert!(
            !r2.from_burst_buffer,
            "second write should bypass the full buffer"
        );
        let node = sim.entity_ref::<IoNode>(ionode).unwrap();
        assert_eq!(node.stats.forwarded, 1);
    }

    #[test]
    fn read_hits_buffered_data_misses_go_to_oss() {
        let (mut sim, ionode, client, _) = setup(1 << 30);
        sim.schedule(SimTime::ZERO, ionode, write_req(1, client, 0, 4096));
        // Read of buffered region shortly after the write (before the
        // ~4 ms HDD drain completes): served from SSD.
        sim.schedule(
            SimTime::from_micros(100),
            ionode,
            read_req(2, client, 0, 4096),
        );
        // Read of an unbuffered region: forwarded.
        sim.schedule(
            SimTime::from_micros(100),
            ionode,
            read_req(3, client, 1 << 20, 4096),
        );
        sim.run();
        let replies = &sim.entity_ref::<Collector>(client).unwrap().replies;
        let r2 = &replies.iter().find(|(_, r)| r.id == 2).unwrap().1;
        let r3 = &replies.iter().find(|(_, r)| r.id == 3).unwrap().1;
        assert!(r2.from_burst_buffer);
        assert!(!r3.from_burst_buffer);
    }

    #[test]
    fn dirty_coverage_requires_full_overlap() {
        let node = {
            let (mut sim, ionode, client, _) = setup(1 << 30);
            sim.schedule(SimTime::ZERO, ionode, write_req(1, client, 0, 4096));
            sim.schedule(SimTime::ZERO, ionode, write_req(2, client, 8192, 4096));
            // Stop before drains complete so extents are still dirty.
            let cfg = SimConfig {
                time_limit: Some(SimTime::from_millis(1)),
                ..SimConfig::default()
            };
            let _ = cfg;
            sim.run();
            let n = sim.entity_ref::<IoNode>(ionode).unwrap();
            (
                n.dirty_covers(FileId::new(0), OstId::new(0), 0, 4096),
                n.dirty_covers(FileId::new(0), OstId::new(0), 4096, 4096),
                n.dirty_covers(FileId::new(0), OstId::new(0), 0, 12288),
            )
        };
        // After full drain nothing is covered.
        assert_eq!(node, (false, false, false));
    }

    #[test]
    fn coverage_merges_adjacent_extents() {
        let mut n = IoNode::new(
            DeviceConfig::nvme(),
            1 << 30,
            1,
            EntityId(0),
            vec![EntityId(0)],
        );
        let key = (FileId::new(1), OstId::new(0));
        n.dirty.insert(key, vec![(4096, 4096), (0, 4096)]);
        assert!(n.dirty_covers(FileId::new(1), OstId::new(0), 0, 8192));
        assert!(n.dirty_covers(FileId::new(1), OstId::new(0), 1000, 2000));
        assert!(!n.dirty_covers(FileId::new(1), OstId::new(0), 0, 8193));
        assert!(!n.dirty_covers(FileId::new(1), OstId::new(0), 10000, 10));
    }
}
