//! Raw per-request trace events (simulated time).
//!
//! The request tracer follows each client-issued storage RPC through the
//! whole modeled stack — client issue, fabric hops, server queues and
//! device service — in *simulated* time (as opposed to the wall-clock
//! self-telemetry in `pioeval-obs`). Every entity on the path owns a
//! private [`ReqRecorder`] it appends to while handling its own events,
//! so recording is contention-free on the parallel DES hot path; the
//! per-entity buffers are drained and merged deterministically after the
//! run (see `pioeval-reqtrace` for assembly and analytics).
//!
//! This module is the shared *vocabulary* only: it has no dependency on
//! the DES engine, so entity identity is carried as a raw `u32`.

use crate::io::MetaOp;
use crate::time::{SimDuration, SimTime};

/// A globally-unique trace id for one request.
///
/// Wire-level `RequestId`s are only unique per requester, so the tracer
/// widens them: `tid = ((owner_entity + 1) << 32) | request_id`
/// ([`tid_for`]). `tid == 0` means *untraced* — servers and fabrics
/// skip all recording work for such requests, which is what keeps the
/// tracer's disabled-path overhead near zero.
pub type Tid = u64;

/// Sentinel collective index for "not part of a collective".
pub const NO_COLLECTIVE: u32 = u32::MAX;

/// Compose a globally-unique trace id from the owning (issuing) entity
/// and its per-owner request id. The owner is offset by one so that a
/// valid tid is never 0 (the untraced sentinel), even for entity 0's
/// request 0.
pub fn tid_for(owner: u32, id: u64) -> Tid {
    ((owner as u64 + 1) << 32) | (id & 0xFFFF_FFFF)
}

/// The entity that issued (owns) `tid`. Inverse of [`tid_for`].
pub fn tid_owner(tid: Tid) -> u32 {
    ((tid >> 32) - 1) as u32
}

/// Request operation class, as seen at the issuing client.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReqOp {
    /// A data read RPC.
    Read,
    /// A data write RPC.
    Write,
    /// A metadata RPC (namespace / attribute operation).
    Meta(MetaOp),
}

impl ReqOp {
    /// Stable lower-case name (`read`, `write`, `meta:create`, ...).
    pub fn name(self) -> &'static str {
        match self {
            ReqOp::Read => "read",
            ReqOp::Write => "write",
            ReqOp::Meta(MetaOp::Create) => "meta:create",
            ReqOp::Meta(MetaOp::Open) => "meta:open",
            ReqOp::Meta(MetaOp::Close) => "meta:close",
            ReqOp::Meta(MetaOp::Stat) => "meta:stat",
            ReqOp::Meta(MetaOp::Unlink) => "meta:unlink",
            ReqOp::Meta(MetaOp::Mkdir) => "meta:mkdir",
            ReqOp::Meta(MetaOp::Readdir) => "meta:readdir",
            ReqOp::Meta(MetaOp::Fsync) => "meta:fsync",
        }
    }

    /// The coarse class (`read` / `write` / `meta`) for aggregation.
    pub fn class(self) -> &'static str {
        match self {
            ReqOp::Read => "read",
            ReqOp::Write => "write",
            ReqOp::Meta(_) => "meta",
        }
    }

    /// Parse a [`ReqOp::name`] back (used by the trace-file analyzer).
    pub fn parse(name: &str) -> Option<ReqOp> {
        match name {
            "read" => Some(ReqOp::Read),
            "write" => Some(ReqOp::Write),
            _ => {
                let op = name.strip_prefix("meta:")?;
                MetaOp::ALL
                    .iter()
                    .find(|m| m.name() == op)
                    .map(|&m| ReqOp::Meta(m))
            }
        }
    }
}

/// Which kind of server recorded a service interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ServerKind {
    /// An OST device queue behind an OSS (PFS data path).
    OssDevice,
    /// The metadata server's serial service queue (PFS meta path).
    Mds,
    /// A burst-buffer SSD on an I/O forwarding node.
    IoNodeSsd,
    /// An object-store gateway (admission slot + protocol processing).
    Gateway,
    /// An object-store metadata KV shard.
    Shard,
    /// A peer burst-buffer SSD absorbing a replication copy (write-ack
    /// policies `local_plus_one` / `geographic`).
    Replica,
}

impl ServerKind {
    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            ServerKind::OssDevice => "oss",
            ServerKind::Mds => "mds",
            ServerKind::IoNodeSsd => "ionode",
            ServerKind::Gateway => "gateway",
            ServerKind::Shard => "shard",
            ServerKind::Replica => "replica",
        }
    }

    /// True when the non-queue part of the interval is *device* time
    /// (storage media) rather than protocol *service* time.
    pub fn is_device(self) -> bool {
        matches!(
            self,
            ServerKind::OssDevice | ServerKind::IoNodeSsd | ServerKind::Replica
        )
    }

    /// Parse a [`ServerKind::name`] back.
    pub fn parse(name: &str) -> Option<ServerKind> {
        match name {
            "oss" => Some(ServerKind::OssDevice),
            "mds" => Some(ServerKind::Mds),
            "ionode" => Some(ServerKind::IoNodeSsd),
            "gateway" => Some(ServerKind::Gateway),
            "shard" => Some(ServerKind::Shard),
            "replica" => Some(ServerKind::Replica),
            _ => None,
        }
    }
}

/// One timestamped observation about a traced request.
///
/// A root request's marks partition its `[issue, done]` interval:
/// consecutive marks tile the timeline, and every gap between them is
/// wire/lookahead time attributed to the fabric. That construction is
/// what makes per-segment attribution sum *exactly* to the end-to-end
/// latency (see the conservation property tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReqMark {
    /// The issuing client sent the request.
    Issue {
        /// Issuing rank index (`u32::MAX` for non-rank clients).
        rank: u32,
        /// Operation class.
        op: ReqOp,
        /// Target file / object key.
        file: u32,
        /// Payload bytes (0 for metadata).
        bytes: u64,
        /// Collective-instance index, or [`NO_COLLECTIVE`].
        collective: u32,
        /// Send time.
        at: SimTime,
    },
    /// A fabric carried the request (or its reply) over one hop.
    Hop {
        /// When the packet reached the fabric.
        arrive: SimTime,
        /// When it was delivered to the next entity.
        depart: SimTime,
    },
    /// A server held the request from arrival to completion.
    Server {
        /// What kind of server.
        kind: ServerKind,
        /// Request arrival at the server.
        arrive: SimTime,
        /// Time spent waiting (FIFO queue / admission slot).
        queue: SimDuration,
        /// Service completion (reply leaves no earlier than this).
        depart: SimTime,
    },
    /// The request spawned a child request (I/O-node forward, gateway
    /// backend fan-out). The child's marks live under its own tid.
    Spawn {
        /// The child's trace id.
        child: Tid,
        /// Spawn time.
        at: SimTime,
    },
    /// The issuing client received the reply.
    Done {
        /// Delivery time.
        at: SimTime,
    },
}

impl ReqMark {
    /// The mark's position on the timeline (interval start for
    /// interval-shaped marks).
    pub fn start(&self) -> SimTime {
        match *self {
            ReqMark::Issue { at, .. } => at,
            ReqMark::Hop { arrive, .. } => arrive,
            ReqMark::Server { arrive, .. } => arrive,
            ReqMark::Spawn { at, .. } => at,
            ReqMark::Done { at } => at,
        }
    }
}

/// One recorded event: a mark, stamped with the recording entity and a
/// per-entity sequence number (the deterministic tiebreak when two
/// marks share a timestamp).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReqEvent {
    /// The request this observation belongs to.
    pub tid: Tid,
    /// The entity that recorded it.
    pub entity: u32,
    /// Per-entity record counter (recording order within the entity).
    pub seq: u32,
    /// The observation.
    pub mark: ReqMark,
}

/// A per-entity request-trace buffer.
///
/// Each DES entity owns exactly one recorder and only appends from its
/// own `on_event` — no locks, no sharing, so the parallel executor pays
/// nothing for tracing beyond the per-entity appends themselves. When
/// disabled (the default), [`ReqRecorder::record`] is a single branch.
#[derive(Clone, Debug, Default)]
pub struct ReqRecorder {
    /// Whether this recorder keeps events (set at trace enablement).
    pub enabled: bool,
    /// Recorded events, in recording order.
    pub events: Vec<ReqEvent>,
    seq: u32,
}

impl ReqRecorder {
    /// Append `mark` for `tid` as observed by `entity`. No-op when the
    /// recorder is disabled or the request is untraced (`tid == 0`).
    pub fn record(&mut self, tid: Tid, entity: u32, mark: ReqMark) {
        if !self.enabled || tid == 0 {
            return;
        }
        self.events.push(ReqEvent {
            tid,
            entity,
            seq: self.seq,
            mark,
        });
        self.seq += 1;
    }

    /// Take the buffered events (merge-at-finalize).
    pub fn drain(&mut self) -> Vec<ReqEvent> {
        std::mem::take(&mut self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tid_roundtrips_and_is_never_zero() {
        let t = tid_for(0, 0);
        assert_ne!(t, 0);
        assert_eq!(tid_owner(t), 0);
        let t = tid_for(41, 7);
        assert_eq!(tid_owner(t), 41);
        assert_eq!(t & 0xFFFF_FFFF, 7);
    }

    #[test]
    fn req_op_names_roundtrip() {
        for op in [ReqOp::Read, ReqOp::Write, ReqOp::Meta(MetaOp::Fsync)] {
            assert_eq!(ReqOp::parse(op.name()), Some(op));
        }
        assert_eq!(ReqOp::parse("bogus"), None);
        assert_eq!(ReqOp::Meta(MetaOp::Stat).class(), "meta");
    }

    #[test]
    fn server_kind_names_roundtrip() {
        for kind in [
            ServerKind::OssDevice,
            ServerKind::Mds,
            ServerKind::IoNodeSsd,
            ServerKind::Gateway,
            ServerKind::Shard,
            ServerKind::Replica,
        ] {
            assert_eq!(ServerKind::parse(kind.name()), Some(kind));
        }
        assert!(ServerKind::OssDevice.is_device());
        assert!(ServerKind::Replica.is_device());
        assert!(!ServerKind::Gateway.is_device());
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let mut rec = ReqRecorder::default();
        rec.record(1, 0, ReqMark::Done { at: SimTime::ZERO });
        assert!(rec.events.is_empty());
        rec.enabled = true;
        rec.record(0, 0, ReqMark::Done { at: SimTime::ZERO });
        assert!(rec.events.is_empty(), "tid 0 stays untraced");
        rec.record(1, 0, ReqMark::Done { at: SimTime::ZERO });
        rec.record(1, 0, ReqMark::Done { at: SimTime::ZERO });
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.events[1].seq, 1);
        assert_eq!(rec.drain().len(), 2);
        assert!(rec.events.is_empty());
    }
}
