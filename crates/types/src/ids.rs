//! Identity newtypes.
//!
//! Every actor and object in the simulated storage system gets a dedicated
//! newtype so that ranks, files, nodes, and storage targets cannot be
//! confused at compile time — a cheap but effective guard in a codebase
//! where nearly everything is ultimately an integer.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_newtype {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw index.
            pub const fn new(v: u32) -> Self {
                Self(v)
            }
            /// The raw index.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }
        impl From<usize> for $name {
            fn from(v: usize) -> Self {
                Self(v as u32)
            }
        }
    };
}

id_newtype!(
    /// An MPI-style process rank within a job.
    Rank,
    "r"
);
id_newtype!(
    /// A logical file in the simulated namespace.
    FileId,
    "f"
);
id_newtype!(
    /// A batch job (one application run).
    JobId,
    "job"
);
id_newtype!(
    /// A physical node in the cluster (compute, I/O, or storage).
    NodeId,
    "n"
);
id_newtype!(
    /// A compute client (one per compute node in most configurations).
    ClientId,
    "c"
);
id_newtype!(
    /// An object storage target (one backing device on an OSS).
    OstId,
    "ost"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_format_with_prefix() {
        assert_eq!(format!("{}", Rank::new(3)), "r3");
        assert_eq!(format!("{:?}", FileId::new(7)), "f7");
        assert_eq!(format!("{}", OstId::new(12)), "ost12");
        assert_eq!(format!("{}", JobId::new(1)), "job1");
    }

    #[test]
    fn ids_hash_and_order() {
        let mut set = HashSet::new();
        set.insert(Rank::new(1));
        set.insert(Rank::new(1));
        set.insert(Rank::new(2));
        assert_eq!(set.len(), 2);
        assert!(Rank::new(1) < Rank::new(2));
    }

    #[test]
    fn conversions_roundtrip() {
        let r: Rank = 5usize.into();
        assert_eq!(r.index(), 5);
        let f: FileId = 9u32.into();
        assert_eq!(f, FileId::new(9));
    }
}
