//! Deterministic randomness.
//!
//! Every stochastic component in the framework is seeded explicitly, and
//! independent streams are derived with [`split_seed`] so that adding a
//! component (or running components in parallel) never perturbs the
//! random stream of another — a prerequisite for the reproducibility that
//! the paper's evaluation cycle (Fig. 4) depends on.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Build a deterministic RNG from a seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive an independent child seed from `(seed, stream)`.
///
/// Uses SplitMix64 finalization, which is a bijective mixer with good
/// avalanche behaviour; distinct `(seed, stream)` pairs yield
/// well-separated child seeds.
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use std::collections::HashSet;

    #[test]
    fn rng_is_deterministic() {
        let a: Vec<u64> = (0..16)
            .map({
                let mut r = rng(42);
                move |_| r.gen()
            })
            .collect();
        let b: Vec<u64> = (0..16)
            .map({
                let mut r = rng(42);
                move |_| r.gen()
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn split_seeds_are_distinct() {
        let mut seen = HashSet::new();
        for seed in 0..8u64 {
            for stream in 0..64u64 {
                assert!(seen.insert(split_seed(seed, stream)));
            }
        }
    }

    #[test]
    fn split_is_stable() {
        // Pin the mixing function: downstream experiments depend on these
        // exact streams for reproducibility across versions.
        assert_eq!(split_seed(0, 0), split_seed(0, 0));
        assert_ne!(split_seed(0, 0), split_seed(0, 1));
        assert_ne!(split_seed(0, 0), split_seed(1, 0));
    }
}
