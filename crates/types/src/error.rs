//! Framework-wide error type.

use std::fmt;

/// Errors surfaced by the pioeval framework.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A configuration value was invalid (message explains which and why).
    Config(String),
    /// An I/O operation referenced a file unknown to the namespace.
    UnknownFile(String),
    /// A trace or profile could not be decoded.
    Codec(String),
    /// A model was used before being trained, or on incompatible data.
    Model(String),
    /// A workload description failed to parse (DSL, skeleton descriptor).
    Parse(String),
    /// The simulation reached an inconsistent state (bug guard).
    Sim(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Config(m) => write!(f, "configuration error: {m}"),
            Error::UnknownFile(m) => write!(f, "unknown file: {m}"),
            Error::Codec(m) => write!(f, "codec error: {m}"),
            Error::Model(m) => write!(f, "model error: {m}"),
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Sim(m) => write!(f, "simulation error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Framework-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_their_class() {
        assert!(Error::Config("x".into())
            .to_string()
            .contains("configuration"));
        assert!(Error::Parse("y".into()).to_string().contains("parse"));
        let e: Box<dyn std::error::Error> = Box::new(Error::Sim("z".into()));
        assert!(e.to_string().contains("z"));
    }
}
