//! Byte sizes, bandwidth, and unit helpers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Byte-size constructors (`bytes::mib(4)` reads better than `4 << 20`).
pub mod bytes {
    /// Kibibytes → bytes.
    pub const fn kib(n: u64) -> u64 {
        n * 1024
    }
    /// Mebibytes → bytes.
    pub const fn mib(n: u64) -> u64 {
        n * 1024 * 1024
    }
    /// Gibibytes → bytes.
    pub const fn gib(n: u64) -> u64 {
        n * 1024 * 1024 * 1024
    }
}

/// A byte count with human-readable formatting.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ByteSize(pub u64);

impl ByteSize {
    /// Raw byte count.
    pub const fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= bytes::gib(1) {
            write!(f, "{:.2}GiB", b as f64 / bytes::gib(1) as f64)
        } else if b >= bytes::mib(1) {
            write!(f, "{:.2}MiB", b as f64 / bytes::mib(1) as f64)
        } else if b >= bytes::kib(1) {
            write!(f, "{:.2}KiB", b as f64 / bytes::kib(1) as f64)
        } else {
            write!(f, "{b}B")
        }
    }
}

impl From<u64> for ByteSize {
    fn from(v: u64) -> Self {
        ByteSize(v)
    }
}

/// Convert (bytes, elapsed seconds) to MiB/s. Returns 0 for zero time.
pub fn throughput_mib_s(bytes_moved: u64, secs: f64) -> f64 {
    if secs <= 0.0 {
        return 0.0;
    }
    bytes_moved as f64 / bytes::mib(1) as f64 / secs
}

/// The Darshan-style transfer-size histogram buckets, upper bounds in
/// bytes. The last bucket is open-ended.
pub const SIZE_BUCKET_BOUNDS: [u64; 9] = [
    100,
    1024,
    10 * 1024,
    100 * 1024,
    1024 * 1024,
    4 * 1024 * 1024,
    10 * 1024 * 1024,
    100 * 1024 * 1024,
    1024 * 1024 * 1024,
];

/// Human-readable labels for [`SIZE_BUCKET_BOUNDS`] plus the open bucket.
pub const SIZE_BUCKET_LABELS: [&str; 10] = [
    "0-100", "100-1K", "1K-10K", "10K-100K", "100K-1M", "1M-4M", "4M-10M", "10M-100M", "100M-1G",
    "1G+",
];

/// Index of the size-histogram bucket for a transfer of `size` bytes.
pub fn size_bucket(size: u64) -> usize {
    SIZE_BUCKET_BOUNDS
        .iter()
        .position(|&ub| size <= ub)
        .unwrap_or(SIZE_BUCKET_BOUNDS.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_constructors() {
        assert_eq!(bytes::kib(1), 1024);
        assert_eq!(bytes::mib(2), 2 * 1024 * 1024);
        assert_eq!(bytes::gib(1), 1 << 30);
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", ByteSize(17)), "17B");
        assert_eq!(format!("{}", ByteSize(bytes::kib(4))), "4.00KiB");
        assert_eq!(format!("{}", ByteSize(bytes::mib(3))), "3.00MiB");
        assert_eq!(format!("{}", ByteSize(bytes::gib(2))), "2.00GiB");
    }

    #[test]
    fn throughput_math() {
        assert_eq!(throughput_mib_s(bytes::mib(100), 2.0), 50.0);
        assert_eq!(throughput_mib_s(bytes::mib(100), 0.0), 0.0);
    }

    #[test]
    fn size_buckets_cover_range() {
        assert_eq!(size_bucket(0), 0);
        assert_eq!(size_bucket(100), 0);
        assert_eq!(size_bucket(101), 1);
        assert_eq!(size_bucket(1024), 1);
        assert_eq!(size_bucket(bytes::mib(1)), 4);
        assert_eq!(size_bucket(bytes::gib(2)), 9);
        assert_eq!(SIZE_BUCKET_LABELS.len(), SIZE_BUCKET_BOUNDS.len() + 1);
    }
}
