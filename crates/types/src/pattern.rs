//! Access-pattern classification.
//!
//! Darshan-style characterization reduces an operation stream to pattern
//! statistics: how many accesses were sequential, consecutive, or random,
//! what the dominant transfer sizes were, and whether files were accessed
//! by one rank or shared. [`PatternDetector`] is the streaming classifier
//! used by the profiling layer in `pioeval-trace`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Coarse access-pattern class for a stream of offsets within one file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Every access begins exactly where the previous one ended.
    Consecutive,
    /// Offsets are monotonically non-decreasing but with gaps (strided).
    Sequential,
    /// Offsets move backwards or jump irregularly.
    Random,
}

impl fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AccessPattern::Consecutive => "consecutive",
            AccessPattern::Sequential => "sequential",
            AccessPattern::Random => "random",
        };
        f.write_str(s)
    }
}

/// Streaming classifier over (offset, size) accesses to a single file
/// from a single rank.
///
/// Follows the Darshan counter definitions: an access is *consecutive* if
/// it starts exactly at the previous end offset, *sequential* if it starts
/// at or after the previous end offset, and *random* otherwise. The first
/// access of a stream is counted as sequential (and consecutive if it
/// starts at offset 0), matching Darshan's convention of comparing against
/// an initial "last end offset" of zero.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PatternDetector {
    last_end: u64,
    /// Total accesses observed.
    pub total: u64,
    /// Accesses starting exactly at the previous end offset.
    pub consecutive: u64,
    /// Accesses starting at or after the previous end offset.
    pub sequential: u64,
    /// Accesses that jumped backwards.
    pub random: u64,
}

impl PatternDetector {
    /// A fresh detector (last end offset = 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Observe one access.
    pub fn observe(&mut self, offset: u64, size: u64) {
        self.total += 1;
        if offset == self.last_end {
            self.consecutive += 1;
            self.sequential += 1;
        } else if offset > self.last_end {
            self.sequential += 1;
        } else {
            self.random += 1;
        }
        self.last_end = offset + size;
    }

    /// Fraction of accesses classified sequential (includes consecutive).
    pub fn sequential_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sequential as f64 / self.total as f64
    }

    /// Fraction of accesses classified consecutive.
    pub fn consecutive_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.consecutive as f64 / self.total as f64
    }

    /// Fraction of accesses classified random.
    pub fn random_fraction(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.random as f64 / self.total as f64
    }

    /// The dominant pattern class for this stream.
    ///
    /// A stream is *consecutive* if ≥90% of accesses were consecutive,
    /// *sequential* if ≥75% were sequential, otherwise *random*. The
    /// thresholds mirror the heuristics used in I/O characterization
    /// studies (e.g. Luu et al., HPDC'15) to bucket jobs by pattern.
    pub fn classify(&self) -> AccessPattern {
        if self.total == 0 {
            return AccessPattern::Sequential;
        }
        if self.consecutive_fraction() >= 0.9 {
            AccessPattern::Consecutive
        } else if self.sequential_fraction() >= 0.75 {
            AccessPattern::Sequential
        } else {
            AccessPattern::Random
        }
    }

    /// Merge another detector's counts into this one (for cross-rank
    /// aggregation; the positional `last_end` of `other` is discarded).
    pub fn merge(&mut self, other: &PatternDetector) {
        self.total += other.total;
        self.consecutive += other.consecutive;
        self.sequential += other.sequential;
        self.random += other.random;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_consecutive_stream() {
        let mut d = PatternDetector::new();
        for i in 0..10 {
            d.observe(i * 100, 100);
        }
        assert_eq!(d.consecutive, 10);
        assert_eq!(d.classify(), AccessPattern::Consecutive);
        assert!((d.sequential_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn strided_stream_is_sequential() {
        let mut d = PatternDetector::new();
        // 100-byte accesses every 1000 bytes: forward jumps with gaps.
        for i in 0..10 {
            d.observe(i * 1000, 100);
        }
        assert_eq!(d.classify(), AccessPattern::Sequential);
        assert_eq!(d.consecutive, 1); // only the first (offset 0) access
        assert_eq!(d.random, 0);
    }

    #[test]
    fn backwards_stream_is_random() {
        let mut d = PatternDetector::new();
        for i in (0..10).rev() {
            d.observe(i * 100, 100);
        }
        assert_eq!(d.classify(), AccessPattern::Random);
        assert!(d.random_fraction() > 0.5);
    }

    #[test]
    fn empty_stream_defaults_sequential() {
        let d = PatternDetector::new();
        assert_eq!(d.classify(), AccessPattern::Sequential);
        assert_eq!(d.sequential_fraction(), 0.0);
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = PatternDetector::new();
        a.observe(0, 10);
        a.observe(10, 10);
        let mut b = PatternDetector::new();
        b.observe(100, 10);
        b.observe(0, 10); // backwards
        a.merge(&b);
        assert_eq!(a.total, 4);
        assert_eq!(a.random, 1);
    }
}
