#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # pioeval-types
//!
//! Shared vocabulary for the `pioeval` parallel I/O evaluation framework.
//!
//! This crate defines the small set of types that every other crate in the
//! workspace speaks: simulated time ([`SimTime`], [`SimDuration`]), identity
//! newtypes ([`Rank`], [`FileId`], [`JobId`]), the logical I/O operation
//! vocabulary ([`IoOp`], [`IoKind`], [`MetaOp`]), access-pattern
//! classification ([`AccessPattern`]), byte-size helpers ([`bytes`]), and
//! deterministic RNG construction ([`fn@rng`]).
//!
//! The design follows the taxonomy of Neuwirth & Paul (CLUSTER 2021): the
//! *measurement*, *modeling*, and *simulation* phases of the I/O evaluation
//! cycle all exchange data expressed in these types, which is what allows
//! the closed feedback loop of the paper's Fig. 4 to be wired together
//! without per-phase translation layers.

pub mod error;
pub mod ids;
pub mod io;
pub mod layer;
pub mod pattern;
pub mod percentile;
pub mod profile;
pub mod reqtrace;
pub mod rng;
pub mod time;
pub mod units;

pub use error::{Error, Result};
pub use ids::{ClientId, FileId, JobId, NodeId, OstId, Rank};
pub use io::{IoKind, IoOp, MetaOp, RankProgram};
pub use layer::{Layer, LayerRecord, RecordOp};
pub use pattern::{AccessPattern, PatternDetector};
pub use percentile::{percentile, percentile_u64};
pub use profile::{
    ExecProfile, PhaseRecorder, ProfPhase, WindowSample, WorkerProfile, NO_LIMITER, PROF_PHASES,
    PROF_SAMPLE_CAP,
};
pub use reqtrace::{
    tid_for, tid_owner, ReqEvent, ReqMark, ReqOp, ReqRecorder, ServerKind, Tid, NO_COLLECTIVE,
};
pub use rng::{rng, split_seed};
pub use time::{SimDuration, SimTime};
pub use units::{
    bytes, size_bucket, throughput_mib_s, ByteSize, SIZE_BUCKET_BOUNDS, SIZE_BUCKET_LABELS,
};
