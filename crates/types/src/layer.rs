//! Multi-level I/O observation records.
//!
//! Recorder (Wang et al.) demonstrated that capturing I/O calls *at every
//! layer of the stack* — HDF5, MPI-IO, POSIX — is what lets analysis
//! attribute cost to the right layer. [`LayerRecord`] is that common
//! record format: the instrumented I/O stack in `pioeval-iostack` emits
//! them, and the profiling/tracing tools in `pioeval-trace` consume them.

use crate::ids::{FileId, Rank};
use crate::io::{IoKind, MetaOp};
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A layer of the parallel I/O software stack (the paper's Fig. 2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Layer {
    /// The application itself (compute phases, logical ops).
    Application,
    /// The high-level library (HDF5-like).
    Hdf5,
    /// The I/O middleware (MPI-IO-like).
    MpiIo,
    /// The file-system interface (POSIX-like).
    Posix,
}

impl Layer {
    /// All layers, top of the stack first.
    pub const ALL: [Layer; 4] = [Layer::Application, Layer::Hdf5, Layer::MpiIo, Layer::Posix];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Layer::Application => "app",
            Layer::Hdf5 => "hdf5",
            Layer::MpiIo => "mpiio",
            Layer::Posix => "posix",
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What a layer-level record describes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum RecordOp {
    /// An independent data access.
    Data(IoKind),
    /// A collective data access (MPI-IO collective read/write).
    CollectiveData(IoKind),
    /// A metadata operation.
    Meta(MetaOp),
    /// A synchronization barrier.
    Barrier,
    /// An application compute phase.
    Compute,
}

impl RecordOp {
    /// True for (independent or collective) data accesses.
    pub fn is_data(self) -> bool {
        matches!(self, RecordOp::Data(_) | RecordOp::CollectiveData(_))
    }

    /// The data direction, if this is a data access.
    pub fn io_kind(self) -> Option<IoKind> {
        match self {
            RecordOp::Data(k) | RecordOp::CollectiveData(k) => Some(k),
            _ => None,
        }
    }
}

/// One instrumented call at one layer of the I/O stack.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct LayerRecord {
    /// Which layer observed the call.
    pub layer: Layer,
    /// The issuing rank.
    pub rank: Rank,
    /// The file involved (meaningless for `Barrier`/`Compute`).
    pub file: FileId,
    /// What the call did.
    pub op: RecordOp,
    /// Byte offset (data ops).
    pub offset: u64,
    /// Byte length (data ops), or 0.
    pub len: u64,
    /// Call entry time.
    pub start: SimTime,
    /// Call return time.
    pub end: SimTime,
}

impl LayerRecord {
    /// Call duration.
    pub fn elapsed(&self) -> crate::time::SimDuration {
        self.end.since(self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_op_classification() {
        assert!(RecordOp::Data(IoKind::Read).is_data());
        assert!(RecordOp::CollectiveData(IoKind::Write).is_data());
        assert!(!RecordOp::Meta(MetaOp::Open).is_data());
        assert_eq!(RecordOp::Data(IoKind::Read).io_kind(), Some(IoKind::Read));
        assert_eq!(RecordOp::Barrier.io_kind(), None);
    }

    #[test]
    fn layers_order_top_down() {
        assert!(Layer::Application < Layer::Posix);
        assert_eq!(Layer::ALL.len(), 4);
        assert_eq!(Layer::MpiIo.name(), "mpiio");
    }

    #[test]
    fn elapsed_is_end_minus_start() {
        let r = LayerRecord {
            layer: Layer::Posix,
            rank: Rank::new(0),
            file: FileId::new(0),
            op: RecordOp::Data(IoKind::Write),
            offset: 0,
            len: 10,
            start: SimTime::from_micros(5),
            end: SimTime::from_micros(9),
        };
        assert_eq!(r.elapsed(), crate::time::SimDuration::from_micros(4));
    }
}
