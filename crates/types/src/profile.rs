//! Per-worker phase timelines for the parallel DES executor (wall clock).
//!
//! The scaling observatory instruments both parallel backends with a
//! four-phase accounting of each worker's wall-clock time: event
//! *compute*, *mailbox-drain* (cross-partition message intake plus the
//! shared-state snapshot), *barrier* coordination, and *horizon-stall*
//! (the worker had events pending but the conservative window excluded
//! them — it was blocked on another worker's `next_j + lookahead`).
//!
//! Recording follows the same discipline as the request tracer
//! ([`crate::reqtrace`]): every worker owns a private [`PhaseRecorder`]
//! it appends to without locks, and the per-worker buffers are merged
//! deterministically (worker order) after the run into an
//! [`ExecProfile`].
//!
//! ## Conservation by construction
//!
//! A recorder keeps a single *last stamp*. Every [`PhaseRecorder::mark`]
//! reads the clock once, attributes the entire segment since the last
//! stamp to exactly one phase, and advances the stamp. The worker's
//! recorded span is the final stamp, so
//!
//! ```text
//! sum(phase_ns) == span_ns        (exactly, in integer nanoseconds)
//! ```
//!
//! holds by telescoping — there is no second clock read that could
//! disagree. The property tests in `tests/des_profile_props.rs` pin
//! this invariant across random PHOLD topologies and both backends.
//!
//! This module is shared *vocabulary*: it has no dependency on the DES
//! engine, so `pioeval-des` (the producer) and `pioeval-monitor` (the
//! attribution analyzer) both speak it without a dependency cycle.

use std::time::Instant;

/// Number of profiled phases (the length of every `phase_ns` array).
pub const PROF_PHASES: usize = 4;

/// Sentinel for "this window was not limited by a peer worker"
/// (the horizon was bound by the worker's own queue or the stop time).
pub const NO_LIMITER: u32 = u32::MAX;

/// Default cap on retained per-window samples per worker. Totals stay
/// exact past the cap; only the per-window timeline is truncated (the
/// drop is counted in [`WorkerProfile::dropped_samples`], never silent).
pub const PROF_SAMPLE_CAP: usize = 1 << 16;

/// One of the four profiled wall-clock phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProfPhase {
    /// Processing events inside the committed window.
    Compute,
    /// Draining cross-partition mailboxes and snapshotting shared state.
    MailboxDrain,
    /// Waiting at the window barrier (coordination cost proper).
    Barrier,
    /// Waiting with work pending that the conservative horizon excluded.
    HorizonStall,
}

impl ProfPhase {
    /// All phases, in `phase_ns` index order.
    pub const ALL: [ProfPhase; PROF_PHASES] = [
        ProfPhase::Compute,
        ProfPhase::MailboxDrain,
        ProfPhase::Barrier,
        ProfPhase::HorizonStall,
    ];

    /// The phase's slot in a `phase_ns` array.
    pub fn index(self) -> usize {
        match self {
            ProfPhase::Compute => 0,
            ProfPhase::MailboxDrain => 1,
            ProfPhase::Barrier => 2,
            ProfPhase::HorizonStall => 3,
        }
    }

    /// Stable lower-case name (`compute`, `mailbox`, `barrier`, `stall`).
    pub fn name(self) -> &'static str {
        match self {
            ProfPhase::Compute => "compute",
            ProfPhase::MailboxDrain => "mailbox",
            ProfPhase::Barrier => "barrier",
            ProfPhase::HorizonStall => "stall",
        }
    }
}

/// One worker's phase breakdown for a single committed window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WindowSample {
    /// Window start offset from the worker's recording epoch (ns).
    pub start_ns: u64,
    /// Wall-clock nanoseconds per phase, indexed by [`ProfPhase::index`].
    pub phase_ns: [u64; PROF_PHASES],
    /// Events this worker processed in the window (0 = null window).
    pub events: u64,
    /// The peer worker whose `next + lookahead` bounded this worker's
    /// horizon, or [`NO_LIMITER`] when self- or stop-time-bound.
    pub limiter: u32,
}

/// One worker's merged phase timeline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerProfile {
    /// Worker index (partition id).
    pub worker: u32,
    /// Entities owned by this worker's partition.
    pub entities: u64,
    /// Events processed across the whole run.
    pub events: u64,
    /// Windows this worker participated in.
    pub windows: u64,
    /// Windows in which this worker processed no events.
    pub null_windows: u64,
    /// Total recorded span (ns); equals the sum of `phase_ns` exactly.
    pub span_ns: u64,
    /// Whole-run wall-clock nanoseconds per phase.
    pub phase_ns: [u64; PROF_PHASES],
    /// Per-window samples, in window order (capped; see
    /// [`WorkerProfile::dropped_samples`]).
    pub samples: Vec<WindowSample>,
    /// Windows whose samples were dropped by the retention cap. Phase
    /// totals above still include them.
    pub dropped_samples: u64,
}

impl WorkerProfile {
    /// Total time this worker was not computing (ns).
    pub fn blocked_ns(&self) -> u64 {
        self.span_ns
            .saturating_sub(self.phase_ns[ProfPhase::Compute.index()])
    }

    /// True when the phase totals tile the span exactly.
    pub fn conserves(&self) -> bool {
        self.phase_ns.iter().sum::<u64>() == self.span_ns
    }
}

/// The merged profile of one parallel execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecProfile {
    /// Worker thread count.
    pub threads: u32,
    /// Backend that ran (`threads` or `cooperative`).
    pub backend: String,
    /// Window policy (`fixed` or `adaptive`).
    pub window_policy: String,
    /// Partitioner (`round_robin`, `block`, or `greedy`).
    pub partitioner: String,
    /// Conservative lookahead, in *simulated* nanoseconds.
    pub lookahead_ns: u64,
    /// Wall clock of the parallel section: the longest worker span (ns).
    pub wall_ns: u64,
    /// Committed windows (shared across workers).
    pub windows: u64,
    /// Per-worker timelines, in worker order.
    pub workers: Vec<WorkerProfile>,
}

impl ExecProfile {
    /// Schema tag written into the JSON document.
    pub const SCHEMA: &'static str = "pioeval-profile/1";

    /// True when every worker's phase totals tile its span exactly.
    pub fn conserves(&self) -> bool {
        self.workers.iter().all(WorkerProfile::conserves)
    }

    /// Total compute across workers (ns).
    pub fn total_compute_ns(&self) -> u64 {
        self.workers
            .iter()
            .map(|w| w.phase_ns[ProfPhase::Compute.index()])
            .sum()
    }

    /// Serialize to the `pioeval-profile/1` JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096 + 128 * self.workers.len());
        out.push_str(&format!(
            "{{\"schema\": \"{}\", \"threads\": {}, \"backend\": \"{}\", \
             \"window_policy\": \"{}\", \"partitioner\": \"{}\", \
             \"lookahead_ns\": {}, \"wall_ns\": {}, \"windows\": {}, \
             \"workers\": [",
            Self::SCHEMA,
            self.threads,
            self.backend,
            self.window_policy,
            self.partitioner,
            self.lookahead_ns,
            self.wall_ns,
            self.windows
        ));
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"worker\": {}, \"entities\": {}, \"events\": {}, \
                 \"windows\": {}, \"null_windows\": {}, \"span_ns\": {}, \
                 \"dropped_samples\": {}",
                w.worker,
                w.entities,
                w.events,
                w.windows,
                w.null_windows,
                w.span_ns,
                w.dropped_samples
            ));
            for p in ProfPhase::ALL {
                out.push_str(&format!(", \"{}_ns\": {}", p.name(), w.phase_ns[p.index()]));
            }
            out.push_str(", \"samples\": [");
            for (j, s) in w.samples.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("{{\"start_ns\": {}", s.start_ns));
                for p in ProfPhase::ALL {
                    out.push_str(&format!(", \"{}_ns\": {}", p.name(), s.phase_ns[p.index()]));
                }
                out.push_str(&format!(
                    ", \"events\": {}, \"limiter\": {}}}",
                    s.events,
                    if s.limiter == NO_LIMITER {
                        -1i64
                    } else {
                        s.limiter as i64
                    }
                ));
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// A per-worker lock-free phase recorder (telescoping timestamps).
///
/// Owned exclusively by one worker; never shared, never locked. The
/// parallel executor holds `Option<PhaseRecorder>` per worker, so the
/// unprofiled path pays a single branch per mark site.
#[derive(Debug)]
pub struct PhaseRecorder {
    epoch: Instant,
    last_ns: u64,
    window_start_ns: u64,
    cur_phase_ns: [u64; PROF_PHASES],
    profile: WorkerProfile,
    cap: usize,
}

impl PhaseRecorder {
    /// Start recording for `worker`, with the default sample cap. The
    /// epoch is the moment of construction.
    pub fn start(worker: u32) -> Self {
        Self::start_capped(worker, PROF_SAMPLE_CAP)
    }

    /// Start recording with an explicit per-window sample cap.
    pub fn start_capped(worker: u32, cap: usize) -> Self {
        PhaseRecorder {
            epoch: Instant::now(),
            last_ns: 0,
            window_start_ns: 0,
            cur_phase_ns: [0; PROF_PHASES],
            profile: WorkerProfile {
                worker,
                ..WorkerProfile::default()
            },
            cap,
        }
    }

    /// Close the open segment, attributing everything since the last
    /// stamp to `phase`. One clock read; exact telescoping.
    pub fn mark(&mut self, phase: ProfPhase) {
        let now_ns = self.epoch.elapsed().as_nanos() as u64;
        let delta = now_ns - self.last_ns;
        self.last_ns = now_ns;
        self.cur_phase_ns[phase.index()] += delta;
        self.profile.phase_ns[phase.index()] += delta;
        self.profile.span_ns += delta;
    }

    /// Commit the current window: fold the open per-window phase
    /// accumulators into a [`WindowSample`] and reset them. `events` is
    /// the number of events this worker processed in the window;
    /// `limiter` identifies the peer that bounded the horizon (or
    /// [`NO_LIMITER`]).
    pub fn end_window(&mut self, events: u64, limiter: u32) {
        self.profile.windows += 1;
        if events == 0 {
            self.profile.null_windows += 1;
        }
        if self.profile.samples.len() < self.cap {
            self.profile.samples.push(WindowSample {
                start_ns: self.window_start_ns,
                phase_ns: self.cur_phase_ns,
                events,
                limiter,
            });
        } else {
            self.profile.dropped_samples += 1;
        }
        self.cur_phase_ns = [0; PROF_PHASES];
        self.window_start_ns = self.last_ns;
    }

    /// Finish recording: stamp final bookkeeping and return the merged
    /// per-worker profile. `entities`/`events` are the run totals the
    /// executor already tracks.
    pub fn finish(mut self, entities: u64, events: u64) -> WorkerProfile {
        self.profile.entities = entities;
        self.profile.events = events;
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indexes_are_stable_and_distinct() {
        for (i, p) in ProfPhase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        let names: Vec<_> = ProfPhase::ALL.iter().map(|p| p.name()).collect();
        assert_eq!(names, ["compute", "mailbox", "barrier", "stall"]);
    }

    #[test]
    fn recorder_phase_totals_tile_span_exactly() {
        let mut rec = PhaseRecorder::start(3);
        for w in 0..100u64 {
            rec.mark(ProfPhase::MailboxDrain);
            if w % 3 == 0 {
                std::thread::yield_now();
            }
            rec.mark(ProfPhase::Compute);
            rec.mark(if w % 4 == 0 {
                ProfPhase::HorizonStall
            } else {
                ProfPhase::Barrier
            });
            rec.end_window(w % 5, if w % 7 == 0 { NO_LIMITER } else { 1 });
        }
        let prof = rec.finish(8, 200);
        assert_eq!(prof.worker, 3);
        assert_eq!(prof.entities, 8);
        assert_eq!(prof.events, 200);
        assert_eq!(prof.windows, 100);
        assert_eq!(prof.null_windows, 20, "events == 0 every 5th window");
        assert!(prof.conserves(), "phase sum must equal span exactly");
        assert_eq!(prof.samples.len(), 100);
        assert_eq!(prof.dropped_samples, 0);
        // Per-window samples tile the span too: each segment was
        // attributed to exactly one window's accumulator.
        let sampled: u64 = prof
            .samples
            .iter()
            .map(|s| s.phase_ns.iter().sum::<u64>())
            .sum();
        assert!(sampled <= prof.span_ns);
    }

    #[test]
    fn sample_cap_counts_drops_but_keeps_totals() {
        let mut rec = PhaseRecorder::start_capped(0, 4);
        for _ in 0..10 {
            rec.mark(ProfPhase::Compute);
            rec.end_window(1, NO_LIMITER);
        }
        let prof = rec.finish(1, 10);
        assert_eq!(prof.samples.len(), 4);
        assert_eq!(prof.dropped_samples, 6);
        assert_eq!(prof.windows, 10);
        assert!(prof.conserves());
    }

    #[test]
    fn exec_profile_json_has_schema_and_workers() {
        let mut rec = PhaseRecorder::start(0);
        rec.mark(ProfPhase::Compute);
        rec.end_window(5, 1);
        let prof = ExecProfile {
            threads: 2,
            backend: "threads".into(),
            window_policy: "adaptive".into(),
            partitioner: "block".into(),
            lookahead_ns: 10_000,
            wall_ns: 123,
            windows: 1,
            workers: vec![rec.finish(4, 5)],
        };
        assert!(prof.conserves());
        let json = prof.to_json();
        assert!(json.contains("\"schema\": \"pioeval-profile/1\""));
        assert!(json.contains("\"backend\": \"threads\""));
        assert!(json.contains("\"compute_ns\""));
        assert!(json.contains("\"limiter\": 1"));
    }

    #[test]
    fn no_limiter_serializes_as_minus_one() {
        let mut rec = PhaseRecorder::start(0);
        rec.mark(ProfPhase::Compute);
        rec.end_window(0, NO_LIMITER);
        let prof = ExecProfile {
            threads: 1,
            backend: "cooperative".into(),
            window_policy: "fixed".into(),
            partitioner: "round_robin".into(),
            lookahead_ns: 1,
            wall_ns: 1,
            windows: 1,
            workers: vec![rec.finish(1, 0)],
        };
        assert!(prof.to_json().contains("\"limiter\": -1"));
    }

    #[test]
    fn blocked_time_excludes_compute() {
        let w = WorkerProfile {
            span_ns: 100,
            phase_ns: [60, 10, 20, 10],
            ..WorkerProfile::default()
        };
        assert!(w.conserves());
        assert_eq!(w.blocked_ns(), 40);
    }
}
