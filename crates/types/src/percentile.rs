//! Exact nearest-rank percentiles — the one shared implementation.
//!
//! Several layers of the framework report percentiles (model-side
//! statistics, straggler detection, request-trace tail-latency
//! attribution). They all delegate here so every reported quantile uses
//! the same definition.
//!
//! **Definition and tie behavior.** For `p` in `(0, 100]` over `N`
//! values, the nearest-rank percentile is the value at 1-based rank
//! `ceil(p/100 · N)` of the *sorted* input; `p ≤ 0` yields the minimum.
//! The formula indexes the sorted slice directly, so the reported
//! percentile is always a value that actually occurs in the input —
//! repeated values ("ties") need no special casing, and an even-length
//! median (`p = 50`) is the *lower* of the two central values rather
//! than their midpoint.

/// Nearest-rank percentile of `values` (input need not be sorted; a
/// copy is sorted internally). Returns `0.0` on empty input. Non-finite
/// values sort via total order (NaNs last).
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    sorted[nearest_rank_index(sorted.len(), p)]
}

/// Nearest-rank percentile over integers (e.g. nanosecond latencies).
/// Returns `0` on empty input.
pub fn percentile_u64(values: &[u64], p: f64) -> u64 {
    if values.is_empty() {
        return 0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    sorted[nearest_rank_index(sorted.len(), p)]
}

/// The 0-based index the nearest-rank rule picks in a sorted slice of
/// length `n` (n > 0).
fn nearest_rank_index(n: usize, p: f64) -> usize {
    if p.is_nan() || p <= 0.0 {
        return 0;
    }
    // The epsilon keeps exact ranks exact: 99.9/100·1000 evaluates to
    // 999.0000000000001 in f64, and a bare ceil() would overshoot to 1000.
    let rank = (p / 100.0 * n as f64 - 1e-9).ceil() as usize;
    rank.clamp(1, n) - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_is_exact_lower_median() {
        // Even count: the lower central value, never an interpolation.
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0], 50.0), 2.0);
        assert_eq!(percentile(&[4.0, 3.0, 2.0, 1.0], 50.0), 2.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 50.0), 2.0);
    }

    #[test]
    fn edges_clamp() {
        let v = [10.0, 20.0, 30.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, -5.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 30.0);
        assert_eq!(percentile(&v, 150.0), 30.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile_u64(&[], 99.0), 0);
    }

    #[test]
    fn ties_report_an_occurring_value() {
        assert_eq!(percentile(&[100.0, 100.0, 100.0, 10.0], 50.0), 100.0);
        assert_eq!(percentile_u64(&[7, 7, 7, 7], 99.9), 7);
    }

    #[test]
    fn u64_tail_percentiles() {
        let v: Vec<u64> = (1..=1000).collect();
        assert_eq!(percentile_u64(&v, 50.0), 500);
        assert_eq!(percentile_u64(&v, 95.0), 950);
        assert_eq!(percentile_u64(&v, 99.0), 990);
        assert_eq!(percentile_u64(&v, 99.9), 999);
        assert_eq!(percentile_u64(&v, 100.0), 1000);
    }
}
