//! Simulated time.
//!
//! All simulation timestamps are integer nanoseconds. Keeping time integral
//! makes the discrete-event engine's ordering exact (no float ties) and
//! keeps parallel and sequential executions bit-identical.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute point in simulated time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time; used as "never" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }
    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Seconds since simulation start, as a float (analysis-side only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Elapsed duration since `earlier`. Saturates at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }
    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }
    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }
    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    ///
    /// Negative or non-finite inputs clamp to zero: durations are physical
    /// spans and the simulator never steps backwards.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration(0);
        }
        SimDuration((s * 1e9).round() as u64)
    }
    /// Nanoseconds in this span.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Seconds in this span, as a float (analysis-side only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}
impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}
impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}
impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}
impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}
impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}
impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}
impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}
impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}
impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}
impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}
impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

/// Render a nanosecond count with a human-scale unit suffix.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1000));
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1000));
        assert_eq!(SimDuration::from_secs(2).as_nanos(), 2_000_000_000);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_millis(5) + SimDuration::from_micros(250);
        assert_eq!(t.as_nanos(), 5_250_000);
        assert_eq!(t - SimTime::from_millis(5), SimDuration::from_micros(250));
    }

    #[test]
    fn since_saturates() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn from_secs_f64_clamps_bad_input() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(format!("{}", SimDuration::from_nanos(17)), "17ns");
        assert_eq!(format!("{}", SimDuration::from_micros(17)), "17.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(17)), "17.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(17)), "17.000s");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_millis(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(1),
                SimTime::from_secs(3)
            ]
        );
    }
}
