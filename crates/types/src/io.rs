//! The logical I/O operation vocabulary.
//!
//! Workload generators *produce* [`IoOp`]s, the I/O stack *executes* them,
//! tracers *record* them, and replay tools *re-issue* them. This single
//! vocabulary is what makes the paper's three workload sources (traces,
//! characterization profiles, synthetic descriptions) interchangeable
//! inputs to the same consumers.

use crate::ids::{FileId, Rank};
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Data-path operation kind.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum IoKind {
    /// Read bytes from a file region.
    Read,
    /// Write bytes to a file region.
    Write,
}

impl IoKind {
    /// Lower-case display name, matching trace-format conventions.
    pub fn name(self) -> &'static str {
        match self {
            IoKind::Read => "read",
            IoKind::Write => "write",
        }
    }
}

impl fmt::Display for IoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Metadata operation kind (served by the metadata server, not the OSTs).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MetaOp {
    /// Create a file (namespace insert + layout allocation).
    Create,
    /// Open an existing file.
    Open,
    /// Close an open file.
    Close,
    /// Stat a file (attribute fetch).
    Stat,
    /// Remove a file from the namespace.
    Unlink,
    /// Create a directory.
    Mkdir,
    /// List a directory.
    Readdir,
    /// Flush dirty data and wait for stability.
    Fsync,
}

impl MetaOp {
    /// All metadata operation kinds, in a stable order (used by counters).
    pub const ALL: [MetaOp; 8] = [
        MetaOp::Create,
        MetaOp::Open,
        MetaOp::Close,
        MetaOp::Stat,
        MetaOp::Unlink,
        MetaOp::Mkdir,
        MetaOp::Readdir,
        MetaOp::Fsync,
    ];

    /// Lower-case display name, matching trace-format conventions.
    pub fn name(self) -> &'static str {
        match self {
            MetaOp::Create => "create",
            MetaOp::Open => "open",
            MetaOp::Close => "close",
            MetaOp::Stat => "stat",
            MetaOp::Unlink => "unlink",
            MetaOp::Mkdir => "mkdir",
            MetaOp::Readdir => "readdir",
            MetaOp::Fsync => "fsync",
        }
    }

    /// Stable index into [`MetaOp::ALL`] (used by fixed-size counter arrays).
    pub fn index(self) -> usize {
        match self {
            MetaOp::Create => 0,
            MetaOp::Open => 1,
            MetaOp::Close => 2,
            MetaOp::Stat => 3,
            MetaOp::Unlink => 4,
            MetaOp::Mkdir => 5,
            MetaOp::Readdir => 6,
            MetaOp::Fsync => 7,
        }
    }
}

impl fmt::Display for MetaOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One logical I/O operation, as issued by an application rank.
///
/// This is the unit exchanged between workload generators, the I/O stack,
/// tracers, and replay tools. `Compute` entries model the time an
/// application spends between I/O phases; preserving them is what lets
/// replay reproduce *burstiness*, not just byte counts.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum IoOp {
    /// Transfer `size` bytes at `offset` of `file`.
    Data {
        /// Read or write.
        kind: IoKind,
        /// Target file.
        file: FileId,
        /// Byte offset within the file.
        offset: u64,
        /// Transfer size in bytes.
        size: u64,
    },
    /// A metadata operation against `file`.
    Meta {
        /// Which namespace/attribute operation.
        op: MetaOp,
        /// Target file (for `Mkdir`/`Readdir` this is the directory id).
        file: FileId,
    },
    /// Application compute time between I/O phases.
    Compute {
        /// How long the rank computes before its next I/O.
        duration: SimDuration,
    },
    /// A synchronization barrier across all ranks of the job.
    Barrier,
}

impl IoOp {
    /// Convenience constructor for a read.
    pub fn read(file: FileId, offset: u64, size: u64) -> Self {
        IoOp::Data {
            kind: IoKind::Read,
            file,
            offset,
            size,
        }
    }
    /// Convenience constructor for a write.
    pub fn write(file: FileId, offset: u64, size: u64) -> Self {
        IoOp::Data {
            kind: IoKind::Write,
            file,
            offset,
            size,
        }
    }
    /// Convenience constructor for a metadata op.
    pub fn meta(op: MetaOp, file: FileId) -> Self {
        IoOp::Meta { op, file }
    }
    /// Convenience constructor for compute time.
    pub fn compute(duration: SimDuration) -> Self {
        IoOp::Compute { duration }
    }

    /// Bytes moved by this operation (zero for non-data ops).
    pub fn transfer_bytes(&self) -> u64 {
        match self {
            IoOp::Data { size, .. } => *size,
            _ => 0,
        }
    }

    /// Bytes read (zero unless this is a data read).
    pub fn read_bytes(&self) -> u64 {
        match self {
            IoOp::Data {
                kind: IoKind::Read,
                size,
                ..
            } => *size,
            _ => 0,
        }
    }

    /// Bytes written (zero unless this is a data write).
    pub fn write_bytes(&self) -> u64 {
        match self {
            IoOp::Data {
                kind: IoKind::Write,
                size,
                ..
            } => *size,
            _ => 0,
        }
    }

    /// True for `Data` operations.
    pub fn is_data(&self) -> bool {
        matches!(self, IoOp::Data { .. })
    }

    /// True for `Meta` operations.
    pub fn is_meta(&self) -> bool {
        matches!(self, IoOp::Meta { .. })
    }
}

/// A per-rank program: the sequence of operations one rank issues.
///
/// This is the exchange format between the workload crate (producer) and
/// the iostack/replay crates (consumers).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RankProgram {
    /// Issuing rank.
    pub rank: Rank,
    /// Operations, in issue order.
    pub ops: Vec<IoOp>,
}

impl RankProgram {
    /// A new empty program for `rank`.
    pub fn new(rank: Rank) -> Self {
        RankProgram {
            rank,
            ops: Vec::new(),
        }
    }

    /// Total bytes read by this program.
    pub fn total_read(&self) -> u64 {
        self.ops.iter().map(IoOp::read_bytes).sum()
    }

    /// Total bytes written by this program.
    pub fn total_written(&self) -> u64 {
        self.ops.iter().map(IoOp::write_bytes).sum()
    }

    /// Number of data operations.
    pub fn data_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.is_data()).count()
    }

    /// Number of metadata operations.
    pub fn meta_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.is_meta()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_byte_accounting() {
        let r = IoOp::read(FileId::new(0), 0, 100);
        let w = IoOp::write(FileId::new(0), 100, 50);
        let m = IoOp::meta(MetaOp::Stat, FileId::new(0));
        assert_eq!(r.read_bytes(), 100);
        assert_eq!(r.write_bytes(), 0);
        assert_eq!(w.write_bytes(), 50);
        assert_eq!(m.transfer_bytes(), 0);
        assert!(m.is_meta() && !m.is_data());
    }

    #[test]
    fn program_totals() {
        let mut p = RankProgram::new(Rank::new(0));
        p.ops.push(IoOp::write(FileId::new(1), 0, 1024));
        p.ops.push(IoOp::compute(SimDuration::from_millis(10)));
        p.ops.push(IoOp::read(FileId::new(1), 0, 512));
        p.ops.push(IoOp::meta(MetaOp::Close, FileId::new(1)));
        assert_eq!(p.total_written(), 1024);
        assert_eq!(p.total_read(), 512);
        assert_eq!(p.data_ops(), 2);
        assert_eq!(p.meta_ops(), 1);
    }

    #[test]
    fn meta_op_indices_are_consistent() {
        for (i, op) in MetaOp::ALL.iter().enumerate() {
            assert_eq!(op.index(), i, "index mismatch for {op}");
        }
    }
}
