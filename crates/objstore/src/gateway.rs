//! Protocol gateway nodes.
//!
//! A gateway is the object store's front door: it owns a *bounded* pool
//! of request slots (`GatewayConfig::slots`). A request occupies its
//! slot from admission until the last backend access acknowledges, so
//! slot exhaustion — not fabric bandwidth — is the first thing
//! concurrent clients contend on, and the resulting queue wait is
//! echoed to clients and telemetry.
//!
//! Data verbs fan out to storage nodes ([`pioeval_pfs::oss::Oss`]
//! entities) according to the bucket's [`crate::config::Placement`];
//! metadata verbs forward to the key's hash-assigned
//! [`crate::shard::MetaShard`]. Multipart manifests live here: the
//! gateway sees every PutPart acknowledgment, commits the extent, and
//! forwards the assembled size when the client completes the upload.

use crate::config::{GatewayConfig, ObjStoreConfig, Placement};
use crate::object::ExtentMap;
use crate::placement::{self, read_targets, write_targets, Target};
use pioeval_des::{Ctx, Entity, EntityId, Envelope};
use pioeval_pfs::msg::route;
use pioeval_pfs::{IoRequest, ObjReply, ObjRequest, ObjVerb, PfsMsg, RequestId, ServerStats};
use pioeval_resil::{FailureKind, ResilienceStats};
use pioeval_types::{
    percentile_u64, tid_for, FileId, IoKind, ReqMark, ReqRecorder, ServerKind, SimDuration, SimTime,
};
use std::collections::{BTreeMap, HashMap, VecDeque};

/// One admitted request awaiting its backend fan-out.
struct InFlight {
    req: ObjRequest,
    /// Backend acknowledgments still outstanding.
    remaining: usize,
    /// Time spent waiting for a slot.
    queue_delay: SimDuration,
    /// When the request first arrived at the gateway (before any slot wait).
    arrived: SimTime,
    /// Size reported by the metadata shard (meta verbs).
    size_result: u64,
}

/// Snapshot of one gateway's service counters.
#[derive(Clone, Copy, Debug, Default)]
pub struct GatewayStats {
    /// Requests admitted.
    pub requests: u64,
    /// Bytes served by range GETs.
    pub get_bytes: u64,
    /// Bytes ingested by part uploads.
    pub put_bytes: u64,
    /// Total slot-queue wait across requests.
    pub queue_wait: SimDuration,
    /// Total protocol-processing (service) time.
    pub busy: SimDuration,
    /// High-water mark of the slot wait queue.
    pub peak_queue_depth: usize,
    /// Median per-request slot-queue wait (nearest-rank).
    pub queue_p50: SimDuration,
    /// 95th-percentile per-request slot-queue wait.
    pub queue_p95: SimDuration,
    /// 99th-percentile per-request slot-queue wait.
    pub queue_p99: SimDuration,
    /// 99.9th-percentile per-request slot-queue wait.
    pub queue_p999: SimDuration,
}

impl GatewayStats {
    /// Mean slot-queue wait per request.
    pub fn mean_queue_wait(&self) -> SimDuration {
        if self.requests == 0 {
            SimDuration::ZERO
        } else {
            self.queue_wait / self.requests
        }
    }

    /// Mean protocol service time per request.
    pub fn mean_service_time(&self) -> SimDuration {
        if self.requests == 0 {
            SimDuration::ZERO
        } else {
            self.busy / self.requests
        }
    }
}

/// An object-store gateway entity.
pub struct Gateway {
    me: EntityId,
    cfg: GatewayConfig,
    store: ObjStoreConfig,
    /// Fabric between the gateway and the storage/metadata nodes.
    storage_fabric: EntityId,
    /// Storage-node entities, indexed by node id.
    node_route: Vec<EntityId>,
    /// Metadata-shard entities, indexed by shard id.
    shard_route: Vec<EntityId>,
    /// Requests currently holding a slot.
    active: usize,
    /// Arrivals waiting for a slot, FIFO, with their arrival times.
    waitq: VecDeque<(ObjRequest, SimTime)>,
    inflight: HashMap<u64, InFlight>,
    /// Backend request id → in-flight token.
    backend_map: HashMap<RequestId, u64>,
    next_token: u64,
    next_backend_id: RequestId,
    /// Open multipart uploads keyed by object.
    uploads: HashMap<FileId, ExtentMap>,
    /// Aggregate service statistics (single timeline lane).
    pub stats: ServerStats,
    /// Bytes served by range GETs.
    pub get_bytes: u64,
    /// Bytes ingested by part uploads.
    pub put_bytes: u64,
    /// High-water mark of the slot wait queue.
    pub peak_queue_depth: usize,
    /// Per-request slot-queue waits in admission order (nanoseconds),
    /// the population behind the snapshot's queue-wait percentiles.
    queue_wait_samples: Vec<u64>,
    // --- resilience tier ---
    /// Peer gateways, ring order starting after this one (failover
    /// re-drains through `peers[0]`).
    peers: Vec<EntityId>,
    rebuild_time: SimDuration,
    /// Storage nodes currently failed or degraded (node → failure kind);
    /// reads touching them are served degraded.
    lost: BTreeMap<u32, FailureKind>,
    /// Pending recoveries in injection order (`None` = this gateway).
    recovering: VecDeque<(Option<u32>, SimTime)>,
    /// This gateway is failed over; arrivals re-drain through a peer.
    failed: bool,
    /// Bytes this gateway ACKed whose placement width is 1, per node —
    /// the only objstore bytes a single node loss can take out.
    sole_bytes: HashMap<u32, u64>,
    /// Durability accounting for the resilience report.
    pub resil: ResilienceStats,
    /// Per-request trace recorder (admission/fan-out marks).
    pub reqtrace: ReqRecorder,
}

impl Gateway {
    /// A new gateway with routing tables into the storage tier.
    pub fn new(
        me: EntityId,
        store: ObjStoreConfig,
        storage_fabric: EntityId,
        node_route: Vec<EntityId>,
        shard_route: Vec<EntityId>,
        stats_bin: SimDuration,
    ) -> Self {
        Gateway {
            me,
            cfg: store.gateway,
            store,
            storage_fabric,
            node_route,
            shard_route,
            active: 0,
            waitq: VecDeque::new(),
            inflight: HashMap::new(),
            backend_map: HashMap::new(),
            next_token: 0,
            next_backend_id: 0,
            uploads: HashMap::new(),
            stats: ServerStats::new(1, stats_bin),
            get_bytes: 0,
            put_bytes: 0,
            peak_queue_depth: 0,
            queue_wait_samples: Vec::new(),
            peers: Vec::new(),
            rebuild_time: SimDuration::from_millis(500),
            lost: BTreeMap::new(),
            recovering: VecDeque::new(),
            failed: false,
            sole_bytes: HashMap::new(),
            resil: ResilienceStats::default(),
            reqtrace: ReqRecorder::default(),
        }
    }

    /// Wire the resilience tier: rebuild time and the peer-gateway ring
    /// (failover re-drains through the first peer). Called by the
    /// cluster builder after all gateways exist.
    pub fn set_resil(&mut self, rebuild_time: SimDuration, peers: Vec<EntityId>) {
        self.rebuild_time = rebuild_time;
        self.peers = peers;
    }

    /// Snapshot of the service counters.
    pub fn snapshot(&self) -> GatewayStats {
        let q = |p: f64| SimDuration::from_nanos(percentile_u64(&self.queue_wait_samples, p));
        GatewayStats {
            requests: self.stats.requests,
            get_bytes: self.get_bytes,
            put_bytes: self.put_bytes,
            queue_wait: self.stats.queue_wait,
            busy: self.stats.busy,
            peak_queue_depth: self.peak_queue_depth,
            queue_p50: q(50.0),
            queue_p95: q(95.0),
            queue_p99: q(99.0),
            queue_p999: q(99.9),
        }
    }

    /// Protocol-processing time for one request (fixed cost plus the
    /// checksum/coding pipeline on data bytes).
    fn service_time(&self, req: &ObjRequest) -> SimDuration {
        let mut svc = self.cfg.per_op;
        if req.verb.is_data() && req.len > 0 {
            let ns = (req.len as u128 * 1_000_000_000u128).div_ceil(self.cfg.proc_bw as u128);
            svc += SimDuration::from_nanos(ns as u64);
        }
        svc
    }

    fn fresh_backend_id(&mut self, token: u64) -> RequestId {
        let id = self.next_backend_id;
        self.next_backend_id += 1;
        self.backend_map.insert(id, token);
        id
    }

    /// Admit `req` (which first arrived at `arrived`) into a slot and
    /// launch its backend fan-out.
    fn start(
        &mut self,
        req: ObjRequest,
        arrived: SimTime,
        queue_delay: SimDuration,
        ctx: &mut Ctx<'_, PfsMsg>,
    ) {
        let now = ctx.now();
        self.active += 1;
        let svc = self.service_time(&req);
        self.stats.requests += 1;
        self.stats.queue_wait += queue_delay;
        self.stats.busy += svc;
        self.queue_wait_samples.push(queue_delay.as_nanos());
        match req.verb {
            ObjVerb::PutPart => {
                self.put_bytes += req.len;
                self.stats.bytes_written += req.len;
                self.stats.timelines[0].record(now + svc, IoKind::Write, req.len);
            }
            ObjVerb::GetRange => {
                self.get_bytes += req.len;
                self.stats.bytes_read += req.len;
                self.stats.timelines[0].record(now + svc, IoKind::Read, req.len);
            }
            _ => self.stats.timelines[0].record(now + svc, IoKind::Write, 1),
        }
        // Backend sends depart when protocol processing finishes.
        let depart = svc.max(ctx.lookahead());

        let token = self.next_token;
        self.next_token += 1;

        let backends: usize = match req.verb {
            ObjVerb::PutPart | ObjVerb::GetRange => {
                let placement = self.store.placement_for(req.key);
                let targets = if req.verb == ObjVerb::PutPart {
                    write_targets(
                        req.key,
                        req.part,
                        req.offset,
                        req.len,
                        placement,
                        self.store.num_storage as u32,
                        self.store.devices_per_node as u32,
                    )
                } else {
                    self.read_targets_maybe_degraded(&req, placement)
                };
                let kind = if req.verb == ObjVerb::PutPart {
                    IoKind::Write
                } else {
                    IoKind::Read
                };
                let n = targets.len();
                for t in targets {
                    let id = self.fresh_backend_id(token);
                    let child_tid = if req.tid != 0 {
                        tid_for(self.me.0, id)
                    } else {
                        0
                    };
                    if child_tid != 0 {
                        self.reqtrace.record(
                            req.tid,
                            self.me.0,
                            ReqMark::Spawn {
                                child: child_tid,
                                at: now,
                            },
                        );
                    }
                    let io = IoRequest {
                        id,
                        reply_to: self.me,
                        reply_via: vec![self.storage_fabric],
                        kind,
                        file: req.key,
                        ost: t.device,
                        obj_offset: t.obj_offset,
                        len: t.len,
                        tid: child_tid,
                    };
                    let wire = io.wire_size();
                    let (hop, msg) = route(
                        &[self.storage_fabric],
                        self.node_route[t.node as usize],
                        wire,
                        PfsMsg::Io(io),
                    );
                    ctx.send(hop, depart, msg);
                }
                n
            }
            _ => {
                // Metadata verbs forward to the key's hash-assigned shard.
                let shard =
                    placement::mix(req.key.index() as u64) as usize % self.shard_route.len();
                // CompleteUpload carries the assembled manifest size (or
                // the client's own size hint, whichever is larger) in
                // `offset` — the shard's size-hint convention.
                let offset = if req.verb == ObjVerb::CompleteUpload {
                    let manifest = self
                        .uploads
                        .remove(&req.key)
                        .map(|m| m.assembled_size())
                        .unwrap_or(0);
                    manifest.max(req.offset)
                } else {
                    req.offset
                };
                let id = self.fresh_backend_id(token);
                let child_tid = if req.tid != 0 {
                    tid_for(self.me.0, id)
                } else {
                    0
                };
                if child_tid != 0 {
                    self.reqtrace.record(
                        req.tid,
                        self.me.0,
                        ReqMark::Spawn {
                            child: child_tid,
                            at: now,
                        },
                    );
                }
                let fwd = ObjRequest {
                    id,
                    reply_to: self.me,
                    reply_via: vec![self.storage_fabric],
                    verb: req.verb,
                    key: req.key,
                    offset,
                    len: 0,
                    part: 0,
                    tid: child_tid,
                };
                let wire = fwd.wire_size();
                let (hop, msg) = route(
                    &[self.storage_fabric],
                    self.shard_route[shard],
                    wire,
                    PfsMsg::Obj(fwd),
                );
                ctx.send(hop, depart, msg);
                1
            }
        };

        self.inflight.insert(
            token,
            InFlight {
                req,
                remaining: backends,
                queue_delay,
                arrived,
                size_result: 0,
            },
        );
    }

    /// Targets for a range GET, rerouting around failed/degraded
    /// storage nodes.
    ///
    /// Replicated buckets redirect to the first surviving replica (no
    /// extra bytes). Erasure buckets reconstruct from the full surviving
    /// stripe — surviving data shards plus parity — and the bytes beyond
    /// the healthy `data`-shard read are counted as degraded-read
    /// amplification. If nothing survives, the healthy targets are used
    /// unchanged (the range is unreadable in reality; the simulation
    /// still completes and the degraded counters record the event).
    fn read_targets_maybe_degraded(
        &mut self,
        req: &ObjRequest,
        placement: Placement,
    ) -> Vec<Target> {
        let healthy = read_targets(
            req.key,
            req.part,
            req.offset,
            req.len,
            placement,
            self.store.num_storage as u32,
            self.store.devices_per_node as u32,
        );
        if self.lost.is_empty() || healthy.iter().all(|t| !self.lost.contains_key(&t.node)) {
            return healthy;
        }
        let stripe = write_targets(
            req.key,
            req.part,
            req.offset,
            req.len,
            placement,
            self.store.num_storage as u32,
            self.store.devices_per_node as u32,
        );
        self.resil.degraded_reads += 1;
        match placement {
            Placement::Replicate(_) => stripe
                .iter()
                .copied()
                .find(|t| !self.lost.contains_key(&t.node))
                .map(|t| vec![t])
                .unwrap_or(healthy),
            Placement::Erasure { .. } => {
                let survivors: Vec<Target> = stripe
                    .into_iter()
                    .filter(|t| !self.lost.contains_key(&t.node))
                    .collect();
                if survivors.is_empty() {
                    return healthy;
                }
                let healthy_bytes: u64 = healthy.iter().map(|t| t.len).sum();
                let read_bytes: u64 = survivors.iter().map(|t| t.len).sum();
                self.resil.degraded_extra_bytes += read_bytes.saturating_sub(healthy_bytes);
                survivors
            }
        }
    }

    /// One backend acknowledgment arrived for `token`.
    fn backend_done(&mut self, token: u64, ctx: &mut Ctx<'_, PfsMsg>) {
        let fin = {
            let inflight = self
                .inflight
                .get_mut(&token)
                .expect("acknowledgment for unknown gateway token");
            inflight.remaining -= 1;
            inflight.remaining == 0
        };
        if !fin {
            return;
        }
        let InFlight {
            req,
            queue_delay,
            arrived,
            size_result,
            ..
        } = self.inflight.remove(&token).unwrap();

        // The gateway's span covers the whole slot residency: slot wait
        // (queue), protocol processing, and the backend fan-out, which
        // the spawned children let the analyzer break down further.
        self.reqtrace.record(
            req.tid,
            self.me.0,
            ReqMark::Server {
                kind: ServerKind::Gateway,
                arrive: arrived,
                queue: queue_delay,
                depart: ctx.now(),
            },
        );

        // The manifest extent commits when the part is durable backend-side.
        if req.verb == ObjVerb::PutPart {
            self.uploads
                .entry(req.key)
                .or_default()
                .commit(req.part, req.offset, req.len);
            // Durability accounting: the part is on its placement width
            // of nodes when the client is ACKed. Width-1 parts sit on
            // exactly one node — remember which, so a later loss of that
            // node moves them from replicated to the data-loss window.
            let placement = self.store.placement_for(req.key);
            self.resil.acked_bytes += req.len;
            self.resil.replicated_bytes += req.len;
            if placement.width() < 2 {
                let t = write_targets(
                    req.key,
                    req.part,
                    req.offset,
                    req.len,
                    placement,
                    self.store.num_storage as u32,
                    self.store.devices_per_node as u32,
                );
                if let Some(t0) = t.first() {
                    *self.sole_bytes.entry(t0.node).or_default() += req.len;
                }
            }
        }

        let reply = ObjReply {
            id: req.id,
            verb: req.verb,
            key: req.key,
            len: req.len,
            size: size_result,
            queue_delay,
            tid: req.tid,
        };
        let wire = reply.wire_size();
        let (hop, msg) = route(&req.reply_via, req.reply_to, wire, PfsMsg::ObjDone(reply));
        ctx.send(hop, ctx.lookahead(), msg);

        self.active -= 1;
        if let Some((next, arrival)) = self.waitq.pop_front() {
            let waited = ctx.now().since(arrival);
            self.start(next, arrival, waited, ctx);
        }
    }

    /// The manifest of an open upload, if any (inspection/tests).
    pub fn upload(&self, key: FileId) -> Option<&ExtentMap> {
        self.uploads.get(&key)
    }
}

impl Entity<PfsMsg> for Gateway {
    fn on_event(&mut self, ev: Envelope<PfsMsg>, ctx: &mut Ctx<'_, PfsMsg>) {
        match ev.msg {
            PfsMsg::Obj(req) => {
                if self.failed && !self.peers.is_empty() {
                    // Failed over: arrivals re-drain through the peer
                    // (replies still carry the original reply route, so
                    // clients never notice which gateway served them).
                    self.resil.requeued += 1;
                    let wire = req.wire_size();
                    let (hop, msg) = route(
                        &[self.storage_fabric],
                        self.peers[0],
                        wire,
                        PfsMsg::Obj(req),
                    );
                    ctx.send(hop, ctx.lookahead(), msg);
                } else if self.active < self.cfg.slots {
                    self.start(req, ctx.now(), SimDuration::ZERO, ctx);
                } else {
                    self.waitq.push_back((req, ctx.now()));
                    self.peak_queue_depth = self.peak_queue_depth.max(self.waitq.len());
                }
            }
            PfsMsg::Fail { kind, target } => {
                match kind {
                    FailureKind::GatewayFailover => {
                        // Delivered only to the failing gateway itself.
                        if self.failed || self.peers.is_empty() {
                            return;
                        }
                        self.failed = true;
                        self.resil.failures += 1;
                        // Queued (not yet admitted) requests re-drain
                        // through the next gateway in the ring; admitted
                        // requests finish on their held slots.
                        let q: Vec<(ObjRequest, SimTime)> = self.waitq.drain(..).collect();
                        self.resil.requeued += q.len() as u64;
                        for (req, _) in q {
                            let wire = req.wire_size();
                            let (hop, msg) = route(
                                &[self.storage_fabric],
                                self.peers[0],
                                wire,
                                PfsMsg::Obj(req),
                            );
                            ctx.send(hop, ctx.lookahead(), msg);
                        }
                        self.recovering.push_back((None, ctx.now()));
                        ctx.send_self(self.rebuild_time, PfsMsg::Recover);
                    }
                    FailureKind::IoNodeLoss => {
                        // Delivered to every gateway (shared membership
                        // view). Width-1 bytes on the node move from
                        // replicated to the data-loss window.
                        let lost_sole = self.sole_bytes.remove(&target).unwrap_or(0);
                        self.resil.data_loss_bytes += lost_sole;
                        self.resil.replicated_bytes =
                            self.resil.replicated_bytes.saturating_sub(lost_sole);
                        self.lost.insert(target, kind);
                        self.recovering.push_back((Some(target), ctx.now()));
                        ctx.send_self(self.rebuild_time, PfsMsg::Recover);
                    }
                    FailureKind::DegradedRead => {
                        // Data intact, reads served degraded until the
                        // node recovers.
                        self.lost.insert(target, kind);
                        self.recovering.push_back((Some(target), ctx.now()));
                        ctx.send_self(self.rebuild_time, PfsMsg::Recover);
                    }
                }
            }
            PfsMsg::Recover => {
                if let Some((what, since)) = self.recovering.pop_front() {
                    match what {
                        Some(node) => {
                            self.lost.remove(&node);
                        }
                        None => self.failed = false,
                    }
                    let span = ctx.now().since(since).as_nanos();
                    self.resil.recovery_ns = self.resil.recovery_ns.max(span);
                }
            }
            PfsMsg::IoDone(rep) => {
                let token = self
                    .backend_map
                    .remove(&rep.id)
                    .expect("IoDone for unknown backend id");
                self.backend_done(token, ctx);
            }
            PfsMsg::ObjDone(rep) => {
                let token = self
                    .backend_map
                    .remove(&rep.id)
                    .expect("ObjDone for unknown backend id");
                if let Some(inflight) = self.inflight.get_mut(&token) {
                    inflight.size_result = rep.size;
                }
                self.backend_done(token, ctx);
            }
            other => panic!("gateway received unexpected message: {other:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Placement;
    use pioeval_des::{SimConfig, Simulation};
    use pioeval_pfs::fabric::Fabric;
    use pioeval_pfs::oss::Oss;
    use pioeval_pfs::{DeviceConfig, FabricConfig};

    struct Collector {
        replies: Vec<(SimTime, ObjReply)>,
    }
    impl Entity<PfsMsg> for Collector {
        fn on_event(&mut self, ev: Envelope<PfsMsg>, ctx: &mut Ctx<'_, PfsMsg>) {
            if let PfsMsg::ObjDone(rep) = ev.msg {
                self.replies.push((ctx.now(), rep));
            }
        }
    }

    /// A tiny store: 1 gateway, 1 shard, `nodes` storage nodes, 1 device
    /// each, direct client delivery.
    fn setup(store: ObjStoreConfig) -> (Simulation<PfsMsg>, EntityId, EntityId) {
        let mut sim = Simulation::new(SimConfig::default());
        let fabric = sim.add_entity(
            "storage-fabric",
            Box::new(Fabric::new(FabricConfig::ten_gbe())),
        );
        let bin = SimDuration::from_secs(1);
        let shard = sim.add_entity(
            "shard0",
            Box::new(crate::shard::MetaShard::new(store.shard, bin)),
        );
        let mut nodes = Vec::new();
        for i in 0..store.num_storage {
            let id = sim.add_entity(
                format!("node{i}"),
                Box::new(Oss::new(
                    (i * store.devices_per_node) as u32,
                    store.devices_per_node,
                    DeviceConfig::nvme(),
                    bin,
                )),
            );
            nodes.push(id);
        }
        let gw_id = EntityId(sim.num_entities() as u32);
        let gw = sim.add_entity(
            "gw0",
            Box::new(Gateway::new(gw_id, store, fabric, nodes, vec![shard], bin)),
        );
        assert_eq!(gw, gw_id);
        let client = sim.add_entity("client", Box::new(Collector { replies: vec![] }));
        (sim, gw, client)
    }

    fn obj(
        id: u64,
        client: EntityId,
        verb: ObjVerb,
        key: u32,
        offset: u64,
        len: u64,
        part: u32,
    ) -> PfsMsg {
        PfsMsg::Obj(ObjRequest {
            id,
            reply_to: client,
            reply_via: vec![],
            verb,
            key: FileId::new(key),
            offset,
            len,
            part,
            tid: 0,
        })
    }

    #[test]
    fn multipart_put_complete_reports_assembled_size() {
        let store = ObjStoreConfig {
            num_storage: 3,
            devices_per_node: 1,
            placement: Placement::Replicate(2),
            ..ObjStoreConfig::default()
        };
        let (mut sim, gw, client) = setup(store);
        sim.schedule(
            SimTime::ZERO,
            gw,
            obj(1, client, ObjVerb::CreateUpload, 5, 0, 0, 0),
        );
        // Parts land out of order.
        sim.schedule(
            SimTime::from_millis(1),
            gw,
            obj(2, client, ObjVerb::PutPart, 5, 1 << 20, 1 << 20, 1),
        );
        sim.schedule(
            SimTime::from_millis(1),
            gw,
            obj(3, client, ObjVerb::PutPart, 5, 0, 1 << 20, 0),
        );
        sim.run();
        assert!(sim
            .entity_ref::<Gateway>(gw)
            .unwrap()
            .upload(FileId::new(5))
            .unwrap()
            .is_contiguous());
        sim.schedule(
            sim_time_after(&sim),
            gw,
            obj(4, client, ObjVerb::CompleteUpload, 5, 0, 0, 0),
        );
        sim.schedule(
            sim_time_after(&sim) + SimDuration::from_millis(1),
            gw,
            obj(5, client, ObjVerb::Head, 5, 0, 0, 0),
        );
        sim.run();
        let replies = &sim.entity_ref::<Collector>(client).unwrap().replies;
        let complete = replies.iter().find(|(_, r)| r.id == 4).unwrap();
        let head = replies.iter().find(|(_, r)| r.id == 5).unwrap();
        assert_eq!(complete.1.size, 2 << 20);
        assert_eq!(head.1.size, 2 << 20);
        let g = sim.entity_ref::<Gateway>(gw).unwrap();
        assert_eq!(g.put_bytes, 2 << 20);
        assert!(g.upload(FileId::new(5)).is_none());
    }

    #[test]
    fn replication_multiplies_backend_writes() {
        let store = ObjStoreConfig {
            num_storage: 4,
            devices_per_node: 1,
            placement: Placement::Replicate(3),
            ..ObjStoreConfig::default()
        };
        let (mut sim, gw, client) = setup(store);
        sim.schedule(
            SimTime::ZERO,
            gw,
            obj(1, client, ObjVerb::PutPart, 9, 0, 3_000_000, 0),
        );
        sim.run();
        // 3 MB written to each of 3 replicas.
        let written: u64 = (0..4)
            .filter_map(|i| {
                // Entities: fabric=0, shard=1, nodes=2..6, gw, client.
                sim.entity_mut::<Oss>(EntityId(2 + i)).map(|oss| {
                    oss.finalize_stats();
                    oss.stats.bytes_written
                })
            })
            .sum();
        assert_eq!(written, 9_000_000);
    }

    #[test]
    fn bounded_slots_queue_and_report_wait() {
        let store = ObjStoreConfig {
            num_storage: 2,
            devices_per_node: 1,
            placement: Placement::Replicate(1),
            gateway: GatewayConfig {
                slots: 1,
                ..GatewayConfig::default()
            },
            ..ObjStoreConfig::default()
        };
        let (mut sim, gw, client) = setup(store);
        for i in 0..4u64 {
            sim.schedule(
                SimTime::ZERO,
                gw,
                obj(i, client, ObjVerb::GetRange, 1, i * 4096, 4096, 0),
            );
        }
        sim.run();
        let replies = &sim.entity_ref::<Collector>(client).unwrap().replies;
        assert_eq!(replies.len(), 4);
        // With one slot the later requests report growing queue waits.
        let mut waits: Vec<SimDuration> = replies.iter().map(|(_, r)| r.queue_delay).collect();
        waits.sort();
        assert_eq!(waits[0], SimDuration::ZERO);
        assert!(waits[3] > waits[1]);
        let g = sim.entity_ref::<Gateway>(gw).unwrap();
        assert_eq!(g.peak_queue_depth, 3);
        assert_eq!(g.get_bytes, 4 * 4096);
    }

    /// Next free instant strictly after everything processed so far.
    fn sim_time_after(sim: &Simulation<PfsMsg>) -> SimTime {
        sim.now() + SimDuration::from_millis(1)
    }

    #[test]
    fn node_loss_takes_out_single_copy_bytes() {
        let store = ObjStoreConfig {
            num_storage: 3,
            devices_per_node: 1,
            placement: Placement::Replicate(1),
            ..ObjStoreConfig::default()
        };
        let (mut sim, gw, client) = setup(store);
        sim.entity_mut::<Gateway>(gw)
            .unwrap()
            .set_resil(SimDuration::from_millis(500), vec![]);
        sim.schedule(
            SimTime::ZERO,
            gw,
            obj(1, client, ObjVerb::PutPart, 9, 0, 1 << 20, 0),
        );
        sim.run();
        // The part landed on exactly one node; losing all three nodes
        // is guaranteed to include it.
        let t = sim_time_after(&sim);
        for n in 0..3u32 {
            sim.schedule(
                t,
                gw,
                PfsMsg::Fail {
                    kind: FailureKind::IoNodeLoss,
                    target: n,
                },
            );
        }
        sim.run();
        let g = sim.entity_ref::<Gateway>(gw).unwrap();
        assert_eq!(g.resil.acked_bytes, 1 << 20);
        assert_eq!(g.resil.data_loss_bytes, 1 << 20);
        assert_eq!(
            g.resil.acked_bytes,
            g.resil.replicated_bytes + g.resil.data_loss_bytes,
            "conservation: acked = replicated + lost"
        );
        assert!(g.resil.recovery_ns >= 500_000_000);
    }

    #[test]
    fn degraded_erasure_read_amplifies_and_recovers() {
        let store = ObjStoreConfig {
            num_storage: 4,
            devices_per_node: 1,
            placement: Placement::Erasure { data: 2, parity: 2 },
            ..ObjStoreConfig::default()
        };
        let (mut sim, gw, client) = setup(store.clone());
        sim.entity_mut::<Gateway>(gw)
            .unwrap()
            .set_resil(SimDuration::from_millis(500), vec![]);
        sim.schedule(
            SimTime::ZERO,
            gw,
            obj(1, client, ObjVerb::PutPart, 4, 0, 1 << 20, 0),
        );
        sim.run();
        // Degrade the node serving the part's first data shard.
        let victim = crate::placement::read_targets(
            FileId::new(4),
            0,
            0,
            1 << 20,
            store.placement,
            store.num_storage as u32,
            store.devices_per_node as u32,
        )[0]
        .node;
        let t = sim_time_after(&sim);
        sim.schedule(
            t,
            gw,
            PfsMsg::Fail {
                kind: FailureKind::DegradedRead,
                target: victim,
            },
        );
        sim.schedule(
            t + SimDuration::from_micros(1),
            gw,
            obj(2, client, ObjVerb::GetRange, 4, 0, 1 << 20, 0),
        );
        sim.run();
        let g = sim.entity_ref::<Gateway>(gw).unwrap();
        assert_eq!(g.resil.degraded_reads, 1);
        // Reconstruction reads the 3 surviving shards instead of the 2
        // healthy data shards: one extra shard of amplification.
        assert_eq!(g.resil.degraded_extra_bytes, (1 << 20) / 2);
        // No data was lost — the node only served reads degraded.
        assert_eq!(g.resil.data_loss_bytes, 0);
        // After the rebuild time the node recovers; reads are healthy.
        let t2 = sim_time_after(&sim) + SimDuration::from_secs(1);
        sim.schedule(t2, gw, obj(3, client, ObjVerb::GetRange, 4, 0, 1 << 20, 0));
        sim.run();
        let g = sim.entity_ref::<Gateway>(gw).unwrap();
        assert_eq!(g.resil.degraded_reads, 1, "recovered reads are healthy");
    }

    #[test]
    fn gateway_failover_redrains_queue_through_peer() {
        // Two gateways, one slot each: queue up requests on gw0, then
        // fail it over — the queue must re-drain through gw1 and every
        // client still gets its reply.
        let store = ObjStoreConfig {
            num_storage: 2,
            devices_per_node: 1,
            placement: Placement::Replicate(1),
            gateway: GatewayConfig {
                slots: 1,
                ..GatewayConfig::default()
            },
            ..ObjStoreConfig::default()
        };
        let mut sim = Simulation::new(SimConfig::default());
        let fabric = sim.add_entity(
            "storage-fabric",
            Box::new(Fabric::new(FabricConfig::ten_gbe())),
        );
        let bin = SimDuration::from_secs(1);
        let shard = sim.add_entity(
            "shard0",
            Box::new(crate::shard::MetaShard::new(store.shard, bin)),
        );
        let nodes: Vec<EntityId> = (0..store.num_storage)
            .map(|i| {
                sim.add_entity(
                    format!("node{i}"),
                    Box::new(Oss::new(i as u32, 1, DeviceConfig::nvme(), bin)),
                )
            })
            .collect();
        let mut gws = Vec::new();
        for i in 0..2 {
            let me = EntityId(sim.num_entities() as u32);
            let id = sim.add_entity(
                format!("gw{i}"),
                Box::new(Gateway::new(
                    me,
                    store.clone(),
                    fabric,
                    nodes.clone(),
                    vec![shard],
                    bin,
                )),
            );
            assert_eq!(id, me);
            gws.push(id);
        }
        sim.entity_mut::<Gateway>(gws[0])
            .unwrap()
            .set_resil(SimDuration::from_millis(500), vec![gws[1]]);
        sim.entity_mut::<Gateway>(gws[1])
            .unwrap()
            .set_resil(SimDuration::from_millis(500), vec![gws[0]]);
        let client = sim.add_entity("client", Box::new(Collector { replies: vec![] }));
        // Four arrivals fill the single slot and queue three; the
        // failover (scheduled after them at the same instant) re-drains
        // the queued three through gw1.
        for i in 0..4u64 {
            sim.schedule(
                SimTime::ZERO,
                gws[0],
                obj(i, client, ObjVerb::GetRange, 1, i * 4096, 4096, 0),
            );
        }
        sim.schedule(
            SimTime::ZERO,
            gws[0],
            PfsMsg::Fail {
                kind: FailureKind::GatewayFailover,
                target: 0,
            },
        );
        sim.run();
        let replies = &sim.entity_ref::<Collector>(client).unwrap().replies;
        assert_eq!(replies.len(), 4, "every request still gets its reply");
        let g0 = sim.entity_ref::<Gateway>(gws[0]).unwrap();
        assert_eq!(g0.resil.failures, 1);
        assert_eq!(g0.resil.requeued, 3);
        assert!(g0.resil.recovery_ns >= 500_000_000);
        let g1 = sim.entity_ref::<Gateway>(gws[1]).unwrap();
        assert_eq!(g1.stats.requests, 3, "peer served the re-drained queue");
    }
}
