#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # pioeval-objstore
//!
//! A discrete-event S3-like object store — the "emerging workloads"
//! storage path the paper argues evaluation frameworks must cover next
//! to the classic POSIX→PFS stack. The store is built from:
//!
//! * **Gateway nodes** ([`gateway::Gateway`]) with *bounded* request
//!   queues: at most `slots` requests are in service concurrently;
//!   later arrivals wait FIFO, and the queue wait is reported back to
//!   clients and to telemetry.
//! * A **flat-namespace metadata KV** ([`shard::MetaShard`]) — no
//!   directory tree; object records are hash-partitioned across shards
//!   by key.
//! * **PUT/GET/DELETE/LIST** with **multipart upload** and **range
//!   GET** ([`pioeval_pfs::msg::ObjVerb`]); multipart manifests are
//!   reassembled with an order-independent extent map
//!   ([`object::ExtentMap`]).
//! * **Per-bucket placement** ([`config::Placement`]): N-way
//!   replication or striped erasure coding across storage nodes.
//!
//! The storage nodes themselves are `pioeval-pfs` [`pioeval_pfs::oss::Oss`]
//! entities and all traffic crosses the same `pioeval-pfs` fabric
//! entities, so the two backends share hardware assumptions — only the
//! protocol and data path differ.

pub mod client;
pub mod cluster;
pub mod config;
pub mod gateway;
pub mod object;
pub mod placement;
pub mod shard;

pub use client::ObjClientPort;
pub use cluster::{ObjCluster, ObjHandles};
pub use config::{GatewayConfig, ObjStoreConfig, Placement, ShardConfig};
pub use gateway::{Gateway, GatewayStats};
pub use object::ExtentMap;
pub use shard::MetaShard;
