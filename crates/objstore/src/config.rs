//! Object-store configuration.
//!
//! Defaults approximate a small disaggregated object tier sharing the
//! PFS simulator's hardware assumptions: the same InfiniBand-class
//! compute fabric and 10GbE-class storage fabric, HDD-backed storage
//! nodes, and a handful of protocol gateways in front of them.

use pioeval_pfs::{DeviceConfig, FabricConfig};
use pioeval_types::{bytes, Error, Result, SimDuration};
use serde::{Deserialize, Serialize};

/// How a bucket's objects are placed across storage nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// Every part is written whole to `n` distinct nodes; reads pick
    /// one replica deterministically.
    Replicate(u32),
    /// Every part is striped into `data` shards plus `parity` parity
    /// shards, each on a distinct node; healthy-path reads touch the
    /// `data` shards only.
    Erasure {
        /// Data shards per part.
        data: u32,
        /// Parity shards per part.
        parity: u32,
    },
}

impl Placement {
    /// Number of distinct storage nodes one part touches on write.
    pub fn width(&self) -> u32 {
        match *self {
            Placement::Replicate(n) => n,
            Placement::Erasure { data, parity } => data + parity,
        }
    }
}

impl Default for Placement {
    fn default() -> Self {
        Placement::Replicate(2)
    }
}

/// Gateway service model: a bounded pool of concurrent request slots
/// plus a per-request CPU/protocol cost.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct GatewayConfig {
    /// Concurrent requests in service; later arrivals queue FIFO.
    pub slots: usize,
    /// Fixed protocol-processing cost per request.
    pub per_op: SimDuration,
    /// Request-processing bandwidth (checksum/erasure-code pipeline),
    /// bytes/second; charged on data verbs in addition to `per_op`.
    pub proc_bw: u64,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            slots: 16,
            per_op: SimDuration::from_micros(20),
            proc_bw: 5_000_000_000,
        }
    }
}

/// Metadata-shard KV service costs, per object verb.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ShardConfig {
    /// KV insert (begin multipart upload).
    pub insert: SimDuration,
    /// KV lookup (HEAD).
    pub lookup: SimDuration,
    /// Commit of a multipart upload.
    pub complete: SimDuration,
    /// KV delete.
    pub delete: SimDuration,
    /// Bucket listing (per call, not per key).
    pub list: SimDuration,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            insert: SimDuration::from_micros(80),
            lookup: SimDuration::from_micros(25),
            complete: SimDuration::from_micros(60),
            delete: SimDuration::from_micros(50),
            list: SimDuration::from_micros(150),
        }
    }
}

impl ShardConfig {
    /// Service cost of the metadata side of one verb. Data verbs cost
    /// a lookup (they never reach a shard on the healthy path, but the
    /// mapping is total so callers need no partial match).
    pub fn cost(&self, verb: pioeval_pfs::ObjVerb) -> SimDuration {
        use pioeval_pfs::ObjVerb::*;
        match verb {
            CreateUpload => self.insert,
            CompleteUpload => self.complete,
            Head | PutPart | GetRange => self.lookup,
            Delete => self.delete,
            List => self.list,
        }
    }
}

/// Full object-store description: gateways in front, metadata shards
/// and storage nodes behind, sharing the PFS fabric/device models.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ObjStoreConfig {
    /// Number of compute clients (sizes routing tables).
    pub num_clients: usize,
    /// Protocol gateway nodes; clients are assigned round-robin.
    pub num_gateways: usize,
    /// Metadata KV shards; keys are hash-partitioned across them.
    pub num_shards: usize,
    /// Storage nodes (each hosts `devices_per_node` backing devices).
    pub num_storage: usize,
    /// Backing devices per storage node.
    pub devices_per_node: usize,
    /// Compute-side fabric.
    pub compute_fabric: FabricConfig,
    /// Storage-side fabric (gateways, shards, and nodes sit behind it).
    pub storage_fabric: FabricConfig,
    /// Storage-node device model.
    pub device: DeviceConfig,
    /// Gateway service model.
    pub gateway: GatewayConfig,
    /// Metadata shard service costs.
    pub shard: ShardConfig,
    /// Multipart part size: clients split transfers at these (absolute)
    /// boundaries and each part is placed independently.
    pub part_size: u64,
    /// Number of buckets keys hash into (placement granularity).
    pub num_buckets: u32,
    /// Default placement for buckets without an override.
    pub placement: Placement,
    /// Per-bucket placement overrides (bucket index → placement).
    pub bucket_placements: Vec<(u32, Placement)>,
    /// Resilience tier: failure schedule (storage-node loss, degraded
    /// reads, gateway failover) and rebuild time. `None` (the default,
    /// and what configs without the key deserialize to) injects nothing.
    pub resil: Option<pioeval_resil::ResilConfig>,
}

impl Default for ObjStoreConfig {
    fn default() -> Self {
        ObjStoreConfig {
            num_clients: 8,
            num_gateways: 2,
            num_shards: 1,
            num_storage: 4,
            devices_per_node: 2,
            compute_fabric: FabricConfig::infiniband(),
            storage_fabric: FabricConfig::ten_gbe(),
            device: DeviceConfig::hdd(),
            gateway: GatewayConfig::default(),
            shard: ShardConfig::default(),
            part_size: bytes::mib(1),
            num_buckets: 1,
            placement: Placement::default(),
            bucket_placements: Vec::new(),
            resil: None,
        }
    }
}

impl ObjStoreConfig {
    /// Total backing devices across all storage nodes.
    pub fn total_devices(&self) -> usize {
        self.num_storage * self.devices_per_node
    }

    /// The bucket a key belongs to.
    pub fn bucket_of(&self, key: pioeval_types::FileId) -> u32 {
        key.index() as u32 % self.num_buckets.max(1)
    }

    /// The placement policy governing `key`'s bucket.
    pub fn placement_for(&self, key: pioeval_types::FileId) -> Placement {
        let bucket = self.bucket_of(key);
        self.bucket_placements
            .iter()
            .find(|&&(b, _)| b == bucket)
            .map(|&(_, p)| p)
            .unwrap_or(self.placement)
    }

    /// Validate the invariants the simulator (and the lint's PIO05x
    /// object-store diagnostics) depend on.
    pub fn validate(&self, lookahead: SimDuration) -> Result<()> {
        if self.num_clients == 0 {
            return Err(Error::Config("num_clients must be > 0".into()));
        }
        if self.num_gateways == 0 {
            return Err(Error::Config("need at least one gateway".into()));
        }
        if self.num_shards == 0 {
            return Err(Error::Config("need at least one metadata shard".into()));
        }
        if self.num_storage == 0 || self.devices_per_node == 0 {
            return Err(Error::Config(
                "need at least one storage node and device".into(),
            ));
        }
        if self.part_size == 0 {
            return Err(Error::Config("part_size must be > 0".into()));
        }
        if self.gateway.slots == 0 {
            return Err(Error::Config("gateway slots must be > 0".into()));
        }
        if self.gateway.proc_bw == 0 {
            return Err(Error::Config("gateway proc_bw must be > 0".into()));
        }
        let mut placements = vec![(u32::MAX, self.placement)];
        placements.extend(self.bucket_placements.iter().copied());
        for (bucket, p) in placements {
            let name = if bucket == u32::MAX {
                "default placement".to_string()
            } else {
                if bucket >= self.num_buckets {
                    return Err(Error::Config(format!(
                        "bucket override {bucket} out of range (buckets {})",
                        self.num_buckets
                    )));
                }
                format!("bucket {bucket} placement")
            };
            match p {
                Placement::Replicate(n) => {
                    if n == 0 {
                        return Err(Error::Config(format!("{name}: replication factor is 0")));
                    }
                    if n as usize > self.num_storage {
                        return Err(Error::Config(format!(
                            "{name}: replication factor {n} exceeds {} storage nodes",
                            self.num_storage
                        )));
                    }
                }
                Placement::Erasure { data, parity } => {
                    if data == 0 {
                        return Err(Error::Config(format!("{name}: erasure data width is 0")));
                    }
                    if (data + parity) as usize > self.num_storage {
                        return Err(Error::Config(format!(
                            "{name}: erasure width {} exceeds {} storage nodes",
                            data + parity,
                            self.num_storage
                        )));
                    }
                }
            }
        }
        for (fname, f) in [
            ("compute", &self.compute_fabric),
            ("storage", &self.storage_fabric),
        ] {
            if f.link_bw == 0 {
                return Err(Error::Config(format!("{fname} fabric link_bw is 0")));
            }
            if f.latency < lookahead {
                return Err(Error::Config(format!(
                    "{fname} fabric latency {} below engine lookahead {}",
                    f.latency, lookahead
                )));
            }
        }
        if self.device.read_bw == 0 || self.device.write_bw == 0 {
            return Err(Error::Config("storage device bandwidth is 0".into()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_types::FileId;

    #[test]
    fn default_config_validates() {
        let cfg = ObjStoreConfig::default();
        assert!(cfg.validate(SimDuration::from_micros(1)).is_ok());
        assert_eq!(cfg.total_devices(), 8);
    }

    #[test]
    fn replication_wider_than_nodes_rejected() {
        let cfg = ObjStoreConfig {
            placement: Placement::Replicate(9),
            ..ObjStoreConfig::default()
        };
        assert!(cfg.validate(SimDuration::ZERO).is_err());
    }

    #[test]
    fn erasure_wider_than_nodes_rejected() {
        let cfg = ObjStoreConfig {
            placement: Placement::Erasure { data: 3, parity: 2 },
            ..ObjStoreConfig::default()
        };
        assert!(cfg.validate(SimDuration::ZERO).is_err());
        let ok = ObjStoreConfig {
            placement: Placement::Erasure { data: 3, parity: 1 },
            ..ObjStoreConfig::default()
        };
        assert!(ok.validate(SimDuration::ZERO).is_ok());
    }

    #[test]
    fn zero_part_size_and_gateways_rejected() {
        let no_parts = ObjStoreConfig {
            part_size: 0,
            ..ObjStoreConfig::default()
        };
        assert!(no_parts.validate(SimDuration::ZERO).is_err());
        let no_gw = ObjStoreConfig {
            num_gateways: 0,
            ..ObjStoreConfig::default()
        };
        assert!(no_gw.validate(SimDuration::ZERO).is_err());
    }

    #[test]
    fn bucket_overrides_select_placement() {
        let cfg = ObjStoreConfig {
            num_buckets: 4,
            bucket_placements: vec![(1, Placement::Erasure { data: 2, parity: 1 })],
            ..ObjStoreConfig::default()
        };
        assert!(cfg.validate(SimDuration::ZERO).is_ok());
        // Key 5 → bucket 1 → erasure; key 4 → bucket 0 → default.
        assert_eq!(
            cfg.placement_for(FileId::new(5)),
            Placement::Erasure { data: 2, parity: 1 }
        );
        assert_eq!(cfg.placement_for(FileId::new(4)), Placement::default());
        // Out-of-range override is rejected.
        let bad = ObjStoreConfig {
            num_buckets: 2,
            bucket_placements: vec![(7, Placement::Replicate(1))],
            ..ObjStoreConfig::default()
        };
        assert!(bad.validate(SimDuration::ZERO).is_err());
    }

    #[test]
    fn shard_costs_cover_all_verbs() {
        use pioeval_pfs::ObjVerb::*;
        let cfg = ShardConfig::default();
        for v in [
            CreateUpload,
            PutPart,
            GetRange,
            Head,
            CompleteUpload,
            Delete,
            List,
        ] {
            assert!(cfg.cost(v) > SimDuration::ZERO, "{v:?}");
        }
    }
}
