//! Deterministic data placement.
//!
//! Placement is a *pure function* of (key, part, policy, cluster
//! shape) — consistent-hashing style, with no placement state to
//! round-trip through the metadata shards. Every replica / erasure
//! shard of a part lands on a distinct storage node, and consecutive
//! parts of one object rotate around the ring so large objects spread
//! across the cluster.

use crate::config::Placement;
use pioeval_types::{FileId, OstId};

/// One backend access a part expands to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Target {
    /// Storage node index.
    pub node: u32,
    /// Global device id (`node * devices_per_node + local device`).
    pub device: OstId,
    /// Offset within the backing object on that device.
    pub obj_offset: u64,
    /// Bytes of this shard.
    pub len: u64,
}

/// splitmix64-style avalanche, the workspace's standard cheap mixer.
pub(crate) fn mix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The ring start node for `key` — all placements of an object derive
/// from this anchor.
fn anchor(key: FileId, num_storage: u32) -> u64 {
    mix(key.index() as u64) % num_storage as u64
}

/// The device (global id) shard `i` of (`key`, `part`) uses on `node`.
fn device_on(node: u32, key: FileId, part: u32, devices_per_node: u32) -> OstId {
    let d = mix(((key.index() as u64) << 32) ^ part as u64) % devices_per_node as u64;
    OstId::new(node * devices_per_node + d as u32)
}

/// Expand a part *write* into its backend accesses under `placement`.
///
/// `offset`/`len` are the part's byte range within the object; the
/// returned `obj_offset`s address the per-device backing objects
/// (replicas keep object offsets, erasure shards use `offset / data`).
pub fn write_targets(
    key: FileId,
    part: u32,
    offset: u64,
    len: u64,
    placement: Placement,
    num_storage: u32,
    devices_per_node: u32,
) -> Vec<Target> {
    let start = anchor(key, num_storage);
    match placement {
        Placement::Replicate(n) => (0..n)
            .map(|r| {
                let node = ((start + part as u64 + r as u64) % num_storage as u64) as u32;
                Target {
                    node,
                    device: device_on(node, key, part, devices_per_node),
                    obj_offset: offset,
                    len,
                }
            })
            .collect(),
        Placement::Erasure { data, parity } => {
            let shard_len = len.div_ceil(data as u64).max(1);
            (0..data + parity)
                .map(|i| {
                    let node = ((start + part as u64 + i as u64) % num_storage as u64) as u32;
                    Target {
                        node,
                        device: device_on(node, key, part, devices_per_node),
                        obj_offset: offset / data as u64,
                        len: shard_len,
                    }
                })
                .collect()
        }
    }
}

/// Expand a part *read* (healthy path): one deterministically chosen
/// replica, or the `data` shards of an erasure-coded part.
pub fn read_targets(
    key: FileId,
    part: u32,
    offset: u64,
    len: u64,
    placement: Placement,
    num_storage: u32,
    devices_per_node: u32,
) -> Vec<Target> {
    let start = anchor(key, num_storage);
    match placement {
        Placement::Replicate(n) => {
            // Spread read load across replicas by part (deterministic).
            let r = mix(((key.index() as u64) << 24) ^ part as u64) % n.max(1) as u64;
            let node = ((start + part as u64 + r) % num_storage as u64) as u32;
            vec![Target {
                node,
                device: device_on(node, key, part, devices_per_node),
                obj_offset: offset,
                len,
            }]
        }
        Placement::Erasure { data, .. } => {
            let shard_len = len.div_ceil(data as u64).max(1);
            (0..data)
                .map(|i| {
                    let node = ((start + part as u64 + i as u64) % num_storage as u64) as u32;
                    Target {
                        node,
                        device: device_on(node, key, part, devices_per_node),
                        obj_offset: offset / data as u64,
                        len: shard_len,
                    }
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicas_land_on_distinct_nodes() {
        for key in 0..50u32 {
            for part in 0..8 {
                let t = write_targets(
                    FileId::new(key),
                    part,
                    part as u64 * 1024,
                    1024,
                    Placement::Replicate(3),
                    5,
                    2,
                );
                assert_eq!(t.len(), 3);
                let mut nodes: Vec<u32> = t.iter().map(|x| x.node).collect();
                nodes.sort_unstable();
                nodes.dedup();
                assert_eq!(nodes.len(), 3, "key {key} part {part}");
            }
        }
    }

    #[test]
    fn erasure_stripes_and_shrinks_shards() {
        let t = write_targets(
            FileId::new(9),
            0,
            0,
            1 << 20,
            Placement::Erasure { data: 4, parity: 2 },
            8,
            1,
        );
        assert_eq!(t.len(), 6);
        assert!(t.iter().all(|x| x.len == (1 << 20) / 4));
        let r = read_targets(
            FileId::new(9),
            0,
            0,
            1 << 20,
            Placement::Erasure { data: 4, parity: 2 },
            8,
            1,
        );
        // Healthy-path reads touch data shards only.
        assert_eq!(r.len(), 4);
        assert_eq!(r[..4], t[..4]);
    }

    #[test]
    fn replicated_reads_pick_one_written_replica() {
        for key in 0..100u32 {
            let w = write_targets(FileId::new(key), 3, 0, 4096, Placement::Replicate(3), 7, 2);
            let r = read_targets(FileId::new(key), 3, 0, 4096, Placement::Replicate(3), 7, 2);
            assert_eq!(r.len(), 1);
            assert!(w.contains(&r[0]), "read replica not among written ones");
        }
    }

    #[test]
    fn placement_is_deterministic_and_part_rotating() {
        let a = write_targets(FileId::new(1), 0, 0, 10, Placement::Replicate(1), 4, 1);
        let b = write_targets(FileId::new(1), 0, 0, 10, Placement::Replicate(1), 4, 1);
        assert_eq!(a, b);
        let next = write_targets(FileId::new(1), 1, 10, 10, Placement::Replicate(1), 4, 1);
        assert_eq!(next[0].node, (a[0].node + 1) % 4);
    }
}
