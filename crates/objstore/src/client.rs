//! Client-side protocol helper.
//!
//! [`ObjClientPort`] is the object-protocol twin of
//! [`pioeval_pfs::ClientPort`]: it allocates request ids, splits
//! transfers at multipart boundaries, and routes requests to the
//! client's assigned gateway. The big contrast with the PFS port is
//! that there is *no layout handshake* — objects need no open-before-
//! access, clients never learn placement, and every byte moves through
//! a gateway rather than straight to the storage servers.
//!
//! POSIX-flavoured metadata verbs (what the upper I/O stack speaks) map
//! onto object verbs here: create begins a multipart upload,
//! close/fsync completes it, stat/open are HEADs, unlink deletes, and
//! the directory verbs degenerate to bucket LISTs — the flat-namespace
//! translation layer every S3 adaptor implements.

use pioeval_des::EntityId;
use pioeval_pfs::msg::{route, HEADER_BYTES};
use pioeval_pfs::{ObjReply, ObjRequest, ObjVerb, PfsMsg, RequestId};
use pioeval_types::{tid_for, FileId, IoKind, MetaOp, Result};
use std::collections::HashMap;

/// Client-side protocol state for one compute client.
#[derive(Clone, Debug)]
pub struct ObjClientPort {
    me: EntityId,
    compute_fabric: EntityId,
    storage_fabric: EntityId,
    /// The gateway this client is assigned to (round-robin at build).
    gateway: EntityId,
    part_size: u64,
    sizes: HashMap<FileId, u64>,
    next_id: RequestId,
    /// When set, outgoing requests carry a request-trace id derived from
    /// `me` and the request id; when clear they carry the untraced `tid 0`.
    trace: bool,
}

impl ObjClientPort {
    /// Build a port for client entity `me`, speaking to `gateway`.
    pub fn new(
        me: EntityId,
        compute_fabric: EntityId,
        storage_fabric: EntityId,
        gateway: EntityId,
        part_size: u64,
    ) -> Self {
        ObjClientPort {
            me,
            compute_fabric,
            storage_fabric,
            gateway,
            part_size: part_size.max(1),
            sizes: HashMap::new(),
            next_id: 0,
            trace: false,
        }
    }

    /// Enable or disable request-trace id emission on outgoing requests.
    pub fn set_trace(&mut self, on: bool) {
        self.trace = on;
    }

    /// Is request-trace id emission enabled?
    pub fn trace_enabled(&self) -> bool {
        self.trace
    }

    fn fresh_id(&mut self) -> RequestId {
        self.next_id += 1;
        self.next_id
    }

    /// The size this client believes object `file` has (local view).
    pub fn file_size(&self, file: FileId) -> u64 {
        self.sizes.get(&file).copied().unwrap_or(0)
    }

    /// The object verb a POSIX-style metadata op translates to.
    pub fn verb_for(op: MetaOp) -> ObjVerb {
        match op {
            MetaOp::Create => ObjVerb::CreateUpload,
            MetaOp::Open | MetaOp::Stat => ObjVerb::Head,
            MetaOp::Close | MetaOp::Fsync => ObjVerb::CompleteUpload,
            MetaOp::Unlink => ObjVerb::Delete,
            MetaOp::Mkdir | MetaOp::Readdir => ObjVerb::List,
        }
    }

    fn request(
        &mut self,
        verb: ObjVerb,
        key: FileId,
        offset: u64,
        len: u64,
        part: u32,
    ) -> ObjRequest {
        let id = self.fresh_id();
        ObjRequest {
            id,
            reply_to: self.me,
            reply_via: vec![self.storage_fabric, self.compute_fabric],
            verb,
            key,
            offset,
            len,
            part,
            tid: if self.trace {
                tid_for(self.me.0, id)
            } else {
                0
            },
        }
    }

    /// Build a metadata request. Returns (first hop entity, message, id).
    /// The caller sends the message with at least the engine lookahead.
    pub fn meta(&mut self, op: MetaOp, file: FileId) -> (EntityId, PfsMsg, RequestId) {
        let verb = Self::verb_for(op);
        // CompleteUpload carries the client's size view as a hint; the
        // gateway maxes it with its manifest before forwarding.
        let offset = if verb == ObjVerb::CompleteUpload {
            self.file_size(file)
        } else {
            0
        };
        let req = self.request(verb, file, offset, 0, 0);
        let id = req.id;
        let wire = req.wire_size();
        let (hop, msg) = route(
            &[self.compute_fabric, self.storage_fabric],
            self.gateway,
            wire,
            PfsMsg::Obj(req),
        );
        (hop, msg, id)
    }

    /// Build the object requests for a logical extent access: split the
    /// extent at absolute `part_size` boundaries (each part is placed —
    /// and queued at the gateway — independently).
    ///
    /// Never fails: the object protocol has no open-before-access, so
    /// the `Result` only mirrors the PFS port's signature.
    pub fn data(
        &mut self,
        kind: IoKind,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Result<Vec<(EntityId, PfsMsg, RequestId)>> {
        if kind == IoKind::Write {
            let size = self.sizes.entry(file).or_insert(0);
            *size = (*size).max(offset + len);
        }
        let verb = match kind {
            IoKind::Write => ObjVerb::PutPart,
            IoKind::Read => ObjVerb::GetRange,
        };
        let mut rpcs = Vec::new();
        let end = offset + len;
        let mut pos = offset;
        while pos < end {
            let part = pos / self.part_size;
            let boundary = (part + 1) * self.part_size;
            let piece = end.min(boundary) - pos;
            let req = self.request(verb, file, pos, piece, part as u32);
            let id = req.id;
            let wire = req.wire_size();
            let (hop, msg) = route(
                &[self.compute_fabric, self.storage_fabric],
                self.gateway,
                wire,
                PfsMsg::Obj(req),
            );
            rpcs.push((hop, msg, id));
            pos += piece;
        }
        Ok(rpcs)
    }

    /// Build an application-level message to another client entity,
    /// routed over the compute fabric. Returns (first hop, message).
    pub fn app(&self, dst: EntityId, tag: u64, bytes: u64) -> (EntityId, PfsMsg) {
        route(
            &[self.compute_fabric],
            dst,
            HEADER_BYTES + bytes,
            PfsMsg::App { tag, bytes },
        )
    }

    /// Digest an object reply (HEAD / CompleteUpload refresh the size view).
    pub fn on_obj_reply(&mut self, rep: &ObjReply) {
        if matches!(rep.verb, ObjVerb::Head | ObjVerb::CompleteUpload) {
            let size = self.sizes.entry(rep.key).or_insert(0);
            *size = (*size).max(rep.size);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn port() -> ObjClientPort {
        // me=9, compute fabric=0, storage fabric=1, gateway=7, 1 KiB parts.
        ObjClientPort::new(EntityId(9), EntityId(0), EntityId(1), EntityId(7), 1024)
    }

    #[test]
    fn data_splits_at_absolute_part_boundaries() {
        let mut p = port();
        // 3000 bytes starting at 512: parts 0 (512), 1 (1024), 2 (1024), 3 (440).
        let rpcs = p.data(IoKind::Write, FileId::new(1), 512, 3000).unwrap();
        assert_eq!(rpcs.len(), 4);
        let parts: Vec<(u32, u64, u64)> = rpcs
            .iter()
            .map(|(_, msg, _)| {
                let PfsMsg::Route(pkt) = msg else { panic!() };
                let PfsMsg::Route(inner) = pkt.payload.as_ref() else {
                    panic!()
                };
                assert_eq!(inner.dst, EntityId(7));
                let PfsMsg::Obj(req) = inner.payload.as_ref() else {
                    panic!()
                };
                assert_eq!(req.verb, ObjVerb::PutPart);
                (req.part, req.offset, req.len)
            })
            .collect();
        assert_eq!(
            parts,
            vec![
                (0, 512, 512),
                (1, 1024, 1024),
                (2, 2048, 1024),
                (3, 3072, 440)
            ]
        );
        assert_eq!(p.file_size(FileId::new(1)), 3512);
    }

    #[test]
    fn reads_need_no_open() {
        let mut p = port();
        let rpcs = p.data(IoKind::Read, FileId::new(42), 0, 100).unwrap();
        assert_eq!(rpcs.len(), 1);
        // First hop is always the compute fabric.
        assert_eq!(rpcs[0].0, EntityId(0));
    }

    #[test]
    fn meta_ops_translate_to_object_verbs() {
        assert_eq!(
            ObjClientPort::verb_for(MetaOp::Create),
            ObjVerb::CreateUpload
        );
        assert_eq!(ObjClientPort::verb_for(MetaOp::Open), ObjVerb::Head);
        assert_eq!(
            ObjClientPort::verb_for(MetaOp::Close),
            ObjVerb::CompleteUpload
        );
        assert_eq!(
            ObjClientPort::verb_for(MetaOp::Fsync),
            ObjVerb::CompleteUpload
        );
        assert_eq!(ObjClientPort::verb_for(MetaOp::Unlink), ObjVerb::Delete);
        assert_eq!(ObjClientPort::verb_for(MetaOp::Readdir), ObjVerb::List);
    }

    #[test]
    fn complete_upload_carries_size_hint() {
        let mut p = port();
        p.data(IoKind::Write, FileId::new(3), 0, 5000).unwrap();
        let (_, msg, _) = p.meta(MetaOp::Close, FileId::new(3));
        let PfsMsg::Route(pkt) = msg else { panic!() };
        let PfsMsg::Route(inner) = pkt.payload.as_ref() else {
            panic!()
        };
        let PfsMsg::Obj(req) = inner.payload.as_ref() else {
            panic!()
        };
        assert_eq!(req.verb, ObjVerb::CompleteUpload);
        assert_eq!(req.offset, 5000);
    }

    #[test]
    fn head_reply_updates_size_view() {
        let mut p = port();
        p.on_obj_reply(&ObjReply {
            id: 1,
            verb: ObjVerb::Head,
            key: FileId::new(4),
            len: 0,
            size: 777,
            queue_delay: pioeval_types::SimDuration::ZERO,
            tid: 0,
        });
        assert_eq!(p.file_size(FileId::new(4)), 777);
    }
}
