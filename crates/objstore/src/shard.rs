//! Metadata shards: the flat-namespace KV.
//!
//! There is no directory tree — an object record is a key → attributes
//! entry, and keys are hash-partitioned across shards by the gateways,
//! so metadata capacity scales with shard count (the contrast with the
//! deliberately-serial PFS MDS). Each shard is a single FIFO service
//! queue with per-verb costs, exactly the MDS service discipline.
//! Multipart manifests live at the gateways (which see part
//! completions); a shard only learns the final size when the gateway
//! forwards CompleteUpload with the assembled size as a hint.

use pioeval_des::{Ctx, Entity, Envelope};
use pioeval_pfs::msg::route;
use pioeval_pfs::{ObjReply, ObjVerb, PfsMsg};
use pioeval_types::{FileId, IoKind, ReqMark, ReqRecorder, ServerKind, SimDuration, SimTime};
use std::collections::HashMap;

use crate::config::ShardConfig;

/// One object record in the KV.
#[derive(Clone, Debug)]
pub struct ObjRecord {
    /// Committed object size (set by CompleteUpload, max-merged).
    pub size: u64,
    /// Creation timestamp (CreateUpload).
    pub created: SimTime,
}

/// A metadata KV shard entity.
pub struct MetaShard {
    cfg: ShardConfig,
    records: HashMap<FileId, ObjRecord>,
    /// FIFO service queue tail.
    next_free: SimTime,
    /// Aggregate service statistics (timeline lane 0 records one unit
    /// per verb in the write lane, mirroring the MDS convention).
    pub stats: pioeval_pfs::ServerStats,
    /// Per-request trace recorder (KV-service marks for traced requests).
    pub reqtrace: ReqRecorder,
}

impl MetaShard {
    /// A new, empty shard.
    pub fn new(cfg: ShardConfig, stats_bin: SimDuration) -> Self {
        MetaShard {
            cfg,
            records: HashMap::new(),
            next_free: SimTime::ZERO,
            stats: pioeval_pfs::ServerStats::new(1, stats_bin),
            reqtrace: ReqRecorder::default(),
        }
    }

    /// Number of object records currently stored.
    pub fn num_objects(&self) -> usize {
        self.records.len()
    }

    /// Look up an object record (post-run inspection).
    pub fn record(&self, key: FileId) -> Option<&ObjRecord> {
        self.records.get(&key)
    }

    /// Apply the KV side effects of `verb` and return the size to echo.
    fn apply(&mut self, verb: ObjVerb, key: FileId, size_hint: u64, now: SimTime) -> u64 {
        match verb {
            ObjVerb::CreateUpload => {
                self.records.entry(key).or_insert(ObjRecord {
                    size: 0,
                    created: now,
                });
                0
            }
            ObjVerb::Head => self.records.get(&key).map(|r| r.size).unwrap_or(0),
            ObjVerb::CompleteUpload => {
                let rec = self.records.entry(key).or_insert(ObjRecord {
                    size: 0,
                    created: now,
                });
                rec.size = rec.size.max(size_hint);
                rec.size
            }
            ObjVerb::Delete => {
                self.records.remove(&key);
                0
            }
            ObjVerb::List => self.records.len() as u64,
            ObjVerb::PutPart | ObjVerb::GetRange => {
                panic!("metadata shard received data verb {verb:?}")
            }
        }
    }
}

impl Entity<PfsMsg> for MetaShard {
    fn on_event(&mut self, ev: Envelope<PfsMsg>, ctx: &mut Ctx<'_, PfsMsg>) {
        let PfsMsg::Obj(req) = ev.msg else {
            panic!("metadata shard received non-Obj message: {:?}", ev.msg);
        };
        let now = ctx.now();
        let start = now.max(self.next_free);
        let queue_delay = start.since(now);
        let cost = self.cfg.cost(req.verb).max(ctx.lookahead());
        let completion = start + cost;
        self.next_free = completion;

        self.stats.requests += 1;
        self.stats.queue_wait += queue_delay;
        self.stats.busy += cost;
        self.stats.timelines[0].record(completion, IoKind::Write, 1);

        self.reqtrace.record(
            req.tid,
            ctx.me().0,
            ReqMark::Server {
                kind: ServerKind::Shard,
                arrive: now,
                queue: queue_delay,
                depart: completion,
            },
        );

        // `offset` doubles as the size hint on CompleteUpload (len is 0
        // for every metadata verb, so the field is otherwise unused).
        let size = self.apply(req.verb, req.key, req.offset, now);
        let reply = ObjReply {
            id: req.id,
            verb: req.verb,
            key: req.key,
            len: req.len,
            size,
            queue_delay,
            tid: req.tid,
        };
        let wire = reply.wire_size();
        let (first_hop, msg) = route(&req.reply_via, req.reply_to, wire, PfsMsg::ObjDone(reply));
        ctx.send(first_hop, completion.since(now).max(ctx.lookahead()), msg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_des::{EntityId, SimConfig, Simulation};
    use pioeval_pfs::ObjRequest;

    struct Collector {
        replies: Vec<(SimTime, ObjReply)>,
    }
    impl Entity<PfsMsg> for Collector {
        fn on_event(&mut self, ev: Envelope<PfsMsg>, ctx: &mut Ctx<'_, PfsMsg>) {
            if let PfsMsg::ObjDone(rep) = ev.msg {
                self.replies.push((ctx.now(), rep));
            }
        }
    }

    fn setup() -> (Simulation<PfsMsg>, EntityId, EntityId) {
        let mut sim = Simulation::new(SimConfig::default());
        let shard = sim.add_entity(
            "shard",
            Box::new(MetaShard::new(
                ShardConfig::default(),
                SimDuration::from_secs(1),
            )),
        );
        let client = sim.add_entity("client", Box::new(Collector { replies: vec![] }));
        (sim, shard, client)
    }

    fn obj_req(id: u64, client: EntityId, verb: ObjVerb, key: u32, offset: u64) -> PfsMsg {
        PfsMsg::Obj(ObjRequest {
            id,
            reply_to: client,
            reply_via: vec![],
            verb,
            key: FileId::new(key),
            offset,
            len: 0,
            part: 0,
            tid: 0,
        })
    }

    #[test]
    fn create_complete_head_round_trip() {
        let (mut sim, shard, client) = setup();
        sim.schedule(
            SimTime::ZERO,
            shard,
            obj_req(1, client, ObjVerb::CreateUpload, 7, 0),
        );
        sim.schedule(
            SimTime::from_millis(1),
            shard,
            obj_req(2, client, ObjVerb::CompleteUpload, 7, 4096),
        );
        sim.schedule(
            SimTime::from_millis(2),
            shard,
            obj_req(3, client, ObjVerb::Head, 7, 0),
        );
        sim.run();
        let replies = &sim.entity_ref::<Collector>(client).unwrap().replies;
        assert_eq!(replies.len(), 3);
        assert_eq!(replies[1].1.size, 4096);
        assert_eq!(replies[2].1.size, 4096);
        let s = sim.entity_ref::<MetaShard>(shard).unwrap();
        assert_eq!(s.num_objects(), 1);
        assert_eq!(s.record(FileId::new(7)).unwrap().size, 4096);
    }

    #[test]
    fn delete_removes_and_list_counts() {
        let (mut sim, shard, client) = setup();
        sim.schedule(
            SimTime::ZERO,
            shard,
            obj_req(1, client, ObjVerb::CreateUpload, 1, 0),
        );
        sim.schedule(
            SimTime::from_millis(1),
            shard,
            obj_req(2, client, ObjVerb::CreateUpload, 2, 0),
        );
        sim.schedule(
            SimTime::from_millis(2),
            shard,
            obj_req(3, client, ObjVerb::List, 0, 0),
        );
        sim.schedule(
            SimTime::from_millis(3),
            shard,
            obj_req(4, client, ObjVerb::Delete, 1, 0),
        );
        sim.schedule(
            SimTime::from_millis(4),
            shard,
            obj_req(5, client, ObjVerb::List, 0, 0),
        );
        sim.run();
        let replies = &sim.entity_ref::<Collector>(client).unwrap().replies;
        assert_eq!(replies[2].1.size, 2);
        assert_eq!(replies[4].1.size, 1);
    }

    #[test]
    fn fifo_queue_accumulates_delay() {
        let (mut sim, shard, client) = setup();
        for i in 0..8 {
            sim.schedule(
                SimTime::ZERO,
                shard,
                obj_req(i, client, ObjVerb::CreateUpload, i as u32, 0),
            );
        }
        sim.run();
        let replies = &sim.entity_ref::<Collector>(client).unwrap().replies;
        assert!(replies
            .windows(2)
            .all(|w| w[0].1.queue_delay <= w[1].1.queue_delay));
        assert!(replies.last().unwrap().1.queue_delay >= SimDuration::from_micros(7 * 80));
    }
}
