//! Multipart-upload manifests.
//!
//! Parts of one upload complete in whatever order the backend finishes
//! them; the manifest must reassemble to the same object regardless.
//! [`ExtentMap`] keeps committed extents keyed by part number in a
//! `BTreeMap`, so iteration (and therefore the fingerprint and the
//! assembled size) depends only on *which* parts committed, never on
//! the order they arrived in.

use std::collections::BTreeMap;

/// One committed part: its byte range within the object.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Extent {
    /// Object-relative byte offset of the part.
    pub offset: u64,
    /// Bytes in the part.
    pub len: u64,
}

/// Order-independent manifest of a multipart upload.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExtentMap {
    parts: BTreeMap<u32, Extent>,
}

impl ExtentMap {
    /// Empty manifest.
    pub fn new() -> Self {
        ExtentMap::default()
    }

    /// Commit (or re-commit, last-writer-wins) a part.
    pub fn commit(&mut self, part: u32, offset: u64, len: u64) {
        self.parts.insert(part, Extent { offset, len });
    }

    /// Number of committed parts.
    pub fn num_parts(&self) -> usize {
        self.parts.len()
    }

    /// Object size implied by the manifest: the furthest committed byte.
    pub fn assembled_size(&self) -> u64 {
        self.parts
            .values()
            .map(|e| e.offset + e.len)
            .max()
            .unwrap_or(0)
    }

    /// Whether the committed extents tile `[0, assembled_size())` with
    /// no gap and no overlap — i.e. CompleteUpload would yield a fully
    /// materialized object.
    pub fn is_contiguous(&self) -> bool {
        let mut next = 0u64;
        for e in self.parts.values() {
            if e.offset != next {
                return false;
            }
            next = e.offset + e.len;
        }
        true
    }

    /// Deterministic digest of the manifest, folded in part order.
    pub fn fingerprint(&self) -> u64 {
        let mut fp = 0xcbf2_9ce4_8422_2325u64;
        for (&part, e) in &self.parts {
            for v in [part as u64, e.offset, e.len] {
                fp = (fp ^ v).wrapping_mul(0x1000_0000_01B3);
            }
        }
        fp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembly_is_order_independent() {
        let mut forward = ExtentMap::new();
        let mut backward = ExtentMap::new();
        for p in 0..8u32 {
            forward.commit(p, p as u64 * 100, 100);
        }
        for p in (0..8u32).rev() {
            backward.commit(p, p as u64 * 100, 100);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.fingerprint(), backward.fingerprint());
        assert_eq!(forward.assembled_size(), 800);
        assert!(forward.is_contiguous());
    }

    #[test]
    fn gaps_and_recommits_are_detected() {
        let mut m = ExtentMap::new();
        m.commit(0, 0, 100);
        m.commit(2, 200, 50);
        assert!(!m.is_contiguous());
        assert_eq!(m.assembled_size(), 250);
        m.commit(1, 100, 100);
        assert!(m.is_contiguous());
        // Last-writer-wins on re-commit.
        m.commit(2, 200, 64);
        assert_eq!(m.num_parts(), 3);
        assert_eq!(m.assembled_size(), 264);
    }
}
