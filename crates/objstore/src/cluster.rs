//! Object-store assembly: builds the gateway/shard/storage topology
//! into a simulation.
//!
//! Entity order matters for routing: fabrics first, then shards and
//! storage nodes (so the gateways can carry complete routing tables),
//! then gateways, then clients. Storage nodes are plain
//! [`pioeval_pfs::oss::Oss`] entities — the object tier swaps the
//! protocol in front of the same device and fabric models.

use crate::client::ObjClientPort;
use crate::config::ObjStoreConfig;
use crate::gateway::{Gateway, GatewayStats};
use crate::shard::MetaShard;
use pioeval_des::{EntityId, ExecMode, RunResult, SimConfig, Simulation};
use pioeval_pfs::fabric::Fabric;
use pioeval_pfs::oss::Oss;
use pioeval_pfs::{PfsMsg, ServerStats};
use pioeval_resil::{FailureKind, ResilienceReport, ResilienceStats};
use pioeval_types::{ReqEvent, Result, SimDuration, SimTime};

/// Entity ids of the store's fixed infrastructure.
#[derive(Clone, Debug)]
pub struct ObjHandles {
    /// Compute-side fabric entity.
    pub compute_fabric: EntityId,
    /// Storage-side fabric entity (gateways, shards, nodes behind it).
    pub storage_fabric: EntityId,
    /// Metadata KV shards (keys hash across them).
    pub shards: Vec<EntityId>,
    /// Storage-node entities, indexed by node id.
    pub nodes: Vec<EntityId>,
    /// Protocol gateways (clients assigned round-robin).
    pub gateways: Vec<EntityId>,
    /// The configuration the store was built from.
    pub config: ObjStoreConfig,
}

impl ObjHandles {
    /// Build a protocol port for client entity `me`, the `index`-th
    /// client (used to assign its gateway round-robin).
    pub fn port(&self, me: EntityId, index: usize) -> ObjClientPort {
        ObjClientPort::new(
            me,
            self.compute_fabric,
            self.storage_fabric,
            self.gateways[index % self.gateways.len()],
            self.config.part_size,
        )
    }
}

/// A fully assembled object store plus its simulation.
pub struct ObjCluster {
    /// The underlying discrete-event simulation.
    pub sim: Simulation<PfsMsg>,
    /// Infrastructure entity ids.
    pub handles: ObjHandles,
    /// Client entities registered by the caller (the I/O stack).
    pub clients: Vec<EntityId>,
    stats_bin: SimDuration,
    /// Failure events scheduled into this run (expanded at build time).
    failures_injected: u64,
}

impl ObjCluster {
    /// Build a store with the default statistics bin width (100 ms) and
    /// engine configuration.
    pub fn new(config: ObjStoreConfig) -> Result<Self> {
        Self::with_sim_config(config, SimConfig::default(), SimDuration::from_millis(100))
    }

    /// Build a store with explicit engine configuration and server
    /// statistics bin width.
    pub fn with_sim_config(
        config: ObjStoreConfig,
        sim_config: SimConfig,
        stats_bin: SimDuration,
    ) -> Result<Self> {
        config.validate(sim_config.lookahead)?;
        let mut sim = Simulation::new(sim_config);

        let compute_fabric = sim.add_entity(
            "compute-fabric",
            Box::new(Fabric::new(config.compute_fabric)),
        );
        let storage_fabric = sim.add_entity(
            "storage-fabric",
            Box::new(Fabric::new(config.storage_fabric)),
        );
        let shards: Vec<EntityId> = (0..config.num_shards)
            .map(|i| {
                sim.add_entity(
                    format!("shard{i}"),
                    Box::new(MetaShard::new(config.shard, stats_bin)),
                )
            })
            .collect();
        let nodes: Vec<EntityId> = (0..config.num_storage)
            .map(|i| {
                sim.add_entity(
                    format!("node{i}"),
                    Box::new(Oss::new(
                        (i * config.devices_per_node) as u32,
                        config.devices_per_node,
                        config.device,
                        stats_bin,
                    )),
                )
            })
            .collect();
        let gateways: Vec<EntityId> = (0..config.num_gateways)
            .map(|i| {
                // Reserve the id first so the gateway can carry it.
                let me = EntityId(sim.num_entities() as u32);
                let id = sim.add_entity(
                    format!("gateway{i}"),
                    Box::new(Gateway::new(
                        me,
                        config.clone(),
                        storage_fabric,
                        nodes.clone(),
                        shards.clone(),
                        stats_bin,
                    )),
                );
                debug_assert_eq!(id, me);
                id
            })
            .collect();

        // Resilience tier: peer-gateway failover ring and the expanded
        // failure schedule as plain initial events (so sequential and
        // parallel executors see the same run). Node failures go to
        // every gateway (shared membership view); gateway failovers go
        // to the failing gateway only.
        let mut failures_injected = 0u64;
        if let Some(resil) = config.resil.clone() {
            for (g, &id) in gateways.iter().enumerate() {
                let peers: Vec<EntityId> = (1..gateways.len())
                    .map(|step| gateways[(g + step) % gateways.len()])
                    .collect();
                let gw = sim.entity_mut::<Gateway>(id).expect("gateway missing");
                gw.set_resil(resil.rebuild_time, peers);
            }
            let pool = match resil.failures.mtbf.map(|m| m.kind) {
                Some(FailureKind::GatewayFailover) => gateways.len(),
                _ => nodes.len(),
            };
            for ev in resil.failures.expand(pool as u32) {
                let at = SimTime::ZERO + ev.at;
                let fail = PfsMsg::Fail {
                    kind: ev.kind,
                    target: ev.target,
                };
                match ev.kind {
                    FailureKind::IoNodeLoss | FailureKind::DegradedRead
                        if (ev.target as usize) < nodes.len() =>
                    {
                        for &gw in &gateways {
                            sim.schedule(at, gw, fail.clone());
                        }
                        failures_injected += 1;
                    }
                    FailureKind::GatewayFailover if (ev.target as usize) < gateways.len() => {
                        sim.schedule(at, gateways[ev.target as usize], fail);
                        failures_injected += 1;
                    }
                    // Out-of-range targets are linted; skip them here.
                    _ => {}
                }
            }
        }

        Ok(ObjCluster {
            sim,
            handles: ObjHandles {
                compute_fabric,
                storage_fabric,
                shards,
                nodes,
                gateways,
                config,
            },
            clients: Vec::new(),
            stats_bin,
            failures_injected,
        })
    }

    /// The statistics bin width servers were built with.
    pub fn stats_bin(&self) -> SimDuration {
        self.stats_bin
    }

    /// Run the simulation to completion (sequential executor).
    pub fn run(&mut self) -> RunResult {
        self.run_exec(&ExecMode::Sequential)
    }

    /// Run the simulation to completion with an explicit executor
    /// choice. The run is recorded as an `obj.cluster.run` span and
    /// gateway/shard service statistics are published to the global
    /// [`pioeval_obs`] registry afterwards; results are bit-identical
    /// across executors.
    pub fn run_exec(&mut self, exec: &ExecMode) -> RunResult {
        let res = {
            let _obs_span = pioeval_obs::span(pioeval_obs::names::SPAN_OBJ_RUN, "obj");
            exec.run(&mut self.sim)
        };
        self.publish_telemetry();
        res
    }

    /// [`ObjCluster::run_exec`] with the parallel executor's scaling
    /// observatory enabled: also returns the merged per-worker phase
    /// profile (`None` when the run executed sequentially).
    pub fn run_exec_profiled(
        &mut self,
        exec: &ExecMode,
    ) -> (RunResult, Option<pioeval_types::ExecProfile>) {
        let out = {
            let _obs_span = pioeval_obs::span(pioeval_obs::names::SPAN_OBJ_RUN, "obj");
            exec.run_profiled(&mut self.sim)
        };
        self.publish_telemetry();
        out
    }

    /// Run sequentially while attributing processed events to entities
    /// (feeds load-aware partitioning of a subsequent parallel run).
    pub fn run_counted(&mut self) -> (RunResult, Vec<u64>) {
        let out = {
            let _obs_span = pioeval_obs::span(pioeval_obs::names::SPAN_OBJ_RUN, "obj");
            self.sim.run_counted()
        };
        self.publish_telemetry();
        out
    }

    /// Publish gateway and shard service metrics to the global
    /// [`pioeval_obs`] registry. Called automatically by the run
    /// methods; counters accumulate per call by design.
    pub fn publish_telemetry(&mut self) {
        let obs = pioeval_obs::global();
        obs.counter(pioeval_obs::names::OBJ_RUNS).inc();
        let mut peak_queue = 0u64;
        for stats in self.gateway_stats() {
            obs.counter(pioeval_obs::names::OBJ_GATEWAY_REQUESTS)
                .add(stats.requests);
            obs.counter(pioeval_obs::names::OBJ_GET_BYTES)
                .add(stats.get_bytes);
            obs.counter(pioeval_obs::names::OBJ_PUT_BYTES)
                .add(stats.put_bytes);
            obs.histogram(pioeval_obs::names::OBJ_GATEWAY_QUEUE_WAIT_US)
                .observe(stats.mean_queue_wait().as_nanos() / 1_000);
            obs.histogram(pioeval_obs::names::OBJ_GATEWAY_SERVICE_US)
                .observe(stats.mean_service_time().as_nanos() / 1_000);
            peak_queue = peak_queue.max(stats.peak_queue_depth as u64);
        }
        obs.gauge(pioeval_obs::names::OBJ_GATEWAY_QUEUE_PEAK)
            .record(peak_queue);
        obs.counter(pioeval_obs::names::OBJ_SHARD_REQUESTS)
            .add(self.shard_requests());
        if let Some(r) = self.resilience() {
            obs.counter(pioeval_obs::names::RESIL_ACKED_BYTES)
                .add(r.acked_bytes);
            obs.counter(pioeval_obs::names::RESIL_REPLICATED_BYTES)
                .add(r.replicated_bytes);
            obs.counter(pioeval_obs::names::RESIL_DATA_LOSS_BYTES)
                .add(r.data_loss_bytes);
            obs.counter(pioeval_obs::names::RESIL_FAILURES)
                .add(r.failures_injected);
            obs.counter(pioeval_obs::names::RESIL_DEGRADED_READS)
                .add(r.degraded_reads);
            obs.counter(pioeval_obs::names::RESIL_REQUEUED)
                .add(r.requeued);
            obs.gauge(pioeval_obs::names::RESIL_RECOVERY_US)
                .record(r.recovery.as_nanos() / 1_000);
        }
        // Freshly published gateway stats deserve a frame now, not at
        // the next interval tick.
        pioeval_obs::live::pulse();
    }

    /// Aggregate the resilience report for this run. `Some` only when a
    /// resilience configuration was supplied (so default runs keep their
    /// reports unchanged); stats are folded in gateway index order.
    pub fn resilience(&self) -> Option<ResilienceReport> {
        let resil = self.handles.config.resil.as_ref()?;
        let mut read_bytes = 0u64;
        let stats: Vec<ResilienceStats> = self
            .handles
            .gateways
            .iter()
            .map(|&id| {
                let gw = self
                    .sim
                    .entity_ref::<Gateway>(id)
                    .expect("gateway entity missing");
                read_bytes += gw.get_bytes;
                gw.resil.clone()
            })
            .collect();
        Some(ResilienceReport::from_stats(
            resil.ack_mode,
            self.failures_injected,
            read_bytes,
            &stats,
        ))
    }

    /// Snapshot per-gateway service counters.
    pub fn gateway_stats(&self) -> Vec<GatewayStats> {
        self.handles
            .gateways
            .iter()
            .map(|&id| {
                self.sim
                    .entity_ref::<Gateway>(id)
                    .expect("gateway entity missing")
                    .snapshot()
            })
            .collect()
    }

    /// Finalize and collect per-storage-node service statistics.
    pub fn storage_stats(&mut self) -> Vec<ServerStats> {
        let ids = self.handles.nodes.clone();
        ids.iter()
            .map(|&id| {
                let oss = self
                    .sim
                    .entity_mut::<Oss>(id)
                    .expect("storage node entity missing");
                oss.finalize_stats();
                oss.stats.clone()
            })
            .collect()
    }

    /// Borrow metadata shard `i` (post-run inspection).
    pub fn shard_at(&self, i: usize) -> &MetaShard {
        self.sim
            .entity_ref::<MetaShard>(self.handles.shards[i])
            .expect("shard entity missing")
    }

    /// Total requests served across all metadata shards.
    pub fn shard_requests(&self) -> u64 {
        (0..self.handles.shards.len())
            .map(|i| self.shard_at(i).stats.requests)
            .sum()
    }

    /// Transfer statistics of the (compute, storage) fabrics.
    pub fn fabric_stats(&self) -> (pioeval_pfs::FabricStats, pioeval_pfs::FabricStats) {
        let get = |id| {
            self.sim
                .entity_ref::<Fabric>(id)
                .expect("fabric entity missing")
                .stats
        };
        (
            get(self.handles.compute_fabric),
            get(self.handles.storage_fabric),
        )
    }

    /// Enable per-request trace recording on every infrastructure entity
    /// (fabrics, shards, storage nodes, gateways). Client-side emission
    /// is enabled separately via [`ObjClientPort::set_trace`] — both are
    /// needed for a request to be traced end to end. Call before the run.
    pub fn enable_request_trace(&mut self) {
        for id in [self.handles.compute_fabric, self.handles.storage_fabric] {
            if let Some(f) = self.sim.entity_mut::<Fabric>(id) {
                f.reqtrace.enabled = true;
            }
        }
        for id in self.handles.shards.clone() {
            if let Some(s) = self.sim.entity_mut::<MetaShard>(id) {
                s.reqtrace.enabled = true;
            }
        }
        for id in self.handles.nodes.clone() {
            if let Some(n) = self.sim.entity_mut::<Oss>(id) {
                n.reqtrace.enabled = true;
            }
        }
        for id in self.handles.gateways.clone() {
            if let Some(g) = self.sim.entity_mut::<Gateway>(id) {
                g.reqtrace.enabled = true;
            }
        }
    }

    /// Drain the request-trace events recorded by all infrastructure
    /// entities, in entity-id order (deterministic across executors —
    /// each entity's recorder is only ever appended to by that entity).
    pub fn drain_request_events(&mut self) -> Vec<ReqEvent> {
        let mut out = Vec::new();
        let mut ids = vec![self.handles.compute_fabric, self.handles.storage_fabric];
        ids.extend(self.handles.shards.iter().copied());
        ids.extend(self.handles.nodes.iter().copied());
        ids.extend(self.handles.gateways.iter().copied());
        ids.sort_by_key(|id| id.0);
        for id in ids {
            if let Some(f) = self.sim.entity_mut::<Fabric>(id) {
                out.extend(f.reqtrace.drain());
            } else if let Some(s) = self.sim.entity_mut::<MetaShard>(id) {
                out.extend(s.reqtrace.drain());
            } else if let Some(n) = self.sim.entity_mut::<Oss>(id) {
                out.extend(n.reqtrace.drain());
            } else if let Some(g) = self.sim.entity_mut::<Gateway>(id) {
                out.extend(g.reqtrace.drain());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Placement;
    use pioeval_des::{Ctx, Entity, Envelope};
    use pioeval_pfs::ObjVerb;
    use pioeval_types::{FileId, IoKind, MetaOp, SimTime};

    /// A minimal object client: create, write `len` bytes, close, head.
    struct ObjWriter {
        port: ObjClientPort,
        key: FileId,
        len: u64,
        pending: std::collections::HashSet<u64>,
        stage: usize,
        /// Size reported by the final HEAD.
        pub head_size: Option<u64>,
        pub finished_at: Option<SimTime>,
    }

    impl ObjWriter {
        fn advance(&mut self, ctx: &mut Ctx<'_, PfsMsg>) {
            while self.pending.is_empty() {
                let stage = self.stage;
                self.stage += 1;
                match stage {
                    0 => {
                        let (hop, msg, id) = self.port.meta(MetaOp::Create, self.key);
                        self.pending.insert(id);
                        ctx.send(hop, ctx.lookahead(), msg);
                    }
                    1 => {
                        let rpcs = self
                            .port
                            .data(IoKind::Write, self.key, 0, self.len)
                            .unwrap();
                        for (hop, msg, id) in rpcs {
                            self.pending.insert(id);
                            ctx.send(hop, ctx.lookahead(), msg);
                        }
                    }
                    2 => {
                        let (hop, msg, id) = self.port.meta(MetaOp::Close, self.key);
                        self.pending.insert(id);
                        ctx.send(hop, ctx.lookahead(), msg);
                    }
                    3 => {
                        let (hop, msg, id) = self.port.meta(MetaOp::Stat, self.key);
                        self.pending.insert(id);
                        ctx.send(hop, ctx.lookahead(), msg);
                    }
                    _ => {
                        if self.finished_at.is_none() {
                            self.finished_at = Some(ctx.now());
                        }
                        return;
                    }
                }
            }
        }
    }

    impl Entity<PfsMsg> for ObjWriter {
        fn on_event(&mut self, ev: Envelope<PfsMsg>, ctx: &mut Ctx<'_, PfsMsg>) {
            match ev.msg {
                PfsMsg::Start => self.advance(ctx),
                PfsMsg::ObjDone(rep) => {
                    self.port.on_obj_reply(&rep);
                    if rep.verb == ObjVerb::Head {
                        self.head_size = Some(rep.size);
                    }
                    if self.pending.remove(&rep.id) && self.pending.is_empty() {
                        self.advance(ctx);
                    }
                }
                other => panic!("writer received unexpected message: {other:?}"),
            }
        }
    }

    fn add_writer(cluster: &mut ObjCluster, key: u32, len: u64) -> EntityId {
        let index = cluster.clients.len();
        let me = EntityId(cluster.sim.num_entities() as u32);
        let port = cluster.handles.port(me, index);
        let id = cluster.sim.add_entity(
            format!("client{index}"),
            Box::new(ObjWriter {
                port,
                key: FileId::new(key),
                len,
                pending: Default::default(),
                stage: 0,
                head_size: None,
                finished_at: None,
            }),
        );
        debug_assert_eq!(id, me);
        cluster.clients.push(id);
        cluster.sim.schedule(SimTime::ZERO, id, PfsMsg::Start);
        id
    }

    #[test]
    fn end_to_end_multipart_write_lands_replicated() {
        let cfg = ObjStoreConfig {
            placement: Placement::Replicate(2),
            ..ObjStoreConfig::default()
        };
        let mut cluster = ObjCluster::new(cfg).unwrap();
        // 3 MiB at 1 MiB parts → 3 parts × 2 replicas.
        let c = add_writer(&mut cluster, 7, 3 << 20);
        cluster.run();
        let writer = cluster.sim.entity_ref::<ObjWriter>(c).unwrap();
        assert!(writer.finished_at.is_some(), "writer never finished");
        assert_eq!(writer.head_size, Some(3 << 20));
        let written: u64 = cluster
            .storage_stats()
            .iter()
            .map(|s| s.bytes_written)
            .sum();
        assert_eq!(written, 2 * (3 << 20));
        let gw: u64 = cluster.gateway_stats().iter().map(|s| s.put_bytes).sum();
        assert_eq!(gw, 3 << 20);
        assert!(cluster.shard_requests() >= 3);
    }

    #[test]
    fn erasure_reads_touch_data_shards_only() {
        let cfg = ObjStoreConfig {
            num_storage: 6,
            placement: Placement::Erasure { data: 4, parity: 2 },
            ..ObjStoreConfig::default()
        };
        let mut cluster = ObjCluster::new(cfg).unwrap();
        let c = add_writer(&mut cluster, 3, 2 << 20);
        cluster.run();
        assert!(cluster
            .sim
            .entity_ref::<ObjWriter>(c)
            .unwrap()
            .finished_at
            .is_some());
        let stats = cluster.storage_stats();
        let written: u64 = stats.iter().map(|s| s.bytes_written).sum();
        // 2 parts × 6 shards × (1 MiB / 4) = 3 MiB of encoded writes.
        assert_eq!(written, 6 * (2 << 20) / 4);
    }

    #[test]
    fn clients_spread_across_gateways() {
        let cfg = ObjStoreConfig::default();
        let mut cluster = ObjCluster::new(cfg).unwrap();
        for i in 0..4 {
            add_writer(&mut cluster, i, 1 << 20);
        }
        cluster.run();
        let stats = cluster.gateway_stats();
        assert_eq!(stats.len(), 2);
        assert!(stats.iter().all(|s| s.requests > 0));
    }

    #[test]
    fn seq_and_parallel_executors_agree() {
        use pioeval_des::{Backend, ParallelConfig, Partitioner, WindowPolicy};
        let run = |exec: &ExecMode| {
            let mut cluster = ObjCluster::new(ObjStoreConfig::default()).unwrap();
            for i in 0..4 {
                add_writer(&mut cluster, i, 2 << 20);
            }
            let res = cluster.run_exec(exec);
            let finished: Vec<_> = cluster
                .clients
                .iter()
                .map(|&c| {
                    cluster
                        .sim
                        .entity_ref::<ObjWriter>(c)
                        .unwrap()
                        .finished_at
                        .unwrap()
                })
                .collect();
            (res.events, res.end_time, finished)
        };
        let seq = run(&ExecMode::Sequential);
        let par = run(&ExecMode::Parallel(ParallelConfig {
            threads: 4,
            backend: Backend::Threads,
            window: WindowPolicy::default(),
            partitioner: Partitioner::RoundRobin,
        }));
        assert_eq!(seq, par);
    }
}
