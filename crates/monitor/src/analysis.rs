//! Temporal, spatial, and correlative analysis of storage-system logs.
//!
//! Patel et al. (SC'19) analyzed a year of server-side logs along three
//! axes — *temporal* (burstiness, activity windows), *spatial* (which
//! OSTs carry the load), and *correlative* (how client activity relates
//! to server load). [`SystemAnalysis`] computes the same reductions over
//! the simulator's [`OstTimeline`]s, including the headline read:write
//! mix that challenged the "HPC is write-dominated" assumption.

use pioeval_model::stats;
use pioeval_pfs::OstTimeline;
use serde::{Deserialize, Serialize};

/// Read/write mix of one time window.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct WindowMix {
    /// Window start, seconds.
    pub start_s: f64,
    /// Bytes read in the window.
    pub read: u64,
    /// Bytes written in the window.
    pub written: u64,
}

impl WindowMix {
    /// Fraction of traffic that is reads (0 when idle).
    pub fn read_fraction(&self) -> f64 {
        let total = self.read + self.written;
        if total == 0 {
            return 0.0;
        }
        self.read as f64 / total as f64
    }
}

/// System-level analysis over a set of OST timelines.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SystemAnalysis {
    /// Per-window read/write mix (temporal).
    pub windows: Vec<WindowMix>,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Peak-to-mean ratio of per-window traffic (burstiness).
    pub burstiness: f64,
    /// Fraction of windows with any traffic (activity factor).
    pub active_fraction: f64,
    /// Per-OST total bytes (spatial).
    pub per_ost_bytes: Vec<u64>,
}

impl SystemAnalysis {
    /// Analyze a set of OST timelines (one entry per OST, equal bin
    /// widths).
    pub fn from_timelines(timelines: &[OstTimeline]) -> Self {
        let bins = timelines.iter().map(|t| t.len()).max().unwrap_or(0);
        let width = timelines
            .first()
            .map(|t| t.bin_width.as_secs_f64())
            .unwrap_or(1.0);
        let mut windows = Vec::with_capacity(bins);
        for b in 0..bins {
            let mut read = 0u64;
            let mut written = 0u64;
            for t in timelines {
                read += t.read_bins.get(b).copied().unwrap_or(0);
                written += t.write_bins.get(b).copied().unwrap_or(0);
            }
            windows.push(WindowMix {
                start_s: b as f64 * width,
                read,
                written,
            });
        }
        let totals: Vec<f64> = windows
            .iter()
            .map(|w| (w.read + w.written) as f64)
            .collect();
        let mean = stats::mean(&totals);
        let peak = totals.iter().copied().fold(0.0f64, f64::max);
        let burstiness = if mean > 0.0 { peak / mean } else { 0.0 };
        let active = totals.iter().filter(|&&t| t > 0.0).count();
        SystemAnalysis {
            bytes_read: windows.iter().map(|w| w.read).sum(),
            bytes_written: windows.iter().map(|w| w.written).sum(),
            burstiness,
            active_fraction: if bins == 0 {
                0.0
            } else {
                active as f64 / bins as f64
            },
            per_ost_bytes: timelines.iter().map(|t| t.total_bytes()).collect(),
            windows,
        }
    }

    /// Overall read fraction — Patel et al.'s headline metric.
    pub fn read_fraction(&self) -> f64 {
        let total = self.bytes_read + self.bytes_written;
        if total == 0 {
            return 0.0;
        }
        self.bytes_read as f64 / total as f64
    }

    /// Spatial imbalance: max/mean of per-OST bytes.
    pub fn spatial_imbalance(&self) -> f64 {
        let total: u64 = self.per_ost_bytes.iter().sum();
        if total == 0 || self.per_ost_bytes.is_empty() {
            return 0.0;
        }
        let mean = total as f64 / self.per_ost_bytes.len() as f64;
        *self.per_ost_bytes.iter().max().unwrap() as f64 / mean
    }

    /// The dominant period of the system's traffic, in windows, if the
    /// series is periodic (autocorrelation > 0.5) — checkpoint cadences
    /// and epoch loops show up here (the paper's "I/O periodicity and
    /// repetition").
    pub fn dominant_period(&self) -> Option<usize> {
        let series: Vec<f64> = self
            .windows
            .iter()
            .map(|w| (w.read + w.written) as f64)
            .collect();
        stats::detect_period(&series, series.len() / 2, 0.5)
    }

    /// Pearson correlation between this system's per-window traffic and
    /// another activity series (correlative analysis: e.g. a job's
    /// client-side bandwidth timeline).
    pub fn correlate_with(&self, other: &[f64]) -> f64 {
        let mine: Vec<f64> = self
            .windows
            .iter()
            .map(|w| (w.read + w.written) as f64)
            .collect();
        let n = mine.len().min(other.len());
        stats::pearson(&mine[..n], &other[..n])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_types::{IoKind, SimDuration, SimTime};

    fn timeline(events: &[(u64, IoKind, u64)]) -> OstTimeline {
        let mut t = OstTimeline::new(SimDuration::from_secs(1));
        for &(sec, kind, bytes) in events {
            t.record(SimTime::from_secs(sec), kind, bytes);
        }
        t
    }

    #[test]
    fn read_write_mix_over_time() {
        let t = timeline(&[
            (0, IoKind::Write, 100),
            (1, IoKind::Read, 300),
            (1, IoKind::Write, 100),
        ]);
        let a = SystemAnalysis::from_timelines(&[t]);
        assert_eq!(a.bytes_read, 300);
        assert_eq!(a.bytes_written, 200);
        assert!((a.read_fraction() - 0.6).abs() < 1e-12);
        assert_eq!(a.windows.len(), 2);
        assert_eq!(a.windows[0].read_fraction(), 0.0);
        assert!((a.windows[1].read_fraction() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn burstiness_flags_spiky_traffic() {
        let spiky = timeline(&[(0, IoKind::Write, 1000), (5, IoKind::Write, 0)]);
        let flat = timeline(&[
            (0, IoKind::Write, 100),
            (1, IoKind::Write, 100),
            (2, IoKind::Write, 100),
        ]);
        let a_spiky = SystemAnalysis::from_timelines(&[spiky]);
        let a_flat = SystemAnalysis::from_timelines(&[flat]);
        assert!(a_spiky.burstiness > a_flat.burstiness);
        assert!(a_flat.active_fraction > a_spiky.active_fraction);
    }

    #[test]
    fn spatial_imbalance_detects_hot_ost() {
        let hot = timeline(&[(0, IoKind::Write, 900)]);
        let cold = timeline(&[(0, IoKind::Write, 100)]);
        let a = SystemAnalysis::from_timelines(&[hot, cold]);
        assert!((a.spatial_imbalance() - 1.8).abs() < 1e-12);
    }

    #[test]
    fn correlation_with_job_activity() {
        let t = timeline(&[
            (0, IoKind::Write, 100),
            (1, IoKind::Write, 200),
            (2, IoKind::Write, 300),
        ]);
        let a = SystemAnalysis::from_timelines(&[t]);
        let job_series = vec![1.0, 2.0, 3.0];
        assert!((a.correlate_with(&job_series) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn periodic_traffic_is_detected() {
        let mut t = OstTimeline::new(SimDuration::from_secs(1));
        for burst in 0..8 {
            t.record(SimTime::from_secs(burst * 4), IoKind::Write, 1000);
            // Pad the quiet seconds so the series has explicit zeros.
            t.record(SimTime::from_secs(burst * 4 + 3), IoKind::Write, 0);
        }
        let a = SystemAnalysis::from_timelines(&[t]);
        assert_eq!(a.dominant_period(), Some(4));
    }

    #[test]
    fn empty_input_is_neutral() {
        let a = SystemAnalysis::from_timelines(&[]);
        assert_eq!(a.read_fraction(), 0.0);
        assert_eq!(a.spatial_imbalance(), 0.0);
        assert_eq!(a.active_fraction, 0.0);
    }
}
