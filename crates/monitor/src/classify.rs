//! IOMiner-style job classification.
//!
//! IOMiner (Wang et al., CLUSTER'18) mines fleets of I/O logs to find
//! behaviour classes. [`signature`] reduces a job's Darshan-style
//! profile to a normalized feature vector, and [`classify_jobs`]
//! clusters a campaign's jobs into classes with k-means — small-file
//! metadata-storms, large sequential writers, and read-heavy scanners
//! land in different clusters without any labels.

use pioeval_model::kmeans::KMeans;
use pioeval_trace::JobProfile;
use pioeval_types::Result;
use serde::Serialize;

/// The I/O signature features of one job (all normalized to [0, 1]-ish
/// scales so no axis dominates the distance metric).
#[derive(Clone, Copy, Debug, Serialize)]
pub struct Signature {
    /// Read fraction of data volume.
    pub read_fraction: f64,
    /// Metadata ops per data op, squashed by `x / (1 + x)`.
    pub meta_intensity: f64,
    /// Mean transfer size, log-scaled to [0, 1] over [1 B, 1 GiB].
    pub transfer_scale: f64,
    /// Files touched, log-scaled to [0, 1] over [1, 1e6].
    pub file_scale: f64,
    /// Sequential access fraction.
    pub sequential_fraction: f64,
}

impl Signature {
    /// As a feature vector for clustering.
    pub fn features(&self) -> Vec<f64> {
        vec![
            self.read_fraction,
            self.meta_intensity,
            self.transfer_scale,
            self.file_scale,
            self.sequential_fraction,
        ]
    }
}

fn log_scale(v: f64, max_log10: f64) -> f64 {
    if v <= 1.0 {
        return 0.0;
    }
    (v.log10() / max_log10).clamp(0.0, 1.0)
}

/// Compute a job's I/O signature from its profile.
pub fn signature(profile: &JobProfile) -> Signature {
    let data_ops = profile.data_ops();
    let volume = profile.bytes_read() + profile.bytes_written();
    let mean_xfer = if data_ops == 0 {
        0.0
    } else {
        volume as f64 / data_ops as f64
    };
    let meta_ratio = profile.meta_per_data_op();
    let mut pattern = pioeval_types::PatternDetector::new();
    for rec in profile.records.values() {
        pattern.merge(&rec.pattern);
    }
    Signature {
        read_fraction: profile.read_fraction(),
        meta_intensity: meta_ratio / (1.0 + meta_ratio),
        transfer_scale: log_scale(mean_xfer, 9.0),
        file_scale: log_scale(profile.num_files() as f64, 6.0),
        sequential_fraction: pattern.sequential_fraction(),
    }
}

/// A classified set of jobs.
#[derive(Debug)]
pub struct JobClasses {
    /// Per-job signatures, in input order.
    pub signatures: Vec<Signature>,
    /// Per-job cluster assignment.
    pub assignments: Vec<usize>,
    /// Cluster centroids in feature space.
    pub centroids: Vec<Vec<f64>>,
}

impl JobClasses {
    /// Number of distinct classes actually used.
    pub fn num_classes(&self) -> usize {
        let mut used: Vec<usize> = self.assignments.clone();
        used.sort_unstable();
        used.dedup();
        used.len()
    }

    /// Jobs in each class.
    pub fn members(&self, class: usize) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == class)
            .map(|(i, _)| i)
            .collect()
    }
}

/// Cluster jobs into (at most) `k` behaviour classes.
pub fn classify_jobs(profiles: &[JobProfile], k: usize, seed: u64) -> Result<JobClasses> {
    let signatures: Vec<Signature> = profiles.iter().map(signature).collect();
    let features: Vec<Vec<f64>> = signatures.iter().map(Signature::features).collect();
    let km = KMeans::fit(&features, k, seed)?;
    Ok(JobClasses {
        signatures,
        assignments: km.assignments.clone(),
        centroids: km.centroids,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_types::{FileId, IoKind, Layer, LayerRecord, MetaOp, Rank, RecordOp, SimTime};

    fn posix(file: u32, op: RecordOp, offset: u64, len: u64) -> LayerRecord {
        LayerRecord {
            layer: Layer::Posix,
            rank: Rank::new(0),
            file: FileId::new(file),
            op,
            offset,
            len,
            start: SimTime::ZERO,
            end: SimTime::from_micros(1),
        }
    }

    /// Large sequential writer.
    fn writer_profile() -> JobProfile {
        let mut recs = Vec::new();
        for i in 0..16 {
            recs.push(posix(1, RecordOp::Data(IoKind::Write), i << 20, 1 << 20));
        }
        JobProfile::from_records(&recs)
    }

    /// Small-file metadata storm (DL-style reader).
    fn smallfile_profile() -> JobProfile {
        let mut recs = Vec::new();
        for f in 0..64 {
            recs.push(posix(100 + f, RecordOp::Meta(MetaOp::Open), 0, 0));
            recs.push(posix(100 + f, RecordOp::Data(IoKind::Read), 0, 4096));
            recs.push(posix(100 + f, RecordOp::Meta(MetaOp::Close), 0, 0));
        }
        JobProfile::from_records(&recs)
    }

    #[test]
    fn signatures_separate_behaviour() {
        let w = signature(&writer_profile());
        let s = signature(&smallfile_profile());
        assert!(w.read_fraction < 0.1 && s.read_fraction > 0.9);
        assert!(s.meta_intensity > w.meta_intensity);
        assert!(w.transfer_scale > s.transfer_scale);
        assert!(s.file_scale > w.file_scale);
    }

    #[test]
    fn classification_groups_like_with_like() {
        let mut profiles = Vec::new();
        for _ in 0..4 {
            profiles.push(writer_profile());
        }
        for _ in 0..4 {
            profiles.push(smallfile_profile());
        }
        let classes = classify_jobs(&profiles, 2, 3).unwrap();
        assert_eq!(classes.num_classes(), 2);
        // First four jobs share a class; last four share the other.
        let first = classes.assignments[0];
        assert!(classes.assignments[..4].iter().all(|&a| a == first));
        assert!(classes.assignments[4..].iter().all(|&a| a != first));
        assert_eq!(classes.members(first).len(), 4);
    }

    #[test]
    fn empty_profile_has_neutral_signature() {
        let s = signature(&JobProfile::new());
        assert_eq!(s.read_fraction, 0.0);
        assert_eq!(s.transfer_scale, 0.0);
        assert_eq!(s.features().len(), 5);
    }
}
