//! UMAMI-style end-to-end metric fusion.
//!
//! UMAMI (Lockwood et al.) presents a job's I/O performance *in context*:
//! client-side metrics next to the storage-system metrics of the same
//! time window. [`EndToEndView`] fuses a job's Darshan-style profile,
//! the servers' statistics, and the scheduler record into one panel of
//! [`MetricRow`]s, and checks the client/server byte accounting agrees.

use crate::scheduler::JobLog;
use pioeval_pfs::ServerStats;
use pioeval_trace::JobProfile;
use serde::{Deserialize, Serialize};

/// One row of the metrics panel.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MetricRow {
    /// Metric name.
    pub name: String,
    /// Value.
    pub value: f64,
    /// Unit label.
    pub unit: String,
}

/// The fused end-to-end view of one job.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct EndToEndView {
    /// The metric panel, in display order.
    pub rows: Vec<MetricRow>,
    /// Bytes the clients wrote / the servers received.
    pub client_written: u64,
    /// Bytes the servers wrote to devices.
    pub server_written: u64,
    /// Bytes the clients read.
    pub client_read: u64,
    /// Bytes the servers read from devices.
    pub server_read: u64,
}

impl EndToEndView {
    /// Fuse one job's profile with the cluster's server stats and its
    /// scheduler record.
    pub fn fuse(profile: &JobProfile, servers: &[ServerStats], job: &JobLog) -> Self {
        let client_written = profile.bytes_written();
        let client_read = profile.bytes_read();
        let server_written: u64 = servers.iter().map(|s| s.bytes_written).sum();
        let server_read: u64 = servers.iter().map(|s| s.bytes_read).sum();
        let runtime = job.runtime().as_secs_f64().max(1e-9);

        let mut rows = vec![
            MetricRow {
                name: "job runtime".into(),
                value: runtime,
                unit: "s".into(),
            },
            MetricRow {
                name: "client write bandwidth".into(),
                value: client_written as f64 / (1 << 20) as f64 / runtime,
                unit: "MiB/s".into(),
            },
            MetricRow {
                name: "client read bandwidth".into(),
                value: client_read as f64 / (1 << 20) as f64 / runtime,
                unit: "MiB/s".into(),
            },
            MetricRow {
                name: "metadata ops".into(),
                value: profile.meta_ops() as f64,
                unit: "ops".into(),
            },
            MetricRow {
                name: "metadata ops per data op".into(),
                value: profile.meta_per_data_op(),
                unit: "ratio".into(),
            },
            MetricRow {
                name: "shared files".into(),
                value: profile.shared_files().len() as f64,
                unit: "files".into(),
            },
        ];
        if !servers.is_empty() {
            let mean_queue: f64 = servers
                .iter()
                .map(|s| s.mean_queue_wait().as_secs_f64())
                .sum::<f64>()
                / servers.len() as f64;
            let imbalance = servers.iter().map(|s| s.imbalance()).fold(0.0f64, f64::max);
            rows.push(MetricRow {
                name: "mean server queue wait".into(),
                value: mean_queue * 1e3,
                unit: "ms".into(),
            });
            rows.push(MetricRow {
                name: "worst OST imbalance".into(),
                value: imbalance,
                unit: "max/mean".into(),
            });
            rows.push(MetricRow {
                name: "server seeks".into(),
                value: servers.iter().map(|s| s.seeks).sum::<u64>() as f64,
                unit: "ops".into(),
            });
        }

        EndToEndView {
            rows,
            client_written,
            server_written,
            client_read,
            server_read,
        }
    }

    /// Client and server byte accounting agree within `tolerance`
    /// (fractional): end-to-end coverage, the property holistic
    /// monitoring exists to verify. Server-side writes may exceed
    /// client-side ones (read-modify-write sieving, drains).
    pub fn coverage_ok(&self, tolerance: f64) -> bool {
        let check = |client: u64, server: u64| {
            if client == 0 {
                return true;
            }
            server as f64 >= client as f64 * (1.0 - tolerance)
        };
        check(self.client_written, self.server_written) && check(self.client_read, self.server_read)
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for row in &self.rows {
            out.push_str(&format!(
                "{:<32} {:>14.3} {}\n",
                row.name, row.value, row.unit
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_types::{
        FileId, IoKind, JobId, Layer, LayerRecord, Rank, RecordOp, SimDuration, SimTime,
    };

    fn profile_with(bytes: u64) -> JobProfile {
        JobProfile::from_records(&[LayerRecord {
            layer: Layer::Posix,
            rank: Rank::new(0),
            file: FileId::new(1),
            op: RecordOp::Data(IoKind::Write),
            offset: 0,
            len: bytes,
            start: SimTime::ZERO,
            end: SimTime::from_millis(10),
        }])
    }

    fn server_with(written: u64) -> ServerStats {
        let mut s = ServerStats::new(2, SimDuration::from_secs(1));
        s.bytes_written = written;
        s
    }

    fn job() -> JobLog {
        JobLog {
            job: JobId::new(1),
            nodes: 2,
            ranks: 8,
            submit: SimTime::ZERO,
            start: SimTime::ZERO,
            end: SimTime::from_secs(10),
        }
    }

    #[test]
    fn fuses_all_three_sources() {
        let view = EndToEndView::fuse(&profile_with(10 << 20), &[server_with(10 << 20)], &job());
        assert!(view.rows.iter().any(|r| r.name.contains("queue wait")));
        let bw = view
            .rows
            .iter()
            .find(|r| r.name == "client write bandwidth")
            .unwrap();
        assert!((bw.value - 1.0).abs() < 1e-9); // 10 MiB over 10 s
        assert!(view.coverage_ok(0.01));
        assert!(!view.render().is_empty());
    }

    #[test]
    fn coverage_detects_lost_bytes() {
        let view = EndToEndView::fuse(&profile_with(10 << 20), &[server_with(1 << 20)], &job());
        assert!(!view.coverage_ok(0.1));
        // Server writing more than clients (drain duplication) is fine.
        let view = EndToEndView::fuse(&profile_with(1 << 20), &[server_with(10 << 20)], &job());
        assert!(view.coverage_ok(0.1));
    }

    #[test]
    fn no_servers_still_renders_client_rows() {
        let view = EndToEndView::fuse(&profile_with(1024), &[], &job());
        assert!(view.rows.iter().all(|r| !r.name.contains("OST")));
        assert!(view.rows.len() >= 6);
    }
}
