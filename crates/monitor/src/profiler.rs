//! Lost-parallelism attribution for the parallel DES scaling
//! observatory.
//!
//! The parallel executor records per-worker, per-window phase timelines
//! (`pioeval_types::profile`); this module turns them into an
//! actionable diagnosis, in the spirit the tool-survey literature
//! (Kunkel et al.; Recorder) argues for: *attribution*, not raw
//! counters. [`analyze_profile`] produces:
//!
//! * a blocked-time breakdown per worker (barrier / horizon-stall /
//!   mailbox shares of each worker's span),
//! * the critical-worker histogram: how often each worker was the one
//!   whose published clock bounded someone else's horizon,
//! * a classification of the dominant loss mechanism — partition skew
//!   vs. lookahead limit vs. coordination overhead,
//! * what-if speedup ceilings: ideal partitioning (skew removed,
//!   windowing kept) and infinite lookahead (synchronization removed,
//!   partition kept).
//!
//! The ceilings are deliberately simple closed forms over the recorded
//! totals (documented on [`ProfileAnalysis`]); they bound what the
//! corresponding engineering fix could buy, which is exactly the
//! evidence the optimistic-DES roadmap item needs.

use pioeval_types::{ExecProfile, ProfPhase, NO_LIMITER, PROF_PHASES};
use serde::{Deserialize, Serialize};

/// Blocked-share threshold below which a run is called [`LostParallelism::Balanced`].
pub const BALANCED_BLOCKED_SHARE: f64 = 0.10;

/// Compute-imbalance ratio (max/mean) above which partition skew is in
/// play.
pub const SKEW_RATIO_THRESHOLD: f64 = 1.25;

/// The dominant mechanism behind a run's lost parallelism.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LostParallelism {
    /// Compute is spread unevenly across workers: the fat partition
    /// sets the pace and the rest wait at barriers.
    PartitionSkew,
    /// Compute is balanced but the conservative horizon keeps excluding
    /// pending work: workers stall on each other's `next + lookahead`.
    LookaheadLimit,
    /// Neither skew nor stalls dominate — the per-window coordination
    /// itself (barrier crossings, mailbox hand-off) is the cost.
    CoordinationBound,
    /// Blocked time is a small fraction of the run; the engine is
    /// scaling about as well as the workload allows.
    Balanced,
}

impl LostParallelism {
    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            LostParallelism::PartitionSkew => "partition-skew",
            LostParallelism::LookaheadLimit => "lookahead-limit",
            LostParallelism::CoordinationBound => "coordination-bound",
            LostParallelism::Balanced => "balanced",
        }
    }
}

/// One named cause of lost parallelism, with its share of total worker
/// wall-clock and a human-readable detail line.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cause {
    /// Stable cause name (`partition-skew`, `lookahead-limit`,
    /// `barrier-coordination`, `mailbox-drain`).
    pub name: String,
    /// Share of summed worker spans this cause accounts for (0..1).
    pub share: f64,
    /// Human-readable elaboration.
    pub detail: String,
}

/// Per-worker blocked-time breakdown.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct WorkerBreakdown {
    /// Worker index.
    pub worker: u32,
    /// Entities owned.
    pub entities: u64,
    /// Events processed.
    pub events: u64,
    /// Recorded span (ns).
    pub span_ns: u64,
    /// Phase nanoseconds (compute, mailbox, barrier, stall).
    pub phase_ns: [u64; PROF_PHASES],
    /// Fraction of the span not spent computing.
    pub blocked_share: f64,
    /// Fraction of windows in which this worker processed nothing.
    pub null_share: f64,
}

/// How often one worker's clock bounded other workers' horizons.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CriticalWorker {
    /// Worker index.
    pub worker: u32,
    /// (worker, window) samples naming this worker as the limiter.
    pub windows_limiting: u64,
    /// Share of all peer-limited samples (0..1).
    pub share: f64,
}

/// The full attribution report over one [`ExecProfile`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ProfileAnalysis {
    /// Worker count.
    pub threads: u32,
    /// Wall clock of the parallel section (longest worker span, ns).
    pub wall_ns: u64,
    /// Committed windows.
    pub windows: u64,
    /// Total compute across workers (ns).
    pub total_compute_ns: u64,
    /// `total_compute / (threads * wall)` — 1.0 means perfect scaling.
    pub parallel_efficiency: f64,
    /// Max/mean ratio of per-worker compute totals (1.0 = balanced).
    pub compute_imbalance: f64,
    /// Horizon-stall share of summed worker spans.
    pub stall_share: f64,
    /// Barrier share of summed worker spans.
    pub barrier_share: f64,
    /// Mailbox-drain share of summed worker spans.
    pub mailbox_share: f64,
    /// Per-worker breakdowns, in worker order.
    pub workers: Vec<WorkerBreakdown>,
    /// Critical-worker histogram, sorted by `windows_limiting`
    /// descending (ties by worker index).
    pub critical: Vec<CriticalWorker>,
    /// The dominant loss mechanism.
    pub classification: LostParallelism,
    /// Named causes, largest share first. Non-empty whenever any worker
    /// recorded blocked time.
    pub causes: Vec<Cause>,
    /// What-if speedup factor from ideal partitioning: skew removed
    /// (every window's compute spread evenly), windowing kept. Estimate:
    /// `wall / (total_compute/threads + min_worker(barrier+mailbox))`.
    pub ceiling_ideal_partition: f64,
    /// What-if speedup factor from infinite lookahead: synchronization
    /// removed, partition kept. Estimate: `wall / max_worker(compute)`.
    pub ceiling_infinite_lookahead: f64,
}

/// Analyze one execution profile into a lost-parallelism attribution.
pub fn analyze_profile(p: &ExecProfile) -> ProfileAnalysis {
    let threads = p.threads.max(1);
    let compute = ProfPhase::Compute.index();
    let mailbox = ProfPhase::MailboxDrain.index();
    let barrier = ProfPhase::Barrier.index();
    let stall = ProfPhase::HorizonStall.index();

    let total_span: u64 = p.workers.iter().map(|w| w.span_ns).sum();
    let total_compute: u64 = p.workers.iter().map(|w| w.phase_ns[compute]).sum();
    let total_stall: u64 = p.workers.iter().map(|w| w.phase_ns[stall]).sum();
    let total_barrier: u64 = p.workers.iter().map(|w| w.phase_ns[barrier]).sum();
    let total_mailbox: u64 = p.workers.iter().map(|w| w.phase_ns[mailbox]).sum();
    let span_f = (total_span as f64).max(1.0);

    let workers: Vec<WorkerBreakdown> = p
        .workers
        .iter()
        .map(|w| WorkerBreakdown {
            worker: w.worker,
            entities: w.entities,
            events: w.events,
            span_ns: w.span_ns,
            phase_ns: w.phase_ns,
            blocked_share: w.blocked_ns() as f64 / (w.span_ns as f64).max(1.0),
            null_share: w.null_windows as f64 / (w.windows as f64).max(1.0),
        })
        .collect();

    // Critical-worker histogram from the per-window limiter fields.
    let mut limit_counts = vec![0u64; threads as usize];
    let mut limited_total = 0u64;
    for w in &p.workers {
        for s in &w.samples {
            if s.limiter != NO_LIMITER && (s.limiter as usize) < limit_counts.len() {
                limit_counts[s.limiter as usize] += 1;
                limited_total += 1;
            }
        }
    }
    let mut critical: Vec<CriticalWorker> = limit_counts
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(i, &c)| CriticalWorker {
            worker: i as u32,
            windows_limiting: c,
            share: c as f64 / (limited_total as f64).max(1.0),
        })
        .collect();
    critical.sort_by(|a, b| {
        b.windows_limiting
            .cmp(&a.windows_limiting)
            .then(a.worker.cmp(&b.worker))
    });

    let max_compute = p
        .workers
        .iter()
        .map(|w| w.phase_ns[compute])
        .max()
        .unwrap_or(0);
    let mean_compute = total_compute as f64 / threads as f64;
    let compute_imbalance = if mean_compute > 0.0 {
        max_compute as f64 / mean_compute
    } else {
        1.0
    };
    let parallel_efficiency = total_compute as f64 / (threads as f64 * (p.wall_ns as f64).max(1.0));
    let stall_share = total_stall as f64 / span_f;
    let barrier_share = total_barrier as f64 / span_f;
    let mailbox_share = total_mailbox as f64 / span_f;
    let blocked_share = 1.0 - total_compute as f64 / span_f;

    // What-if ceilings (documented on the fields above). Floors keep
    // the divisions meaningful on degenerate profiles.
    let coord_floor = p
        .workers
        .iter()
        .map(|w| w.phase_ns[barrier] + w.phase_ns[mailbox])
        .min()
        .unwrap_or(0);
    let ideal_partition_wall =
        (total_compute as f64 / threads as f64 + coord_floor as f64).max(1.0);
    let infinite_lookahead_wall = (max_compute as f64).max(1.0);
    let wall_f = (p.wall_ns as f64).max(1.0);
    let ceiling_ideal_partition = wall_f / ideal_partition_wall;
    let ceiling_infinite_lookahead = wall_f / infinite_lookahead_wall;

    // Named causes, largest first; every nonzero mechanism is listed so
    // blocked time always has at least one named cause. Skew and
    // barrier time partition the same waiting: peers waiting for the
    // fat worker *show up* as barrier time, so the skew cause takes
    // `sum_peers(max - compute_peer)` (the classic imbalance loss,
    // capped at the barrier time actually observed) and the
    // barrier-coordination cause keeps only the residual.
    let mut causes: Vec<Cause> = Vec::new();
    let skew_ns = ((threads as f64) * max_compute as f64 - total_compute as f64)
        .min(total_barrier as f64)
        .max(0.0);
    if compute_imbalance > 1.0 + 1e-9 && total_compute > 0 && skew_ns > 0.0 {
        let fat = p
            .workers
            .iter()
            .max_by_key(|w| w.phase_ns[compute])
            .expect("nonzero compute implies a worker");
        causes.push(Cause {
            name: "partition-skew".into(),
            share: (skew_ns / span_f).clamp(0.0, 1.0),
            detail: format!(
                "worker {} holds {:.1}% of compute ({} of {} entities); imbalance ratio {:.2}",
                fat.worker,
                100.0 * fat.phase_ns[compute] as f64 / (total_compute as f64).max(1.0),
                fat.entities,
                p.workers.iter().map(|w| w.entities).sum::<u64>(),
                compute_imbalance
            ),
        });
    }
    if total_stall > 0 {
        let top = critical.first();
        causes.push(Cause {
            name: "lookahead-limit".into(),
            share: stall_share,
            detail: match top {
                Some(c) => format!(
                    "{:.1}% of worker time stalled on the conservative horizon; \
                     worker {} limited {:.1}% of peer-bounded windows (lookahead {} ns)",
                    100.0 * stall_share,
                    c.worker,
                    100.0 * c.share,
                    p.lookahead_ns
                ),
                None => format!(
                    "{:.1}% of worker time stalled on the conservative horizon \
                     (lookahead {} ns)",
                    100.0 * stall_share,
                    p.lookahead_ns
                ),
            },
        });
    }
    let residual_barrier = (total_barrier as f64 - skew_ns).max(0.0);
    if residual_barrier > 0.0 {
        causes.push(Cause {
            name: "barrier-coordination".into(),
            share: residual_barrier / span_f,
            detail: format!(
                "{:.1}% of worker time at window barriers across {} windows \
                 (net of partition-skew waiting)",
                100.0 * residual_barrier / span_f,
                p.windows
            ),
        });
    }
    if total_mailbox > 0 {
        causes.push(Cause {
            name: "mailbox-drain".into(),
            share: mailbox_share,
            detail: format!(
                "{:.1}% of worker time draining cross-partition mailboxes",
                100.0 * mailbox_share
            ),
        });
    }
    causes.sort_by(|a, b| {
        b.share
            .partial_cmp(&a.share)
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let classification = if blocked_share < BALANCED_BLOCKED_SHARE {
        LostParallelism::Balanced
    } else if compute_imbalance > SKEW_RATIO_THRESHOLD
        && ceiling_ideal_partition >= ceiling_infinite_lookahead
    {
        LostParallelism::PartitionSkew
    } else if total_stall >= total_barrier.max(total_mailbox) {
        LostParallelism::LookaheadLimit
    } else {
        LostParallelism::CoordinationBound
    };

    ProfileAnalysis {
        threads,
        wall_ns: p.wall_ns,
        windows: p.windows,
        total_compute_ns: total_compute,
        parallel_efficiency,
        compute_imbalance,
        stall_share,
        barrier_share,
        mailbox_share,
        workers,
        critical,
        classification,
        causes,
        ceiling_ideal_partition,
        ceiling_infinite_lookahead,
    }
}

/// Export a profile as a Chrome trace-event JSON document for Perfetto:
/// one named track per worker (with `process_name`/`thread_name`
/// metadata so the UI shows labels instead of bare tids), per-window
/// phase slices on each worker's track (stall slices carry the limiting
/// worker in `args`), and a window-boundary track from worker 0's
/// samples.
pub fn profile_chrome_trace(p: &ExecProfile) -> String {
    let mut events: Vec<String> = Vec::new();
    let us = |ns: u64| ns as f64 / 1000.0;
    events.push(
        "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \
         \"args\": {\"name\": \"des-workers\"}}"
            .to_string(),
    );
    for w in &p.workers {
        events.push(format!(
            "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {}, \"name\": \"thread_name\", \
             \"args\": {{\"name\": \"worker {} ({} LPs, {} events)\"}}}}",
            w.worker, w.worker, w.entities, w.events
        ));
        for s in &w.samples {
            let mut at = s.start_ns;
            for phase in pioeval_types::ProfPhase::ALL {
                let dur = s.phase_ns[phase.index()];
                if dur == 0 {
                    at += dur;
                    continue;
                }
                let args = if phase == ProfPhase::HorizonStall && s.limiter != NO_LIMITER {
                    format!(", \"args\": {{\"limiter\": {}}}", s.limiter)
                } else {
                    String::new()
                };
                events.push(format!(
                    "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"name\": \"{}\", \
                     \"cat\": \"des\", \"ts\": {:.3}, \"dur\": {:.3}{}}}",
                    w.worker,
                    phase.name(),
                    us(at),
                    us(dur),
                    args
                ));
                at += dur;
            }
        }
    }
    // Window-boundary track from worker 0 (windows are shared).
    if let Some(w0) = p.workers.first() {
        let tid = p.threads;
        events.push(format!(
            "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \"name\": \"thread_name\", \
             \"args\": {{\"name\": \"windows\"}}}}"
        ));
        for (i, s) in w0.samples.iter().enumerate() {
            let dur: u64 = s.phase_ns.iter().sum();
            events.push(format!(
                "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"name\": \"w{}\", \
                 \"cat\": \"des\", \"ts\": {:.3}, \"dur\": {:.3}, \
                 \"args\": {{\"events\": {}}}}}",
                tid,
                i,
                us(s.start_ns),
                us(dur),
                s.events
            ));
        }
    }
    format!("{{\"traceEvents\": [{}]}}", events.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_types::{PhaseRecorder, WindowSample, WorkerProfile};

    fn worker(id: u32, phase_ns: [u64; PROF_PHASES], samples: Vec<WindowSample>) -> WorkerProfile {
        WorkerProfile {
            worker: id,
            entities: 4,
            events: 100,
            windows: samples.len() as u64,
            null_windows: samples.iter().filter(|s| s.events == 0).count() as u64,
            span_ns: phase_ns.iter().sum(),
            phase_ns,
            samples,
            dropped_samples: 0,
        }
    }

    fn sample(phase_ns: [u64; PROF_PHASES], events: u64, limiter: u32) -> WindowSample {
        WindowSample {
            start_ns: 0,
            phase_ns,
            events,
            limiter,
        }
    }

    fn profile(workers: Vec<WorkerProfile>) -> ExecProfile {
        ExecProfile {
            threads: workers.len() as u32,
            backend: "threads".into(),
            window_policy: "adaptive".into(),
            partitioner: "block".into(),
            lookahead_ns: 10_000,
            wall_ns: workers.iter().map(|w| w.span_ns).max().unwrap_or(0),
            windows: workers.first().map_or(0, |w| w.windows),
            workers,
        }
    }

    #[test]
    fn skewed_compute_classifies_as_partition_skew() {
        // Worker 0 computes 10x worker 1; worker 1 waits at barriers.
        let p = profile(vec![
            worker(
                0,
                [1000, 10, 40, 0],
                vec![sample([1000, 10, 40, 0], 90, NO_LIMITER)],
            ),
            worker(1, [100, 10, 940, 0], vec![sample([100, 10, 940, 0], 10, 0)]),
        ]);
        let a = analyze_profile(&p);
        assert_eq!(a.classification, LostParallelism::PartitionSkew);
        assert!(a.compute_imbalance > 1.5);
        assert!(!a.causes.is_empty());
        assert_eq!(a.causes[0].name, "partition-skew");
        assert!(a.ceiling_ideal_partition > 1.0);
        // Worker 0 is the limiter in worker 1's only sample.
        assert_eq!(a.critical[0].worker, 0);
    }

    #[test]
    fn stall_dominated_classifies_as_lookahead_limit() {
        // Balanced compute, but both workers spend most time stalled.
        let p = profile(vec![
            worker(
                0,
                [100, 10, 20, 870],
                vec![sample([100, 10, 20, 870], 0, 1)],
            ),
            worker(
                1,
                [110, 10, 20, 860],
                vec![sample([110, 10, 20, 860], 0, 0)],
            ),
        ]);
        let a = analyze_profile(&p);
        assert_eq!(a.classification, LostParallelism::LookaheadLimit);
        assert!(a.stall_share > 0.5);
        assert_eq!(a.causes[0].name, "lookahead-limit");
        assert_eq!(a.critical.len(), 2);
    }

    #[test]
    fn efficient_run_classifies_as_balanced() {
        let p = profile(vec![
            worker(
                0,
                [950, 10, 40, 0],
                vec![sample([950, 10, 40, 0], 50, NO_LIMITER)],
            ),
            worker(
                1,
                [940, 10, 50, 0],
                vec![sample([940, 10, 50, 0], 50, NO_LIMITER)],
            ),
        ]);
        let a = analyze_profile(&p);
        assert_eq!(a.classification, LostParallelism::Balanced);
        assert!(a.parallel_efficiency > 0.9);
        // Even balanced runs name their (small) residual costs.
        assert!(!a.causes.is_empty());
    }

    #[test]
    fn analysis_of_a_real_recorder_profile_is_consistent() {
        let mut rec = PhaseRecorder::start(0);
        for i in 0..10u64 {
            rec.mark(ProfPhase::MailboxDrain);
            rec.mark(ProfPhase::Compute);
            rec.mark(ProfPhase::Barrier);
            rec.end_window(i, NO_LIMITER);
        }
        let p = profile(vec![rec.finish(4, 45)]);
        let a = analyze_profile(&p);
        assert_eq!(a.windows, 10);
        let share_sum = a.stall_share
            + a.barrier_share
            + a.mailbox_share
            + a.total_compute_ns as f64 / (p.workers[0].span_ns as f64).max(1.0);
        assert!((share_sum - 1.0).abs() < 1e-9, "shares tile: {share_sum}");
    }

    #[test]
    fn chrome_trace_names_worker_tracks() {
        let p = profile(vec![
            worker(0, [100, 10, 20, 5], vec![sample([100, 10, 20, 5], 7, 1)]),
            worker(1, [90, 10, 30, 5], vec![sample([90, 10, 30, 5], 3, 0)]),
        ]);
        let trace = profile_chrome_trace(&p);
        assert!(trace.contains("\"process_name\""));
        assert!(trace.contains("\"name\": \"worker 0 (4 LPs, 100 events)\""));
        assert!(trace.contains("\"name\": \"worker 1 (4 LPs, 100 events)\""));
        assert!(trace.contains("\"name\": \"stall\""));
        assert!(trace.contains("\"limiter\": 0"));
        assert!(trace.contains("\"name\": \"windows\""));
        assert!(trace.contains("\"name\": \"w0\""));
    }
}
