//! Cross-application interference quantification.
//!
//! Yildiz et al. (IPDPS'16) root-caused cross-application I/O
//! interference to contention at shared resources along the I/O path.
//! [`interference_report`] reduces isolated-vs-co-located runs of the
//! same applications to the standard slowdown metrics.

use pioeval_types::SimDuration;
use serde::{Deserialize, Serialize};

/// Interference metrics for a set of co-running applications.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InterferenceReport {
    /// Per-application slowdown: co-run makespan / isolated makespan.
    pub slowdowns: Vec<f64>,
    /// Mean slowdown.
    pub mean_slowdown: f64,
    /// Worst slowdown.
    pub max_slowdown: f64,
    /// System efficiency: sum(isolated) / (apps × co-run max) — 1.0 means
    /// perfect sharing, lower means destructive interference.
    pub efficiency: f64,
}

/// Build a report from isolated and co-located makespans (same order).
///
/// # Panics
///
/// Panics if the slices differ in length, are empty, or contain zero
/// isolated makespans.
pub fn interference_report(
    isolated: &[SimDuration],
    colocated: &[SimDuration],
) -> InterferenceReport {
    assert_eq!(isolated.len(), colocated.len(), "run-count mismatch");
    assert!(!isolated.is_empty(), "need at least one application");
    let slowdowns: Vec<f64> = isolated
        .iter()
        .zip(colocated)
        .map(|(i, c)| {
            let i = i.as_secs_f64();
            assert!(i > 0.0, "isolated makespan must be positive");
            c.as_secs_f64() / i
        })
        .collect();
    let mean_slowdown = slowdowns.iter().sum::<f64>() / slowdowns.len() as f64;
    let max_slowdown = slowdowns.iter().copied().fold(0.0f64, f64::max);
    let total_isolated: f64 = isolated.iter().map(|d| d.as_secs_f64()).sum();
    let co_max = colocated
        .iter()
        .map(|d| d.as_secs_f64())
        .fold(0.0f64, f64::max);
    let efficiency = if co_max > 0.0 {
        total_isolated / (co_max * isolated.len() as f64)
    } else {
        0.0
    };
    InterferenceReport {
        slowdowns,
        mean_slowdown,
        max_slowdown,
        efficiency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_interference_means_unit_slowdown() {
        let iso = vec![SimDuration::from_secs(10), SimDuration::from_secs(10)];
        let r = interference_report(&iso, &iso);
        assert_eq!(r.slowdowns, vec![1.0, 1.0]);
        assert_eq!(r.mean_slowdown, 1.0);
        // Two 10s apps sharing perfectly: efficiency 20/(10*2) = 1.
        assert!((r.efficiency - 1.0).abs() < 1e-12);
    }

    #[test]
    fn contention_shows_up_as_slowdown() {
        let iso = vec![SimDuration::from_secs(10), SimDuration::from_secs(10)];
        let co = vec![SimDuration::from_secs(18), SimDuration::from_secs(19)];
        let r = interference_report(&iso, &co);
        assert!((r.mean_slowdown - 1.85).abs() < 1e-12);
        assert!((r.max_slowdown - 1.9).abs() < 1e-12);
        assert!(r.efficiency < 0.6);
    }

    #[test]
    fn asymmetric_victims_are_visible() {
        let iso = vec![SimDuration::from_secs(10), SimDuration::from_secs(1)];
        let co = vec![SimDuration::from_secs(11), SimDuration::from_secs(5)];
        let r = interference_report(&iso, &co);
        // The small app suffered 5x; the big one barely noticed.
        assert!(r.slowdowns[1] > 4.0);
        assert!(r.slowdowns[0] < 1.2);
    }

    #[test]
    #[should_panic(expected = "run-count mismatch")]
    fn mismatched_inputs_panic() {
        interference_report(&[SimDuration::from_secs(1)], &[]);
    }
}
