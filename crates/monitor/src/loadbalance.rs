//! OST load inspection and rebalancing (iez-style).
//!
//! iez (Wadhwa et al.) monitors per-OST load and steers new file
//! placements toward under-utilized targets. [`LoadReport`] summarizes
//! the observed load; [`rebalance`] computes a greedy least-loaded
//! reassignment of file loads to OSTs and reports the imbalance before
//! and after — the quantity iez's evaluation plots.

use serde::{Deserialize, Serialize};

/// Per-OST load summary and a rebalancing recommendation.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LoadReport {
    /// Observed per-OST bytes.
    pub observed: Vec<u64>,
    /// Imbalance (max/mean) of the observed placement.
    pub imbalance_before: f64,
    /// Per-OST bytes after greedy rebalancing.
    pub rebalanced: Vec<u64>,
    /// Imbalance after rebalancing.
    pub imbalance_after: f64,
    /// For each file load (sorted descending), the recommended OST.
    pub placement: Vec<(u64, usize)>,
}

fn imbalance(loads: &[u64]) -> f64 {
    let total: u64 = loads.iter().sum();
    if total == 0 || loads.is_empty() {
        return 0.0;
    }
    let mean = total as f64 / loads.len() as f64;
    *loads.iter().max().unwrap() as f64 / mean
}

/// Greedy least-loaded rebalancing of `file_loads` (bytes per file)
/// across `num_osts` targets, compared against the `observed` per-OST
/// placement those files currently have.
pub fn rebalance(observed: &[u64], file_loads: &[u64], num_osts: usize) -> LoadReport {
    assert!(num_osts > 0, "need at least one OST");
    let mut loads = vec![0u64; num_osts];
    let mut files: Vec<u64> = file_loads.to_vec();
    files.sort_unstable_by(|a, b| b.cmp(a)); // largest first (LPT rule)
    let mut placement = Vec::with_capacity(files.len());
    for f in files {
        let target = loads
            .iter()
            .enumerate()
            .min_by_key(|&(_, &l)| l)
            .map(|(i, _)| i)
            .unwrap();
        loads[target] += f;
        placement.push((f, target));
    }
    LoadReport {
        imbalance_before: imbalance(observed),
        imbalance_after: imbalance(&loads),
        observed: observed.to_vec(),
        rebalanced: loads,
        placement,
    }
}

impl LoadReport {
    /// Relative improvement in imbalance (0 = none, 0.5 = halved).
    pub fn improvement(&self) -> f64 {
        if self.imbalance_before <= 0.0 {
            return 0.0;
        }
        1.0 - self.imbalance_after / self.imbalance_before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rebalancing_flattens_hot_spots() {
        // Everything piled on OST 0.
        let observed = vec![1000, 0, 0, 0];
        let files = vec![400, 300, 200, 100];
        let r = rebalance(&observed, &files, 4);
        assert_eq!(r.imbalance_before, 4.0);
        assert!(r.imbalance_after < 1.7, "after = {}", r.imbalance_after);
        assert!(r.improvement() > 0.5);
        // All bytes conserved.
        assert_eq!(r.rebalanced.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn lpt_places_largest_first() {
        let r = rebalance(&[0, 0], &[10, 100, 20], 2);
        assert_eq!(r.placement[0].0, 100);
        // 100 alone vs 20+10: near-even split.
        let mut loads = r.rebalanced.clone();
        loads.sort_unstable();
        assert_eq!(loads, vec![30, 100]);
    }

    #[test]
    fn balanced_observed_load_needs_no_improvement() {
        let observed = vec![100, 100, 100];
        let r = rebalance(&observed, &[100, 100, 100], 3);
        assert!((r.imbalance_before - 1.0).abs() < 1e-12);
        assert!((r.imbalance_after - 1.0).abs() < 1e-12);
        assert_eq!(r.improvement(), 0.0);
    }

    #[test]
    fn empty_files_are_fine() {
        let r = rebalance(&[5, 5], &[], 2);
        assert_eq!(r.rebalanced, vec![0, 0]);
        assert_eq!(r.imbalance_after, 0.0);
    }
}
