//! Degraded-device (straggler) detection from server-side statistics.
//!
//! "A year in the life of a parallel file system" (Lockwood et al.)
//! shows transient and persistent stragglers — individual OSTs serving
//! far below their peers — are a dominant cause of I/O variability.
//! [`find_stragglers`] applies the standard detection: compute each
//! lane's *effective bandwidth* (bytes served / device busy time) and
//! flag lanes below a fraction of the population median.

use pioeval_model::stats;
use pioeval_pfs::ServerStats;
use pioeval_types::OstId;
use serde::Serialize;

/// One lane's health summary.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct LaneHealth {
    /// Global OST index.
    pub ost: OstId,
    /// Bytes served.
    pub bytes: u64,
    /// Device busy time, seconds.
    pub busy_s: f64,
    /// Effective bandwidth, MiB/s (0 when idle).
    pub effective_mib_s: f64,
    /// Flagged as a straggler.
    pub straggler: bool,
}

/// A straggler report over all OSTs of a cluster.
#[derive(Clone, Debug, Serialize)]
pub struct StragglerReport {
    /// Per-lane health, global OST order.
    pub lanes: Vec<LaneHealth>,
    /// Median effective bandwidth of active lanes, MiB/s.
    pub median_mib_s: f64,
    /// Detection threshold used (fraction of median).
    pub threshold: f64,
}

impl StragglerReport {
    /// The flagged OSTs.
    pub fn stragglers(&self) -> Vec<OstId> {
        self.lanes
            .iter()
            .filter(|l| l.straggler)
            .map(|l| l.ost)
            .collect()
    }
}

/// Detect straggler OSTs: effective bandwidth below
/// `threshold × median` of active lanes. `servers` are the per-OSS
/// statistics in OSS order (as returned by `Cluster::oss_stats`),
/// each contributing `lane_busy.len()` consecutive global OSTs.
pub fn find_stragglers(servers: &[ServerStats], threshold: f64) -> StragglerReport {
    let mut lanes = Vec::new();
    let mut global = 0u32;
    for server in servers {
        for (lane, busy) in server.lane_busy.iter().enumerate() {
            let bytes = server
                .timelines
                .get(lane)
                .map(|t| t.total_bytes())
                .unwrap_or(0);
            let busy_s = busy.as_secs_f64();
            let effective = if busy_s > 0.0 {
                bytes as f64 / (1024.0 * 1024.0) / busy_s
            } else {
                0.0
            };
            lanes.push(LaneHealth {
                ost: OstId::new(global),
                bytes,
                busy_s,
                effective_mib_s: effective,
                straggler: false,
            });
            global += 1;
        }
    }
    let active: Vec<f64> = lanes
        .iter()
        .filter(|l| l.bytes > 0)
        .map(|l| l.effective_mib_s)
        .collect();
    let median = stats::percentile(&active, 50.0);
    for lane in &mut lanes {
        lane.straggler = lane.bytes > 0 && lane.effective_mib_s < median * threshold;
    }
    StragglerReport {
        lanes,
        median_mib_s: median,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_types::{IoKind, SimDuration, SimTime};

    fn server_with_lanes(lane_specs: &[(u64, u64)]) -> ServerStats {
        // (bytes, busy_ms) per lane.
        let mut s = ServerStats::new(lane_specs.len(), SimDuration::from_secs(1));
        for (i, &(bytes, busy_ms)) in lane_specs.iter().enumerate() {
            s.timelines[i].record(SimTime::ZERO, IoKind::Write, bytes);
            s.lane_busy[i] = SimDuration::from_millis(busy_ms);
        }
        s
    }

    #[test]
    fn slow_lane_is_flagged() {
        // Three healthy lanes at ~100 MiB/s, one at ~10 MiB/s.
        let healthy = 100 * 1024 * 1024;
        let s = server_with_lanes(&[
            (healthy, 1000),
            (healthy, 1000),
            (healthy, 1000),
            (healthy / 10, 1000),
        ]);
        let report = find_stragglers(&[s], 0.5);
        assert_eq!(report.stragglers(), vec![OstId::new(3)]);
        assert!((report.median_mib_s - 100.0).abs() < 1.0);
    }

    #[test]
    fn idle_lanes_are_not_stragglers() {
        let s = server_with_lanes(&[(100 << 20, 1000), (0, 0)]);
        let report = find_stragglers(&[s], 0.5);
        assert!(report.stragglers().is_empty());
        assert!(!report.lanes[1].straggler);
    }

    #[test]
    fn global_ost_indexing_spans_servers() {
        let a = server_with_lanes(&[(100 << 20, 1000), (100 << 20, 1000)]);
        let b = server_with_lanes(&[(100 << 20, 1000), (5 << 20, 1000)]);
        let report = find_stragglers(&[a, b], 0.5);
        assert_eq!(report.stragglers(), vec![OstId::new(3)]);
        assert_eq!(report.lanes.len(), 4);
    }

    #[test]
    fn uniform_population_has_no_stragglers() {
        let s = server_with_lanes(&[(50 << 20, 500); 8]);
        let report = find_stragglers(&[s], 0.5);
        assert!(report.stragglers().is_empty());
    }
}
