#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # pioeval-monitor
//!
//! End-to-end, holistic I/O monitoring (paper Sec. IV-A2's
//! "all-encompassing and cohesive monitoring systems which can capture
//! end-to-end I/O behavior of jobs at each step along their I/O path"):
//!
//! * [`endtoend`] — UMAMI/TOKIO-style fusion of job-level profiles with
//!   server-side statistics and scheduler logs into one metrics panel.
//! * [`analysis`] — Patel-et-al-style temporal / spatial / correlative
//!   analysis of server timelines (burstiness, read:write mix over time,
//!   job–server correlation).
//! * [`interference`] — Yildiz-et-al-style cross-application
//!   interference quantification (co-run slowdown vs. isolated runs).
//! * [`loadbalance`] — iez-style OST load inspection and rebalancing
//!   recommendations.
//! * [`scheduler`] — workload-manager (Slurm-like) job logs, the third
//!   data source the paper lists alongside profiles and server stats.
//! * [`bottleneck`] — categorical queue/service/device/fabric diagnosis
//!   from the request tracer's per-layer latency attribution.
//! * [`durability`] — categorical durability verdicts from the
//!   resilience tier's byte accounting (ACKed vs. durable vs. lost).
//! * [`profiler`] — lost-parallelism attribution for the parallel DES
//!   engine's per-worker phase timelines (partition skew vs. lookahead
//!   limit, critical workers, what-if speedup ceilings).

pub mod analysis;
pub mod bottleneck;
pub mod classify;
pub mod durability;
pub mod endtoend;
pub mod interference;
pub mod loadbalance;
pub mod metadata;
pub mod profiler;
pub mod scheduler;
pub mod straggler;

pub use analysis::{SystemAnalysis, WindowMix};
pub use bottleneck::{classify_bottleneck, BottleneckClass, DOMINANCE_THRESHOLD};
pub use classify::{classify_jobs, signature, JobClasses, Signature};
pub use durability::{assess_durability, loss_fraction, DurabilityVerdict};
pub use endtoend::{EndToEndView, MetricRow};
pub use interference::{interference_report, InterferenceReport};
pub use loadbalance::{rebalance, LoadReport};
pub use metadata::MetadataActivity;
pub use profiler::{
    analyze_profile, profile_chrome_trace, Cause, CriticalWorker, LostParallelism, ProfileAnalysis,
    WorkerBreakdown,
};
pub use scheduler::{JobLog, SchedulerLog};
pub use straggler::{find_stragglers, LaneHealth, StragglerReport};
