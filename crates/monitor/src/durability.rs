//! Durability verdicts over resilience measurements.
//!
//! The resilience tier reports raw byte accounting — bytes ACKed to
//! clients, bytes made durable by replication/drain, bytes lost to
//! failures that struck before replication completed. This module turns
//! that accounting into a categorical verdict an operator can act on,
//! the same way [`crate::bottleneck`] turns latency shares into a
//! diagnosis. Inputs are plain numbers so the classifier has no
//! dependency on the resilience crate itself.

use serde::Serialize;

/// Categorical outcome of a run's durability accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum DurabilityVerdict {
    /// No failures were injected and every ACKed byte became durable.
    Durable,
    /// Failures struck, but replication/takeover covered every ACKed
    /// byte: the ack policy was strong enough for this failure pattern.
    Recovered,
    /// Failures destroyed bytes that had already been ACKed to clients:
    /// the ack policy left a data-loss window.
    DataLoss,
    /// The byte accounting does not balance — a simulator or collection
    /// bug, not a policy property.
    Unclean,
}

impl DurabilityVerdict {
    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            DurabilityVerdict::Durable => "durable",
            DurabilityVerdict::Recovered => "recovered",
            DurabilityVerdict::DataLoss => "data-loss",
            DurabilityVerdict::Unclean => "unclean",
        }
    }

    /// One-line operator guidance for the verdict.
    pub fn advice(self) -> &'static str {
        match self {
            DurabilityVerdict::Durable => "healthy run: every ACKed byte became durable",
            DurabilityVerdict::Recovered => {
                "failures occurred but replication covered the ACK window; policy sufficient"
            }
            DurabilityVerdict::DataLoss => {
                "ACKed bytes were lost; ack after replication (local_plus_one/geographic) \
                 or shorten the replication lag"
            }
            DurabilityVerdict::Unclean => "byte accounting does not balance; inspect the run",
        }
    }
}

/// Classify a run from its resilience byte accounting.
///
/// `acked` is bytes acknowledged to clients, `replicated` bytes made
/// durable, `lost` bytes destroyed after ACK, `failures` the number of
/// injected failure events. At quiesce the tier maintains
/// `acked == replicated + lost`; a run violating that identity is
/// [`DurabilityVerdict::Unclean`] regardless of the other fields.
pub fn assess_durability(
    acked: u64,
    replicated: u64,
    lost: u64,
    failures: u64,
) -> DurabilityVerdict {
    if acked != replicated + lost {
        DurabilityVerdict::Unclean
    } else if lost > 0 {
        DurabilityVerdict::DataLoss
    } else if failures > 0 {
        DurabilityVerdict::Recovered
    } else {
        DurabilityVerdict::Durable
    }
}

/// Fraction of ACKed bytes that were lost (`0.0` when nothing was
/// ACKed): the headline number of the paper's resilience axis.
pub fn loss_fraction(acked: u64, lost: u64) -> f64 {
    if acked == 0 {
        0.0
    } else {
        lost as f64 / acked as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts_cover_the_quadrants() {
        assert_eq!(
            assess_durability(100, 100, 0, 0),
            DurabilityVerdict::Durable
        );
        assert_eq!(
            assess_durability(100, 100, 0, 2),
            DurabilityVerdict::Recovered
        );
        assert_eq!(
            assess_durability(100, 80, 20, 1),
            DurabilityVerdict::DataLoss
        );
        assert_eq!(assess_durability(100, 90, 0, 1), DurabilityVerdict::Unclean);
    }

    #[test]
    fn loss_fraction_is_guarded() {
        assert_eq!(loss_fraction(0, 0), 0.0);
        assert!((loss_fraction(200, 50) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn names_and_advice_exist() {
        for v in [
            DurabilityVerdict::Durable,
            DurabilityVerdict::Recovered,
            DurabilityVerdict::DataLoss,
            DurabilityVerdict::Unclean,
        ] {
            assert!(!v.name().is_empty());
            assert!(!v.advice().is_empty());
        }
    }
}
