//! Workload-manager (Slurm/TORQUE-like) job logs.

use pioeval_types::{JobId, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// One job's accounting record.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobLog {
    /// Job id.
    pub job: JobId,
    /// Nodes (clients) allocated.
    pub nodes: u32,
    /// Ranks launched.
    pub ranks: u32,
    /// Submit time.
    pub submit: SimTime,
    /// Start time.
    pub start: SimTime,
    /// End time.
    pub end: SimTime,
}

impl JobLog {
    /// Queue wait.
    pub fn wait(&self) -> SimDuration {
        self.start.since(self.submit)
    }

    /// Runtime.
    pub fn runtime(&self) -> SimDuration {
        self.end.since(self.start)
    }

    /// Node-seconds consumed.
    pub fn node_seconds(&self) -> f64 {
        self.nodes as f64 * self.runtime().as_secs_f64()
    }
}

/// A center's job log.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SchedulerLog {
    /// Records, in submit order.
    pub jobs: Vec<JobLog>,
}

impl SchedulerLog {
    /// Add a record.
    pub fn push(&mut self, job: JobLog) {
        self.jobs.push(job);
    }

    /// Jobs running at time `t`.
    pub fn running_at(&self, t: SimTime) -> Vec<JobId> {
        self.jobs
            .iter()
            .filter(|j| j.start <= t && t < j.end)
            .map(|j| j.job)
            .collect()
    }

    /// Machine utilization over `[0, horizon)` for `total_nodes`.
    pub fn utilization(&self, total_nodes: u32, horizon: SimTime) -> f64 {
        if total_nodes == 0 || horizon == SimTime::ZERO {
            return 0.0;
        }
        let used: f64 = self
            .jobs
            .iter()
            .map(|j| {
                let start = j.start.min(horizon);
                let end = j.end.min(horizon);
                j.nodes as f64 * end.since(start).as_secs_f64()
            })
            .sum();
        used / (total_nodes as f64 * horizon.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(id: u32, nodes: u32, start_s: u64, end_s: u64) -> JobLog {
        JobLog {
            job: JobId::new(id),
            nodes,
            ranks: nodes * 4,
            submit: SimTime::from_secs(start_s.saturating_sub(1)),
            start: SimTime::from_secs(start_s),
            end: SimTime::from_secs(end_s),
        }
    }

    #[test]
    fn job_accounting() {
        let j = job(1, 4, 10, 30);
        assert_eq!(j.wait(), SimDuration::from_secs(1));
        assert_eq!(j.runtime(), SimDuration::from_secs(20));
        assert_eq!(j.node_seconds(), 80.0);
    }

    #[test]
    fn running_at_finds_overlapping_jobs() {
        let mut log = SchedulerLog::default();
        log.push(job(1, 2, 0, 10));
        log.push(job(2, 2, 5, 15));
        assert_eq!(log.running_at(SimTime::from_secs(7)).len(), 2);
        assert_eq!(log.running_at(SimTime::from_secs(12)), vec![JobId::new(2)]);
        assert!(log.running_at(SimTime::from_secs(20)).is_empty());
    }

    #[test]
    fn utilization_math() {
        let mut log = SchedulerLog::default();
        log.push(job(1, 5, 0, 10)); // 50 node-s of a 100 node-s horizon
        let u = log.utilization(10, SimTime::from_secs(10));
        assert!((u - 0.5).abs() < 1e-12);
        assert_eq!(log.utilization(0, SimTime::from_secs(10)), 0.0);
    }
}
