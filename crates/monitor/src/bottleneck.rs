//! Request-trace bottleneck classification.
//!
//! The request tracer attributes every nanosecond of each request's
//! end-to-end latency to one of four layers (queue wait, server
//! protocol service, storage-device service, fabric/wire). This module
//! turns those per-layer shares into a categorical diagnosis — *what is
//! this run bottlenecked on?* — which the end-to-end monitoring views
//! can surface next to throughput and straggler panels.
//!
//! Inputs are plain share fractions so the classifier has no dependency
//! on the tracer itself: callers hand it the `(queue, service, device,
//! fabric)` shares from a trace summary (whole-population or tail-only).

use serde::Serialize;

/// The dominant latency layer of a traced run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum BottleneckClass {
    /// Requests mostly wait in server queues / admission slots:
    /// contention — add servers, widen gateway windows, or spread load.
    QueueDominated,
    /// Requests mostly spend time in protocol processing at servers:
    /// per-request overheads — batch requests or enlarge transfers.
    ServiceDominated,
    /// Requests mostly wait on storage media: the devices themselves
    /// are the limit — more/faster devices or better caching.
    DeviceDominated,
    /// Requests mostly sit on the wire: network bandwidth/latency
    /// bound — fewer hops, fatter links, or larger transfers.
    FabricDominated,
    /// No single layer reaches the dominance threshold.
    Balanced,
}

impl BottleneckClass {
    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            BottleneckClass::QueueDominated => "queue-dominated",
            BottleneckClass::ServiceDominated => "service-dominated",
            BottleneckClass::DeviceDominated => "device-dominated",
            BottleneckClass::FabricDominated => "fabric-dominated",
            BottleneckClass::Balanced => "balanced",
        }
    }

    /// One-line operator guidance for the diagnosis.
    pub fn advice(self) -> &'static str {
        match self {
            BottleneckClass::QueueDominated => {
                "contention: requests wait in server queues; add capacity or spread load"
            }
            BottleneckClass::ServiceDominated => {
                "per-request overhead: batch small requests or enlarge transfers"
            }
            BottleneckClass::DeviceDominated => {
                "storage media bound: more/faster devices or better caching"
            }
            BottleneckClass::FabricDominated => {
                "network bound: fewer hops, more bandwidth, or larger transfers"
            }
            BottleneckClass::Balanced => "no single dominant layer",
        }
    }
}

/// Share of summed latency a layer must reach to count as dominant.
pub const DOMINANCE_THRESHOLD: f64 = 0.4;

/// Classify a run from its per-layer latency shares
/// `(queue, service, device, fabric)`, each in `0..=1`.
///
/// The largest share wins if it reaches [`DOMINANCE_THRESHOLD`];
/// otherwise the run is [`BottleneckClass::Balanced`]. Ties at the top
/// resolve in the order queue, service, device, fabric (the order an
/// operator can act on most directly).
pub fn classify_bottleneck(shares: [f64; 4]) -> BottleneckClass {
    const CLASSES: [BottleneckClass; 4] = [
        BottleneckClass::QueueDominated,
        BottleneckClass::ServiceDominated,
        BottleneckClass::DeviceDominated,
        BottleneckClass::FabricDominated,
    ];
    let mut best = 0;
    for i in 1..4 {
        if shares[i] > shares[best] {
            best = i;
        }
    }
    if shares[best] >= DOMINANCE_THRESHOLD {
        CLASSES[best]
    } else {
        BottleneckClass::Balanced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominant_layer_wins() {
        assert_eq!(
            classify_bottleneck([0.7, 0.1, 0.1, 0.1]),
            BottleneckClass::QueueDominated
        );
        assert_eq!(
            classify_bottleneck([0.1, 0.1, 0.6, 0.2]),
            BottleneckClass::DeviceDominated
        );
        assert_eq!(
            classify_bottleneck([0.0, 0.5, 0.1, 0.4]),
            BottleneckClass::ServiceDominated
        );
        assert_eq!(
            classify_bottleneck([0.1, 0.1, 0.3, 0.5]),
            BottleneckClass::FabricDominated
        );
    }

    #[test]
    fn no_dominant_layer_is_balanced() {
        assert_eq!(
            classify_bottleneck([0.3, 0.3, 0.2, 0.2]),
            BottleneckClass::Balanced
        );
        assert_eq!(classify_bottleneck([0.0; 4]), BottleneckClass::Balanced);
    }

    #[test]
    fn ties_resolve_in_actionability_order() {
        assert_eq!(
            classify_bottleneck([0.5, 0.5, 0.0, 0.0]),
            BottleneckClass::QueueDominated
        );
    }

    #[test]
    fn names_and_advice_exist() {
        for c in [
            BottleneckClass::QueueDominated,
            BottleneckClass::ServiceDominated,
            BottleneckClass::DeviceDominated,
            BottleneckClass::FabricDominated,
            BottleneckClass::Balanced,
        ] {
            assert!(!c.name().is_empty());
            assert!(!c.advice().is_empty());
        }
    }
}
