//! FSMonitor-style metadata event analysis.
//!
//! FSMonitor (Paul et al.) streams file-system metadata events for
//! "software-defined cyberinfrastructure": who is creating/deleting
//! what, and when. The simulator's MDS keeps exactly that event stream
//! ([`pioeval_pfs::mds::MetaEvent`]); this module computes the standard
//! reductions over it — op-rate timelines, per-op mixes, hottest files,
//! and namespace churn.

use pioeval_pfs::mds::MetaEvent;
use pioeval_types::{FileId, MetaOp, SimDuration};
use std::collections::HashMap;

/// Aggregated view of a metadata event stream.
#[derive(Clone, Debug)]
pub struct MetadataActivity {
    /// Total events.
    pub total: u64,
    /// Events per op kind (indexed by [`MetaOp::index`]).
    pub per_op: [u64; 8],
    /// Events per time bin.
    pub rate_bins: Vec<u64>,
    /// Bin width used for the rate timeline.
    pub bin_width: SimDuration,
    /// Files ranked by event count, descending (top 16).
    pub hottest: Vec<(FileId, u64)>,
    /// Net namespace growth: creates − unlinks.
    pub namespace_growth: i64,
}

impl MetadataActivity {
    /// Reduce an event stream (time-ordered, as the MDS records it).
    pub fn from_events(events: &[MetaEvent], bin_width: SimDuration) -> Self {
        assert!(!bin_width.is_zero(), "bin width must be positive");
        let mut per_op = [0u64; 8];
        let mut rate_bins: Vec<u64> = Vec::new();
        let mut per_file: HashMap<FileId, u64> = HashMap::new();
        let mut growth = 0i64;
        for e in events {
            per_op[e.op.index()] += 1;
            let bin = (e.time.as_nanos() / bin_width.as_nanos()) as usize;
            if rate_bins.len() <= bin {
                rate_bins.resize(bin + 1, 0);
            }
            rate_bins[bin] += 1;
            *per_file.entry(e.file).or_insert(0) += 1;
            match e.op {
                MetaOp::Create => growth += 1,
                MetaOp::Unlink => growth -= 1,
                _ => {}
            }
        }
        let mut hottest: Vec<(FileId, u64)> = per_file.into_iter().collect();
        hottest.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        hottest.truncate(16);
        MetadataActivity {
            total: events.len() as u64,
            per_op,
            rate_bins,
            bin_width,
            hottest,
            namespace_growth: growth,
        }
    }

    /// Peak metadata op rate, ops/second.
    pub fn peak_rate(&self) -> f64 {
        let peak = self.rate_bins.iter().copied().max().unwrap_or(0);
        peak as f64 / self.bin_width.as_secs_f64()
    }

    /// Mean metadata op rate over active bins, ops/second.
    pub fn mean_active_rate(&self) -> f64 {
        let active: Vec<u64> = self.rate_bins.iter().copied().filter(|&c| c > 0).collect();
        if active.is_empty() {
            return 0.0;
        }
        let sum: u64 = active.iter().sum();
        sum as f64 / active.len() as f64 / self.bin_width.as_secs_f64()
    }

    /// Count of one op kind.
    pub fn count(&self, op: MetaOp) -> u64 {
        self.per_op[op.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_types::SimTime;

    fn ev(ms: u64, op: MetaOp, file: u32) -> MetaEvent {
        MetaEvent {
            time: SimTime::from_millis(ms),
            op,
            file: FileId::new(file),
        }
    }

    #[test]
    fn reduces_stream_to_rates_and_mixes() {
        let events = vec![
            ev(0, MetaOp::Create, 1),
            ev(1, MetaOp::Create, 2),
            ev(2, MetaOp::Stat, 1),
            ev(1500, MetaOp::Unlink, 2),
        ];
        let a = MetadataActivity::from_events(&events, SimDuration::from_secs(1));
        assert_eq!(a.total, 4);
        assert_eq!(a.count(MetaOp::Create), 2);
        assert_eq!(a.count(MetaOp::Unlink), 1);
        assert_eq!(a.rate_bins, vec![3, 1]);
        assert_eq!(a.peak_rate(), 3.0);
        assert_eq!(a.namespace_growth, 1);
        // File 1 and file 2 both have 2 events; tie-break by id.
        assert_eq!(a.hottest[0].0, FileId::new(1));
    }

    #[test]
    fn empty_stream_is_neutral() {
        let a = MetadataActivity::from_events(&[], SimDuration::from_secs(1));
        assert_eq!(a.total, 0);
        assert_eq!(a.peak_rate(), 0.0);
        assert_eq!(a.mean_active_rate(), 0.0);
        assert!(a.hottest.is_empty());
    }

    #[test]
    fn hottest_is_bounded() {
        let events: Vec<MetaEvent> = (0..100).map(|i| ev(i, MetaOp::Stat, i as u32)).collect();
        let a = MetadataActivity::from_events(&events, SimDuration::from_secs(1));
        assert_eq!(a.hottest.len(), 16);
    }
}
