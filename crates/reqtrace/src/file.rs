//! On-disk trace formats: the JSONL request-trace file and the
//! simulated-time Chrome trace export.
//!
//! All timestamps in both formats are **simulated** nanoseconds (the
//! DES clock), not wall-clock time — the wall-clock self-telemetry
//! Chrome trace comes from `--trace-out` instead.

use crate::assemble::{Bucket, RequestRecord, Span};
use pioeval_types::{ReqOp, SimTime, NO_COLLECTIVE};

/// Format tag carried by the JSONL header line.
pub const FORMAT: &str = "pioeval-reqtrace/1";

fn esc(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Render the JSONL trace file: one header line
/// (`{"format":"pioeval-reqtrace/1",...}`) followed by one line per
/// completed request, in (issue time, tid) order.
pub fn write_jsonl(requests: &[RequestRecord], incomplete: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"format\":\"{FORMAT}\",\"requests\":{},\"incomplete\":{}}}\n",
        requests.len(),
        incomplete
    ));
    for r in requests {
        let b = r.breakdown();
        out.push_str(&format!(
            "{{\"tid\":{},\"rank\":{},\"op\":\"{}\",\"file\":{},\"bytes\":{},\"collective\":{},\
             \"issue_ns\":{},\"done_ns\":{},\"latency_ns\":{},\
             \"queue_ns\":{},\"service_ns\":{},\"device_ns\":{},\"fabric_ns\":{},\"spans\":[",
            r.tid,
            r.rank,
            r.op.name(),
            r.file,
            r.bytes,
            if r.in_collective() {
                r.collective.to_string()
            } else {
                "null".to_string()
            },
            r.issue.as_nanos(),
            r.done.as_nanos(),
            r.latency().as_nanos(),
            b[0],
            b[1],
            b[2],
            b[3],
        ));
        for (i, s) in r.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let mut label = String::new();
            esc(&s.label, &mut label);
            out.push_str(&format!(
                "{{\"entity\":{},\"label\":\"{label}\",\"bucket\":\"{}\",\"start_ns\":{},\"end_ns\":{}}}",
                s.entity,
                s.bucket.name(),
                s.start.as_nanos(),
                s.end.as_nanos(),
            ));
        }
        out.push_str("]}\n");
    }
    out
}

fn get_u64(v: &serde_json::Value, key: &str) -> Result<u64, String> {
    match v.get(key) {
        Some(serde_json::Value::U64(n)) => Ok(*n),
        Some(serde_json::Value::I64(n)) if *n >= 0 => Ok(*n as u64),
        Some(serde_json::Value::F64(f)) if *f >= 0.0 => Ok(*f as u64),
        other => Err(format!("field {key:?}: expected number, got {other:?}")),
    }
}

fn get_str<'a>(v: &'a serde_json::Value, key: &str) -> Result<&'a str, String> {
    match v.get(key) {
        Some(serde_json::Value::Str(s)) => Ok(s),
        other => Err(format!("field {key:?}: expected string, got {other:?}")),
    }
}

/// Parse a JSONL trace file back into request records. Verifies the
/// header's format tag; returns `(requests, incomplete)`.
pub fn read_jsonl(text: &str) -> Result<(Vec<RequestRecord>, usize), String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header_line = lines.next().ok_or("empty trace file")?;
    let header = serde_json::parse(header_line).map_err(|e| format!("header: {e}"))?;
    let format = get_str(&header, "format")?;
    if format != FORMAT {
        return Err(format!(
            "unsupported trace format {format:?} (want {FORMAT:?})"
        ));
    }
    let incomplete = get_u64(&header, "incomplete").unwrap_or(0) as usize;

    let mut requests = Vec::new();
    for (lineno, line) in lines.enumerate() {
        let v = serde_json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 2))?;
        let op_name = get_str(&v, "op")?;
        let op = ReqOp::parse(op_name).ok_or_else(|| format!("unknown op {op_name:?}"))?;
        let collective = match v.get("collective") {
            Some(serde_json::Value::Null) | None => NO_COLLECTIVE,
            Some(serde_json::Value::U64(n)) => *n as u32,
            other => return Err(format!("field \"collective\": bad value {other:?}")),
        };
        let mut spans = Vec::new();
        if let Some(serde_json::Value::Seq(items)) = v.get("spans") {
            for s in items {
                let bucket_name = get_str(s, "bucket")?;
                let bucket = Bucket::parse(bucket_name)
                    .ok_or_else(|| format!("unknown bucket {bucket_name:?}"))?;
                spans.push(Span {
                    entity: get_u64(s, "entity")? as u32,
                    label: get_str(s, "label")?.to_string(),
                    bucket,
                    start: SimTime::from_nanos(get_u64(s, "start_ns")?),
                    end: SimTime::from_nanos(get_u64(s, "end_ns")?),
                });
            }
        }
        requests.push(RequestRecord {
            tid: get_u64(&v, "tid")?,
            rank: get_u64(&v, "rank")? as u32,
            op,
            file: get_u64(&v, "file")? as u32,
            bytes: get_u64(&v, "bytes")?,
            collective,
            issue: SimTime::from_nanos(get_u64(&v, "issue_ns")?),
            done: SimTime::from_nanos(get_u64(&v, "done_ns")?),
            spans,
        });
    }
    Ok((requests, incomplete))
}

/// Render a simulated-time Chrome trace (`chrome://tracing` /
/// Perfetto): one track per server/gateway/fabric entity carrying its
/// attributed spans, plus one track per rank carrying each request's
/// whole `[issue, done]` interval. Timestamps are simulated
/// microseconds.
pub fn chrome_trace(requests: &[RequestRecord]) -> String {
    let us = |t: SimTime| t.as_nanos() as f64 / 1000.0;
    let mut events: Vec<String> = Vec::new();
    // Metadata events first, so Perfetto names the two process groups
    // and every track inside them instead of showing bare pid/tid
    // numbers. Ranks live under pid 1, server/gateway entities under
    // pid 2 (named by the label attributed spans carry).
    if !requests.is_empty() {
        events.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{\"name\":\"ranks\"}}"
                .to_string(),
        );
        events.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":2,\"tid\":0,\
             \"args\":{\"name\":\"servers\"}}"
                .to_string(),
        );
        let mut ranks: Vec<u32> = requests.iter().map(|r| r.rank).collect();
        ranks.sort_unstable();
        ranks.dedup();
        for rank in ranks {
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{rank},\
                 \"args\":{{\"name\":\"rank {rank}\"}}}}"
            ));
        }
        let mut entities: Vec<(u32, &str)> = requests
            .iter()
            .flat_map(|r| r.spans.iter())
            .filter(|s| s.entity != crate::assemble::WIRE_ENTITY)
            .map(|s| (s.entity, s.label.as_str()))
            .collect();
        entities.sort_unstable();
        entities.dedup_by_key(|(e, _)| *e);
        for (entity, label) in entities {
            let mut name = String::new();
            esc(label, &mut name);
            events.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":{entity},\
                 \"args\":{{\"name\":\"{name} ({entity})\"}}}}"
            ));
        }
    }
    for r in requests {
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"request\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{},\"dur\":{},\"args\":{{\"tid\":{},\"bytes\":{}}}}}",
            r.op.name(),
            r.rank,
            us(r.issue),
            us(r.done) - us(r.issue),
            r.tid,
            r.bytes,
        ));
        for s in &r.spans {
            if s.entity == crate::assemble::WIRE_ENTITY {
                continue;
            }
            let mut label = String::new();
            esc(&s.label, &mut label);
            events.push(format!(
                "{{\"name\":\"{label} {}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":2,\"tid\":{},\
                 \"ts\":{},\"dur\":{},\"args\":{{\"tid\":{}}}}}",
                r.op.name(),
                s.bucket.name(),
                s.entity,
                us(s.start),
                us(s.end) - us(s.start),
                r.tid,
            ));
        }
    }
    format!("{{\"traceEvents\":[{}]}}\n", events.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_types::SimDuration;

    fn sample() -> Vec<RequestRecord> {
        let t = SimTime::from_nanos;
        vec![RequestRecord {
            tid: (5u64 + 1) << 32 | 9,
            rank: 4,
            op: ReqOp::Read,
            file: 2,
            bytes: 4096,
            collective: 1,
            issue: t(100),
            done: t(400),
            spans: vec![
                Span {
                    entity: crate::assemble::WIRE_ENTITY,
                    label: "wire".into(),
                    bucket: Bucket::Fabric,
                    start: t(100),
                    end: t(150),
                },
                Span {
                    entity: 12,
                    label: "oss".into(),
                    bucket: Bucket::Device,
                    start: t(150),
                    end: t(400),
                },
            ],
        }]
    }

    #[test]
    fn jsonl_round_trips() {
        let reqs = sample();
        let text = write_jsonl(&reqs, 3);
        assert!(text.starts_with(&format!("{{\"format\":\"{FORMAT}\"")));
        let (back, incomplete) = read_jsonl(&text).unwrap();
        assert_eq!(incomplete, 3);
        assert_eq!(back, reqs);
        assert_eq!(back[0].latency(), SimDuration::from_nanos(300));
    }

    #[test]
    fn jsonl_rejects_wrong_format() {
        let err = read_jsonl("{\"format\":\"bogus/9\"}\n").unwrap_err();
        assert!(err.contains("bogus"), "{err}");
    }

    #[test]
    fn chrome_export_skips_wire_gaps_and_is_json() {
        let text = chrome_trace(&sample());
        let v = serde_json::parse(text.trim()).unwrap();
        let Some(serde_json::Value::Seq(events)) = v.get("traceEvents") else {
            panic!("missing traceEvents");
        };
        // 2 process_name + 1 rank thread_name + 1 entity thread_name
        // metadata events, then one request-level event + one server
        // span (wire gap skipped).
        assert_eq!(events.len(), 6);
        let meta: Vec<_> = events
            .iter()
            .filter(|e| matches!(e.get("ph"), Some(serde_json::Value::Str(s)) if s == "M"))
            .collect();
        assert_eq!(meta.len(), 4);
        let named = |e: &serde_json::Value| match e.get("args").and_then(|a| a.get("name")) {
            Some(serde_json::Value::Str(s)) => s.clone(),
            other => panic!("metadata event without args.name: {other:?}"),
        };
        assert_eq!(named(meta[0]), "ranks");
        assert_eq!(named(meta[1]), "servers");
        assert_eq!(named(meta[2]), "rank 4");
        assert_eq!(named(meta[3]), "oss (12)");
    }

    #[test]
    fn chrome_export_of_empty_trace_has_no_events() {
        let v = serde_json::parse(chrome_trace(&[]).trim()).unwrap();
        let Some(serde_json::Value::Seq(events)) = v.get("traceEvents") else {
            panic!("missing traceEvents");
        };
        assert!(events.is_empty());
    }
}
