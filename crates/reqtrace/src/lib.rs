#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # pioeval-reqtrace
//!
//! Simulated-time request tracing: turns the raw per-entity
//! [`pioeval_types::ReqEvent`] buffers recorded during a run into
//! per-request span timelines, attributes every nanosecond of each
//! request's end-to-end latency to one of four layers (queue wait,
//! server protocol service, storage-device service, fabric/wire), and
//! aggregates tail percentiles, per-operation statistics, tail-latency
//! attribution, and per-collective critical paths.
//!
//! The attribution is *exact by construction*: a request's spans tile
//! its `[issue, done]` interval with no gaps and no overlap, so the
//! per-layer components always sum to precisely the end-to-end latency
//! (property-tested against both storage backends). Nested child
//! requests (I/O-node forwards, gateway backend fan-out) are refined
//! through the *critical child* — the spawned sub-request that finishes
//! last — whose own hops and service intervals replace the parent
//! server's opaque residency where they overlap.
//!
//! The crate also defines the on-disk formats: the
//! [`file::FORMAT`]-tagged JSONL trace file written by
//! `pioeval run --request-trace`, and a simulated-time Chrome trace
//! (one track per server/gateway entity) for `chrome://tracing` — not
//! to be confused with the *wall-clock* self-telemetry Chrome trace
//! from `--trace-out`.

pub mod assemble;
pub mod file;
pub mod report;

pub use assemble::{assemble, Assembly, Bucket, RequestRecord, Span};
pub use file::{chrome_trace, read_jsonl, write_jsonl, FORMAT};
pub use report::{
    collective_paths, summarize, tail_attribution, CollectivePath, LayerStats, OpStats,
    PercentileSet, TailAttribution, TraceSummary,
};
