//! Trace analytics: tail percentiles, per-layer and per-op statistics,
//! tail-latency attribution, and per-collective critical paths.

use crate::assemble::{Bucket, RequestRecord, BUCKETS};
use pioeval_types::{percentile_u64, SimDuration, SimTime};
use std::collections::BTreeMap;

/// Exact nearest-rank tail percentiles of one latency population.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PercentileSet {
    /// Median.
    pub p50: SimDuration,
    /// 95th percentile.
    pub p95: SimDuration,
    /// 99th percentile.
    pub p99: SimDuration,
    /// 99.9th percentile.
    pub p999: SimDuration,
    /// Maximum.
    pub max: SimDuration,
}

impl PercentileSet {
    /// Compute from a sample population (zeroes when empty).
    pub fn from_samples(samples: &[u64]) -> Self {
        if samples.is_empty() {
            return PercentileSet::default();
        }
        let q = |p: f64| SimDuration::from_nanos(percentile_u64(samples, p));
        PercentileSet {
            p50: q(50.0),
            p95: q(95.0),
            p99: q(99.0),
            p999: q(99.9),
            max: SimDuration::from_nanos(samples.iter().copied().max().unwrap_or(0)),
        }
    }
}

/// Aggregate statistics for one latency layer across all requests.
#[derive(Clone, Copy, Debug)]
pub struct LayerStats {
    /// Which layer.
    pub bucket: Bucket,
    /// Total time attributed to the layer, summed over requests.
    pub total: SimDuration,
    /// Share of the summed end-to-end latency (0..=1).
    pub share: f64,
    /// Percentiles of the per-request component for this layer.
    pub percentiles: PercentileSet,
}

/// Aggregate statistics for one operation class.
#[derive(Clone, Debug)]
pub struct OpStats {
    /// Operation name ([`pioeval_types::ReqOp::name`]).
    pub op: String,
    /// Requests of this class.
    pub count: usize,
    /// End-to-end latency percentiles for the class.
    pub latency: PercentileSet,
}

/// Whole-trace summary: the `pioeval requests` analyzer's data model.
#[derive(Clone, Debug)]
pub struct TraceSummary {
    /// Completed requests.
    pub requests: usize,
    /// Requests still in flight when the run ended.
    pub incomplete: usize,
    /// End-to-end latency percentiles across all requests.
    pub latency: PercentileSet,
    /// Summed end-to-end latency (attribution denominator).
    pub total_latency: SimDuration,
    /// Per-layer attribution, in [`BUCKETS`] order.
    pub layers: Vec<LayerStats>,
    /// Per-operation statistics, ordered by descending count.
    pub ops: Vec<OpStats>,
}

impl TraceSummary {
    /// Per-layer shares in [`BUCKETS`] order
    /// (queue, service, device, fabric), each 0..=1.
    pub fn shares(&self) -> [f64; 4] {
        let mut out = [0.0; 4];
        for l in &self.layers {
            out[l.bucket.index()] = l.share;
        }
        out
    }
}

/// Summarize assembled requests (`incomplete` is carried through from
/// [`crate::assemble::Assembly`]).
pub fn summarize(requests: &[RequestRecord], incomplete: usize) -> TraceSummary {
    let latencies: Vec<u64> = requests.iter().map(|r| r.latency().as_nanos()).collect();
    let total_latency_ns: u64 = latencies.iter().sum();

    let mut layers = Vec::with_capacity(4);
    for bucket in BUCKETS {
        let components: Vec<u64> = requests.iter().map(|r| r.bucket_ns(bucket)).collect();
        let total: u64 = components.iter().sum();
        layers.push(LayerStats {
            bucket,
            total: SimDuration::from_nanos(total),
            share: if total_latency_ns > 0 {
                total as f64 / total_latency_ns as f64
            } else {
                0.0
            },
            percentiles: PercentileSet::from_samples(&components),
        });
    }

    let mut per_op: BTreeMap<&'static str, Vec<u64>> = BTreeMap::new();
    for r in requests {
        per_op
            .entry(r.op.name())
            .or_default()
            .push(r.latency().as_nanos());
    }
    let mut ops: Vec<OpStats> = per_op
        .into_iter()
        .map(|(op, lat)| OpStats {
            op: op.to_string(),
            count: lat.len(),
            latency: PercentileSet::from_samples(&lat),
        })
        .collect();
    ops.sort_by(|a, b| b.count.cmp(&a.count).then(a.op.cmp(&b.op)));

    TraceSummary {
        requests: requests.len(),
        incomplete,
        latency: PercentileSet::from_samples(&latencies),
        total_latency: SimDuration::from_nanos(total_latency_ns),
        layers,
        ops,
    }
}

/// Where the tail of the latency distribution spends its time.
#[derive(Clone, Copy, Debug)]
pub struct TailAttribution {
    /// The percentile the tail was cut at (e.g. 99.0).
    pub percentile: f64,
    /// Latency threshold: requests at or above it form the tail.
    pub threshold: SimDuration,
    /// Number of tail requests.
    pub count: usize,
    /// Per-layer nanoseconds inside the tail, in [`BUCKETS`] order.
    pub totals: [u64; 4],
}

impl TailAttribution {
    /// Per-layer shares of the tail's summed latency, in [`BUCKETS`]
    /// order.
    pub fn shares(&self) -> [f64; 4] {
        let sum: u64 = self.totals.iter().sum();
        if sum == 0 {
            return [0.0; 4];
        }
        let mut out = [0.0; 4];
        for (o, &t) in out.iter_mut().zip(&self.totals) {
            *o = t as f64 / sum as f64;
        }
        out
    }
}

/// Attribute the latency of the requests at or above the `p`-th
/// latency percentile — the "why is my p99 slow" answer.
pub fn tail_attribution(requests: &[RequestRecord], p: f64) -> TailAttribution {
    let latencies: Vec<u64> = requests.iter().map(|r| r.latency().as_nanos()).collect();
    if latencies.is_empty() {
        return TailAttribution {
            percentile: p,
            threshold: SimDuration::ZERO,
            count: 0,
            totals: [0; 4],
        };
    }
    let threshold = percentile_u64(&latencies, p);
    let mut totals = [0u64; 4];
    let mut count = 0;
    for r in requests {
        if r.latency().as_nanos() >= threshold {
            count += 1;
            for (t, b) in totals.iter_mut().zip(r.breakdown()) {
                *t += b;
            }
        }
    }
    TailAttribution {
        percentile: p,
        threshold: SimDuration::from_nanos(threshold),
        count,
        totals,
    }
}

/// The critical path of one collective-I/O instance: the slowest rank's
/// chain of storage requests, which bounds when the collective can
/// complete.
#[derive(Clone, Copy, Debug)]
pub struct CollectivePath {
    /// Cross-rank-aligned collective instance index.
    pub instance: u32,
    /// Ranks that issued traced requests in this instance.
    pub ranks: usize,
    /// Requests across all ranks in this instance.
    pub requests: usize,
    /// Earliest issue across the instance.
    pub start: SimTime,
    /// Latest reply delivery across the instance (instance completion).
    pub end: SimTime,
    /// The rank whose last reply lands at `end`.
    pub slowest_rank: u32,
    /// Number of requests on the slowest rank's chain.
    pub slowest_requests: usize,
    /// Per-layer nanoseconds summed over the slowest rank's chain, in
    /// [`crate::assemble::BUCKETS`] order.
    pub slowest_totals: [u64; 4],
}

/// Extract per-collective critical paths from assembled requests.
/// Instances are returned in index order; requests outside any
/// collective are ignored.
pub fn collective_paths(requests: &[RequestRecord]) -> Vec<CollectivePath> {
    let mut by_instance: BTreeMap<u32, Vec<&RequestRecord>> = BTreeMap::new();
    for r in requests {
        if r.in_collective() {
            by_instance.entry(r.collective).or_default().push(r);
        }
    }
    by_instance
        .into_iter()
        .map(|(instance, reqs)| {
            let start = reqs.iter().map(|r| r.issue).min().unwrap_or(SimTime::ZERO);
            // The slowest rank is the one whose last reply arrives last.
            let mut rank_end: BTreeMap<u32, SimTime> = BTreeMap::new();
            for r in &reqs {
                let e = rank_end.entry(r.rank).or_insert(SimTime::ZERO);
                *e = (*e).max(r.done);
            }
            let (&slowest_rank, &end) = rank_end
                .iter()
                .max_by_key(|(rank, end)| (**end, **rank))
                .expect("instance has at least one request");
            let mut slowest_totals = [0u64; 4];
            let mut slowest_requests = 0;
            for r in &reqs {
                if r.rank == slowest_rank {
                    slowest_requests += 1;
                    for (t, b) in slowest_totals.iter_mut().zip(r.breakdown()) {
                        *t += b;
                    }
                }
            }
            CollectivePath {
                instance,
                ranks: rank_end.len(),
                requests: reqs.len(),
                start,
                end,
                slowest_rank,
                slowest_requests,
                slowest_totals,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::assemble::Span;
    use pioeval_types::{ReqOp, NO_COLLECTIVE};

    fn req(
        rank: u32,
        collective: u32,
        issue_ns: u64,
        done_ns: u64,
        queue_ns: u64,
    ) -> RequestRecord {
        let issue = SimTime::from_nanos(issue_ns);
        let done = SimTime::from_nanos(done_ns);
        let queue_end = SimTime::from_nanos(issue_ns + queue_ns);
        RequestRecord {
            tid: (rank as u64 + 1) << 32 | issue_ns,
            rank,
            op: ReqOp::Write,
            file: 0,
            bytes: 1,
            collective,
            issue,
            done,
            spans: vec![
                Span {
                    entity: 1,
                    label: "oss".into(),
                    bucket: Bucket::Queue,
                    start: issue,
                    end: queue_end,
                },
                Span {
                    entity: 1,
                    label: "oss".into(),
                    bucket: Bucket::Device,
                    start: queue_end,
                    end: done,
                },
            ],
        }
    }

    #[test]
    fn summary_shares_sum_to_one() {
        let reqs: Vec<RequestRecord> = (0..10)
            .map(|i| req(0, NO_COLLECTIVE, 0, 100 + i, 10))
            .collect();
        let s = summarize(&reqs, 2);
        assert_eq!(s.requests, 10);
        assert_eq!(s.incomplete, 2);
        let shares = s.shares();
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(shares[Bucket::Device.index()] > shares[Bucket::Queue.index()]);
        assert_eq!(s.ops.len(), 1);
        assert_eq!(s.ops[0].count, 10);
    }

    #[test]
    fn tail_attribution_selects_slowest_requests() {
        let mut reqs: Vec<RequestRecord> =
            (0..99).map(|_| req(0, NO_COLLECTIVE, 0, 100, 10)).collect();
        // One outlier dominated by queueing. With 100 samples the
        // nearest-rank p99 is the 99th value (still 100 ns), so cut at
        // p99.5 to isolate the outlier.
        reqs.push(req(1, NO_COLLECTIVE, 0, 10_000, 9_900));
        let tail = tail_attribution(&reqs, 99.5);
        assert_eq!(tail.count, 1);
        assert_eq!(tail.threshold, SimDuration::from_nanos(10_000));
        assert!(tail.shares()[Bucket::Queue.index()] > 0.9);
    }

    #[test]
    fn collective_path_finds_slowest_rank() {
        let reqs = vec![
            req(0, 3, 0, 100, 0),
            req(1, 3, 0, 500, 400),
            req(2, 3, 0, 200, 0),
            req(0, NO_COLLECTIVE, 1000, 1100, 0),
        ];
        let paths = collective_paths(&reqs);
        assert_eq!(paths.len(), 1);
        let p = &paths[0];
        assert_eq!(p.instance, 3);
        assert_eq!(p.ranks, 3);
        assert_eq!(p.requests, 3);
        assert_eq!(p.slowest_rank, 1);
        assert_eq!(p.end, SimTime::from_nanos(500));
        assert_eq!(p.slowest_totals[Bucket::Queue.index()], 400);
    }
}
