//! Span assembly: raw recorder events → attributed per-request records.

use pioeval_types::{ReqEvent, ReqMark, ReqOp, SimDuration, SimTime, Tid, NO_COLLECTIVE};
use std::collections::HashMap;

/// Pseudo-entity id for wire/lookahead gaps between recorded marks
/// (time on the wire that no single fabric entity observed).
pub const WIRE_ENTITY: u32 = u32::MAX;

/// The four latency layers every nanosecond of a request is charged to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Bucket {
    /// Waiting in a server FIFO queue or gateway admission slot.
    Queue,
    /// Server protocol processing (non-device residency).
    Service,
    /// Storage-media service (OST / burst-buffer SSD device time).
    Device,
    /// Fabric transmission plus wire/lookahead gaps between marks.
    Fabric,
}

/// All buckets, in reporting order.
pub const BUCKETS: [Bucket; 4] = [
    Bucket::Queue,
    Bucket::Service,
    Bucket::Device,
    Bucket::Fabric,
];

impl Bucket {
    /// Stable lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            Bucket::Queue => "queue",
            Bucket::Service => "service",
            Bucket::Device => "device",
            Bucket::Fabric => "fabric",
        }
    }

    /// Parse a [`Bucket::name`] back.
    pub fn parse(name: &str) -> Option<Bucket> {
        BUCKETS.iter().copied().find(|b| b.name() == name)
    }

    /// Index into [`BUCKETS`]-shaped arrays.
    pub fn index(self) -> usize {
        match self {
            Bucket::Queue => 0,
            Bucket::Service => 1,
            Bucket::Device => 2,
            Bucket::Fabric => 3,
        }
    }
}

/// One attributed segment of a request's timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// The entity the time was spent at ([`WIRE_ENTITY`] for gaps).
    pub entity: u32,
    /// Where: a [`pioeval_types::ServerKind`] name, `"fabric"`, or
    /// `"wire"`.
    pub label: String,
    /// Which latency layer the segment is charged to.
    pub bucket: Bucket,
    /// Segment start (inclusive).
    pub start: SimTime,
    /// Segment end (exclusive).
    pub end: SimTime,
}

impl Span {
    /// Segment length.
    pub fn len(&self) -> SimDuration {
        self.end.since(self.start)
    }

    /// True for zero-length segments.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// One fully-assembled traced request.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestRecord {
    /// Globally-unique trace id.
    pub tid: Tid,
    /// Issuing rank index.
    pub rank: u32,
    /// Operation class.
    pub op: ReqOp,
    /// Target file / object key index.
    pub file: u32,
    /// Payload bytes (0 for metadata).
    pub bytes: u64,
    /// Collective-instance index, or [`NO_COLLECTIVE`].
    pub collective: u32,
    /// Client send time.
    pub issue: SimTime,
    /// Client reply-delivery time.
    pub done: SimTime,
    /// Attributed segments tiling `[issue, done]` in order.
    pub spans: Vec<Span>,
}

impl RequestRecord {
    /// End-to-end latency.
    pub fn latency(&self) -> SimDuration {
        self.done.since(self.issue)
    }

    /// Nanoseconds attributed to `bucket`.
    pub fn bucket_ns(&self, bucket: Bucket) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.bucket == bucket)
            .map(|s| s.len().as_nanos())
            .sum()
    }

    /// Per-bucket nanoseconds, indexed like [`BUCKETS`].
    pub fn breakdown(&self) -> [u64; 4] {
        let mut out = [0u64; 4];
        for s in &self.spans {
            out[s.bucket.index()] += s.len().as_nanos();
        }
        out
    }

    /// True when this request ran inside a collective operation.
    pub fn in_collective(&self) -> bool {
        self.collective != NO_COLLECTIVE
    }
}

/// The result of assembling a run's raw events.
#[derive(Clone, Debug, Default)]
pub struct Assembly {
    /// Completed root requests, sorted by (issue time, tid).
    pub requests: Vec<RequestRecord>,
    /// Root requests with an Issue mark but no Done mark (the run ended
    /// with the request in flight).
    pub incomplete: usize,
}

/// Group raw events by request and attribute each completed root
/// request's latency. Child requests (tids without an Issue mark) are
/// folded into their parents via their Spawn marks; they never appear
/// as records of their own.
pub fn assemble(events: &[ReqEvent]) -> Assembly {
    let mut by_tid: HashMap<Tid, Vec<ReqEvent>> = HashMap::new();
    for ev in events {
        by_tid.entry(ev.tid).or_default().push(*ev);
    }
    for list in by_tid.values_mut() {
        list.sort_by_key(|e| (e.mark.start(), e.entity, e.seq));
    }

    let mut roots: Vec<(SimTime, Tid)> = Vec::new();
    for (&tid, list) in &by_tid {
        if let Some(at) = list.iter().find_map(|e| match e.mark {
            ReqMark::Issue { at, .. } => Some(at),
            _ => None,
        }) {
            roots.push((at, tid));
        }
    }
    roots.sort();

    let mut out = Assembly::default();
    for (_, tid) in roots {
        let list = &by_tid[&tid];
        let Some((rank, op, file, bytes, collective, issue)) =
            list.iter().find_map(|e| match e.mark {
                ReqMark::Issue {
                    rank,
                    op,
                    file,
                    bytes,
                    collective,
                    at,
                } => Some((rank, op, file, bytes, collective, at)),
                _ => None,
            })
        else {
            continue;
        };
        let Some(done) = list.iter().rev().find_map(|e| match e.mark {
            ReqMark::Done { at } => Some(at),
            _ => None,
        }) else {
            out.incomplete += 1;
            continue;
        };
        let mut spans = Vec::new();
        let cursor = walk(tid, issue, &by_tid, &mut spans);
        // The Done mark advances the cursor at least to the delivery
        // time. Eagerly-recorded residencies can reach past it (an SSD
        // completion recorded at absorb, outlived by a failure-flushed
        // early ACK), so clamp the tiling to [issue, done].
        debug_assert!(cursor >= done, "cursor stopped short of done");
        for s in &mut spans {
            s.start = s.start.min(done);
            s.end = s.end.min(done);
        }
        spans.retain(|s| !s.is_empty());
        out.requests.push(RequestRecord {
            tid,
            rank,
            op,
            file,
            bytes,
            collective,
            issue,
            done,
            spans,
        });
    }
    out
}

/// Append a wire-gap span covering `[from, to)` (no-op when empty).
fn gap(spans: &mut Vec<Span>, from: SimTime, to: SimTime) {
    if to > from {
        spans.push(Span {
            entity: WIRE_ENTITY,
            label: "wire".to_string(),
            bucket: Bucket::Fabric,
            start: from,
            end: to,
        });
    }
}

/// The last instant any of `tid`'s marks covers (used to pick the
/// critical child among fan-out siblings).
fn last_covered(tid: Tid, by_tid: &HashMap<Tid, Vec<ReqEvent>>) -> Option<SimTime> {
    by_tid
        .get(&tid)?
        .iter()
        .map(|e| match e.mark {
            ReqMark::Issue { at, .. } => at,
            ReqMark::Hop { depart, .. } => depart,
            ReqMark::Server { depart, .. } => depart,
            ReqMark::Spawn { at, .. } => at,
            ReqMark::Done { at } => at,
        })
        .max()
}

/// Walk `tid`'s marks starting at `from`, appending attributed spans
/// that tile the timeline with a monotone cursor, and return the final
/// cursor position. Marks are clamped forward so that spans can never
/// overlap even if the recorded intervals were inconsistent.
fn walk(
    tid: Tid,
    from: SimTime,
    by_tid: &HashMap<Tid, Vec<ReqEvent>>,
    spans: &mut Vec<Span>,
) -> SimTime {
    let mut cursor = from;
    let Some(list) = by_tid.get(&tid) else {
        return cursor;
    };
    let marks: Vec<(u32, ReqMark)> = list.iter().map(|e| (e.entity, e.mark)).collect();
    let mut i = 0;
    while i < marks.len() {
        let (entity, mark) = marks[i];
        match mark {
            ReqMark::Issue { .. } => i += 1,
            ReqMark::Hop { arrive, depart } => {
                let arrive = arrive.max(cursor);
                let depart = depart.max(arrive);
                gap(spans, cursor, arrive);
                spans.push(Span {
                    entity,
                    label: "fabric".to_string(),
                    bucket: Bucket::Fabric,
                    start: arrive,
                    end: depart,
                });
                cursor = depart;
                i += 1;
            }
            ReqMark::Server {
                kind,
                arrive,
                queue,
                depart,
            } => {
                let arrive = arrive.max(cursor);
                let depart = depart.max(arrive);
                gap(spans, cursor, arrive);
                let queue_end = arrive.saturating_add(queue).min(depart);
                spans.push(Span {
                    entity,
                    label: kind.name().to_string(),
                    bucket: Bucket::Queue,
                    start: arrive,
                    end: queue_end,
                });
                // Collect the children this server spawned for this
                // request (their Spawn marks sort inside our interval).
                let mut children: Vec<(Tid, SimTime)> = Vec::new();
                let mut j = i + 1;
                while j < marks.len() {
                    match marks[j].1 {
                        ReqMark::Spawn { child, at } if at <= depart => {
                            children.push((child, at));
                            j += 1;
                        }
                        _ => break,
                    }
                }
                i = j;
                let inner = if kind.is_device() {
                    Bucket::Device
                } else {
                    Bucket::Service
                };
                // Refine through the critical child: the spawned
                // sub-request that finishes last bounds the parent's
                // completion, so its own hops/queues/devices replace
                // the parent's opaque residency where they overlap.
                let critical = children
                    .iter()
                    .filter_map(|&(c, at)| last_covered(c, by_tid).map(|end| (end, c, at)))
                    .max();
                if let Some((_, child, spawn_at)) = critical {
                    let spawn_at = spawn_at.clamp(queue_end, depart);
                    spans.push(Span {
                        entity,
                        label: kind.name().to_string(),
                        bucket: inner,
                        start: queue_end,
                        end: spawn_at,
                    });
                    let child_base = spans.len();
                    let child_end = walk(child, spawn_at, by_tid, spans).min(depart);
                    // A child can outlive its parent's recorded
                    // residency — a replication leg still in flight
                    // when its failed node flushed the client ACK —
                    // so clamp its spans to the parent's window to
                    // keep the tiling non-overlapping.
                    for s in &mut spans[child_base..] {
                        s.start = s.start.min(depart);
                        s.end = s.end.min(depart);
                    }
                    spans.push(Span {
                        entity,
                        label: kind.name().to_string(),
                        bucket: inner,
                        start: child_end,
                        end: depart,
                    });
                } else {
                    spans.push(Span {
                        entity,
                        label: kind.name().to_string(),
                        bucket: inner,
                        start: queue_end,
                        end: depart,
                    });
                }
                cursor = depart;
            }
            // A Spawn not following a Server mark has nothing to refine.
            ReqMark::Spawn { .. } => i += 1,
            ReqMark::Done { at } => {
                let at = at.max(cursor);
                gap(spans, cursor, at);
                cursor = at;
                i += 1;
            }
        }
    }
    cursor
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_types::ServerKind;

    fn ev(tid: Tid, entity: u32, seq: u32, mark: ReqMark) -> ReqEvent {
        ReqEvent {
            tid,
            entity,
            seq,
            mark,
        }
    }

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn simple_request_tiles_exactly() {
        // issue@0 → fabric 10..20 → oss arrive@30 queue 5 depart@100
        // → fabric 110..120 → done@130.
        let events = vec![
            ev(
                7,
                1,
                0,
                ReqMark::Issue {
                    rank: 0,
                    op: ReqOp::Write,
                    file: 3,
                    bytes: 4096,
                    collective: NO_COLLECTIVE,
                    at: t(0),
                },
            ),
            ev(
                7,
                2,
                0,
                ReqMark::Hop {
                    arrive: t(10),
                    depart: t(20),
                },
            ),
            ev(
                7,
                3,
                0,
                ReqMark::Server {
                    kind: ServerKind::OssDevice,
                    arrive: t(30),
                    queue: SimDuration::from_nanos(5),
                    depart: t(100),
                },
            ),
            ev(
                7,
                2,
                1,
                ReqMark::Hop {
                    arrive: t(110),
                    depart: t(120),
                },
            ),
            ev(7, 1, 1, ReqMark::Done { at: t(130) }),
        ];
        let asm = assemble(&events);
        assert_eq!(asm.requests.len(), 1);
        assert_eq!(asm.incomplete, 0);
        let r = &asm.requests[0];
        assert_eq!(r.latency(), SimDuration::from_nanos(130));
        let b = r.breakdown();
        assert_eq!(b[Bucket::Queue.index()], 5);
        assert_eq!(b[Bucket::Device.index()], 65);
        assert_eq!(b[Bucket::Service.index()], 0);
        // fabric = hops (10+10) + gaps (0..10, 20..30, 100..110, 120..130).
        assert_eq!(b[Bucket::Fabric.index()], 60);
        assert_eq!(b.iter().sum::<u64>(), 130);
    }

    #[test]
    fn critical_child_refines_parent_residency() {
        // Gateway holds 10..100 (queue 20), spawns child@40; child device
        // 50..80 (queue 10). Parent service = [30,40] + [80,100] = 30.
        let events = vec![
            ev(
                1,
                9,
                0,
                ReqMark::Issue {
                    rank: 2,
                    op: ReqOp::Read,
                    file: 0,
                    bytes: 100,
                    collective: 4,
                    at: t(0),
                },
            ),
            ev(
                1,
                5,
                0,
                ReqMark::Server {
                    kind: ServerKind::Gateway,
                    arrive: t(10),
                    queue: SimDuration::from_nanos(20),
                    depart: t(100),
                },
            ),
            ev(
                1,
                5,
                1,
                ReqMark::Spawn {
                    child: 99,
                    at: t(40),
                },
            ),
            ev(
                99,
                6,
                0,
                ReqMark::Server {
                    kind: ServerKind::OssDevice,
                    arrive: t(50),
                    queue: SimDuration::from_nanos(10),
                    depart: t(80),
                },
            ),
            ev(1, 9, 1, ReqMark::Done { at: t(120) }),
        ];
        let asm = assemble(&events);
        assert_eq!(asm.requests.len(), 1, "child tid must not become a record");
        let r = &asm.requests[0];
        assert!(r.in_collective());
        let b = r.breakdown();
        assert_eq!(b[Bucket::Queue.index()], 20 + 10);
        assert_eq!(b[Bucket::Service.index()], 30);
        assert_eq!(b[Bucket::Device.index()], 20);
        // gaps: 0..10 (wire), 40..50 (to child), 100..120 (reply).
        assert_eq!(b[Bucket::Fabric.index()], 40);
        assert_eq!(b.iter().sum::<u64>(), 120);
    }

    #[test]
    fn unfinished_requests_count_as_incomplete() {
        let events = vec![ev(
            3,
            1,
            0,
            ReqMark::Issue {
                rank: 0,
                op: ReqOp::Meta(pioeval_types::MetaOp::Create),
                file: 1,
                bytes: 0,
                collective: NO_COLLECTIVE,
                at: t(5),
            },
        )];
        let asm = assemble(&events);
        assert!(asm.requests.is_empty());
        assert_eq!(asm.incomplete, 1);
    }
}
