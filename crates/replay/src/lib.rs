#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # pioeval-replay
//!
//! Record-and-replay and replay-based modeling (paper Sec. IV-A1 and
//! IV-B3): the tools that turn collected traces back into executable
//! workloads.
//!
//! * [`replayer`] — turn a traced run's POSIX records back into rank
//!   programs, preserving inter-operation gaps (timed mode) or stripping
//!   them (as-fast-as-possible mode) — the classic trace replay tool.
//! * [`mod@extrapolate`] — ScalaIOExtrap-style (Luo et al.) rank
//!   extrapolation: fit each trace position's offset/file as a linear
//!   function of rank from a small run, then synthesize programs for a
//!   larger rank count.
//! * [`benchgen`] — Hao-et-al-style automatic benchmark generation:
//!   compress the trace's token stream with a grammar, then emit both a
//!   human-readable looped "benchmark source" and a runnable program.
//! * [`fidelity`] — compare an original run with its replay (byte
//!   volumes, op counts, makespan ratio) — the validation step the
//!   record-and-replay literature insists on.

pub mod benchgen;
pub mod extrapolate;
pub mod fidelity;
pub mod replayer;

pub use benchgen::{generate_benchmark, GeneratedBenchmark};
pub use extrapolate::{extrapolate, ExtrapolationReport};
pub use fidelity::{compare, FidelityReport};
pub use replayer::{replay_programs, ReplayMode};
