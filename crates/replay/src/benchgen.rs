//! Automatic benchmark generation from traces (Hao et al.-style).
//!
//! The pipeline of *"Automatic generation of benchmarks for I/O-intensive
//! parallel applications"*: tokenize the trace, compress it with a
//! grammar (factoring loop structure), then emit a compact *benchmark* —
//! here both as human-readable looped pseudo-code and as a runnable
//! program that reproduces the exact operation sequence.

use crate::replayer::{replay_programs, ReplayMode};
use pioeval_iostack::StackOp;
use pioeval_trace::{RePair, TokenStream};
use pioeval_types::{LayerRecord, RecordOp};

/// A generated benchmark for one rank.
#[derive(Clone, Debug)]
pub struct GeneratedBenchmark {
    /// Runnable program (exact reproduction of the traced op sequence).
    pub program: Vec<StackOp>,
    /// Human-readable looped source (what Hao et al. emit as C code).
    pub source: String,
    /// Original trace length in operations.
    pub original_ops: usize,
    /// Grammar size (symbols) after compression.
    pub compressed_size: usize,
}

impl GeneratedBenchmark {
    /// Compression ratio achieved by the generator.
    pub fn compression_ratio(&self) -> f64 {
        if self.compressed_size == 0 {
            return 1.0;
        }
        self.original_ops as f64 / self.compressed_size as f64
    }
}

/// Generate a benchmark from one rank's captured records.
pub fn generate_benchmark(records: &[LayerRecord]) -> GeneratedBenchmark {
    // Data/meta content (what the benchmark must reproduce).
    let posix: Vec<LayerRecord> = records
        .iter()
        .filter(|r| {
            r.layer == pioeval_types::Layer::Posix
                && matches!(r.op, RecordOp::Data(_) | RecordOp::Meta(_))
        })
        .copied()
        .collect();
    let stream = TokenStream::from_records(&posix);
    let grammar = RePair::compress(&stream.symbols, stream.tokenizer.num_symbols());

    // Emit looped pseudo-code from the grammar: rules become `fn`s,
    // repeated runs in the start sequence become loops.
    let mut source = String::new();
    for (i, &(a, b)) in grammar.rules.iter().enumerate() {
        source.push_str(&format!(
            "fn rule_{i}() {{ {}; {} }}\n",
            sym_name(a, stream.tokenizer.num_symbols()),
            sym_name(b, stream.tokenizer.num_symbols())
        ));
    }
    source.push_str("fn benchmark() {\n");
    let mut i = 0;
    while i < grammar.sequence.len() {
        let s = grammar.sequence[i];
        let mut run = 1;
        while i + run < grammar.sequence.len() && grammar.sequence[i + run] == s {
            run += 1;
        }
        let name = sym_name(s, stream.tokenizer.num_symbols());
        if run > 1 {
            source.push_str(&format!("  for _ in 0..{run} {{ {name}; }}\n"));
        } else {
            source.push_str(&format!("  {name};\n"));
        }
        i += run;
    }
    source.push_str("}\n");
    for s in 0..stream.tokenizer.num_symbols() {
        let k = stream.tokenizer.key(s);
        source.push_str(&format!(
            "// op_{s}: {:?} file={} delta={} len={}\n",
            k.op, k.file, k.delta, k.len
        ));
    }

    // Runnable program: expand the grammar (lossless) and detokenize.
    let expanded = grammar.expand();
    debug_assert_eq!(expanded, stream.symbols);
    let program: Vec<StackOp> = stream
        .detokenize()
        .into_iter()
        .filter_map(|op| match op.op {
            RecordOp::Data(kind) => Some(StackOp::PosixData {
                kind,
                file: op.file,
                offset: op.offset,
                len: op.len,
            }),
            RecordOp::Meta(m) => Some(StackOp::PosixMeta {
                op: m,
                file: op.file,
            }),
            _ => None,
        })
        .collect();

    GeneratedBenchmark {
        program,
        source,
        original_ops: posix.len(),
        compressed_size: grammar.size(),
    }
}

fn sym_name(s: u32, terminals: u32) -> String {
    if s < terminals {
        format!("op_{s}()")
    } else {
        format!("rule_{}()", s - terminals)
    }
}

/// Convenience: generate benchmarks for all ranks of a traced job.
pub fn generate_all(per_rank_records: &[Vec<LayerRecord>]) -> Vec<GeneratedBenchmark> {
    per_rank_records
        .iter()
        .map(|r| generate_benchmark(r))
        .collect()
}

/// A quick self-check used in tests and experiments: the generated
/// program must replay to the same op list a plain replay would produce.
pub fn reproduces_trace(records: &[LayerRecord], bench: &GeneratedBenchmark) -> bool {
    let direct = replay_programs(&[records.to_vec()], ReplayMode::AsFastAsPossible);
    let direct_ops: Vec<&StackOp> = direct[0]
        .iter()
        .filter(|o| !matches!(o, StackOp::Compute(_)))
        .collect();
    direct_ops.len() == bench.program.len()
        && direct_ops
            .iter()
            .zip(&bench.program)
            .all(|(a, b)| format!("{a:?}") == format!("{b:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_types::{FileId, IoKind, Layer, MetaOp, Rank, SimTime};

    fn loopy_trace(iterations: u64) -> Vec<LayerRecord> {
        let mut t = 0u64;
        let mut out = Vec::new();
        let mut push = |op, offset, len, out: &mut Vec<LayerRecord>| {
            out.push(LayerRecord {
                layer: Layer::Posix,
                rank: Rank::new(0),
                file: FileId::new(5),
                op,
                offset,
                len,
                start: SimTime::from_micros(t),
                end: SimTime::from_micros(t + 1),
            });
            t += 2;
        };
        push(RecordOp::Meta(MetaOp::Create), 0, 0, &mut out);
        for i in 0..iterations {
            push(RecordOp::Data(IoKind::Write), i * 8192, 4096, &mut out);
            push(
                RecordOp::Data(IoKind::Write),
                i * 8192 + 4096,
                4096,
                &mut out,
            );
        }
        push(RecordOp::Meta(MetaOp::Close), 0, 0, &mut out);
        out
    }

    #[test]
    fn loop_traces_compress_dramatically() {
        let records = loopy_trace(100);
        let bench = generate_benchmark(&records);
        assert_eq!(bench.original_ops, 202);
        assert!(
            bench.compression_ratio() > 10.0,
            "ratio {}",
            bench.compression_ratio()
        );
    }

    #[test]
    fn generated_program_reproduces_the_trace() {
        let records = loopy_trace(20);
        let bench = generate_benchmark(&records);
        assert!(reproduces_trace(&records, &bench));
        assert_eq!(bench.program.len(), 42);
    }

    #[test]
    fn source_contains_loops_for_repetition() {
        let records = loopy_trace(50);
        let bench = generate_benchmark(&records);
        assert!(bench.source.contains("for _ in 0.."), "{}", bench.source);
        assert!(bench.source.contains("fn benchmark()"));
    }

    #[test]
    fn irregular_traces_survive_without_compression() {
        // Random-ish offsets: little structure to factor.
        let mut records = Vec::new();
        for i in 0..30u64 {
            records.push(LayerRecord {
                layer: Layer::Posix,
                rank: Rank::new(0),
                file: FileId::new(5),
                op: RecordOp::Data(IoKind::Read),
                offset: (i * 7919) % 100_000,
                len: 100 + i * 13,
                start: SimTime::from_micros(i),
                end: SimTime::from_micros(i + 1),
            });
        }
        let bench = generate_benchmark(&records);
        assert!(reproduces_trace(&records, &bench));
        assert!(bench.compression_ratio() <= 2.0);
    }

    #[test]
    fn empty_trace_yields_empty_benchmark() {
        let bench = generate_benchmark(&[]);
        assert!(bench.program.is_empty());
        assert_eq!(bench.original_ops, 0);
    }
}
