//! Replay fidelity validation.
//!
//! Record-and-replay is only trustworthy when the replayed run matches
//! the original (Haghdoost et al. devote a FAST paper to exactly this).
//! [`compare`] reduces two runs to the metrics the literature validates:
//! byte volumes, operation counts, and makespan ratio.

use pioeval_iostack::JobResult;

/// Comparison of an original run and its replay.
#[derive(Clone, Copy, Debug)]
pub struct FidelityReport {
    /// Original bytes written / read.
    pub original_bytes: (u64, u64),
    /// Replayed bytes written / read.
    pub replayed_bytes: (u64, u64),
    /// Original POSIX op count (data + meta).
    pub original_ops: u64,
    /// Replayed POSIX op count.
    pub replayed_ops: u64,
    /// Replay makespan / original makespan (1.0 = perfect timing).
    pub makespan_ratio: f64,
}

impl FidelityReport {
    /// Byte volumes identical in both directions.
    pub fn bytes_exact(&self) -> bool {
        self.original_bytes == self.replayed_bytes
    }

    /// Op counts identical.
    pub fn ops_exact(&self) -> bool {
        self.original_ops == self.replayed_ops
    }

    /// Timing within `tolerance` (e.g. 0.1 = ±10%).
    pub fn timing_within(&self, tolerance: f64) -> bool {
        (self.makespan_ratio - 1.0).abs() <= tolerance
    }
}

fn ops_of(result: &JobResult) -> u64 {
    result
        .counters
        .iter()
        .map(|c| c.posix_reads + c.posix_writes + c.posix_meta)
        .sum()
}

/// Compare an original run with its replay.
pub fn compare(original: &JobResult, replayed: &JobResult) -> FidelityReport {
    let om = original
        .makespan()
        .map(|d| d.as_secs_f64())
        .unwrap_or(f64::NAN);
    let rm = replayed
        .makespan()
        .map(|d| d.as_secs_f64())
        .unwrap_or(f64::NAN);
    FidelityReport {
        original_bytes: (original.bytes_written(), original.bytes_read()),
        replayed_bytes: (replayed.bytes_written(), replayed.bytes_read()),
        original_ops: ops_of(original),
        replayed_ops: ops_of(replayed),
        makespan_ratio: if om > 0.0 { rm / om } else { f64::NAN },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_iostack::RankCounters;
    use pioeval_types::{SimDuration, SimTime};

    fn result(bytes_written: u64, ops: u64, makespan_ms: u64) -> JobResult {
        let counters = RankCounters {
            posix_writes: ops,
            bytes_written,
            ..RankCounters::default()
        };
        JobResult {
            records: vec![vec![]],
            counters: vec![counters],
            profiles: vec![Default::default()],
            finished: vec![Some(SimTime::from_millis(makespan_ms))],
            start: SimTime::ZERO,
        }
    }

    #[test]
    fn perfect_replay_scores_perfectly() {
        let a = result(1000, 5, 100);
        let b = result(1000, 5, 100);
        let r = compare(&a, &b);
        assert!(r.bytes_exact());
        assert!(r.ops_exact());
        assert!(r.timing_within(0.001));
    }

    #[test]
    fn timing_drift_is_reported() {
        let a = result(1000, 5, 100);
        let b = result(1000, 5, 130);
        let r = compare(&a, &b);
        assert!(r.bytes_exact());
        assert!((r.makespan_ratio - 1.3).abs() < 1e-9);
        assert!(!r.timing_within(0.1));
        assert!(r.timing_within(0.35));
    }

    #[test]
    fn volume_mismatch_is_reported() {
        let a = result(1000, 5, 100);
        let b = result(900, 4, 100);
        let r = compare(&a, &b);
        assert!(!r.bytes_exact());
        assert!(!r.ops_exact());
    }

    #[test]
    fn makespan_helpers() {
        let a = result(1, 1, 100);
        assert_eq!(a.makespan(), Some(SimDuration::from_millis(100)));
    }
}
