//! Trace replay: POSIX-layer records → executable rank programs.

use pioeval_iostack::StackOp;
use pioeval_types::{Layer, LayerRecord, RecordOp, SimDuration, SimTime};

/// Replay timing mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayMode {
    /// Preserve inter-operation gaps as compute phases — reproduces the
    /// original burstiness (what storage-system studies need).
    Timed,
    /// Strip gaps — issue back to back (stress replay, HFPlayer's AFAP).
    AsFastAsPossible,
}

/// Build per-rank replay programs from captured records.
///
/// Only POSIX-layer records are replayed (they are what reached the file
/// system); records of one rank must be passed in one slice, in time
/// order (as produced by the instrumented stack).
pub fn replay_programs(
    per_rank_records: &[Vec<LayerRecord>],
    mode: ReplayMode,
) -> Vec<Vec<StackOp>> {
    per_rank_records
        .iter()
        .map(|records| replay_one(records, mode))
        .collect()
}

fn replay_one(records: &[LayerRecord], mode: ReplayMode) -> Vec<StackOp> {
    // POSIX records carry the I/O. In timed mode, Application-layer
    // records are also replayed: compute records reproduce think time
    // (including any lead-in before the first I/O), and barrier records
    // are re-issued as real barriers so the replayed job keeps the
    // original's cross-rank synchronization (without them, ranks drift
    // and the replayed makespan undershoots on barrier-heavy jobs).
    let timed = mode == ReplayMode::Timed;
    let mut ops = Vec::new();
    let mut last_end = None;
    for r in records {
        let app_op = if r.layer == Layer::Application && timed {
            match r.op {
                RecordOp::Barrier => Some(true),
                RecordOp::Compute => Some(false),
                _ => None,
            }
        } else {
            None
        };
        if r.layer != Layer::Posix && app_op.is_none() {
            continue;
        }
        if timed {
            if let Some(prev) = last_end {
                let gap = r.start.since(prev);
                if !gap.is_zero() {
                    ops.push(StackOp::Compute(gap));
                }
            }
        }
        match app_op {
            Some(true) => {
                ops.push(StackOp::Barrier);
                // Subsequent gaps are measured from the recorded *release*
                // (r.end): the recorded wait is not replayed as compute —
                // the re-issued barrier regenerates it from actual skew.
                last_end = Some(r.end.max(last_end.unwrap_or(r.end)));
                continue;
            }
            Some(false) => {
                // A compute phase: replay its recorded duration. The
                // record's absolute start also anchors any lead-in before
                // the first I/O (gap from the previous record covers it).
                if last_end.is_none() && !r.start.since(SimTime::ZERO).is_zero() {
                    // Lead-in before the very first record of the rank.
                    ops.push(StackOp::Compute(r.start.since(SimTime::ZERO)));
                }
                ops.push(StackOp::Compute(r.elapsed()));
                last_end = Some(r.end);
                continue;
            }
            None => {}
        }
        if last_end.is_none() && timed && !r.start.since(SimTime::ZERO).is_zero() {
            ops.push(StackOp::Compute(r.start.since(SimTime::ZERO)));
        }
        match r.op {
            RecordOp::Data(kind) => ops.push(StackOp::PosixData {
                kind,
                file: r.file,
                offset: r.offset,
                len: r.len,
            }),
            RecordOp::Meta(op) => ops.push(StackOp::PosixMeta { op, file: r.file }),
            _ => continue,
        }
        last_end = Some(r.end);
    }
    ops
}

/// Total compute (gap) time a timed replay will inject for one rank.
pub fn injected_gap_time(program: &[StackOp]) -> SimDuration {
    program.iter().fold(SimDuration::ZERO, |acc, op| match op {
        StackOp::Compute(d) => acc + *d,
        _ => acc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_types::{FileId, IoKind, MetaOp, Rank, SimTime};

    fn rec(op: RecordOp, offset: u64, len: u64, t0: u64, t1: u64) -> LayerRecord {
        LayerRecord {
            layer: Layer::Posix,
            rank: Rank::new(0),
            file: FileId::new(1),
            op,
            offset,
            len,
            start: SimTime::from_micros(t0),
            end: SimTime::from_micros(t1),
        }
    }

    fn sample() -> Vec<LayerRecord> {
        vec![
            rec(RecordOp::Meta(MetaOp::Create), 0, 0, 0, 10),
            rec(RecordOp::Data(IoKind::Write), 0, 4096, 10, 20),
            // 80 us of application think time here.
            rec(RecordOp::Data(IoKind::Write), 4096, 4096, 100, 110),
            rec(RecordOp::Meta(MetaOp::Close), 0, 0, 110, 112),
        ]
    }

    #[test]
    fn timed_replay_preserves_gaps() {
        let programs = replay_programs(&[sample()], ReplayMode::Timed);
        let p = &programs[0];
        assert_eq!(injected_gap_time(p), SimDuration::from_micros(80));
        // Ops preserved in order.
        let datas = p
            .iter()
            .filter(|op| matches!(op, StackOp::PosixData { .. }))
            .count();
        let metas = p
            .iter()
            .filter(|op| matches!(op, StackOp::PosixMeta { .. }))
            .count();
        assert_eq!((datas, metas), (2, 2));
    }

    #[test]
    fn afap_replay_strips_gaps() {
        let programs = replay_programs(&[sample()], ReplayMode::AsFastAsPossible);
        let p = &programs[0];
        assert!(p.iter().all(|op| !matches!(op, StackOp::Compute(_))));
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn non_posix_records_are_ignored() {
        let mut records = sample();
        let mut mpi = rec(RecordOp::Data(IoKind::Write), 0, 9999, 5, 6);
        mpi.layer = Layer::MpiIo;
        records.push(mpi);
        let programs = replay_programs(&[records], ReplayMode::AsFastAsPossible);
        assert!(!programs[0]
            .iter()
            .any(|op| matches!(op, StackOp::PosixData { len: 9999, .. })));
    }

    #[test]
    fn offsets_and_kinds_survive_replay() {
        let programs = replay_programs(&[sample()], ReplayMode::Timed);
        let data: Vec<(u64, u64)> = programs[0]
            .iter()
            .filter_map(|op| match op {
                StackOp::PosixData { offset, len, .. } => Some((*offset, *len)),
                _ => None,
            })
            .collect();
        assert_eq!(data, vec![(0, 4096), (4096, 4096)]);
    }
}
