//! Rank extrapolation of traces (ScalaIOExtrap-style).
//!
//! Luo et al.'s insight: in SPMD applications, the trace of rank `r` is
//! usually the trace of rank 0 with offsets and file ids that are affine
//! functions of `r`. Given traces from a *small* run, fit, per trace
//! position, `offset(r) = a + b·r` and `file(r) = c + d·r` across the
//! observed ranks; if the fit is exact, programs for any larger rank
//! count can be synthesized without ever running at scale.

use crate::replayer::{replay_programs, ReplayMode};
use pioeval_iostack::StackOp;
use pioeval_types::{Error, FileId, LayerRecord, Result};

/// Outcome of an extrapolation.
#[derive(Clone, Debug)]
pub struct ExtrapolationReport {
    /// Programs for the target rank count.
    pub programs: Vec<Vec<StackOp>>,
    /// Trace positions whose offsets fitted the affine-in-rank model.
    pub exact_positions: usize,
    /// Total trace positions.
    pub total_positions: usize,
}

impl ExtrapolationReport {
    /// Fraction of positions that fitted exactly (1.0 = perfect SPMD).
    pub fn fit_fraction(&self) -> f64 {
        if self.total_positions == 0 {
            return 1.0;
        }
        self.exact_positions as f64 / self.total_positions as f64
    }
}

/// Fit `v(r) = a + b·r` exactly over observed values; `None` if the
/// points are not collinear.
fn affine_fit(values: &[i128]) -> Option<(i128, i128)> {
    match values.len() {
        0 => None,
        1 => Some((values[0], 0)),
        _ => {
            let a = values[0];
            let b = values[1] - values[0];
            values
                .iter()
                .enumerate()
                .all(|(r, &v)| v == a + b * r as i128)
                .then_some((a, b))
        }
    }
}

/// Extrapolate traces from a small run to `target_ranks` programs.
///
/// `per_rank_records` are the captured records of the small run (one
/// entry per source rank, in rank order). All source ranks must have the
/// same program *shape* (same op kinds and lengths per position) — the
/// SPMD precondition; a mismatch is an error, matching ScalaIOExtrap's
/// scope.
pub fn extrapolate(
    per_rank_records: &[Vec<LayerRecord>],
    target_ranks: u32,
) -> Result<ExtrapolationReport> {
    let source_ranks = per_rank_records.len();
    if source_ranks == 0 {
        return Err(Error::Model("no source traces".into()));
    }
    // Build replayable programs (timed, to preserve burst structure).
    let base = replay_programs(per_rank_records, ReplayMode::Timed);
    let len = base[0].len();
    if base.iter().any(|p| p.len() != len) {
        return Err(Error::Model(
            "source ranks have different trace lengths (not SPMD)".into(),
        ));
    }

    // Per position, fit offset and file id as affine functions of rank.
    let mut offset_fits: Vec<Option<(i128, i128)>> = Vec::with_capacity(len);
    let mut file_fits: Vec<Option<(i128, i128)>> = Vec::with_capacity(len);
    let mut exact = 0usize;
    for pos in 0..len {
        match &base[0][pos] {
            StackOp::PosixData { kind, len: l, .. } => {
                // Shape check + gather values.
                let mut offsets = Vec::with_capacity(source_ranks);
                let mut files = Vec::with_capacity(source_ranks);
                for p in &base {
                    let StackOp::PosixData {
                        kind: k2,
                        len: l2,
                        offset,
                        file,
                    } = &p[pos]
                    else {
                        return Err(Error::Model(format!("op shape mismatch at position {pos}")));
                    };
                    if k2 != kind || l2 != l {
                        return Err(Error::Model(format!(
                            "op parameter mismatch at position {pos}"
                        )));
                    }
                    offsets.push(*offset as i128);
                    files.push(file.0 as i128);
                }
                let of = affine_fit(&offsets);
                let ff = affine_fit(&files);
                if of.is_some() && ff.is_some() {
                    exact += 1;
                }
                offset_fits.push(of);
                file_fits.push(ff);
            }
            StackOp::PosixMeta { .. } => {
                let mut files = Vec::with_capacity(source_ranks);
                for p in &base {
                    let StackOp::PosixMeta { file, .. } = &p[pos] else {
                        return Err(Error::Model(format!("op shape mismatch at position {pos}")));
                    };
                    files.push(file.0 as i128);
                }
                let ff = affine_fit(&files);
                if ff.is_some() {
                    exact += 1;
                }
                offset_fits.push(None);
                file_fits.push(ff);
            }
            _ => {
                // Compute gaps: rank-independent (use rank 0's).
                exact += 1;
                offset_fits.push(None);
                file_fits.push(None);
            }
        }
    }

    // Synthesize target programs. Positions that did not fit fall back
    // to cloning the source rank `r % source_ranks` (documented
    // degradation, counted against fit_fraction).
    let programs: Vec<Vec<StackOp>> = (0..target_ranks)
        .map(|rank| {
            let fallback = &base[rank as usize % source_ranks];
            (0..len)
                .map(|pos| match &base[0][pos] {
                    StackOp::PosixData { kind, len: l, .. } => {
                        let offset =
                            offset_fits[pos].map(|(a, b)| (a + b * rank as i128).max(0) as u64);
                        let file =
                            file_fits[pos].map(|(a, b)| (a + b * rank as i128).max(0) as u32);
                        match (offset, file) {
                            (Some(offset), Some(file)) => StackOp::PosixData {
                                kind: *kind,
                                file: FileId::new(file),
                                offset,
                                len: *l,
                            },
                            _ => fallback[pos].clone(),
                        }
                    }
                    StackOp::PosixMeta { op, .. } => match file_fits[pos] {
                        Some((a, b)) => StackOp::PosixMeta {
                            op: *op,
                            file: FileId::new((a + b * rank as i128).max(0) as u32),
                        },
                        None => fallback[pos].clone(),
                    },
                    other => other.clone(),
                })
                .collect()
        })
        .collect();

    Ok(ExtrapolationReport {
        programs,
        exact_positions: exact,
        total_positions: len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_types::{IoKind, Layer, MetaOp, Rank, RecordOp, SimTime};

    /// Simulated SPMD traces: rank r writes at offset r*1MB in file 100,
    /// to a per-rank scratch file 200+r, with a stat in between.
    fn spmd_traces(ranks: u32) -> Vec<Vec<LayerRecord>> {
        (0..ranks)
            .map(|r| {
                let mk = |op, file, offset, len, t0: u64, t1: u64| LayerRecord {
                    layer: Layer::Posix,
                    rank: Rank::new(r),
                    file: FileId::new(file),
                    op,
                    offset,
                    len,
                    start: SimTime::from_micros(t0),
                    end: SimTime::from_micros(t1),
                };
                vec![
                    mk(RecordOp::Meta(MetaOp::Open), 100, 0, 0, 0, 5),
                    mk(
                        RecordOp::Data(IoKind::Write),
                        100,
                        r as u64 * (1 << 20),
                        4096,
                        5,
                        10,
                    ),
                    mk(RecordOp::Meta(MetaOp::Create), 200 + r, 0, 0, 10, 15),
                    mk(RecordOp::Data(IoKind::Write), 200 + r, 0, 8192, 15, 25),
                ]
            })
            .collect()
    }

    #[test]
    fn affine_patterns_extrapolate_exactly() {
        let report = extrapolate(&spmd_traces(4), 16).unwrap();
        assert_eq!(report.fit_fraction(), 1.0);
        assert_eq!(report.programs.len(), 16);
        // Rank 10: shared-file write at 10 MiB, scratch file 210.
        let p = &report.programs[10];
        assert!(p.iter().any(|op| matches!(
            op,
            StackOp::PosixData { offset, .. } if *offset == 10 << 20
        )));
        assert!(p.iter().any(|op| matches!(
            op,
            StackOp::PosixMeta { op: MetaOp::Create, file } if file.0 == 210
        )));
    }

    #[test]
    fn single_source_rank_extrapolates_constants() {
        let report = extrapolate(&spmd_traces(1), 4).unwrap();
        assert_eq!(report.fit_fraction(), 1.0);
        // With one source rank the slope is 0: every target rank clones
        // rank 0's offsets — the correct degenerate answer.
        for p in &report.programs {
            assert!(p.iter().any(|op| matches!(
                op,
                StackOp::PosixData {
                    offset: 0,
                    len: 4096,
                    ..
                }
            )));
        }
    }

    #[test]
    fn non_affine_positions_fall_back() {
        let mut traces = spmd_traces(3);
        // Corrupt rank 2's shared write offset: no longer affine.
        if let Some(r) = traces[2].get_mut(1) {
            r.offset = 12345;
        }
        let report = extrapolate(&traces, 6).unwrap();
        assert!(report.fit_fraction() < 1.0);
        assert_eq!(report.programs.len(), 6);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let mut traces = spmd_traces(2);
        traces[1].pop();
        assert!(extrapolate(&traces, 4).is_err());
        assert!(extrapolate(&[], 4).is_err());
    }
}
