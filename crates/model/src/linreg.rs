//! Multiple linear regression via normal equations.
//!
//! The baseline model the neural-network prediction studies (Schmid &
//! Kunkel) compare against. Solves `(XᵀX)β = Xᵀy` with partial-pivot
//! Gaussian elimination; an intercept column is added automatically.

use pioeval_types::{Error, Result};

/// A fitted linear model.
#[derive(Clone, Debug)]
pub struct LinearRegression {
    /// Coefficients: `[intercept, β₁, …, βₖ]`.
    pub coefficients: Vec<f64>,
}

impl LinearRegression {
    /// Fit on rows of features and targets.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Result<Self> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(Error::Model("empty or mismatched training data".into()));
        }
        let k = xs[0].len();
        if xs.iter().any(|r| r.len() != k) {
            return Err(Error::Model("ragged feature rows".into()));
        }
        let d = k + 1; // + intercept
                       // Build XᵀX and Xᵀy.
        let mut xtx = vec![vec![0.0f64; d]; d];
        let mut xty = vec![0.0f64; d];
        for (row, &y) in xs.iter().zip(ys) {
            let mut aug = Vec::with_capacity(d);
            aug.push(1.0);
            aug.extend_from_slice(row);
            for i in 0..d {
                for j in 0..d {
                    xtx[i][j] += aug[i] * aug[j];
                }
                xty[i] += aug[i] * y;
            }
        }
        // Ridge epsilon for numerical safety on collinear features.
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += 1e-9;
        }
        let coefficients = solve(xtx, xty)?;
        Ok(LinearRegression { coefficients })
    }

    /// Predict one row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(
            x.len() + 1,
            self.coefficients.len(),
            "feature dimension mismatch"
        );
        self.coefficients[0]
            + x.iter()
                .zip(&self.coefficients[1..])
                .map(|(a, b)| a * b)
                .sum::<f64>()
    }

    /// Predict many rows.
    pub fn predict_all(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

/// Solve a dense linear system with partial pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .unwrap();
        if a[pivot][col].abs() < 1e-12 {
            return Err(Error::Model("singular design matrix".into()));
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let f = a[row][col] / a[col][col];
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot = &pivot_rows[col];
            for (v, p) in rest[0][col..n].iter_mut().zip(&pivot[col..n]) {
                *v -= f * p;
            }
            b[row] -= f * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for j in col + 1..n {
            acc -= a[col][j] * x[j];
        }
        x[col] = acc / a[col][col];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relationship() {
        // y = 3 + 2a - b
        let xs: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![i as f64, (i * i % 7) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|r| 3.0 + 2.0 * r[0] - r[1]).collect();
        let m = LinearRegression::fit(&xs, &ys).unwrap();
        assert!((m.coefficients[0] - 3.0).abs() < 1e-6);
        assert!((m.coefficients[1] - 2.0).abs() < 1e-6);
        assert!((m.coefficients[2] + 1.0).abs() < 1e-6);
        assert!((m.predict(&[10.0, 2.0]) - 21.0).abs() < 1e-6);
    }

    #[test]
    fn handles_noise_reasonably() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, r)| 5.0 * r[0] + if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let m = LinearRegression::fit(&xs, &ys).unwrap();
        assert!((m.coefficients[1] - 5.0).abs() < 0.01);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(LinearRegression::fit(&[], &[]).is_err());
        assert!(LinearRegression::fit(&[vec![1.0]], &[1.0, 2.0]).is_err());
        assert!(LinearRegression::fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn predict_all_matches_predict() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| r[0] * 2.0).collect();
        let m = LinearRegression::fit(&xs, &ys).unwrap();
        let all = m.predict_all(&xs);
        for (x, p) in xs.iter().zip(all) {
            assert_eq!(p, m.predict(x));
        }
    }
}
