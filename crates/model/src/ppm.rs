//! Longest-context next-operation prediction (Omnisc'IO-style).
//!
//! Omnisc'IO (Dorier et al.) builds a grammar of the application's I/O
//! behaviour *online* and predicts the next operation from the grammar
//! state. We implement the same capability with a PPM-style
//! longest-matching-context model: maintain successor counts for every
//! context up to `max_order`; to predict, find the longest context with
//! observations and return its most frequent successor. Like Omnisc'IO,
//! the predictor converges to near-perfect accuracy on the periodic
//! phase structure of HPC codes after the first period.

use std::collections::HashMap;

/// Online next-symbol predictor.
#[derive(Clone, Debug)]
pub struct PpmPredictor {
    max_order: usize,
    /// context (most recent last) → successor → count.
    counts: HashMap<Vec<u32>, HashMap<u32, u64>>,
    history: Vec<u32>,
}

impl PpmPredictor {
    /// A predictor matching contexts up to `max_order` symbols.
    pub fn new(max_order: usize) -> Self {
        PpmPredictor {
            max_order: max_order.max(1),
            counts: HashMap::new(),
            history: Vec::new(),
        }
    }

    /// Predict the next symbol from the current history (None before any
    /// observation or when no context matches).
    pub fn predict(&self) -> Option<u32> {
        let h = &self.history;
        for order in (1..=self.max_order.min(h.len())).rev() {
            let ctx = &h[h.len() - order..];
            if let Some(succ) = self.counts.get(ctx) {
                // Deterministic argmax: highest count, lowest symbol.
                return succ
                    .iter()
                    .max_by_key(|&(&sym, &c)| (c, std::cmp::Reverse(sym)))
                    .map(|(&sym, _)| sym);
            }
        }
        None
    }

    /// Observe the next symbol (updates all context orders).
    pub fn observe(&mut self, symbol: u32) {
        let h = self.history.clone();
        for order in 1..=self.max_order.min(h.len()) {
            let ctx = h[h.len() - order..].to_vec();
            *self
                .counts
                .entry(ctx)
                .or_default()
                .entry(symbol)
                .or_insert(0) += 1;
        }
        self.history.push(symbol);
        // Bound history: only the last max_order symbols matter.
        if self.history.len() > self.max_order * 4 {
            let cut = self.history.len() - self.max_order;
            self.history.drain(..cut);
        }
    }

    /// Online accuracy over a sequence: predict each symbol before
    /// observing it (the standard Omnisc'IO evaluation).
    pub fn online_accuracy(seq: &[u32], max_order: usize) -> f64 {
        if seq.is_empty() {
            return 0.0;
        }
        let mut p = PpmPredictor::new(max_order);
        let mut correct = 0usize;
        for &s in seq {
            if p.predict() == Some(s) {
                correct += 1;
            }
            p.observe(s);
        }
        correct as f64 / seq.len() as f64
    }

    /// Distinct contexts stored (model size diagnostic).
    pub fn num_contexts(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn periodic_sequence_becomes_predictable() {
        // A 5-symbol period repeated 40 times (checkpoint loop shape).
        let seq: Vec<u32> = (0..200).map(|i| i % 5).collect();
        let acc = PpmPredictor::online_accuracy(&seq, 4);
        // After the first period everything is predictable: > 0.9.
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn longest_context_disambiguates() {
        // "0 1 2" vs "3 1 4": after (1,), successor is ambiguous; after
        // (0, 1) it is not.
        let mut p = PpmPredictor::new(3);
        for _ in 0..10 {
            for s in [0, 1, 2, 3, 1, 4] {
                p.observe(s);
            }
        }
        // History now ends ... 3 1 4; feed 0 1 and ask.
        p.observe(0);
        p.observe(1);
        assert_eq!(p.predict(), Some(2));
        p.observe(2);
        p.observe(3);
        p.observe(1);
        assert_eq!(p.predict(), Some(4));
    }

    #[test]
    fn unseen_context_yields_none_initially() {
        let p = PpmPredictor::new(3);
        assert_eq!(p.predict(), None);
        let mut p = PpmPredictor::new(3);
        p.observe(7);
        // One observation: context (7,) has no successor yet.
        assert_eq!(p.predict(), None);
    }

    #[test]
    fn random_sequence_is_hard() {
        // A well-mixed scramble over 50 symbols: low accuracy.
        let seq: Vec<u32> = (0u64..400)
            .map(|i| (pioeval_types::split_seed(i, 3) % 50) as u32)
            .collect();
        let acc = PpmPredictor::online_accuracy(&seq, 4);
        assert!(acc < 0.15, "accuracy {acc} suspiciously high for noise");
    }

    #[test]
    fn model_size_is_bounded_by_structure() {
        let periodic: Vec<u32> = (0..500).map(|i| i % 4).collect();
        let mut p = PpmPredictor::new(3);
        for &s in &periodic {
            p.observe(s);
        }
        // 4 order-1 + 4 order-2 + 4 order-3 contexts.
        assert!(p.num_contexts() <= 12);
    }
}
