#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # pioeval-model
//!
//! The *modeling and prediction* phase of the paper's evaluation cycle
//! (Sec. IV-B), implemented from scratch:
//!
//! * [`stats`] — the classical toolkit the paper lists verbatim:
//!   mean/deviation, linear regression, correlation coefficients,
//!   coefficient of variation, hypothesis testing (Welch's t,
//!   Kolmogorov–Smirnov), PDFs/CDFs, percentiles.
//! * [`markov`] — Markov-chain fitting over tokenized op streams.
//! * [`linreg`] — simple & multiple linear regression (the baseline the
//!   neural-network studies compare against).
//! * [`nn`] — a multilayer perceptron (Schmid & Kunkel: predicting file
//!   access times with neural networks).
//! * [`tree`] / [`forest`] — CART regression trees and random forests
//!   (Sun et al.: predicting execution and I/O time of applications for
//!   unseen inputs, no domain knowledge).
//! * [`ppm`] — longest-context next-operation prediction over token
//!   streams, the Omnisc'IO-style grammar/sequence predictor.
//! * [`eval`] — train/test splitting and the error metrics
//!   (MAE/RMSE/MAPE/R²) every prediction study reports.

pub mod eval;
pub mod forest;
pub mod kmeans;
pub mod linreg;
pub mod markov;
pub mod nn;
pub mod ppm;
pub mod stats;
pub mod tree;

pub use eval::{train_test_split, ErrorMetrics};
pub use forest::{RandomForest, RandomForestConfig};
pub use kmeans::KMeans;
pub use linreg::LinearRegression;
pub use markov::MarkovChain;
pub use nn::{Mlp, MlpConfig};
pub use ppm::PpmPredictor;
pub use tree::{RegressionTree, TreeConfig};
