//! A multilayer perceptron, from scratch.
//!
//! The model class of Schmid & Kunkel ("Predicting I/O Performance in
//! HPC Using Artificial Neural Networks"): a small fully-connected
//! network with tanh hidden units and a linear output, trained with
//! mini-batch SGD on standardized features/targets.

use pioeval_types::{rng, split_seed, Error, Result};
use rand::Rng;

/// Training configuration.
#[derive(Clone, Debug)]
pub struct MlpConfig {
    /// Hidden layer widths (e.g. `[16, 8]`).
    pub hidden: Vec<usize>,
    /// Training epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch: usize,
    /// RNG seed (weight init + shuffling).
    pub seed: u64,
}

impl Default for MlpConfig {
    fn default() -> Self {
        MlpConfig {
            hidden: vec![16, 8],
            epochs: 300,
            learning_rate: 0.01,
            batch: 16,
            seed: 7,
        }
    }
}

struct DenseLayer {
    /// weights[out][in]
    w: Vec<Vec<f64>>,
    b: Vec<f64>,
    /// tanh on hidden layers, identity on the output layer.
    activate: bool,
}

impl DenseLayer {
    fn forward(&self, x: &[f64]) -> Vec<f64> {
        self.w
            .iter()
            .zip(&self.b)
            .map(|(row, b)| {
                let z = b + row.iter().zip(x).map(|(w, v)| w * v).sum::<f64>();
                if self.activate {
                    z.tanh()
                } else {
                    z
                }
            })
            .collect()
    }
}

/// Per-column standardization parameters.
#[derive(Clone, Debug)]
struct Scaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Scaler {
    fn fit(rows: &[Vec<f64>]) -> Scaler {
        let d = rows[0].len();
        let n = rows.len() as f64;
        let mut mean = vec![0.0; d];
        for r in rows {
            for (m, v) in mean.iter_mut().zip(r) {
                *m += v / n;
            }
        }
        let mut std = vec![0.0; d];
        for r in rows {
            for ((s, v), m) in std.iter_mut().zip(r).zip(&mean) {
                *s += (v - m) * (v - m) / n;
            }
        }
        for s in &mut std {
            *s = s.sqrt().max(1e-9);
        }
        Scaler { mean, std }
    }

    fn apply(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(&self.mean)
            .zip(&self.std)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }
}

/// A trained MLP regressor.
pub struct Mlp {
    layers: Vec<DenseLayer>,
    x_scaler: Scaler,
    y_mean: f64,
    y_std: f64,
    /// Mean squared training error (standardized units) per epoch.
    pub loss_history: Vec<f64>,
}

impl Mlp {
    /// Train on rows of features and scalar targets.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], cfg: &MlpConfig) -> Result<Self> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(Error::Model("empty or mismatched training data".into()));
        }
        let d = xs[0].len();
        if d == 0 || xs.iter().any(|r| r.len() != d) {
            return Err(Error::Model("bad feature dimensions".into()));
        }

        let x_scaler = Scaler::fit(xs);
        let y_mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let y_std = (ys.iter().map(|y| (y - y_mean) * (y - y_mean)).sum::<f64>() / ys.len() as f64)
            .sqrt()
            .max(1e-9);
        let x_std: Vec<Vec<f64>> = xs.iter().map(|r| x_scaler.apply(r)).collect();
        let y_stdz: Vec<f64> = ys.iter().map(|y| (y - y_mean) / y_std).collect();

        // Build layers.
        let mut sizes = vec![d];
        sizes.extend(&cfg.hidden);
        sizes.push(1);
        let mut init_rng = rng(split_seed(cfg.seed, 0));
        let mut layers: Vec<DenseLayer> = Vec::new();
        for li in 1..sizes.len() {
            let fan_in = sizes[li - 1];
            let scale = 1.0 / (fan_in as f64).sqrt();
            layers.push(DenseLayer {
                w: (0..sizes[li])
                    .map(|_| {
                        (0..fan_in)
                            .map(|_| init_rng.gen_range(-scale..scale))
                            .collect()
                    })
                    .collect(),
                b: vec![0.0; sizes[li]],
                activate: li != sizes.len() - 1,
            });
        }

        let mut order: Vec<usize> = (0..x_std.len()).collect();
        let mut shuffle_rng = rng(split_seed(cfg.seed, 1));
        let mut loss_history = Vec::with_capacity(cfg.epochs);
        let batch = cfg.batch.max(1);
        for _epoch in 0..cfg.epochs {
            // Fisher–Yates with the seeded rng.
            for i in (1..order.len()).rev() {
                let j = shuffle_rng.gen_range(0..=i);
                order.swap(i, j);
            }
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(batch) {
                // Accumulate gradients over the mini-batch.
                let mut grads_w: Vec<Vec<Vec<f64>>> = layers
                    .iter()
                    .map(|l| vec![vec![0.0; l.w[0].len()]; l.w.len()])
                    .collect();
                let mut grads_b: Vec<Vec<f64>> =
                    layers.iter().map(|l| vec![0.0; l.b.len()]).collect();
                for &i in chunk {
                    let x = &x_std[i];
                    // Forward, keeping activations.
                    let mut acts: Vec<Vec<f64>> = vec![x.clone()];
                    for l in &layers {
                        let a = l.forward(acts.last().unwrap());
                        acts.push(a);
                    }
                    let pred = acts.last().unwrap()[0];
                    let err = pred - y_stdz[i];
                    epoch_loss += err * err;
                    // Backward.
                    let mut delta = vec![err]; // dL/dz at output (linear)
                    for li in (0..layers.len()).rev() {
                        let input = &acts[li];
                        for (o, dz) in delta.iter().enumerate() {
                            for (ii, v) in input.iter().enumerate() {
                                grads_w[li][o][ii] += dz * v;
                            }
                            grads_b[li][o] += dz;
                        }
                        if li > 0 {
                            // Propagate through weights and the previous
                            // layer's tanh.
                            let prev_act = &acts[li];
                            let mut next_delta = vec![0.0; prev_act.len()];
                            for (o, dz) in delta.iter().enumerate() {
                                for (ii, nd) in next_delta.iter_mut().enumerate() {
                                    *nd += dz * layers[li].w[o][ii];
                                }
                            }
                            for (nd, a) in next_delta.iter_mut().zip(prev_act) {
                                *nd *= 1.0 - a * a; // tanh'
                            }
                            delta = next_delta;
                        }
                    }
                }
                let lr = cfg.learning_rate / chunk.len() as f64;
                for ((l, gw), gb) in layers.iter_mut().zip(&grads_w).zip(&grads_b) {
                    for (row, grow) in l.w.iter_mut().zip(gw) {
                        for (w, g) in row.iter_mut().zip(grow) {
                            *w -= lr * g;
                        }
                    }
                    for (b, g) in l.b.iter_mut().zip(gb) {
                        *b -= lr * g;
                    }
                }
            }
            loss_history.push(epoch_loss / x_std.len() as f64);
        }

        Ok(Mlp {
            layers,
            x_scaler,
            y_mean,
            y_std,
            loss_history,
        })
    }

    /// Predict one row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut a = self.x_scaler.apply(x);
        for l in &self.layers {
            a = l.forward(&a);
        }
        a[0] * self.y_std + self.y_mean
    }

    /// Predict many rows.
    pub fn predict_all(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_linear_function() {
        let xs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64 / 8.0]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| 3.0 * r[0] + 1.0).collect();
        let cfg = MlpConfig {
            epochs: 4000,
            learning_rate: 0.02,
            ..MlpConfig::default()
        };
        let m = Mlp::fit(&xs, &ys, &cfg).unwrap();
        // Tolerance is loosest at the standardized extremes where tanh
        // saturates; 0.8 on a target range of [1, 22.6] is ~4%.
        for (x, y) in xs.iter().zip(&ys) {
            assert!(
                (m.predict(x) - y).abs() < 0.8,
                "x={x:?} pred={} want={y}",
                m.predict(x)
            );
        }
    }

    #[test]
    fn learns_nonlinear_function_better_than_any_line() {
        // y = sin(x): a line cannot fit; the MLP can.
        let xs: Vec<Vec<f64>> = (0..80)
            .map(|i| vec![i as f64 / 80.0 * std::f64::consts::TAU])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|r| r[0].sin()).collect();
        let cfg = MlpConfig {
            epochs: 2000,
            learning_rate: 0.02,
            ..MlpConfig::default()
        };
        let m = Mlp::fit(&xs, &ys, &cfg).unwrap();
        let mse: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (m.predict(x) - y).powi(2))
            .sum::<f64>()
            / xs.len() as f64;
        // Best constant/line has MSE ≈ 0.5; the MLP must do far better.
        assert!(mse < 0.1, "mse = {mse}");
    }

    #[test]
    fn training_loss_decreases() {
        let xs: Vec<Vec<f64>> = (0..64).map(|i| vec![(i % 13) as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| r[0] * r[0]).collect();
        let m = Mlp::fit(&xs, &ys, &MlpConfig::default()).unwrap();
        let first = m.loss_history.first().unwrap();
        let last = m.loss_history.last().unwrap();
        assert!(last < first, "loss did not decrease: {first} → {last}");
    }

    #[test]
    fn deterministic_given_seed() {
        let xs: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| r[0] * 2.0).collect();
        let a = Mlp::fit(&xs, &ys, &MlpConfig::default()).unwrap();
        let b = Mlp::fit(&xs, &ys, &MlpConfig::default()).unwrap();
        assert_eq!(a.predict(&[10.0]), b.predict(&[10.0]));
    }

    #[test]
    fn rejects_bad_input() {
        assert!(Mlp::fit(&[], &[], &MlpConfig::default()).is_err());
        assert!(Mlp::fit(&[vec![]], &[1.0], &MlpConfig::default()).is_err());
        assert!(Mlp::fit(&[vec![1.0]], &[1.0, 2.0], &MlpConfig::default()).is_err());
    }
}
