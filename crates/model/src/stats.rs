//! Classical statistics (Sec. IV-B1's toolkit).

/// Arithmetic mean. Returns 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample variance (n−1 denominator). Returns 0 for fewer than 2 points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Sample standard deviation.
pub fn stddev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Coefficient of variation (σ/μ). Returns 0 when the mean is 0.
pub fn coefficient_of_variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        return 0.0;
    }
    stddev(xs) / m
}

/// Exact nearest-rank percentile, `p` in [0, 100]. Delegates to the
/// workspace-wide shared implementation (see
/// [`mod@pioeval_types::percentile`] for the rank formula and documented
/// tie behavior) so model statistics, straggler detection, and
/// request-trace analytics all report identical quantiles.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    pioeval_types::percentile(xs, p)
}

/// Sample covariance (n−1 denominator).
pub fn covariance(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "covariance needs paired samples");
    if xs.len() < 2 {
        return 0.0;
    }
    let mx = mean(xs);
    let my = mean(ys);
    xs.iter()
        .zip(ys)
        .map(|(x, y)| (x - mx) * (y - my))
        .sum::<f64>()
        / (xs.len() - 1) as f64
}

/// Pearson correlation coefficient. Returns 0 when either side is
/// constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let sx = stddev(xs);
    let sy = stddev(ys);
    if sx == 0.0 || sy == 0.0 {
        return 0.0;
    }
    covariance(xs, ys) / (sx * sy)
}

/// Fractional ranks (average rank for ties).
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].total_cmp(&xs[b]));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation.
pub fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    pearson(&ranks(xs), &ranks(ys))
}

/// An empirical histogram over equal-width bins.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Left edge of the first bin.
    pub min: f64,
    /// Bin width.
    pub width: f64,
    /// Counts per bin.
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Build with `bins` equal-width bins spanning the data range.
    pub fn new(xs: &[f64], bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if xs.is_empty() || min == max {
            return Histogram {
                min: if xs.is_empty() { 0.0 } else { min },
                width: 1.0,
                counts: {
                    let mut c = vec![0; bins];
                    if !xs.is_empty() {
                        c[0] = xs.len() as u64;
                    }
                    c
                },
            };
        }
        let width = (max - min) / bins as f64;
        let mut counts = vec![0u64; bins];
        for &x in xs {
            let b = (((x - min) / width) as usize).min(bins - 1);
            counts[b] += 1;
        }
        Histogram { min, width, counts }
    }

    /// The empirical PDF (bin probabilities).
    pub fn pdf(&self) -> Vec<f64> {
        let n: u64 = self.counts.iter().sum();
        if n == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts.iter().map(|&c| c as f64 / n as f64).collect()
    }

    /// The empirical CDF at bin right edges.
    pub fn cdf(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.pdf()
            .into_iter()
            .map(|p| {
                acc += p;
                acc
            })
            .collect()
    }
}

/// Normalized autocorrelation of `xs` at `lag` (Pearson correlation of
/// the series with its lag-shifted self). Returns 0 for degenerate
/// inputs.
pub fn autocorrelation(xs: &[f64], lag: usize) -> f64 {
    if lag == 0 || lag >= xs.len() {
        return if lag == 0 && !xs.is_empty() { 1.0 } else { 0.0 };
    }
    pearson(&xs[..xs.len() - lag], &xs[lag..])
}

/// Detect the dominant period of a series: the lag in `[2, max_lag]`
/// with the highest autocorrelation, if that correlation exceeds
/// `threshold`. The tool behind the paper's "I/O periodicity and
/// repetition" analyses (Sec. IV-B1): checkpoint cadences show up as a
/// strong autocorrelation peak at the period length.
pub fn detect_period(xs: &[f64], max_lag: usize, threshold: f64) -> Option<usize> {
    let max_lag = max_lag.min(xs.len().saturating_sub(1));
    if max_lag < 2 {
        return None;
    }
    let acs: Vec<(usize, f64)> = (2..=max_lag)
        .map(|lag| (lag, autocorrelation(xs, lag)))
        .collect();
    let best = acs
        .iter()
        .map(|&(_, v)| v)
        .fold(f64::NEG_INFINITY, f64::max);
    if best <= threshold {
        return None;
    }
    // Harmonics of the true period score (numerically almost) as high as
    // the period itself; prefer the smallest lag within epsilon of the
    // maximum — the fundamental.
    acs.iter()
        .find(|&&(_, v)| v >= best - 1e-6)
        .map(|&(lag, _)| lag)
}

/// Regularized incomplete beta function I_x(a, b), via the continued
/// fraction expansion (Numerical Recipes `betacf`). Needed for the
/// Student-t CDF used by [`welch_t_test`].
fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_beta = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b);
    let front = (ln_beta + a * x.ln() + b * (1.0 - x).ln()).exp();
    // Continued fraction converges fast for x < (a+1)/(a+b+2);
    // otherwise use the symmetry I_x(a,b) = 1 - I_{1-x}(b,a).
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - incomplete_beta(b, a, 1.0 - x)
    }
}

fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Lanczos approximation of ln Γ(x).
fn ln_gamma(x: f64) -> f64 {
    const G: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for g in G {
        y += 1.0;
        ser += g / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

/// Two-sided p-value of the Student-t distribution with `df` degrees of
/// freedom at statistic `t`.
pub fn t_p_value(t: f64, df: f64) -> f64 {
    incomplete_beta(df / 2.0, 0.5, df / (df + t * t))
}

/// Result of a hypothesis test.
#[derive(Clone, Copy, Debug)]
pub struct TestResult {
    /// The test statistic.
    pub statistic: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// Welch's unequal-variance t-test for difference of means.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> TestResult {
    let (ma, mb) = (mean(a), mean(b));
    let (va, vb) = (variance(a), variance(b));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let se2 = va / na + vb / nb;
    if se2 == 0.0 {
        return TestResult {
            statistic: 0.0,
            p_value: 1.0,
        };
    }
    let t = (ma - mb) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2 / ((va / na) * (va / na) / (na - 1.0) + (vb / nb) * (vb / nb) / (nb - 1.0));
    TestResult {
        statistic: t,
        p_value: t_p_value(t, df.max(1.0)),
    }
}

/// Two-sample Kolmogorov–Smirnov test (asymptotic p-value).
pub fn ks_test(a: &[f64], b: &[f64]) -> TestResult {
    assert!(!a.is_empty() && !b.is_empty(), "KS test needs data");
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(|x, y| x.total_cmp(y));
    sb.sort_by(|x, y| x.total_cmp(y));
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        let fa = i as f64 / sa.len() as f64;
        let fb = j as f64 / sb.len() as f64;
        d = d.max((fa - fb).abs());
    }
    let n = (sa.len() * sb.len()) as f64 / (sa.len() + sb.len()) as f64;
    let lambda = (n.sqrt() + 0.12 + 0.11 / n.sqrt()) * d;
    // Q_KS(λ→0) = 1; the alternating series below does not converge there.
    if lambda < 1e-3 {
        return TestResult {
            statistic: d,
            p_value: 1.0,
        };
    }
    // Asymptotic Q_KS series.
    let mut p = 0.0;
    let mut sign = 1.0;
    for k in 1..=100 {
        let term = sign * (-2.0 * (k as f64) * (k as f64) * lambda * lambda).exp();
        p += term;
        sign = -sign;
        if term.abs() < 1e-12 {
            break;
        }
    }
    TestResult {
        statistic: d,
        p_value: (2.0 * p).clamp(0.0, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_moments() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), 5.0);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert!((coefficient_of_variation(&xs) - stddev(&xs) / 5.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        // Nearest-rank: the lower central value, never an interpolation.
        assert_eq!(percentile(&xs, 50.0), 2.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn correlation_signs() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y_pos = [2.0, 4.0, 6.0, 8.0, 10.0];
        let y_neg = [10.0, 8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &y_pos) - 1.0).abs() < 1e-12);
        assert!((pearson(&x, &y_neg) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[5.0; 5]), 0.0);
    }

    #[test]
    fn spearman_captures_monotone_nonlinear() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v: &f64| v.exp()).collect();
        assert!((spearman(&x, &y) - 1.0).abs() < 1e-12);
        // Ties get average ranks.
        let r = ranks(&[1.0, 2.0, 2.0, 3.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn histogram_pdf_cdf() {
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0];
        let h = Histogram::new(&xs, 4);
        assert_eq!(h.counts, vec![2, 2, 2, 2]);
        let cdf = h.cdf();
        assert!((cdf[3] - 1.0).abs() < 1e-12);
        assert!((cdf[1] - 0.5).abs() < 1e-12);
        // Degenerate input.
        let h = Histogram::new(&[3.0, 3.0], 4);
        assert_eq!(h.counts[0], 2);
    }

    #[test]
    fn welch_t_detects_mean_shift() {
        let a: Vec<f64> = (0..30).map(|i| 10.0 + (i % 5) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..30).map(|i| 12.0 + (i % 5) as f64 * 0.1).collect();
        let r = welch_t_test(&a, &b);
        assert!(r.p_value < 0.001, "p = {}", r.p_value);
        let same = welch_t_test(&a, &a);
        assert!(same.p_value > 0.9);
    }

    #[test]
    fn t_p_value_matches_known_points() {
        // t=2.045, df=29 → p ≈ 0.05 (classic table value).
        let p = t_p_value(2.045, 29.0);
        assert!((p - 0.05).abs() < 0.005, "p = {p}");
        // t=0 → p = 1.
        assert!((t_p_value(0.0, 10.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn autocorrelation_finds_checkpoint_cadence() {
        // A bursty series with period 5: [9,0,0,0,0, 9,0,0,0,0, ...]
        let xs: Vec<f64> = (0..60)
            .map(|i| if i % 5 == 0 { 9.0 } else { 0.0 })
            .collect();
        assert!(autocorrelation(&xs, 5) > 0.9);
        assert!(autocorrelation(&xs, 3) < 0.5);
        assert_eq!(detect_period(&xs, 20, 0.5), Some(5));
        // Well-mixed noise has no period (affine-mod sequences are NOT
        // good noise here — their lagged copies correlate strongly).
        let noise: Vec<f64> = (0..60u64)
            .map(|i| (pioeval_types::split_seed(i, 5) % 1000) as f64)
            .collect();
        assert_eq!(detect_period(&noise, 20, 0.8), None);
        // Degenerate inputs.
        assert_eq!(autocorrelation(&[], 0), 0.0);
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), 0.0);
        assert_eq!(autocorrelation(&[1.0, 2.0, 3.0], 0), 1.0);
    }

    #[test]
    fn ks_detects_distribution_shift() {
        let a: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
        let b: Vec<f64> = (0..200).map(|i| i as f64 / 200.0 + 0.5).collect();
        let r = ks_test(&a, &b);
        assert!(r.statistic > 0.4);
        assert!(r.p_value < 0.001);
        let same = ks_test(&a, &a);
        assert!(same.p_value > 0.99);
    }
}
