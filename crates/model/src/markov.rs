//! Discrete Markov chains over tokenized operation streams.

use pioeval_types::{Error, Result};

/// A first-order Markov chain fitted from a symbol sequence.
#[derive(Clone, Debug)]
pub struct MarkovChain {
    /// Alphabet size.
    pub states: usize,
    /// Row-stochastic transition matrix (row = from, col = to).
    pub transitions: Vec<Vec<f64>>,
    /// Raw transition counts.
    pub counts: Vec<Vec<u64>>,
}

impl MarkovChain {
    /// Fit from a sequence of symbols in `0..states`.
    pub fn fit(seq: &[u32], states: usize) -> Result<Self> {
        if states == 0 {
            return Err(Error::Model("empty state space".into()));
        }
        if seq.iter().any(|&s| s as usize >= states) {
            return Err(Error::Model("symbol out of range".into()));
        }
        let mut counts = vec![vec![0u64; states]; states];
        for w in seq.windows(2) {
            counts[w[0] as usize][w[1] as usize] += 1;
        }
        let transitions = counts
            .iter()
            .map(|row| {
                let total: u64 = row.iter().sum();
                if total == 0 {
                    // Unseen state: uniform (maximum-entropy default).
                    vec![1.0 / states as f64; states]
                } else {
                    row.iter().map(|&c| c as f64 / total as f64).collect()
                }
            })
            .collect();
        Ok(MarkovChain {
            states,
            transitions,
            counts,
        })
    }

    /// Most likely successor of `state` (deterministic tie-break: lowest
    /// symbol).
    pub fn predict_next(&self, state: u32) -> u32 {
        let row = &self.transitions[state as usize];
        let mut best = 0usize;
        for (i, &p) in row.iter().enumerate() {
            if p > row[best] {
                best = i;
            }
        }
        best as u32
    }

    /// Probability of transitioning `from → to`.
    pub fn probability(&self, from: u32, to: u32) -> f64 {
        self.transitions[from as usize][to as usize]
    }

    /// Stationary distribution by power iteration.
    pub fn stationary(&self, iterations: usize) -> Vec<f64> {
        let n = self.states;
        let mut pi = vec![1.0 / n as f64; n];
        for _ in 0..iterations {
            let mut next = vec![0.0; n];
            for (from, row) in self.transitions.iter().enumerate() {
                for (to, &p) in row.iter().enumerate() {
                    next[to] += pi[from] * p;
                }
            }
            pi = next;
        }
        pi
    }

    /// One-step prediction accuracy over a held-out sequence.
    pub fn accuracy(&self, seq: &[u32]) -> f64 {
        if seq.len() < 2 {
            return 0.0;
        }
        let correct = seq
            .windows(2)
            .filter(|w| self.predict_next(w[0]) == w[1])
            .count();
        correct as f64 / (seq.len() - 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_deterministic_cycle() {
        let seq: Vec<u32> = (0..30).map(|i| i % 3).collect();
        let m = MarkovChain::fit(&seq, 3).unwrap();
        assert_eq!(m.predict_next(0), 1);
        assert_eq!(m.predict_next(1), 2);
        assert_eq!(m.predict_next(2), 0);
        assert_eq!(m.probability(0, 1), 1.0);
        assert!((m.accuracy(&seq) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stationary_of_cycle_is_uniform() {
        let seq: Vec<u32> = (0..300).map(|i| i % 3).collect();
        let m = MarkovChain::fit(&seq, 3).unwrap();
        let pi = m.stationary(100);
        for p in pi {
            assert!((p - 1.0 / 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn unseen_states_get_uniform_rows() {
        let m = MarkovChain::fit(&[0, 1, 0, 1], 3).unwrap();
        let row = &m.transitions[2];
        assert!(row.iter().all(|&p| (p - 1.0 / 3.0).abs() < 1e-12));
    }

    #[test]
    fn validates_input() {
        assert!(MarkovChain::fit(&[0, 5], 3).is_err());
        assert!(MarkovChain::fit(&[], 0).is_err());
        let m = MarkovChain::fit(&[], 2).unwrap();
        assert_eq!(m.accuracy(&[0]), 0.0);
    }
}
