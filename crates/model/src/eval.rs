//! Train/test evaluation harness and error metrics.

use pioeval_types::{rng, split_seed};
use rand::Rng;

/// The error metrics prediction studies report.
#[derive(Clone, Copy, Debug)]
pub struct ErrorMetrics {
    /// Mean absolute error.
    pub mae: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Mean absolute percentage error (targets of 0 are skipped).
    pub mape: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

impl ErrorMetrics {
    /// Compute metrics for predictions against truth.
    pub fn compute(truth: &[f64], pred: &[f64]) -> Self {
        assert_eq!(truth.len(), pred.len(), "length mismatch");
        assert!(!truth.is_empty(), "empty evaluation set");
        let n = truth.len() as f64;
        let mae = truth
            .iter()
            .zip(pred)
            .map(|(t, p)| (t - p).abs())
            .sum::<f64>()
            / n;
        let mse = truth
            .iter()
            .zip(pred)
            .map(|(t, p)| (t - p) * (t - p))
            .sum::<f64>()
            / n;
        let nonzero = truth.iter().zip(pred).filter(|(t, _)| **t != 0.0);
        let (mape_sum, mape_n) = nonzero.fold((0.0, 0u64), |(s, c), (t, p)| {
            (s + ((t - p) / t).abs(), c + 1)
        });
        let mape = if mape_n == 0 {
            0.0
        } else {
            mape_sum / mape_n as f64 * 100.0
        };
        let mean_t = truth.iter().sum::<f64>() / n;
        let ss_tot = truth
            .iter()
            .map(|t| (t - mean_t) * (t - mean_t))
            .sum::<f64>();
        let r2 = if ss_tot == 0.0 {
            if mse == 0.0 {
                1.0
            } else {
                0.0
            }
        } else {
            1.0 - mse * n / ss_tot
        };
        ErrorMetrics {
            mae,
            rmse: mse.sqrt(),
            mape,
            r2,
        }
    }
}

/// Deterministic shuffled train/test split.
///
/// Returns (train_xs, train_ys, test_xs, test_ys) with `test_fraction`
/// of rows held out.
#[allow(clippy::type_complexity)]
pub fn train_test_split(
    xs: &[Vec<f64>],
    ys: &[f64],
    test_fraction: f64,
    seed: u64,
) -> (Vec<Vec<f64>>, Vec<f64>, Vec<Vec<f64>>, Vec<f64>) {
    assert_eq!(xs.len(), ys.len(), "length mismatch");
    let mut order: Vec<usize> = (0..xs.len()).collect();
    let mut r = rng(split_seed(seed, 99));
    for i in (1..order.len()).rev() {
        let j = r.gen_range(0..=i);
        order.swap(i, j);
    }
    let n_test = ((xs.len() as f64 * test_fraction).round() as usize)
        .clamp(1, xs.len().saturating_sub(1).max(1));
    let (test_idx, train_idx) = order.split_at(n_test);
    let pick = |idx: &[usize]| -> (Vec<Vec<f64>>, Vec<f64>) {
        (
            idx.iter().map(|&i| xs[i].clone()).collect(),
            idx.iter().map(|&i| ys[i]).collect(),
        )
    };
    let (test_x, test_y) = pick(test_idx);
    let (train_x, train_y) = pick(train_idx);
    (train_x, train_y, test_x, test_y)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_scores_perfectly() {
        let t = [1.0, 2.0, 3.0];
        let m = ErrorMetrics::compute(&t, &t);
        assert_eq!(m.mae, 0.0);
        assert_eq!(m.rmse, 0.0);
        assert_eq!(m.mape, 0.0);
        assert_eq!(m.r2, 1.0);
    }

    #[test]
    fn constant_prediction_has_zero_r2() {
        let t = [1.0, 2.0, 3.0, 4.0];
        let p = [2.5; 4];
        let m = ErrorMetrics::compute(&t, &p);
        assert!(m.r2.abs() < 1e-12);
        assert_eq!(m.mae, 1.0);
    }

    #[test]
    fn mape_skips_zero_targets() {
        let t = [0.0, 10.0];
        let p = [5.0, 11.0];
        let m = ErrorMetrics::compute(&t, &p);
        assert!((m.mape - 10.0).abs() < 1e-9);
    }

    #[test]
    fn split_partitions_and_is_deterministic() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let (tr_x, tr_y, te_x, te_y) = train_test_split(&xs, &ys, 0.2, 5);
        assert_eq!(tr_x.len(), 80);
        assert_eq!(te_x.len(), 20);
        assert_eq!(tr_y.len(), 80);
        assert_eq!(te_y.len(), 20);
        // No leakage: union of features covers all rows exactly once.
        let mut all: Vec<f64> = tr_x.iter().chain(&te_x).map(|r| r[0]).collect();
        all.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(all, (0..100).map(|i| i as f64).collect::<Vec<_>>());
        // Determinism.
        let (tr_x2, _, _, _) = train_test_split(&xs, &ys, 0.2, 5);
        assert_eq!(tr_x, tr_x2);
    }
}
