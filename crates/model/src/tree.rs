//! CART regression trees.
//!
//! Splits greedily by variance reduction; supports depth/size limits and
//! per-split feature subsampling (the randomization [`crate::forest`]
//! builds on).

use pioeval_types::{rng, Error, Result};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Tree growth limits.
#[derive(Clone, Copy, Debug)]
pub struct TreeConfig {
    /// Maximum depth (root = 0).
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Features considered per split (`None` = all).
    pub features_per_split: Option<usize>,
    /// Seed for feature subsampling.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 8,
            min_samples_split: 4,
            features_per_split: None,
            seed: 0,
        }
    }
}

enum Node {
    Leaf(f64),
    Split {
        feature: usize,
        threshold: f64,
        left: Box<Node>,
        right: Box<Node>,
    },
}

/// A fitted regression tree.
pub struct RegressionTree {
    root: Node,
    /// Summed variance reduction per feature (importance).
    pub importance: Vec<f64>,
    dims: usize,
}

impl RegressionTree {
    /// Fit on rows of features and targets.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], cfg: &TreeConfig) -> Result<Self> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(Error::Model("empty or mismatched training data".into()));
        }
        let dims = xs[0].len();
        if dims == 0 || xs.iter().any(|r| r.len() != dims) {
            return Err(Error::Model("bad feature dimensions".into()));
        }
        let idx: Vec<usize> = (0..xs.len()).collect();
        let mut importance = vec![0.0; dims];
        let mut feature_rng = rng(cfg.seed);
        let root = build(xs, ys, idx, 0, cfg, &mut importance, &mut feature_rng);
        Ok(RegressionTree {
            root,
            importance,
            dims,
        })
    }

    /// Predict one row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dims, "feature dimension mismatch");
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(v) => return *v,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    node = if x[*feature] <= *threshold {
                        left
                    } else {
                        right
                    };
                }
            }
        }
    }

    /// Tree depth (diagnostics).
    pub fn depth(&self) -> usize {
        fn d(n: &Node) -> usize {
            match n {
                Node::Leaf(_) => 0,
                Node::Split { left, right, .. } => 1 + d(left).max(d(right)),
            }
        }
        d(&self.root)
    }
}

fn sum_and_sq(ys: &[f64], idx: &[usize]) -> (f64, f64) {
    let mut s = 0.0;
    let mut sq = 0.0;
    for &i in idx {
        s += ys[i];
        sq += ys[i] * ys[i];
    }
    (s, sq)
}

#[allow(clippy::too_many_arguments)]
fn build(
    xs: &[Vec<f64>],
    ys: &[f64],
    idx: Vec<usize>,
    depth: usize,
    cfg: &TreeConfig,
    importance: &mut [f64],
    feature_rng: &mut StdRng,
) -> Node {
    let n = idx.len();
    let (sum, sq) = sum_and_sq(ys, &idx);
    let mean = sum / n as f64;
    let sse = sq - sum * sum / n as f64;
    if depth >= cfg.max_depth || n < cfg.min_samples_split || sse <= 1e-12 {
        return Node::Leaf(mean);
    }

    // Candidate features (optionally subsampled).
    let dims = xs[0].len();
    let mut features: Vec<usize> = (0..dims).collect();
    if let Some(k) = cfg.features_per_split {
        features.shuffle(feature_rng);
        features.truncate(k.clamp(1, dims));
        features.sort_unstable(); // deterministic evaluation order
    }

    // Best split: scan each feature's sorted order with prefix sums.
    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, gain)
    for &f in &features {
        let mut order = idx.clone();
        order.sort_by(|&a, &b| xs[a][f].total_cmp(&xs[b][f]));
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for split_at in 1..n {
            let i = order[split_at - 1];
            left_sum += ys[i];
            left_sq += ys[i] * ys[i];
            // Can't split between equal feature values.
            if xs[order[split_at - 1]][f] == xs[order[split_at]][f] {
                continue;
            }
            let ln = split_at as f64;
            let rn = (n - split_at) as f64;
            let right_sum = sum - left_sum;
            let right_sq = sq - left_sq;
            let left_sse = left_sq - left_sum * left_sum / ln;
            let right_sse = right_sq - right_sum * right_sum / rn;
            let gain = sse - left_sse - right_sse;
            if best.is_none() || gain > best.unwrap().2 {
                let threshold = (xs[order[split_at - 1]][f] + xs[order[split_at]][f]) / 2.0;
                best = Some((f, threshold, gain));
            }
        }
    }

    let Some((feature, threshold, gain)) = best else {
        return Node::Leaf(mean);
    };
    if gain <= 1e-12 {
        return Node::Leaf(mean);
    }
    importance[feature] += gain;

    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
        idx.into_iter().partition(|&i| xs[i][feature] <= threshold);
    let left = build(xs, ys, left_idx, depth + 1, cfg, importance, feature_rng);
    let right = build(xs, ys, right_idx, depth + 1, cfg, importance, feature_rng);
    Node::Split {
        feature,
        threshold,
        left: Box::new(left),
        right: Box::new(right),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_step_function_exactly() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|r| if r[0] < 20.0 { 1.0 } else { 5.0 })
            .collect();
        let t = RegressionTree::fit(&xs, &ys, &TreeConfig::default()).unwrap();
        assert_eq!(t.predict(&[3.0]), 1.0);
        assert_eq!(t.predict(&[30.0]), 5.0);
        assert!(t.depth() >= 1);
    }

    #[test]
    fn importance_credits_the_informative_feature() {
        // Feature 1 is noise; feature 0 drives y.
        let xs: Vec<Vec<f64>> = (0..60)
            .map(|i| vec![i as f64, ((i * 17) % 7) as f64])
            .collect();
        let ys: Vec<f64> = xs
            .iter()
            .map(|r| if r[0] < 30.0 { 0.0 } else { 10.0 })
            .collect();
        let t = RegressionTree::fit(&xs, &ys, &TreeConfig::default()).unwrap();
        assert!(t.importance[0] > t.importance[1] * 10.0);
    }

    #[test]
    fn depth_limit_is_respected() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = xs.iter().map(|r| (r[0] * 0.7).sin()).collect();
        let cfg = TreeConfig {
            max_depth: 3,
            ..TreeConfig::default()
        };
        let t = RegressionTree::fit(&xs, &ys, &cfg).unwrap();
        assert!(t.depth() <= 3);
    }

    #[test]
    fn constant_target_yields_single_leaf() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let ys = vec![4.2; 10];
        let t = RegressionTree::fit(&xs, &ys, &TreeConfig::default()).unwrap();
        assert_eq!(t.depth(), 0);
        assert!((t.predict(&[99.0]) - 4.2).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(RegressionTree::fit(&[], &[], &TreeConfig::default()).is_err());
        assert!(RegressionTree::fit(&[vec![1.0]], &[1.0, 2.0], &TreeConfig::default()).is_err());
    }
}
