//! k-means clustering (Lloyd's algorithm with k-means++ seeding).
//!
//! IOMiner (Wang et al.) and the holistic log studies cluster jobs by
//! their I/O signatures to find behaviour classes in a year of logs;
//! this is the clustering engine `pioeval-monitor` uses for that.

use pioeval_types::{rng, split_seed, Error, Result};
use rand::Rng;

/// A fitted clustering.
#[derive(Clone, Debug)]
pub struct KMeans {
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Assignment of each training point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

fn nearest(centroids: &[Vec<f64>], x: &[f64]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = sq_dist(c, x);
        if d < best_d {
            best = i;
            best_d = d;
        }
    }
    (best, best_d)
}

impl KMeans {
    /// Cluster `xs` into `k` groups. Deterministic in `seed`.
    pub fn fit(xs: &[Vec<f64>], k: usize, seed: u64) -> Result<KMeans> {
        if xs.is_empty() {
            return Err(Error::Model("no points to cluster".into()));
        }
        let dims = xs[0].len();
        if dims == 0 || xs.iter().any(|x| x.len() != dims) {
            return Err(Error::Model("bad point dimensions".into()));
        }
        let k = k.clamp(1, xs.len());

        // k-means++ seeding.
        let mut r = rng(split_seed(seed, 77));
        let mut centroids: Vec<Vec<f64>> = vec![xs[r.gen_range(0..xs.len())].clone()];
        while centroids.len() < k {
            let d2: Vec<f64> = xs.iter().map(|x| nearest(&centroids, x).1).collect();
            let total: f64 = d2.iter().sum();
            if total <= 0.0 {
                // All points coincide with centroids; duplicate one.
                centroids.push(centroids[0].clone());
                continue;
            }
            let mut pick = r.gen_range(0.0..total);
            let mut idx = 0;
            for (i, &d) in d2.iter().enumerate() {
                pick -= d;
                if pick <= 0.0 {
                    idx = i;
                    break;
                }
            }
            centroids.push(xs[idx].clone());
        }

        // Lloyd iterations.
        let mut assignments = vec![0usize; xs.len()];
        let mut iterations = 0;
        for _ in 0..100 {
            iterations += 1;
            let mut changed = false;
            for (i, x) in xs.iter().enumerate() {
                let (c, _) = nearest(&centroids, x);
                if assignments[i] != c {
                    assignments[i] = c;
                    changed = true;
                }
            }
            // Recompute centroids.
            let mut sums = vec![vec![0.0; dims]; k];
            let mut counts = vec![0usize; k];
            for (x, &a) in xs.iter().zip(&assignments) {
                counts[a] += 1;
                for (s, v) in sums[a].iter_mut().zip(x) {
                    *s += v;
                }
            }
            for (c, (sum, &count)) in centroids.iter_mut().zip(sums.iter().zip(&counts)) {
                if count > 0 {
                    *c = sum.iter().map(|s| s / count as f64).collect();
                }
            }
            if !changed && iterations > 1 {
                break;
            }
        }

        let inertia = xs
            .iter()
            .zip(&assignments)
            .map(|(x, &a)| sq_dist(x, &centroids[a]))
            .sum();
        Ok(KMeans {
            centroids,
            assignments,
            inertia,
            iterations,
        })
    }

    /// Assign a new point to its nearest cluster.
    pub fn predict(&self, x: &[f64]) -> usize {
        nearest(&self.centroids, x).0
    }

    /// Cluster sizes.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.centroids.len()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs.
    fn blobs() -> Vec<Vec<f64>> {
        let mut xs = Vec::new();
        for i in 0..20 {
            let j = (i % 5) as f64 * 0.1;
            xs.push(vec![0.0 + j, 0.0 + j]);
            xs.push(vec![10.0 + j, 10.0 + j]);
            xs.push(vec![0.0 + j, 10.0 - j]);
        }
        xs
    }

    #[test]
    fn separates_obvious_blobs() {
        let xs = blobs();
        let km = KMeans::fit(&xs, 3, 1).unwrap();
        let sizes = km.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), xs.len());
        // Each blob has 20 points; clusters should be balanced.
        assert!(sizes.iter().all(|&s| s == 20), "sizes {sizes:?}");
        // Points from the same blob share an assignment.
        let a0 = km.predict(&[0.2, 0.2]);
        assert_eq!(km.predict(&[0.0, 0.1]), a0);
        assert_ne!(km.predict(&[10.0, 10.0]), a0);
        assert!(km.inertia < 10.0);
    }

    #[test]
    fn deterministic_in_seed() {
        let xs = blobs();
        let a = KMeans::fit(&xs, 3, 9).unwrap();
        let b = KMeans::fit(&xs, 3, 9).unwrap();
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn k_is_clamped_and_degenerate_input_ok() {
        let xs = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        let km = KMeans::fit(&xs, 10, 0).unwrap();
        assert!(km.centroids.len() <= 2);
        assert_eq!(km.inertia, 0.0);
        assert!(KMeans::fit(&[], 3, 0).is_err());
    }
}
