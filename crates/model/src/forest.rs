//! Random forests (bagged regression trees).
//!
//! The model class of Sun et al. ("Automated Performance Modeling of HPC
//! Applications Using Machine Learning"): bootstrap-sampled trees with
//! per-split feature subsampling, averaged at prediction time. Trees are
//! trained in parallel with rayon (the guide-sanctioned data-parallelism
//! idiom), with per-tree seeds derived deterministically so the fit is
//! identical at any thread count.

use crate::tree::{RegressionTree, TreeConfig};
use pioeval_types::{rng, split_seed, Error, Result};
use rand::Rng;
use rayon::prelude::*;

/// Forest configuration.
#[derive(Clone, Copy, Debug)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub trees: usize,
    /// Per-tree growth limits.
    pub tree: TreeConfig,
    /// Features per split (`None` = √d, the usual default).
    pub features_per_split: Option<usize>,
    /// Master seed.
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            trees: 50,
            tree: TreeConfig::default(),
            features_per_split: None,
            seed: 11,
        }
    }
}

/// A fitted forest.
pub struct RandomForest {
    trees: Vec<RegressionTree>,
    dims: usize,
}

impl RandomForest {
    /// Fit on rows of features and targets.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], cfg: &RandomForestConfig) -> Result<Self> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(Error::Model("empty or mismatched training data".into()));
        }
        let dims = xs[0].len();
        if dims == 0 {
            return Err(Error::Model("no features".into()));
        }
        let fps = cfg
            .features_per_split
            .unwrap_or_else(|| (dims as f64).sqrt().ceil() as usize)
            .clamp(1, dims);

        let trees: Result<Vec<RegressionTree>> = (0..cfg.trees)
            .into_par_iter()
            .map(|t| {
                // Bootstrap sample with a per-tree deterministic seed.
                let mut r = rng(split_seed(cfg.seed, t as u64));
                let n = xs.len();
                let mut bx = Vec::with_capacity(n);
                let mut by = Vec::with_capacity(n);
                for _ in 0..n {
                    let i = r.gen_range(0..n);
                    bx.push(xs[i].clone());
                    by.push(ys[i]);
                }
                let tree_cfg = TreeConfig {
                    features_per_split: Some(fps),
                    seed: split_seed(cfg.seed, 1_000_000 + t as u64),
                    ..cfg.tree
                };
                RegressionTree::fit(&bx, &by, &tree_cfg)
            })
            .collect();
        Ok(RandomForest {
            trees: trees?,
            dims,
        })
    }

    /// Predict one row (mean over trees).
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.dims, "feature dimension mismatch");
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }

    /// Predict many rows in parallel.
    pub fn predict_all(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.par_iter().map(|x| self.predict(x)).collect()
    }

    /// Mean feature importance across trees.
    pub fn importance(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.dims];
        for t in &self.trees {
            for (a, v) in acc.iter_mut().zip(&t.importance) {
                *a += v;
            }
        }
        for a in &mut acc {
            *a /= self.trees.len() as f64;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nonlinear_data(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let xs: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![
                    (i % 17) as f64,
                    ((i * 7) % 11) as f64,
                    ((i * 3) % 5) as f64, // noise
                ]
            })
            .collect();
        let ys: Vec<f64> = xs.iter().map(|r| r[0] * r[0] + 3.0 * r[1]).collect();
        (xs, ys)
    }

    #[test]
    fn fits_nonlinear_interactions() {
        let (xs, ys) = nonlinear_data(400);
        let cfg = RandomForestConfig {
            trees: 30,
            ..RandomForestConfig::default()
        };
        let f = RandomForest::fit(&xs, &ys, &cfg).unwrap();
        let mut err = 0.0;
        for (x, y) in xs.iter().zip(&ys) {
            err += (f.predict(x) - y).abs();
        }
        err /= xs.len() as f64;
        let spread = ys.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - ys.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(err < spread * 0.05, "MAE {err} vs spread {spread}");
    }

    #[test]
    fn deterministic_across_runs() {
        let (xs, ys) = nonlinear_data(100);
        let cfg = RandomForestConfig {
            trees: 10,
            ..RandomForestConfig::default()
        };
        let a = RandomForest::fit(&xs, &ys, &cfg).unwrap();
        let b = RandomForest::fit(&xs, &ys, &cfg).unwrap();
        for x in xs.iter().take(10) {
            assert_eq!(a.predict(x), b.predict(x));
        }
    }

    #[test]
    fn importance_ranks_informative_features() {
        let (xs, ys) = nonlinear_data(300);
        let f = RandomForest::fit(&xs, &ys, &RandomForestConfig::default()).unwrap();
        let imp = f.importance();
        assert!(imp[0] > imp[2], "x0 should beat noise: {imp:?}");
        assert!(imp[1] > imp[2], "x1 should beat noise: {imp:?}");
    }

    #[test]
    fn predict_all_matches_predict() {
        let (xs, ys) = nonlinear_data(50);
        let cfg = RandomForestConfig {
            trees: 5,
            ..RandomForestConfig::default()
        };
        let f = RandomForest::fit(&xs, &ys, &cfg).unwrap();
        let all = f.predict_all(&xs);
        for (x, p) in xs.iter().zip(all) {
            assert_eq!(p, f.predict(x));
        }
    }

    #[test]
    fn rejects_bad_input() {
        assert!(RandomForest::fit(&[], &[], &RandomForestConfig::default()).is_err());
    }
}
