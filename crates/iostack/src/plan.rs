//! Program compilation: [`StackOp`] programs → flat [`Action`] lists.
//!
//! Compilation is a pure function of (rank, nranks, program, config), so
//! the entire lowering pipeline — H5 chunking, MPI-IO sieving and
//! two-phase planning, metadata fan-out — is unit-testable without
//! running a simulation. The [`crate::rank::RankClient`] entity then
//! interprets the action list against the storage simulator.

use crate::config::StackConfig;
use crate::h5::{H5FileState, OBJECT_HEADER_BYTES, SUPERBLOCK_BYTES};
use crate::mpiio::{domain_blocks, plan_independent, plan_two_phase, IndependentPlan};
use crate::ops::StackOp;
use pioeval_types::{FileId, IoKind, Layer, MetaOp, RecordOp, SimDuration};
use std::collections::HashMap;

/// Tag namespace for collective shuffle payloads.
pub const SHUFFLE_TAG: u64 = 1 << 32;
/// Tag namespace for barrier releases (coordinator → ranks).
pub const RELEASE_TAG: u64 = 1 << 33;

/// One step of a compiled rank program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Action {
    /// Compute for a duration.
    Compute {
        /// The duration.
        dur: SimDuration,
    },
    /// Issue one metadata operation and wait for it.
    Meta {
        /// The operation.
        op: MetaOp,
        /// Target file.
        file: FileId,
    },
    /// Issue one contiguous data access and wait for all its RPCs.
    Data {
        /// Read or write.
        kind: IoKind,
        /// Target file.
        file: FileId,
        /// Byte offset.
        offset: u64,
        /// Byte length.
        len: u64,
    },
    /// Enter job barrier `tag` and wait for the coordinator's release.
    BarrierEnter {
        /// Barrier instance tag.
        tag: u64,
    },
    /// Send `bytes` of shuffle payload to `to_rank` (non-blocking).
    ShuffleSend {
        /// Receiving rank.
        to_rank: u32,
        /// Payload bytes.
        bytes: u64,
        /// Collective instance tag.
        tag: u64,
    },
    /// Wait until `expect_bytes` of shuffle payload tagged `tag` arrived.
    ShuffleWait {
        /// Collective instance tag.
        tag: u64,
        /// Bytes to wait for (0 = no wait).
        expect_bytes: u64,
    },
    /// Open a layer-level observation interval.
    RecordStart {
        /// Observing layer.
        layer: Layer,
        /// What the interval describes.
        op: RecordOp,
        /// File involved.
        file: FileId,
        /// Representative offset.
        offset: u64,
        /// Logical bytes at this layer.
        len: u64,
    },
    /// Close the innermost observation interval.
    RecordEnd,
}

/// Compiler state threaded through one rank's program.
struct Compiler<'a> {
    rank: u32,
    nranks: u32,
    cfg: &'a StackConfig,
    h5: HashMap<FileId, H5FileState>,
    barrier_seq: u64,
    collective_seq: u64,
    out: Vec<Action>,
}

impl Compiler<'_> {
    fn barrier(&mut self) {
        let tag = self.barrier_seq;
        self.barrier_seq += 1;
        self.out.push(Action::BarrierEnter { tag });
    }

    fn lower_independent(&mut self, kind: IoKind, file: FileId, segments: &[(u64, u64)]) {
        let total: u64 = segments.iter().map(|&(_, l)| l).sum();
        let first = segments.first().map(|&(o, _)| o).unwrap_or(0);
        self.out.push(Action::RecordStart {
            layer: Layer::MpiIo,
            op: RecordOp::Data(kind),
            file,
            offset: first,
            len: total,
        });
        match plan_independent(kind, segments, &self.cfg.mpi) {
            IndependentPlan::PerSegment(segs) => {
                for (offset, len) in segs {
                    self.out.push(Action::Data {
                        kind,
                        file,
                        offset,
                        len,
                    });
                }
            }
            IndependentPlan::Sieved { offset, len, rmw } => {
                if rmw {
                    self.out.push(Action::Data {
                        kind: IoKind::Read,
                        file,
                        offset,
                        len,
                    });
                }
                self.out.push(Action::Data {
                    kind,
                    file,
                    offset,
                    len,
                });
            }
        }
        self.out.push(Action::RecordEnd);
    }

    fn lower_collective(&mut self, kind: IoKind, file: FileId, spec: &crate::ops::AccessSpec) {
        let tag = SHUFFLE_TAG | self.collective_seq;
        self.collective_seq += 1;
        let plan = plan_two_phase(kind, spec, self.rank, self.nranks, &self.cfg.mpi);
        let my_segments = spec.segments_for(self.rank, self.nranks);
        let first = my_segments.first().map(|&(o, _)| o).unwrap_or(0);
        self.out.push(Action::RecordStart {
            layer: Layer::MpiIo,
            op: RecordOp::CollectiveData(kind),
            file,
            offset: first,
            len: spec.bytes_per_rank(),
        });
        self.barrier();
        match kind {
            IoKind::Write => {
                for &(to_rank, bytes) in &plan.transfers {
                    self.out.push(Action::ShuffleSend {
                        to_rank,
                        bytes,
                        tag,
                    });
                }
                if let Some(domain) = plan.my_domain {
                    self.out.push(Action::ShuffleWait {
                        tag,
                        expect_bytes: plan.expect_bytes,
                    });
                    for (offset, len) in domain_blocks(domain, self.cfg.mpi.cb_buffer) {
                        self.out.push(Action::Data {
                            kind,
                            file,
                            offset,
                            len,
                        });
                    }
                }
            }
            IoKind::Read => {
                if let Some(domain) = plan.my_domain {
                    for (offset, len) in domain_blocks(domain, self.cfg.mpi.cb_buffer) {
                        self.out.push(Action::Data {
                            kind,
                            file,
                            offset,
                            len,
                        });
                    }
                    for &(to_rank, bytes) in &plan.transfers {
                        self.out.push(Action::ShuffleSend {
                            to_rank,
                            bytes,
                            tag,
                        });
                    }
                }
                if plan.expect_bytes > 0 {
                    self.out.push(Action::ShuffleWait {
                        tag,
                        expect_bytes: plan.expect_bytes,
                    });
                }
            }
        }
        self.barrier();
        self.out.push(Action::RecordEnd);
    }

    fn compile_op(&mut self, op: &StackOp) {
        match op {
            StackOp::Compute(dur) => self.out.push(Action::Compute { dur: *dur }),
            StackOp::Barrier => self.barrier(),
            StackOp::PosixMeta { op, file } => self.out.push(Action::Meta {
                op: *op,
                file: *file,
            }),
            StackOp::PosixData {
                kind,
                file,
                offset,
                len,
            } => self.out.push(Action::Data {
                kind: *kind,
                file: *file,
                offset: *offset,
                len: *len,
            }),
            StackOp::MpiOpen { file } => {
                self.out.push(Action::RecordStart {
                    layer: Layer::MpiIo,
                    op: RecordOp::Meta(MetaOp::Open),
                    file: *file,
                    offset: 0,
                    len: 0,
                });
                self.out.push(Action::Meta {
                    op: MetaOp::Open,
                    file: *file,
                });
                self.out.push(Action::RecordEnd);
            }
            StackOp::MpiClose { file } => {
                self.out.push(Action::RecordStart {
                    layer: Layer::MpiIo,
                    op: RecordOp::Meta(MetaOp::Close),
                    file: *file,
                    offset: 0,
                    len: 0,
                });
                self.out.push(Action::Meta {
                    op: MetaOp::Close,
                    file: *file,
                });
                self.out.push(Action::RecordEnd);
            }
            StackOp::MpiIndependent {
                kind,
                file,
                segments,
            } => self.lower_independent(*kind, *file, segments),
            StackOp::MpiCollective { kind, file, spec } => {
                self.lower_collective(*kind, *file, spec)
            }
            StackOp::H5CreateFile { file } => {
                self.h5.insert(*file, H5FileState::new());
                self.out.push(Action::RecordStart {
                    layer: Layer::Hdf5,
                    op: RecordOp::Meta(MetaOp::Create),
                    file: *file,
                    offset: 0,
                    len: SUPERBLOCK_BYTES,
                });
                if self.rank == 0 {
                    self.out.push(Action::Meta {
                        op: MetaOp::Create,
                        file: *file,
                    });
                    self.out.push(Action::Data {
                        kind: IoKind::Write,
                        file: *file,
                        offset: 0,
                        len: SUPERBLOCK_BYTES,
                    });
                    self.barrier();
                } else {
                    self.barrier();
                    self.out.push(Action::Meta {
                        op: MetaOp::Open,
                        file: *file,
                    });
                }
                self.out.push(Action::RecordEnd);
            }
            StackOp::H5OpenFile { file } => {
                self.h5.entry(*file).or_default();
                self.out.push(Action::RecordStart {
                    layer: Layer::Hdf5,
                    op: RecordOp::Meta(MetaOp::Open),
                    file: *file,
                    offset: 0,
                    len: SUPERBLOCK_BYTES,
                });
                self.out.push(Action::Meta {
                    op: MetaOp::Open,
                    file: *file,
                });
                // Every rank reads the superblock — real HDF5 behaviour
                // that multiplies small reads by the rank count.
                self.out.push(Action::Data {
                    kind: IoKind::Read,
                    file: *file,
                    offset: 0,
                    len: SUPERBLOCK_BYTES,
                });
                self.out.push(Action::RecordEnd);
            }
            StackOp::H5CloseFile { file } => {
                self.out.push(Action::RecordStart {
                    layer: Layer::Hdf5,
                    op: RecordOp::Meta(MetaOp::Close),
                    file: *file,
                    offset: 0,
                    len: 0,
                });
                self.out.push(Action::Meta {
                    op: MetaOp::Close,
                    file: *file,
                });
                self.out.push(Action::RecordEnd);
            }
            StackOp::H5CreateDataset { file, spec } => {
                let state = self
                    .h5
                    .get_mut(file)
                    .expect("H5CreateDataset before H5CreateFile/H5OpenFile");
                let base = state.create_dataset(*spec);
                self.out.push(Action::RecordStart {
                    layer: Layer::Hdf5,
                    op: RecordOp::Meta(MetaOp::Create),
                    file: *file,
                    offset: base,
                    len: OBJECT_HEADER_BYTES,
                });
                if self.rank == 0 {
                    self.out.push(Action::Data {
                        kind: IoKind::Write,
                        file: *file,
                        offset: base,
                        len: OBJECT_HEADER_BYTES,
                    });
                }
                self.barrier();
                self.out.push(Action::RecordEnd);
            }
            StackOp::H5Hyperslab {
                kind,
                file,
                dataset,
                slab,
            } => {
                let state = self
                    .h5
                    .get(file)
                    .expect("H5Hyperslab before dataset creation");
                let segments = state.slab_segments(*dataset, slab);
                let logical = state
                    .dataset(*dataset)
                    .map(|d| slab.elements() * d.elem_size)
                    .unwrap_or(0);
                let first = segments.first().map(|&(o, _)| o).unwrap_or(0);
                self.out.push(Action::RecordStart {
                    layer: Layer::Hdf5,
                    op: RecordOp::Data(*kind),
                    file: *file,
                    offset: first,
                    len: logical,
                });
                self.lower_independent(*kind, *file, &segments);
                self.out.push(Action::RecordEnd);
            }
        }
    }
}

/// Compile one rank's program into its action list.
pub fn compile(rank: u32, nranks: u32, program: &[StackOp], cfg: &StackConfig) -> Vec<Action> {
    let mut c = Compiler {
        rank,
        nranks,
        cfg,
        h5: HashMap::new(),
        barrier_seq: 0,
        collective_seq: 0,
        out: Vec::new(),
    };
    for op in program {
        c.compile_op(op);
    }
    c.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{AccessSpec, DatasetSpec, Hyperslab};

    fn cfg() -> StackConfig {
        StackConfig::default()
    }

    fn count_data(actions: &[Action]) -> usize {
        actions
            .iter()
            .filter(|a| matches!(a, Action::Data { .. }))
            .count()
    }

    #[test]
    fn posix_ops_pass_through() {
        let program = vec![
            StackOp::PosixMeta {
                op: MetaOp::Create,
                file: FileId::new(1),
            },
            StackOp::PosixData {
                kind: IoKind::Write,
                file: FileId::new(1),
                offset: 0,
                len: 4096,
            },
        ];
        let actions = compile(0, 4, &program, &cfg());
        assert_eq!(actions.len(), 2);
        assert!(matches!(
            actions[0],
            Action::Meta {
                op: MetaOp::Create,
                ..
            }
        ));
        assert!(matches!(actions[1], Action::Data { len: 4096, .. }));
    }

    #[test]
    fn barriers_get_sequential_tags_on_all_ranks() {
        let program = vec![StackOp::Barrier, StackOp::Barrier];
        for rank in 0..4 {
            let actions = compile(rank, 4, &program, &cfg());
            assert_eq!(
                actions,
                vec![
                    Action::BarrierEnter { tag: 0 },
                    Action::BarrierEnter { tag: 1 }
                ]
            );
        }
    }

    #[test]
    fn collective_write_shape() {
        let program = vec![StackOp::MpiCollective {
            kind: IoKind::Write,
            file: FileId::new(1),
            spec: AccessSpec::ContiguousBlocks {
                base: 0,
                block: 1 << 20,
            },
        }];
        // 8 ranks, ratio 4 → 2 aggregators (ranks 0 and 4).
        let agg = compile(0, 8, &program, &cfg());
        let non = compile(1, 8, &program, &cfg());
        // Aggregator waits then writes its 4 MiB domain in one cb block.
        assert!(agg.iter().any(|a| matches!(a, Action::ShuffleWait { .. })));
        assert_eq!(count_data(&agg), 1);
        // Non-aggregator only sends; no file I/O.
        assert!(non.iter().any(|a| matches!(a, Action::ShuffleSend { .. })));
        assert_eq!(count_data(&non), 0);
        // Both see the same two barrier tags.
        let tags = |acts: &[Action]| -> Vec<u64> {
            acts.iter()
                .filter_map(|a| match a {
                    Action::BarrierEnter { tag } => Some(*tag),
                    _ => None,
                })
                .collect()
        };
        assert_eq!(tags(&agg), tags(&non));
    }

    #[test]
    fn collective_read_shape() {
        let program = vec![StackOp::MpiCollective {
            kind: IoKind::Read,
            file: FileId::new(1),
            spec: AccessSpec::ContiguousBlocks {
                base: 0,
                block: 1 << 20,
            },
        }];
        let agg = compile(0, 8, &program, &cfg());
        let non = compile(3, 8, &program, &cfg());
        // Aggregator reads, then sends.
        let first_data = agg.iter().position(|a| matches!(a, Action::Data { .. }));
        let first_send = agg
            .iter()
            .position(|a| matches!(a, Action::ShuffleSend { .. }));
        assert!(first_data.unwrap() < first_send.unwrap());
        // Consumer just waits for its 1 MiB.
        assert!(non.iter().any(|a| matches!(
            a,
            Action::ShuffleWait {
                expect_bytes: 1_048_576,
                ..
            }
        )));
    }

    #[test]
    fn sieved_write_emits_rmw() {
        let program = vec![StackOp::MpiIndependent {
            kind: IoKind::Write,
            file: FileId::new(1),
            segments: vec![(0, 100), (1000, 100)],
        }];
        let actions = compile(0, 1, &program, &cfg());
        let datas: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Data { kind, len, .. } => Some((*kind, *len)),
                _ => None,
            })
            .collect();
        assert_eq!(datas, vec![(IoKind::Read, 1100), (IoKind::Write, 1100)]);
    }

    #[test]
    fn h5_create_differs_by_rank() {
        let program = vec![StackOp::H5CreateFile {
            file: FileId::new(9),
        }];
        let r0 = compile(0, 4, &program, &cfg());
        let r1 = compile(1, 4, &program, &cfg());
        // Rank 0 creates + writes superblock; others open after barrier.
        assert!(r0.iter().any(|a| matches!(
            a,
            Action::Meta {
                op: MetaOp::Create,
                ..
            }
        )));
        assert!(r0.iter().any(|a| matches!(
            a,
            Action::Data {
                kind: IoKind::Write,
                len: SUPERBLOCK_BYTES,
                ..
            }
        )));
        assert!(r1.iter().any(|a| matches!(
            a,
            Action::Meta {
                op: MetaOp::Open,
                ..
            }
        )));
        assert_eq!(count_data(&r1), 0);
    }

    #[test]
    fn h5_hyperslab_lowers_through_both_layers() {
        let file = FileId::new(2);
        let program = vec![
            StackOp::H5CreateFile { file },
            StackOp::H5CreateDataset {
                file,
                spec: DatasetSpec {
                    dims: [100, 100],
                    chunk: [50, 50],
                    elem_size: 8,
                },
            },
            StackOp::H5Hyperslab {
                kind: IoKind::Write,
                file,
                dataset: 0,
                slab: Hyperslab {
                    start: [0, 0],
                    count: [50, 100],
                },
            },
        ];
        let actions = compile(0, 1, &program, &cfg());
        // The hyperslab record (Hdf5 layer) wraps an MpiIo record which
        // wraps the Data actions.
        let h5_starts = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::RecordStart {
                        layer: Layer::Hdf5,
                        op: RecordOp::Data(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(h5_starts, 1);
        let mpi_starts = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    Action::RecordStart {
                        layer: Layer::MpiIo,
                        op: RecordOp::Data(_),
                        ..
                    }
                )
            })
            .count();
        assert_eq!(mpi_starts, 1);
        // Top row = chunks 0,1 adjacent → merged into one 40 KB access
        // (plus superblock/header writes from creation).
        let slab_writes: Vec<u64> = actions
            .iter()
            .filter_map(|a| match a {
                Action::Data {
                    kind: IoKind::Write,
                    len,
                    ..
                } if *len > 2048 => Some(*len),
                _ => None,
            })
            .collect();
        assert_eq!(slab_writes, vec![2 * 50 * 50 * 8]);
    }

    #[test]
    fn record_starts_and_ends_balance() {
        let file = FileId::new(3);
        let program = vec![
            StackOp::H5CreateFile { file },
            StackOp::H5CreateDataset {
                file,
                spec: DatasetSpec {
                    dims: [64, 64],
                    chunk: [32, 32],
                    elem_size: 4,
                },
            },
            StackOp::H5Hyperslab {
                kind: IoKind::Read,
                file,
                dataset: 0,
                slab: Hyperslab {
                    start: [0, 0],
                    count: [64, 64],
                },
            },
            StackOp::H5CloseFile { file },
        ];
        for rank in 0..3 {
            let actions = compile(rank, 3, &program, &cfg());
            let mut depth: i64 = 0;
            for a in &actions {
                match a {
                    Action::RecordStart { .. } => depth += 1,
                    Action::RecordEnd => {
                        depth -= 1;
                        assert!(depth >= 0);
                    }
                    _ => {}
                }
            }
            assert_eq!(depth, 0, "unbalanced records for rank {rank}");
        }
    }
}
