//! MPI-IO-like middleware: data sieving and two-phase collective plans.
//!
//! Both optimizations follow ROMIO. *Data sieving* turns a noncontiguous
//! independent access into one large contiguous access spanning the holes
//! (a read-modify-write for writes). *Two-phase collective I/O* divides
//! the collectively-accessed file span into contiguous *file domains*,
//! one per aggregator rank; non-aggregators ship their data to (or
//! receive it from) aggregators over the compute fabric, and only the
//! aggregators touch the file system — with large, contiguous accesses.

use crate::config::MpiConfig;
use crate::ops::AccessSpec;
use pioeval_types::IoKind;

/// How an independent noncontiguous access will be executed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IndependentPlan {
    /// One POSIX access per segment.
    PerSegment(Vec<(u64, u64)>),
    /// One large access covering the span (plus a pre-read for writes).
    Sieved {
        /// Span start offset.
        offset: u64,
        /// Span length.
        len: u64,
        /// True if a read-modify-write is required (writes).
        rmw: bool,
    },
}

/// Decide how to execute an independent access with `segments`.
pub fn plan_independent(kind: IoKind, segments: &[(u64, u64)], cfg: &MpiConfig) -> IndependentPlan {
    if segments.len() <= 1 || !cfg.sieving {
        return IndependentPlan::PerSegment(segments.to_vec());
    }
    let lo = segments.iter().map(|&(o, _)| o).min().unwrap();
    let hi = segments.iter().map(|&(o, l)| o + l).max().unwrap();
    let span = hi - lo;
    if span <= cfg.sieve_buffer {
        IndependentPlan::Sieved {
            offset: lo,
            len: span,
            rmw: kind == IoKind::Write,
        }
    } else {
        IndependentPlan::PerSegment(segments.to_vec())
    }
}

/// Byte overlap of `segments` with the half-open range `[lo, hi)`.
pub fn overlap(segments: &[(u64, u64)], lo: u64, hi: u64) -> u64 {
    segments
        .iter()
        .map(|&(o, l)| {
            let s = o.max(lo);
            let e = (o + l).min(hi);
            e.saturating_sub(s)
        })
        .sum()
}

/// This rank's view of a two-phase collective operation.
#[derive(Clone, Debug)]
pub struct TwoPhasePlan {
    /// Aggregator ranks, ascending.
    pub aggregators: Vec<u32>,
    /// File domains, parallel to `aggregators`: (offset, len).
    pub domains: Vec<(u64, u64)>,
    /// Shuffle transfers this rank performs: (peer rank, bytes).
    /// For writes these are sends to aggregators; for reads these are
    /// the sends an *aggregator* performs to each consumer rank.
    pub transfers: Vec<(u32, u64)>,
    /// This rank's file domain, if it is an aggregator.
    pub my_domain: Option<(u64, u64)>,
    /// Bytes this rank must receive before it can proceed (aggregators
    /// on writes; every rank on reads).
    pub expect_bytes: u64,
}

/// Build the two-phase plan for `rank` of `nranks`.
pub fn plan_two_phase(
    kind: IoKind,
    spec: &AccessSpec,
    rank: u32,
    nranks: u32,
    cfg: &MpiConfig,
) -> TwoPhasePlan {
    let (lo, hi) = spec.span(nranks);
    let aggregators = cfg.aggregators(nranks);
    let naggs = aggregators.len() as u64;
    let span = hi - lo;
    let domain_size = span.div_ceil(naggs.max(1));
    let domains: Vec<(u64, u64)> = (0..naggs)
        .map(|i| {
            let start = lo + i * domain_size;
            let end = (start + domain_size).min(hi);
            (start, end.saturating_sub(start))
        })
        .collect();

    let my_segments = spec.segments_for(rank, nranks);
    let my_agg_idx = aggregators.iter().position(|&a| a == rank);
    let my_domain = my_agg_idx.map(|i| domains[i]);

    let mut transfers = Vec::new();
    let mut expect_bytes = 0u64;
    match kind {
        IoKind::Write => {
            // Every rank ships its overlap with each (other) aggregator's
            // domain; aggregators expect the rest of their domain from
            // the other ranks.
            for (i, &a) in aggregators.iter().enumerate() {
                let (dlo, dlen) = domains[i];
                let bytes = overlap(&my_segments, dlo, dlo + dlen);
                if bytes > 0 && a != rank {
                    transfers.push((a, bytes));
                }
            }
            if let Some((dlo, dlen)) = my_domain {
                let total: u64 = (0..nranks)
                    .map(|r| overlap(&spec.segments_for(r, nranks), dlo, dlo + dlen))
                    .sum();
                let own = overlap(&my_segments, dlo, dlo + dlen);
                expect_bytes = total - own;
            }
        }
        IoKind::Read => {
            // Aggregators read their domain then ship each consumer its
            // overlap; every rank expects its bytes not covered by its
            // own domain.
            if let Some((dlo, dlen)) = my_domain {
                for r in 0..nranks {
                    if r == rank {
                        continue;
                    }
                    let bytes = overlap(&spec.segments_for(r, nranks), dlo, dlo + dlen);
                    if bytes > 0 {
                        transfers.push((r, bytes));
                    }
                }
            }
            let own = my_domain
                .map(|(dlo, dlen)| overlap(&my_segments, dlo, dlo + dlen))
                .unwrap_or(0);
            expect_bytes = spec.bytes_per_rank() - own;
        }
    }

    TwoPhasePlan {
        aggregators,
        domains,
        transfers,
        my_domain,
        expect_bytes,
    }
}

/// Split an aggregator's file domain into collective-buffer-sized
/// accesses (offset, len), in offset order.
pub fn domain_blocks(domain: (u64, u64), cb_buffer: u64) -> Vec<(u64, u64)> {
    let (lo, len) = domain;
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < len {
        let block = (len - pos).min(cb_buffer.max(1));
        out.push((lo + pos, block));
        pos += block;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sieving_coalesces_small_strides() {
        let cfg = MpiConfig::default();
        let segments = vec![(0, 100), (1000, 100), (2000, 100)];
        match plan_independent(IoKind::Read, &segments, &cfg) {
            IndependentPlan::Sieved { offset, len, rmw } => {
                assert_eq!((offset, len), (0, 2100));
                assert!(!rmw);
            }
            other => panic!("expected sieved plan, got {other:?}"),
        }
        match plan_independent(IoKind::Write, &segments, &cfg) {
            IndependentPlan::Sieved { rmw, .. } => assert!(rmw),
            other => panic!("expected sieved RMW plan, got {other:?}"),
        }
    }

    #[test]
    fn sieving_skips_wide_spans_and_single_segments() {
        let cfg = MpiConfig::default();
        let wide = vec![(0, 100), (100 << 20, 100)];
        assert!(matches!(
            plan_independent(IoKind::Read, &wide, &cfg),
            IndependentPlan::PerSegment(_)
        ));
        let single = vec![(0, 4096)];
        assert!(matches!(
            plan_independent(IoKind::Read, &single, &cfg),
            IndependentPlan::PerSegment(_)
        ));
        let off = MpiConfig {
            sieving: false,
            ..cfg
        };
        let strided = vec![(0, 10), (100, 10)];
        assert!(matches!(
            plan_independent(IoKind::Read, &strided, &off),
            IndependentPlan::PerSegment(_)
        ));
    }

    #[test]
    fn overlap_math() {
        let segs = vec![(0, 100), (200, 100)];
        assert_eq!(overlap(&segs, 0, 300), 200);
        assert_eq!(overlap(&segs, 50, 250), 100);
        assert_eq!(overlap(&segs, 100, 200), 0);
    }

    #[test]
    fn two_phase_write_conserves_bytes() {
        let cfg = MpiConfig::default();
        let nranks = 16;
        let spec = AccessSpec::Interleaved {
            base: 0,
            block: 1000,
            count: 4,
        };
        // Sum of everything aggregators expect + everything they keep
        // locally must equal total bytes.
        let mut expected_total = 0u64;
        let mut self_kept = 0u64;
        let mut sent_total = 0u64;
        for r in 0..nranks {
            let plan = plan_two_phase(IoKind::Write, &spec, r, nranks, &cfg);
            expected_total += plan.expect_bytes;
            sent_total += plan.transfers.iter().map(|&(_, b)| b).sum::<u64>();
            if let Some((dlo, dlen)) = plan.my_domain {
                self_kept += overlap(&spec.segments_for(r, nranks), dlo, dlo + dlen);
            }
        }
        let total = spec.bytes_per_rank() * nranks as u64;
        assert_eq!(sent_total, expected_total);
        assert_eq!(expected_total + self_kept, total);
        // Domains tile the span.
        let plan = plan_two_phase(IoKind::Write, &spec, 0, nranks, &cfg);
        let span = spec.span(nranks);
        let covered: u64 = plan.domains.iter().map(|&(_, l)| l).sum();
        assert_eq!(covered, span.1 - span.0);
    }

    #[test]
    fn two_phase_read_expectations_match_sends() {
        let cfg = MpiConfig::default();
        let nranks = 8;
        let spec = AccessSpec::ContiguousBlocks {
            base: 0,
            block: 1 << 20,
        };
        let mut sent = 0u64;
        let mut expected = 0u64;
        for r in 0..nranks {
            let plan = plan_two_phase(IoKind::Read, &spec, r, nranks, &cfg);
            sent += plan.transfers.iter().map(|&(_, b)| b).sum::<u64>();
            expected += plan.expect_bytes;
        }
        assert_eq!(sent, expected);
    }

    #[test]
    fn aggregators_do_large_contiguous_blocks() {
        let blocks = domain_blocks((1000, 10_000_000), 4 << 20);
        assert_eq!(blocks.len(), 3);
        assert_eq!(blocks[0], (1000, 4 << 20));
        let total: u64 = blocks.iter().map(|&(_, l)| l).sum();
        assert_eq!(total, 10_000_000);
        // Contiguity.
        assert!(blocks.windows(2).all(|w| w[0].0 + w[0].1 == w[1].0));
    }

    #[test]
    fn single_rank_collective_degenerates_gracefully() {
        let cfg = MpiConfig::default();
        let spec = AccessSpec::ContiguousBlocks {
            base: 0,
            block: 4096,
        };
        let plan = plan_two_phase(IoKind::Write, &spec, 0, 1, &cfg);
        assert_eq!(plan.aggregators, vec![0]);
        assert_eq!(plan.expect_bytes, 0);
        assert!(plan.transfers.is_empty());
        assert_eq!(plan.my_domain, Some((0, 4096)));
    }
}
