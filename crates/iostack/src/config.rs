//! I/O stack configuration.

use pioeval_types::{bytes, Layer, SimDuration};

/// MPI-IO-like middleware tuning (ROMIO-style hints).
#[derive(Clone, Copy, Debug)]
pub struct MpiConfig {
    /// Collective buffer size per aggregator (ROMIO `cb_buffer_size`).
    pub cb_buffer: u64,
    /// Ranks per aggregator (ROMIO `cb_nodes` expressed as a ratio):
    /// the number of aggregators is `ceil(nranks / aggregator_ratio)`.
    pub aggregator_ratio: u32,
    /// Data-sieving buffer: strided independent accesses whose total span
    /// fits within this are turned into one large access
    /// (read-modify-write for writes).
    pub sieve_buffer: u64,
    /// Enable data sieving.
    pub sieving: bool,
}

impl Default for MpiConfig {
    fn default() -> Self {
        MpiConfig {
            cb_buffer: bytes::mib(4),
            aggregator_ratio: 4,
            sieve_buffer: bytes::mib(4),
            sieving: true,
        }
    }
}

impl MpiConfig {
    /// Number of aggregators for a job of `nranks`.
    pub fn num_aggregators(&self, nranks: u32) -> u32 {
        nranks.div_ceil(self.aggregator_ratio.max(1)).max(1)
    }

    /// The aggregator ranks for a job of `nranks`, evenly spread.
    pub fn aggregators(&self, nranks: u32) -> Vec<u32> {
        let n = self.num_aggregators(nranks);
        (0..n).map(|i| i * nranks / n).collect()
    }
}

/// Instrumentation capture settings (the measurement phase's cost knobs).
///
/// Counters (Darshan-profile-style) are always maintained — they are a
/// handful of integers per rank. Full records (Recorder-trace-style) are
/// only retained for the enabled layers, and each retained record may
/// charge a per-record overhead to the application — the
/// profiling-vs-tracing cost asymmetry of Sec. IV-A2.
#[derive(Clone, Copy, Debug)]
pub struct CaptureConfig {
    /// Retain full records for these layers (indexed by [`Layer::ALL`]).
    pub layers: [bool; 4],
    /// Simulated cost charged per retained record.
    pub overhead_per_record: SimDuration,
}

impl Default for CaptureConfig {
    fn default() -> Self {
        CaptureConfig {
            layers: [true; 4],
            overhead_per_record: SimDuration::ZERO,
        }
    }
}

impl CaptureConfig {
    /// Capture nothing (counters only — "profile mode").
    pub fn profile_only() -> Self {
        CaptureConfig {
            layers: [false; 4],
            overhead_per_record: SimDuration::ZERO,
        }
    }

    /// Capture everything with a per-record overhead ("trace mode").
    pub fn tracing(overhead: SimDuration) -> Self {
        CaptureConfig {
            layers: [true; 4],
            overhead_per_record: overhead,
        }
    }

    /// Is `layer` captured?
    pub fn captures(&self, layer: Layer) -> bool {
        let idx = Layer::ALL.iter().position(|&l| l == layer).unwrap();
        self.layers[idx]
    }
}

/// Full stack configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct StackConfig {
    /// MPI-IO middleware settings.
    pub mpi: MpiConfig,
    /// Instrumentation settings.
    pub capture: CaptureConfig,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregator_counts() {
        let cfg = MpiConfig::default();
        assert_eq!(cfg.num_aggregators(16), 4);
        assert_eq!(cfg.num_aggregators(1), 1);
        assert_eq!(cfg.num_aggregators(5), 2);
        assert_eq!(cfg.aggregators(16), vec![0, 4, 8, 12]);
        assert_eq!(cfg.aggregators(4), vec![0]);
    }

    #[test]
    fn capture_masks() {
        let all = CaptureConfig::default();
        assert!(all.captures(Layer::Posix) && all.captures(Layer::Hdf5));
        let none = CaptureConfig::profile_only();
        assert!(Layer::ALL.iter().all(|&l| !none.captures(l)));
        let t = CaptureConfig::tracing(SimDuration::from_nanos(500));
        assert!(t.captures(Layer::MpiIo));
        assert_eq!(t.overhead_per_record, SimDuration::from_nanos(500));
    }
}
