#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # pioeval-iostack
//!
//! The layered parallel I/O software stack of the paper's Fig. 2,
//! executed against the `pioeval-pfs` storage simulator:
//!
//! ```text
//!   application workload (StackOp programs, one per rank)
//!        │
//!   H5Lite     — HDF5-like: files, chunked datasets, hyperslab selections
//!        │
//!   MPI-IO-like — independent I/O with data sieving; collective I/O with
//!        │        two-phase aggregation (real shuffle traffic over the
//!        │        compute fabric between rank entities)
//!        │
//!   POSIX-like  — per-call extent accesses, metadata operations
//!        │
//!   PFS client  — striping, RPC splitting, routing (pioeval-pfs)
//! ```
//!
//! Programs are *compiled* ([`plan::compile`]) into flat action lists by
//! pure functions (unit-testable without a simulation), then *interpreted*
//! by one [`rank::RankClient`] entity per rank. A [`coordinator`] entity
//! implements job-wide barriers. Every layer emits
//! [`pioeval_types::LayerRecord`]s — the multi-level instrumentation that
//! `pioeval-trace` turns into Darshan-style profiles and Recorder-style
//! traces.
//!
//! **SPMD assumption.** Collective operations and barriers require every
//! rank's program to contain the same sequence of collective/barrier
//! constructs (the standard MPI requirement).

pub mod config;
pub mod coordinator;
pub mod h5;
pub mod job;
pub mod mpiio;
pub mod ops;
pub mod plan;
pub mod rank;
pub mod target;

pub use config::{CaptureConfig, MpiConfig, StackConfig};
pub use job::{
    collect, collect_on, drain_request_events, enable_request_trace, launch, launch_on, JobHandle,
    JobResult, JobSpec,
};
pub use ops::{AccessSpec, DatasetSpec, Hyperslab, StackOp};
pub use rank::RankCounters;
pub use target::{StoragePort, StorageTarget};
