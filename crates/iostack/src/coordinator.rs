//! Job coordinator: barrier arbitration.
//!
//! One coordinator entity per job counts barrier arrivals (tag = barrier
//! sequence number) and, when all ranks have arrived, sends each rank a
//! release message (`RELEASE_TAG | tag`) over the compute fabric.

use crate::plan::RELEASE_TAG;
use pioeval_des::{Ctx, Entity, EntityId, Envelope};
use pioeval_pfs::msg::{route, PfsMsg, HEADER_BYTES};
use std::collections::HashMap;

/// The barrier coordinator entity.
pub struct JobCoordinator {
    compute_fabric: EntityId,
    ranks: Vec<EntityId>,
    arrivals: HashMap<u64, u32>,
    /// Barriers completed (post-run inspection).
    pub barriers_released: u64,
    /// Cached handle to the global barrier counter: resolved once at
    /// construction so releases inside the event loop never take the
    /// registry lock.
    obs_barriers: pioeval_obs::Counter,
}

impl JobCoordinator {
    /// A coordinator for the given rank entities.
    pub fn new(compute_fabric: EntityId, ranks: Vec<EntityId>) -> Self {
        JobCoordinator {
            compute_fabric,
            ranks,
            arrivals: HashMap::new(),
            barriers_released: 0,
            obs_barriers: pioeval_obs::global().counter(pioeval_obs::names::IOSTACK_BARRIERS),
        }
    }
}

impl Entity<PfsMsg> for JobCoordinator {
    fn on_event(&mut self, ev: Envelope<PfsMsg>, ctx: &mut Ctx<'_, PfsMsg>) {
        let PfsMsg::App { tag, .. } = ev.msg else {
            panic!("coordinator received unexpected message: {:?}", ev.msg);
        };
        let count = self.arrivals.entry(tag).or_insert(0);
        *count += 1;
        if *count as usize == self.ranks.len() {
            self.arrivals.remove(&tag);
            self.barriers_released += 1;
            self.obs_barriers.inc();
            for &rank in &self.ranks {
                let (hop, msg) = route(
                    &[self.compute_fabric],
                    rank,
                    HEADER_BYTES,
                    PfsMsg::App {
                        tag: RELEASE_TAG | tag,
                        bytes: 0,
                    },
                );
                ctx.send(hop, ctx.lookahead(), msg);
            }
        }
    }
}
