//! H5Lite: the HDF5-like high-level layer's file model.
//!
//! A container file holds a superblock followed by datasets allocated
//! sequentially; each dataset is an object header followed by its chunks
//! in row-major order. All sizes are deterministic functions of the
//! creation sequence, so every rank of an SPMD job derives the same
//! allocation map without communication.

use crate::ops::{DatasetSpec, Hyperslab};

/// Bytes of the container superblock (written by rank 0 at create,
/// read by every rank at open).
pub const SUPERBLOCK_BYTES: u64 = 2048;
/// Bytes of a dataset object header.
pub const OBJECT_HEADER_BYTES: u64 = 512;

/// Per-container allocation state (deterministically replayed by every
/// rank during program compilation).
#[derive(Clone, Debug, Default)]
pub struct H5FileState {
    datasets: Vec<(DatasetSpec, u64)>,
    next_alloc: u64,
}

impl H5FileState {
    /// A fresh container (allocation cursor just past the superblock).
    pub fn new() -> Self {
        H5FileState {
            datasets: Vec::new(),
            next_alloc: SUPERBLOCK_BYTES,
        }
    }

    /// Record a dataset creation; returns the object-header offset.
    pub fn create_dataset(&mut self, spec: DatasetSpec) -> u64 {
        let base = self.next_alloc;
        self.datasets.push((spec, base));
        self.next_alloc = base + OBJECT_HEADER_BYTES + spec.alloc_bytes();
        base
    }

    /// Number of datasets created so far.
    pub fn num_datasets(&self) -> usize {
        self.datasets.len()
    }

    /// The spec of dataset `idx` (creation order).
    pub fn dataset(&self, idx: usize) -> Option<&DatasetSpec> {
        self.datasets.get(idx).map(|(s, _)| s)
    }

    /// File offset of chunk `chunk_idx` (row-major) of dataset `idx`.
    pub fn chunk_offset(&self, idx: usize, chunk_idx: u64) -> u64 {
        let (spec, base) = self.datasets[idx];
        base + OBJECT_HEADER_BYTES + chunk_idx * spec.chunk_bytes()
    }

    /// Lower a hyperslab selection to contiguous file segments: touched
    /// chunks are transferred whole (HDF5 chunk semantics), and runs of
    /// adjacent chunks are merged into single segments.
    pub fn slab_segments(&self, idx: usize, slab: &Hyperslab) -> Vec<(u64, u64)> {
        let (spec, _) = self.datasets[idx];
        let chunk_bytes = spec.chunk_bytes();
        let chunks = slab.touched_chunks(&spec);
        let mut segments: Vec<(u64, u64)> = Vec::new();
        for c in chunks {
            let off = self.chunk_offset(idx, c);
            match segments.last_mut() {
                Some((so, sl)) if *so + *sl == off => *sl += chunk_bytes,
                _ => segments.push((off, chunk_bytes)),
            }
        }
        segments
    }

    /// Total bytes a hyperslab access moves (whole chunks).
    pub fn slab_bytes(&self, idx: usize, slab: &Hyperslab) -> u64 {
        self.slab_segments(idx, slab).iter().map(|(_, l)| l).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(dims: [u64; 2], chunk: [u64; 2]) -> DatasetSpec {
        DatasetSpec {
            dims,
            chunk,
            elem_size: 8,
        }
    }

    #[test]
    fn sequential_allocation() {
        let mut f = H5FileState::new();
        let d0 = f.create_dataset(ds([10, 10], [10, 10])); // 1 chunk, 800 B
        let d1 = f.create_dataset(ds([10, 10], [10, 10]));
        assert_eq!(d0, SUPERBLOCK_BYTES);
        assert_eq!(d1, SUPERBLOCK_BYTES + OBJECT_HEADER_BYTES + 800);
        assert_eq!(f.num_datasets(), 2);
        assert_eq!(f.dataset(0).unwrap().elem_size, 8);
    }

    #[test]
    fn chunk_offsets_are_row_major() {
        let mut f = H5FileState::new();
        f.create_dataset(ds([20, 20], [10, 10])); // 2x2 grid, 800 B chunks
        let base = SUPERBLOCK_BYTES + OBJECT_HEADER_BYTES;
        assert_eq!(f.chunk_offset(0, 0), base);
        assert_eq!(f.chunk_offset(0, 3), base + 3 * 800);
    }

    #[test]
    fn slab_merges_adjacent_chunks() {
        let mut f = H5FileState::new();
        f.create_dataset(ds([20, 20], [10, 10]));
        // Top row of chunks (0 and 1) — adjacent on disk → one segment.
        let slab = Hyperslab {
            start: [0, 0],
            count: [10, 20],
        };
        let segs = f.slab_segments(0, &slab);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].1, 1600);
        // Left column (chunks 0 and 2) — not adjacent → two segments.
        let slab = Hyperslab {
            start: [0, 0],
            count: [20, 10],
        };
        let segs = f.slab_segments(0, &slab);
        assert_eq!(segs.len(), 2);
        assert_eq!(f.slab_bytes(0, &slab), 1600);
    }

    #[test]
    fn partial_chunk_access_transfers_whole_chunk() {
        let mut f = H5FileState::new();
        f.create_dataset(ds([10, 10], [10, 10]));
        let slab = Hyperslab {
            start: [2, 2],
            count: [1, 1],
        };
        // One element selected, but the whole 800 B chunk moves — the
        // chunk read amplification HDF5 users know well.
        assert_eq!(f.slab_bytes(0, &slab), 800);
    }
}
