//! Job launch and result collection.

use crate::config::StackConfig;
use crate::coordinator::JobCoordinator;
use crate::ops::StackOp;
use crate::plan::compile;
use crate::rank::{RankClient, RankCounters};
use crate::target::{StoragePort, StorageTarget};
use pioeval_des::{EntityId, Simulation};
use pioeval_pfs::msg::PfsMsg;
use pioeval_pfs::Cluster;
use pioeval_trace::JobProfile;
use pioeval_types::{LayerRecord, Rank, ReqEvent, SimDuration, SimTime};

/// A job: one program per rank plus stack configuration.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Per-rank programs. `programs.len()` is the rank count.
    pub programs: Vec<Vec<StackOp>>,
    /// I/O stack configuration.
    pub stack: StackConfig,
    /// Simulated submit time.
    pub start: SimTime,
}

impl JobSpec {
    /// A job where every rank runs the same program (SPMD).
    pub fn spmd(nranks: u32, program: Vec<StackOp>, stack: StackConfig) -> Self {
        JobSpec {
            programs: vec![program; nranks as usize],
            stack,
            start: SimTime::ZERO,
        }
    }

    /// Number of ranks.
    pub fn nranks(&self) -> u32 {
        self.programs.len() as u32
    }
}

/// Handle to a launched job.
#[derive(Clone, Debug)]
pub struct JobHandle {
    /// The coordinator entity.
    pub coordinator: EntityId,
    /// Rank entities, by rank index.
    pub ranks: Vec<EntityId>,
    /// Submit time.
    pub start: SimTime,
}

/// Collected results of a completed job.
#[derive(Clone, Debug)]
pub struct JobResult {
    /// Captured layer records, per rank.
    pub records: Vec<Vec<LayerRecord>>,
    /// Always-on counters, per rank.
    pub counters: Vec<RankCounters>,
    /// Always-on streaming profiles, per rank.
    pub profiles: Vec<JobProfile>,
    /// Per-rank completion times (None = rank did not finish).
    pub finished: Vec<Option<SimTime>>,
    /// Submit time.
    pub start: SimTime,
}

impl JobResult {
    /// Job makespan: submit → last rank completion. None if any rank is
    /// unfinished.
    pub fn makespan(&self) -> Option<SimDuration> {
        let mut latest = SimTime::ZERO;
        for f in &self.finished {
            latest = latest.max((*f)?);
        }
        Some(latest.since(self.start))
    }

    /// All records across ranks, flattened (sorted by start time).
    pub fn all_records(&self) -> Vec<LayerRecord> {
        let mut out: Vec<LayerRecord> = self.records.iter().flatten().copied().collect();
        out.sort_by_key(|r| (r.start, r.rank));
        out
    }

    /// The job-level Darshan-style profile: merge of every rank's
    /// streaming profile (available in all capture modes).
    pub fn merged_profile(&self) -> JobProfile {
        let mut merged = JobProfile::new();
        for p in &self.profiles {
            merged.merge(p);
        }
        merged
    }

    /// Aggregate bytes written at the POSIX level.
    pub fn bytes_written(&self) -> u64 {
        self.counters.iter().map(|c| c.bytes_written).sum()
    }

    /// Aggregate bytes read at the POSIX level.
    pub fn bytes_read(&self) -> u64 {
        self.counters.iter().map(|c| c.bytes_read).sum()
    }

    /// Aggregate write throughput over the makespan, MiB/s.
    pub fn write_throughput_mib_s(&self) -> f64 {
        match self.makespan() {
            Some(m) if !m.is_zero() => {
                pioeval_types::throughput_mib_s(self.bytes_written(), m.as_secs_f64())
            }
            _ => 0.0,
        }
    }

    /// Aggregate read throughput over the makespan, MiB/s.
    pub fn read_throughput_mib_s(&self) -> f64 {
        match self.makespan() {
            Some(m) if !m.is_zero() => {
                pioeval_types::throughput_mib_s(self.bytes_read(), m.as_secs_f64())
            }
            _ => 0.0,
        }
    }
}

/// Backend-agnostic launch body: creates the coordinator and one rank
/// entity per program, and schedules their start messages.
/// `port_factory(me, client_index)` yields each rank's storage port.
fn launch_inner(
    sim: &mut Simulation<PfsMsg>,
    clients: &mut Vec<EntityId>,
    compute_fabric: EntityId,
    mut port_factory: impl FnMut(EntityId, usize) -> StoragePort,
    spec: &JobSpec,
) -> JobHandle {
    let _obs_span = pioeval_obs::span(pioeval_obs::names::SPAN_IOSTACK_LAUNCH, "iostack");
    let nranks = spec.nranks();
    assert!(nranks > 0, "job must have at least one rank");
    let mut total_actions = 0u64;

    // Entity ids are assigned sequentially, so we can precompute the ids
    // of the coordinator and every rank before constructing them (ranks
    // need each other's ids for shuffle traffic).
    let base = sim.num_entities() as u32;
    let coordinator_id = EntityId(base);
    let rank_ids: Vec<EntityId> = (0..nranks).map(|i| EntityId(base + 1 + i)).collect();

    let coord = JobCoordinator::new(compute_fabric, rank_ids.clone());
    let actual = sim.add_entity("coordinator", Box::new(coord));
    debug_assert_eq!(actual, coordinator_id);

    for (i, program) in spec.programs.iter().enumerate() {
        let me = rank_ids[i];
        let client_index = clients.len();
        let port = port_factory(me, client_index);
        let actions = compile(i as u32, nranks, program, &spec.stack);
        total_actions += actions.len() as u64;
        let entity = RankClient::new(
            port,
            Rank::new(i as u32),
            coordinator_id,
            rank_ids.clone(),
            actions,
            spec.stack.capture,
        );
        let actual = sim.add_entity(format!("rank{i}"), Box::new(entity));
        debug_assert_eq!(actual, me);
        clients.push(me);
        sim.schedule(spec.start, me, PfsMsg::Start);
    }

    let obs = pioeval_obs::global();
    obs.counter(pioeval_obs::names::IOSTACK_RANKS)
        .add(nranks as u64);
    obs.counter(pioeval_obs::names::IOSTACK_ACTIONS)
        .add(total_actions);

    JobHandle {
        coordinator: coordinator_id,
        ranks: rank_ids,
        start: spec.start,
    }
}

/// Launch a job onto a PFS cluster: creates the coordinator and one
/// rank entity per program, and schedules their start messages.
pub fn launch(cluster: &mut Cluster, spec: &JobSpec) -> JobHandle {
    let handles = cluster.handles.clone();
    let compute_fabric = handles.compute_fabric;
    launch_inner(
        &mut cluster.sim,
        &mut cluster.clients,
        compute_fabric,
        |me, idx| StoragePort::Pfs(handles.port(me, idx)),
        spec,
    )
}

/// Launch a job onto either storage backend ([`StorageTarget`]): the
/// same compiled rank programs target the PFS or the object store.
pub fn launch_on(target: &mut StorageTarget, spec: &JobSpec) -> JobHandle {
    match target {
        StorageTarget::Pfs(c) => launch(c, spec),
        StorageTarget::ObjStore(c) => {
            let handles = c.handles.clone();
            let compute_fabric = handles.compute_fabric;
            launch_inner(
                &mut c.sim,
                &mut c.clients,
                compute_fabric,
                |me, idx| StoragePort::Obj(handles.port(me, idx)),
                spec,
            )
        }
    }
}

/// Backend-agnostic result collection.
fn collect_from(sim: &Simulation<PfsMsg>, handle: &JobHandle) -> JobResult {
    let _obs_span = pioeval_obs::span(pioeval_obs::names::SPAN_IOSTACK_COLLECT, "iostack");
    let mut records = Vec::new();
    let mut counters = Vec::new();
    let mut profiles = Vec::new();
    let mut finished = Vec::new();
    for &id in &handle.ranks {
        let rank = sim
            .entity_ref::<RankClient>(id)
            .expect("job rank entity missing");
        records.push(rank.records.clone());
        counters.push(rank.counters);
        profiles.push(rank.profile.clone());
        finished.push(rank.finished_at);
    }
    JobResult {
        records,
        counters,
        profiles,
        finished,
        start: handle.start,
    }
}

/// Turn on end-to-end request tracing for a launched job: every
/// infrastructure entity (fabrics, servers, gateways) starts recording
/// and every rank stamps its outgoing RPCs with trace ids. Call after
/// [`launch_on`] and before running the simulation.
pub fn enable_request_trace(target: &mut StorageTarget, handle: &JobHandle) {
    target.enable_infra_trace();
    let sim = match target {
        StorageTarget::Pfs(c) => &mut c.sim,
        StorageTarget::ObjStore(c) => &mut c.sim,
    };
    for &id in &handle.ranks {
        if let Some(rank) = sim.entity_mut::<RankClient>(id) {
            rank.enable_request_trace();
        }
    }
}

/// Drain every request-trace event of a completed run: infrastructure
/// recorders first (ascending entity id), then each rank's recorder in
/// rank order. Each recorder is only ever appended by its own entity,
/// so this merge order — and therefore the drained event sequence — is
/// identical under the sequential and parallel DES executors.
pub fn drain_request_events(target: &mut StorageTarget, handle: &JobHandle) -> Vec<ReqEvent> {
    let mut out = target.drain_infra_trace();
    let sim = match target {
        StorageTarget::Pfs(c) => &mut c.sim,
        StorageTarget::ObjStore(c) => &mut c.sim,
    };
    for &id in &handle.ranks {
        if let Some(rank) = sim.entity_mut::<RankClient>(id) {
            out.extend(rank.reqtrace.drain());
        }
    }
    out
}

/// Collect the results of a job after the simulation has run.
pub fn collect(cluster: &Cluster, handle: &JobHandle) -> JobResult {
    collect_from(&cluster.sim, handle)
}

/// Collect the results of a job launched via [`launch_on`].
pub fn collect_on(target: &StorageTarget, handle: &JobHandle) -> JobResult {
    match target {
        StorageTarget::Pfs(c) => collect_from(&c.sim, handle),
        StorageTarget::ObjStore(c) => collect_from(&c.sim, handle),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::AccessSpec;
    use pioeval_pfs::{Cluster, ClusterConfig};
    use pioeval_types::{bytes, FileId, IoKind, Layer, MetaOp, RecordOp};

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig {
            num_clients: 16,
            ..ClusterConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn spmd_posix_job_runs_to_completion() {
        let mut c = cluster();
        // File-per-process: rank programs differ, so build explicitly.
        let programs: Vec<Vec<StackOp>> = (0..4)
            .map(|r| {
                let f = FileId::new(r);
                vec![
                    StackOp::PosixMeta {
                        op: MetaOp::Create,
                        file: f,
                    },
                    StackOp::PosixData {
                        kind: IoKind::Write,
                        file: f,
                        offset: 0,
                        len: bytes::mib(4),
                    },
                    StackOp::PosixMeta {
                        op: MetaOp::Close,
                        file: f,
                    },
                ]
            })
            .collect();
        let spec = JobSpec {
            programs,
            stack: StackConfig::default(),
            start: SimTime::ZERO,
        };
        let handle = launch(&mut c, &spec);
        c.run();
        let result = collect(&c, &handle);
        assert!(result.makespan().is_some());
        assert_eq!(result.bytes_written(), 4 * bytes::mib(4));
        assert!(result.write_throughput_mib_s() > 0.0);
        // Each rank emitted posix records for create, write, close.
        for recs in &result.records {
            assert!(recs
                .iter()
                .any(|r| r.layer == Layer::Posix && r.op == RecordOp::Data(IoKind::Write)));
        }
    }

    #[test]
    fn barriers_synchronize_ranks() {
        let mut c = cluster();
        // Rank programs with asymmetric compute before a barrier: all
        // ranks leave the barrier at (or after) the slowest's arrival.
        let programs: Vec<Vec<StackOp>> = (0..4)
            .map(|r| {
                vec![
                    StackOp::Compute(SimDuration::from_millis(1 + r as u64 * 5)),
                    StackOp::Barrier,
                ]
            })
            .collect();
        let spec = JobSpec {
            programs,
            stack: StackConfig::default(),
            start: SimTime::ZERO,
        };
        let handle = launch(&mut c, &spec);
        c.run();
        let result = collect(&c, &handle);
        let finish: Vec<SimTime> = result.finished.iter().map(|f| f.unwrap()).collect();
        // Everyone finishes after the slowest rank's 16 ms compute.
        assert!(finish.iter().all(|&f| f >= SimTime::from_millis(16)));
        // And within a small window of each other (release fan-out).
        let spread = finish
            .iter()
            .max()
            .unwrap()
            .since(*finish.iter().min().unwrap());
        assert!(spread < SimDuration::from_millis(1), "spread {spread}");
    }

    #[test]
    fn collective_write_moves_all_bytes_through_aggregators() {
        let mut c = cluster();
        let file = FileId::new(40);
        let program = vec![
            StackOp::MpiOpen { file },
            StackOp::MpiCollective {
                kind: IoKind::Write,
                file,
                spec: AccessSpec::ContiguousBlocks {
                    base: 0,
                    block: bytes::mib(1),
                },
            },
            StackOp::MpiClose { file },
        ];
        let spec = JobSpec::spmd(8, program, StackConfig::default());
        let handle = launch(&mut c, &spec);
        c.run();
        let result = collect(&c, &handle);
        assert!(result.makespan().is_some(), "job did not finish");
        // All 8 MiB reach the file system, written only by aggregators
        // (2 of 8 ranks at the default ratio).
        assert_eq!(result.bytes_written(), 8 * bytes::mib(1));
        let writers = result
            .counters
            .iter()
            .filter(|cnt| cnt.bytes_written > 0)
            .count();
        assert_eq!(writers, 2);
        // Non-aggregators shipped their data over the fabric.
        let shuffled: u64 = result.counters.iter().map(|c| c.shuffle_bytes_sent).sum();
        assert_eq!(shuffled, 6 * bytes::mib(1));
        let stats = c.oss_stats();
        let written: u64 = stats.iter().map(|s| s.bytes_written).sum();
        assert_eq!(written, 8 * bytes::mib(1));
    }

    #[test]
    fn collective_read_distributes_data_back() {
        let mut c = cluster();
        let file = FileId::new(41);
        // Seed the file, then collectively read it back.
        let program = vec![
            StackOp::MpiOpen { file },
            StackOp::MpiCollective {
                kind: IoKind::Write,
                file,
                spec: AccessSpec::ContiguousBlocks {
                    base: 0,
                    block: bytes::mib(1),
                },
            },
            StackOp::Barrier,
            StackOp::MpiCollective {
                kind: IoKind::Read,
                file,
                spec: AccessSpec::ContiguousBlocks {
                    base: 0,
                    block: bytes::mib(1),
                },
            },
            StackOp::MpiClose { file },
        ];
        let spec = JobSpec::spmd(4, program, StackConfig::default());
        let handle = launch(&mut c, &spec);
        c.run();
        let result = collect(&c, &handle);
        assert!(result.makespan().is_some(), "job did not finish");
        assert_eq!(result.bytes_read(), 4 * bytes::mib(1));
    }

    #[test]
    fn profile_mode_captures_no_records_but_counts() {
        let mut c = cluster();
        let f = FileId::new(50);
        let program = vec![
            StackOp::PosixMeta {
                op: MetaOp::Create,
                file: f,
            },
            StackOp::PosixData {
                kind: IoKind::Write,
                file: f,
                offset: 0,
                len: 4096,
            },
        ];
        let stack = StackConfig {
            capture: crate::config::CaptureConfig::profile_only(),
            ..StackConfig::default()
        };
        let spec = JobSpec::spmd(1, program, stack);
        let handle = launch(&mut c, &spec);
        c.run();
        let result = collect(&c, &handle);
        assert!(result.records[0].is_empty());
        assert_eq!(result.counters[0].posix_writes, 1);
        assert_eq!(result.counters[0].bytes_written, 4096);
    }

    #[test]
    fn same_program_runs_on_the_object_store() {
        use pioeval_objstore::{ObjCluster, ObjStoreConfig};
        let c = ObjCluster::new(ObjStoreConfig {
            num_clients: 16,
            ..ObjStoreConfig::default()
        })
        .unwrap();
        let mut target = StorageTarget::ObjStore(c);
        let programs: Vec<Vec<StackOp>> = (0..4)
            .map(|r| {
                let f = FileId::new(r);
                vec![
                    StackOp::PosixMeta {
                        op: MetaOp::Create,
                        file: f,
                    },
                    StackOp::PosixData {
                        kind: IoKind::Write,
                        file: f,
                        offset: 0,
                        len: bytes::mib(4),
                    },
                    StackOp::PosixMeta {
                        op: MetaOp::Close,
                        file: f,
                    },
                    StackOp::PosixMeta {
                        op: MetaOp::Stat,
                        file: f,
                    },
                    StackOp::PosixData {
                        kind: IoKind::Read,
                        file: f,
                        offset: 0,
                        len: bytes::mib(1),
                    },
                ]
            })
            .collect();
        let spec = JobSpec {
            programs,
            stack: StackConfig::default(),
            start: SimTime::ZERO,
        };
        let handle = launch_on(&mut target, &spec);
        target.run();
        let result = collect_on(&target, &handle);
        assert!(result.makespan().is_some(), "job did not finish");
        assert_eq!(result.bytes_written(), 4 * bytes::mib(4));
        assert_eq!(result.bytes_read(), 4 * bytes::mib(1));
        // The bytes actually moved through the gateways...
        let StorageTarget::ObjStore(c) = &mut target else {
            unreachable!()
        };
        let gws = c.gateway_stats();
        let put: u64 = gws.iter().map(|g| g.put_bytes).sum();
        let get: u64 = gws.iter().map(|g| g.get_bytes).sum();
        assert_eq!(put, 4 * bytes::mib(4));
        assert_eq!(get, 4 * bytes::mib(1));
        // ...and landed on the storage nodes (replication factor 2).
        let written: u64 = c.storage_stats().iter().map(|s| s.bytes_written).sum();
        assert_eq!(written, 2 * 4 * bytes::mib(4));
    }

    #[test]
    fn tracing_overhead_slows_the_job() {
        let run = |capture: crate::config::CaptureConfig| {
            let mut c = cluster();
            let f = FileId::new(60);
            let mut program = vec![StackOp::PosixMeta {
                op: MetaOp::Create,
                file: f,
            }];
            for i in 0..50 {
                program.push(StackOp::PosixData {
                    kind: IoKind::Write,
                    file: f,
                    offset: i * 4096,
                    len: 4096,
                });
            }
            let stack = StackConfig {
                capture,
                ..StackConfig::default()
            };
            let spec = JobSpec::spmd(1, program, stack);
            let handle = launch(&mut c, &spec);
            c.run();
            collect(&c, &handle).makespan().unwrap()
        };
        let fast = run(crate::config::CaptureConfig::profile_only());
        let slow = run(crate::config::CaptureConfig::tracing(
            SimDuration::from_micros(50),
        ));
        assert!(slow > fast, "tracing {slow} should exceed profiling {fast}");
    }
}
