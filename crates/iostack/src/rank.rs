//! The rank entity: interprets a compiled action list against the
//! storage simulator, emitting layer records and counters as it goes.

use crate::config::CaptureConfig;
use crate::plan::{Action, RELEASE_TAG};
use crate::target::StoragePort;
use pioeval_des::{Ctx, Entity, EntityId, Envelope};
use pioeval_pfs::msg::{payload_bytes, PfsMsg, RequestId};
use pioeval_trace::JobProfile;
use pioeval_types::{
    tid_for, FileId, IoKind, Layer, LayerRecord, Rank, RecordOp, ReqMark, ReqOp, ReqRecorder,
    SimDuration, SimTime, NO_COLLECTIVE,
};
use std::collections::{HashMap, HashSet};

/// Always-on cheap counters (the "profile mode" floor of Sec. IV-A2).
#[derive(Clone, Copy, Debug, Default)]
pub struct RankCounters {
    /// POSIX-level read calls.
    pub posix_reads: u64,
    /// POSIX-level write calls.
    pub posix_writes: u64,
    /// POSIX-level metadata calls.
    pub posix_meta: u64,
    /// Bytes read at the POSIX level.
    pub bytes_read: u64,
    /// Bytes written at the POSIX level.
    pub bytes_written: u64,
    /// Wall time spent inside data calls.
    pub time_in_data: SimDuration,
    /// Wall time spent inside metadata calls.
    pub time_in_meta: SimDuration,
    /// Wall time spent waiting at barriers.
    pub time_in_barrier: SimDuration,
    /// Wall time spent computing.
    pub time_computing: SimDuration,
    /// Shuffle payload bytes sent (two-phase collective I/O).
    pub shuffle_bytes_sent: u64,
}

/// What the rank is currently blocked on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Waiting {
    /// Ready to advance.
    None,
    /// Outstanding storage RPCs.
    Rpcs,
    /// A compute (or instrumentation-overhead) timer.
    Timer,
    /// A barrier release with this tag.
    Barrier(u64),
    /// Shuffle payload: (tag, bytes still expected).
    Shuffle(u64, u64),
}

const TOKEN_COMPUTE: u64 = 1;
const TOKEN_OVERHEAD: u64 = 2;

/// One rank of a job: interprets its compiled [`Action`] list.
pub struct RankClient {
    port: StoragePort,
    rank: Rank,
    coordinator: EntityId,
    /// Rank index → rank entity (for shuffle sends).
    rank_entities: Vec<EntityId>,
    actions: Vec<Action>,
    pc: usize,
    waiting: Waiting,
    pending: HashSet<RequestId>,
    /// Shuffle bytes received, per tag (may arrive before the wait).
    received: HashMap<u64, u64>,
    /// Barrier releases received before the rank reached the barrier
    /// (possible when another event delays this rank's arrival).
    early_releases: HashSet<u64>,
    /// Open observation intervals: (layer, op, file, offset, len, start).
    record_stack: Vec<(Layer, RecordOp, FileId, u64, u64, SimTime)>,
    capture: CaptureConfig,
    overhead_debt: SimDuration,
    action_start: SimTime,
    /// Captured layer records.
    pub records: Vec<LayerRecord>,
    /// Always-on streaming Darshan-style profile (maintained even in
    /// profile-only capture mode — it IS the profile mode's product).
    pub profile: JobProfile,
    /// Always-on counters.
    pub counters: RankCounters,
    /// When the rank started executing.
    pub started_at: Option<SimTime>,
    /// When the rank finished its program.
    pub finished_at: Option<SimTime>,
    /// Per-request trace recorder (Issue/Done marks for this rank's own
    /// RPCs). Enabled together with the port's tid emission.
    pub reqtrace: ReqRecorder,
    /// Collective instance the rank is currently inside, or
    /// [`NO_COLLECTIVE`]. SPMD programs open collectives in the same
    /// order on every rank, so the running count is a cross-rank-aligned
    /// instance index.
    active_collective: u32,
    /// Number of collective records opened so far.
    next_collective: u32,
}

impl RankClient {
    /// A rank entity executing `actions`.
    pub fn new(
        port: StoragePort,
        rank: Rank,
        coordinator: EntityId,
        rank_entities: Vec<EntityId>,
        actions: Vec<Action>,
        capture: CaptureConfig,
    ) -> Self {
        RankClient {
            port,
            rank,
            coordinator,
            rank_entities,
            actions,
            pc: 0,
            waiting: Waiting::None,
            pending: HashSet::new(),
            received: HashMap::new(),
            early_releases: HashSet::new(),
            record_stack: Vec::new(),
            capture,
            overhead_debt: SimDuration::ZERO,
            action_start: SimTime::ZERO,
            records: Vec::new(),
            profile: JobProfile::new(),
            counters: RankCounters::default(),
            started_at: None,
            finished_at: None,
            reqtrace: ReqRecorder::default(),
            active_collective: NO_COLLECTIVE,
            next_collective: 0,
        }
    }

    /// Turn on request tracing for this rank: the port stamps outgoing
    /// requests with trace ids and the rank records Issue/Done marks.
    pub fn enable_request_trace(&mut self) {
        self.port.set_trace(true);
        self.reqtrace.enabled = true;
    }

    /// Record the client-side Issue mark for an outgoing RPC.
    fn mark_issue(
        &mut self,
        me: u32,
        id: RequestId,
        op: ReqOp,
        file: FileId,
        bytes: u64,
        at: SimTime,
    ) {
        self.reqtrace.record(
            tid_for(me, id),
            me,
            ReqMark::Issue {
                rank: self.rank.0,
                op,
                file: file.0,
                bytes,
                collective: self.active_collective,
                at,
            },
        );
    }

    /// Feed the streaming profile (always) and retain the full record if
    /// its layer is captured (charging the per-record overhead).
    #[allow(clippy::too_many_arguments)]
    fn emit(
        &mut self,
        layer: Layer,
        op: RecordOp,
        file: FileId,
        offset: u64,
        len: u64,
        start: SimTime,
        end: SimTime,
    ) {
        let record = LayerRecord {
            layer,
            rank: self.rank,
            file,
            op,
            offset,
            len,
            start,
            end,
        };
        self.profile.observe(&record);
        if self.capture.captures(layer) {
            self.records.push(record);
            self.overhead_debt += self.capture.overhead_per_record;
        }
    }

    /// Advance through actions until one blocks.
    fn advance(&mut self, ctx: &mut Ctx<'_, PfsMsg>) {
        self.waiting = Waiting::None;
        loop {
            // Pay any accumulated instrumentation overhead first.
            if !self.overhead_debt.is_zero() {
                let debt = self.overhead_debt;
                self.overhead_debt = SimDuration::ZERO;
                self.waiting = Waiting::Timer;
                ctx.send_self(
                    debt,
                    PfsMsg::Timer {
                        token: TOKEN_OVERHEAD,
                    },
                );
                return;
            }
            if self.pc >= self.actions.len() {
                if self.finished_at.is_none() {
                    self.finished_at = Some(ctx.now());
                }
                return;
            }
            let action = self.actions[self.pc].clone();
            self.action_start = ctx.now();
            match action {
                Action::RecordStart {
                    layer,
                    op,
                    file,
                    offset,
                    len,
                } => {
                    if matches!(op, RecordOp::CollectiveData(_)) {
                        self.active_collective = self.next_collective;
                        self.next_collective += 1;
                    }
                    self.record_stack
                        .push((layer, op, file, offset, len, ctx.now()));
                    self.pc += 1;
                }
                Action::RecordEnd => {
                    let (layer, op, file, offset, len, start) = self
                        .record_stack
                        .pop()
                        .expect("RecordEnd without RecordStart");
                    if matches!(op, RecordOp::CollectiveData(_)) {
                        self.active_collective = NO_COLLECTIVE;
                    }
                    self.emit(layer, op, file, offset, len, start, ctx.now());
                    self.pc += 1;
                }
                Action::Compute { dur } => {
                    self.waiting = Waiting::Timer;
                    ctx.send_self(
                        dur,
                        PfsMsg::Timer {
                            token: TOKEN_COMPUTE,
                        },
                    );
                    return;
                }
                Action::Meta { op, file } => {
                    let (hop, msg, id) = self.port.meta(op, file);
                    if self.port.trace_enabled() {
                        self.mark_issue(ctx.me().0, id, ReqOp::Meta(op), file, 0, ctx.now());
                    }
                    self.pending.insert(id);
                    self.waiting = Waiting::Rpcs;
                    ctx.send(hop, ctx.lookahead(), msg);
                    return;
                }
                Action::Data {
                    kind,
                    file,
                    offset,
                    len,
                } => {
                    if len == 0 {
                        self.pc += 1;
                        continue;
                    }
                    let rpcs = self
                        .port
                        .data(kind, file, offset, len)
                        .expect("data access to a file this rank never opened");
                    let traced = self.port.trace_enabled();
                    let op = match kind {
                        IoKind::Read => ReqOp::Read,
                        IoKind::Write => ReqOp::Write,
                    };
                    for (hop, msg, id) in rpcs {
                        if traced {
                            self.mark_issue(
                                ctx.me().0,
                                id,
                                op,
                                file,
                                payload_bytes(&msg),
                                ctx.now(),
                            );
                        }
                        self.pending.insert(id);
                        ctx.send(hop, ctx.lookahead(), msg);
                    }
                    self.waiting = Waiting::Rpcs;
                    return;
                }
                Action::BarrierEnter { tag } => {
                    if self.early_releases.remove(&tag) {
                        // Release already arrived (we were the last to
                        // finish other work): pass straight through.
                        self.finish_barrier(ctx.now(), ctx.now());
                        self.pc += 1;
                        continue;
                    }
                    let (hop, msg) = self.port.app(self.coordinator, tag, 0);
                    ctx.send(hop, ctx.lookahead(), msg);
                    self.waiting = Waiting::Barrier(tag);
                    return;
                }
                Action::ShuffleSend {
                    to_rank,
                    bytes,
                    tag,
                } => {
                    let dst = self.rank_entities[to_rank as usize];
                    let (hop, msg) = self.port.app(dst, tag, bytes);
                    self.counters.shuffle_bytes_sent += bytes;
                    ctx.send(hop, ctx.lookahead(), msg);
                    self.pc += 1;
                }
                Action::ShuffleWait { tag, expect_bytes } => {
                    let got = self.received.get(&tag).copied().unwrap_or(0);
                    if got >= expect_bytes {
                        self.received.remove(&tag);
                        self.pc += 1;
                        continue;
                    }
                    self.waiting = Waiting::Shuffle(tag, expect_bytes);
                    return;
                }
            }
        }
    }

    fn finish_barrier(&mut self, start: SimTime, end: SimTime) {
        self.counters.time_in_barrier += end.since(start);
        self.emit(
            Layer::Application,
            RecordOp::Barrier,
            FileId::new(u32::MAX),
            0,
            0,
            start,
            end,
        );
    }

    /// Complete the currently-blocking Data/Meta action.
    fn complete_storage_action(&mut self, ctx: &mut Ctx<'_, PfsMsg>) {
        let start = self.action_start;
        let end = ctx.now();
        match self.actions[self.pc].clone() {
            Action::Meta { op, file } => {
                self.counters.posix_meta += 1;
                self.counters.time_in_meta += end.since(start);
                self.emit(Layer::Posix, RecordOp::Meta(op), file, 0, 0, start, end);
            }
            Action::Data {
                kind,
                file,
                offset,
                len,
            } => {
                match kind {
                    IoKind::Read => {
                        self.counters.posix_reads += 1;
                        self.counters.bytes_read += len;
                    }
                    IoKind::Write => {
                        self.counters.posix_writes += 1;
                        self.counters.bytes_written += len;
                    }
                }
                self.counters.time_in_data += end.since(start);
                self.emit(
                    Layer::Posix,
                    RecordOp::Data(kind),
                    file,
                    offset,
                    len,
                    start,
                    end,
                );
            }
            other => panic!("storage completion while executing {other:?}"),
        }
        self.pc += 1;
        self.advance(ctx);
    }
}

impl Entity<PfsMsg> for RankClient {
    fn on_event(&mut self, ev: Envelope<PfsMsg>, ctx: &mut Ctx<'_, PfsMsg>) {
        match ev.msg {
            PfsMsg::Start => {
                self.started_at = Some(ctx.now());
                self.advance(ctx);
            }
            PfsMsg::Timer { token } => match token {
                TOKEN_COMPUTE => {
                    let start = self.action_start;
                    let end = ctx.now();
                    self.counters.time_computing += end.since(start);
                    self.emit(
                        Layer::Application,
                        RecordOp::Compute,
                        FileId::new(u32::MAX),
                        0,
                        0,
                        start,
                        end,
                    );
                    self.pc += 1;
                    self.advance(ctx);
                }
                TOKEN_OVERHEAD => self.advance(ctx),
                other => panic!("unknown timer token {other}"),
            },
            PfsMsg::MetaDone(rep) => {
                self.reqtrace
                    .record(rep.tid, ctx.me().0, ReqMark::Done { at: ctx.now() });
                self.port.on_meta_reply(&rep);
                if self.pending.remove(&rep.id) && self.pending.is_empty() {
                    self.complete_storage_action(ctx);
                }
            }
            PfsMsg::IoDone(rep) => {
                self.reqtrace
                    .record(rep.tid, ctx.me().0, ReqMark::Done { at: ctx.now() });
                if self.pending.remove(&rep.id) && self.pending.is_empty() {
                    self.complete_storage_action(ctx);
                }
            }
            PfsMsg::ObjDone(rep) => {
                self.reqtrace
                    .record(rep.tid, ctx.me().0, ReqMark::Done { at: ctx.now() });
                self.port.on_obj_reply(&rep);
                if self.pending.remove(&rep.id) && self.pending.is_empty() {
                    self.complete_storage_action(ctx);
                }
            }
            PfsMsg::App { tag, bytes } => {
                if tag & RELEASE_TAG != 0 {
                    let barrier_tag = tag & !RELEASE_TAG;
                    if self.waiting == Waiting::Barrier(barrier_tag) {
                        self.finish_barrier(self.action_start, ctx.now());
                        self.pc += 1;
                        self.advance(ctx);
                    } else {
                        self.early_releases.insert(barrier_tag);
                    }
                } else {
                    // Shuffle payload.
                    *self.received.entry(tag).or_insert(0) += bytes;
                    if let Waiting::Shuffle(wtag, expect) = self.waiting {
                        if wtag == tag && self.received.get(&tag).copied().unwrap_or(0) >= expect {
                            self.received.remove(&tag);
                            self.pc += 1;
                            self.advance(ctx);
                        }
                    }
                }
            }
            other => panic!("rank received unexpected message: {other:?}"),
        }
    }
}
