//! Storage-target abstraction: the bottom layer of the stack.
//!
//! The layered I/O stack of Fig. 2 traditionally bottoms out in a
//! POSIX-speaking parallel file system; emerging workloads increasingly
//! target S3-like object stores instead. [`StorageTarget`] makes the
//! bottom layer a choice — the same compiled rank programs run
//! unchanged against either backend, so PFS-vs-objstore becomes an
//! evaluation axis rather than a code fork.

use pioeval_des::{EntityId, ExecMode, RunResult};
use pioeval_objstore::{ObjClientPort, ObjCluster};
use pioeval_pfs::msg::PfsMsg;
use pioeval_pfs::{ClientPort, Cluster, MetaReply, ObjReply, RequestId};
use pioeval_types::{FileId, IoKind, MetaOp, Result};

/// A rank's protocol port onto whichever backend the job targets.
///
/// Wraps [`ClientPort`] (PFS: layouts, striping, OST addressing) or
/// [`ObjClientPort`] (object store: multipart splitting, gateway
/// routing) behind the four calls the rank interpreter makes.
#[derive(Clone, Debug)]
pub enum StoragePort {
    /// PFS protocol (metadata server + striped OSTs).
    Pfs(ClientPort),
    /// Object protocol (gateways + flat metadata KV).
    Obj(ObjClientPort),
}

impl StoragePort {
    /// Build a metadata request. Returns (first hop entity, message, id).
    pub fn meta(&mut self, op: MetaOp, file: FileId) -> (EntityId, PfsMsg, RequestId) {
        match self {
            StoragePort::Pfs(p) => p.meta(op, file),
            StoragePort::Obj(p) => p.meta(op, file),
        }
    }

    /// Build the data requests for a logical extent access.
    pub fn data(
        &mut self,
        kind: IoKind,
        file: FileId,
        offset: u64,
        len: u64,
    ) -> Result<Vec<(EntityId, PfsMsg, RequestId)>> {
        match self {
            StoragePort::Pfs(p) => p.data(kind, file, offset, len),
            StoragePort::Obj(p) => p.data(kind, file, offset, len),
        }
    }

    /// Build an application-level message to another client entity.
    pub fn app(&self, dst: EntityId, tag: u64, bytes: u64) -> (EntityId, PfsMsg) {
        match self {
            StoragePort::Pfs(p) => p.app(dst, tag, bytes),
            StoragePort::Obj(p) => p.app(dst, tag, bytes),
        }
    }

    /// Digest a PFS metadata reply (no-op on the object port — the
    /// object protocol never sends `MetaDone`).
    pub fn on_meta_reply(&mut self, rep: &MetaReply) {
        if let StoragePort::Pfs(p) = self {
            p.on_meta_reply(rep);
        }
    }

    /// Digest an object reply (no-op on the PFS port — the PFS protocol
    /// never sends `ObjDone`).
    pub fn on_obj_reply(&mut self, rep: &ObjReply) {
        if let StoragePort::Obj(p) = self {
            p.on_obj_reply(rep);
        }
    }

    /// Enable or disable request-trace id emission on outgoing requests.
    pub fn set_trace(&mut self, on: bool) {
        match self {
            StoragePort::Pfs(p) => p.set_trace(on),
            StoragePort::Obj(p) => p.set_trace(on),
        }
    }

    /// Is request-trace id emission enabled?
    pub fn trace_enabled(&self) -> bool {
        match self {
            StoragePort::Pfs(p) => p.trace_enabled(),
            StoragePort::Obj(p) => p.trace_enabled(),
        }
    }
}

/// A fully assembled storage backend for a job to run against.
pub enum StorageTarget {
    /// A parallel file system cluster.
    Pfs(Cluster),
    /// An S3-like object store.
    ObjStore(ObjCluster),
}

impl StorageTarget {
    /// Run the simulation to completion (sequential executor).
    pub fn run(&mut self) -> RunResult {
        match self {
            StorageTarget::Pfs(c) => c.run(),
            StorageTarget::ObjStore(c) => c.run(),
        }
    }

    /// Run the simulation to completion with an explicit executor.
    pub fn run_exec(&mut self, exec: &ExecMode) -> RunResult {
        match self {
            StorageTarget::Pfs(c) => c.run_exec(exec),
            StorageTarget::ObjStore(c) => c.run_exec(exec),
        }
    }

    /// [`StorageTarget::run_exec`] with per-worker phase profiling: also
    /// returns the parallel executor's merged [`pioeval_types::ExecProfile`]
    /// (`None` for sequential execution).
    pub fn run_exec_profiled(
        &mut self,
        exec: &ExecMode,
    ) -> (RunResult, Option<pioeval_types::ExecProfile>) {
        match self {
            StorageTarget::Pfs(c) => c.run_exec_profiled(exec),
            StorageTarget::ObjStore(c) => c.run_exec_profiled(exec),
        }
    }

    /// The compute-side fabric entity (job coordinators attach to it).
    pub fn compute_fabric(&self) -> EntityId {
        match self {
            StorageTarget::Pfs(c) => c.handles.compute_fabric,
            StorageTarget::ObjStore(c) => c.handles.compute_fabric,
        }
    }

    /// Turn on request-trace recording in every infrastructure entity
    /// (fabrics, servers, gateways). Client-side emission is enabled
    /// separately via [`crate::enable_request_trace`].
    pub fn enable_infra_trace(&mut self) {
        match self {
            StorageTarget::Pfs(c) => c.enable_request_trace(),
            StorageTarget::ObjStore(c) => c.enable_request_trace(),
        }
    }

    /// Drain the request-trace events recorded by the infrastructure
    /// entities, in deterministic (entity-id) order.
    pub fn drain_infra_trace(&mut self) -> Vec<pioeval_types::ReqEvent> {
        match self {
            StorageTarget::Pfs(c) => c.drain_request_events(),
            StorageTarget::ObjStore(c) => c.drain_request_events(),
        }
    }

    /// Aggregate the backend's resilience report (`None` when no
    /// resilience configuration was supplied).
    pub fn resilience(&self) -> Option<pioeval_resil::ResilienceReport> {
        match self {
            StorageTarget::Pfs(c) => c.resilience(),
            StorageTarget::ObjStore(c) => c.resilience(),
        }
    }
}
