//! Application-visible operations of the layered I/O stack.

use pioeval_types::{FileId, IoKind, MetaOp, SimDuration};

/// A rank-symmetric collective access pattern.
///
/// Collective plans must be computable by every rank locally, so
/// collective operations carry a *pattern* (shared by all ranks) rather
/// than raw extents; each rank derives its own portion with
/// [`AccessSpec::segments_for`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessSpec {
    /// Rank `r` accesses the contiguous block `[base + r*block, +block)`.
    ContiguousBlocks {
        /// Start of rank 0's block.
        base: u64,
        /// Bytes per rank.
        block: u64,
    },
    /// Rank `r` accesses `count` segments of `block` bytes, segment `k`
    /// at `base + (k * nranks + r) * block` — the classic interleaved
    /// (round-robin) pattern of BT-IO and many checkpoint formats.
    Interleaved {
        /// Start of the region.
        base: u64,
        /// Bytes per segment.
        block: u64,
        /// Segments per rank.
        count: u64,
    },
}

impl AccessSpec {
    /// The segments rank `rank` of `nranks` accesses, in offset order.
    pub fn segments_for(&self, rank: u32, nranks: u32) -> Vec<(u64, u64)> {
        match *self {
            AccessSpec::ContiguousBlocks { base, block } => {
                if block == 0 {
                    return Vec::new();
                }
                vec![(base + rank as u64 * block, block)]
            }
            AccessSpec::Interleaved { base, block, count } => {
                if block == 0 {
                    return Vec::new();
                }
                (0..count)
                    .map(|k| (base + (k * nranks as u64 + rank as u64) * block, block))
                    .collect()
            }
        }
    }

    /// The file span `[lo, hi)` touched by the whole job.
    pub fn span(&self, nranks: u32) -> (u64, u64) {
        match *self {
            AccessSpec::ContiguousBlocks { base, block } => (base, base + nranks as u64 * block),
            AccessSpec::Interleaved { base, block, count } => {
                (base, base + count * nranks as u64 * block)
            }
        }
    }

    /// Bytes accessed per rank.
    pub fn bytes_per_rank(&self) -> u64 {
        match *self {
            AccessSpec::ContiguousBlocks { block, .. } => block,
            AccessSpec::Interleaved { block, count, .. } => block * count,
        }
    }
}

/// A 2-D chunked dataset (H5Lite).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Dataset extent in elements (rows, cols).
    pub dims: [u64; 2],
    /// Chunk extent in elements (rows, cols).
    pub chunk: [u64; 2],
    /// Bytes per element.
    pub elem_size: u64,
}

impl DatasetSpec {
    /// Chunk grid dimensions (chunks per axis, rounding up).
    pub fn chunk_grid(&self) -> [u64; 2] {
        [
            self.dims[0].div_ceil(self.chunk[0]),
            self.dims[1].div_ceil(self.chunk[1]),
        ]
    }

    /// Bytes per (full) chunk.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk[0] * self.chunk[1] * self.elem_size
    }

    /// Total allocated bytes (all chunks, including edge padding).
    pub fn alloc_bytes(&self) -> u64 {
        let g = self.chunk_grid();
        g[0] * g[1] * self.chunk_bytes()
    }
}

/// A rectangular element selection within a 2-D dataset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hyperslab {
    /// Start coordinates (row, col).
    pub start: [u64; 2],
    /// Extent in elements (rows, cols).
    pub count: [u64; 2],
}

impl Hyperslab {
    /// Indices (row-major) of the chunks this slab touches.
    pub fn touched_chunks(&self, ds: &DatasetSpec) -> Vec<u64> {
        if self.count[0] == 0 || self.count[1] == 0 {
            return Vec::new();
        }
        let grid = ds.chunk_grid();
        let r0 = self.start[0] / ds.chunk[0];
        let r1 = (self.start[0] + self.count[0] - 1) / ds.chunk[0];
        let c0 = self.start[1] / ds.chunk[1];
        let c1 = (self.start[1] + self.count[1] - 1) / ds.chunk[1];
        let mut out = Vec::new();
        for r in r0..=r1.min(grid[0] - 1) {
            for c in c0..=c1.min(grid[1] - 1) {
                out.push(r * grid[1] + c);
            }
        }
        out
    }

    /// Elements selected.
    pub fn elements(&self) -> u64 {
        self.count[0] * self.count[1]
    }
}

/// One operation in a rank's program, at whichever stack layer the
/// application chose to use (Fig. 2: applications may enter the stack at
/// any level).
#[derive(Clone, Debug)]
pub enum StackOp {
    /// Compute for a duration (gaps between I/O phases — preserved so
    /// that replay reproduces burstiness).
    Compute(SimDuration),
    /// Job-wide synchronization barrier.
    Barrier,

    // --- POSIX level ---
    /// A POSIX metadata call.
    PosixMeta {
        /// The operation.
        op: MetaOp,
        /// Target file.
        file: FileId,
    },
    /// A POSIX data call (one contiguous extent).
    PosixData {
        /// Read or write.
        kind: IoKind,
        /// Target file.
        file: FileId,
        /// Byte offset.
        offset: u64,
        /// Byte length.
        len: u64,
    },

    // --- MPI-IO level ---
    /// `MPI_File_open` — every rank opens (N metadata operations).
    MpiOpen {
        /// Target file.
        file: FileId,
    },
    /// `MPI_File_close`.
    MpiClose {
        /// Target file.
        file: FileId,
    },
    /// Independent read/write of this rank's own segments (possibly
    /// noncontiguous; data sieving may coalesce them).
    MpiIndependent {
        /// Read or write.
        kind: IoKind,
        /// Target file.
        file: FileId,
        /// This rank's segments (offset, len), in offset order.
        segments: Vec<(u64, u64)>,
    },
    /// Collective read/write with two-phase aggregation.
    MpiCollective {
        /// Read or write.
        kind: IoKind,
        /// Target file.
        file: FileId,
        /// The rank-symmetric access pattern.
        spec: AccessSpec,
    },

    // --- H5Lite level ---
    /// Create an H5Lite container file (rank 0 writes the superblock).
    H5CreateFile {
        /// The container file.
        file: FileId,
    },
    /// Open an existing H5Lite container.
    H5OpenFile {
        /// The container file.
        file: FileId,
    },
    /// Close an H5Lite container.
    H5CloseFile {
        /// The container file.
        file: FileId,
    },
    /// Create a chunked dataset in a container (rank 0 writes the object
    /// header; all ranks update their allocation maps).
    H5CreateDataset {
        /// The container file.
        file: FileId,
        /// Dataset geometry.
        spec: DatasetSpec,
    },
    /// Read/write a hyperslab of dataset `dataset` (index in creation
    /// order) in a container. Whole chunks are transferred, as HDF5 does.
    H5Hyperslab {
        /// Read or write.
        kind: IoKind,
        /// The container file.
        file: FileId,
        /// Dataset index (creation order within the container).
        dataset: usize,
        /// The selection.
        slab: Hyperslab,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_blocks_partition_the_span() {
        let spec = AccessSpec::ContiguousBlocks {
            base: 100,
            block: 50,
        };
        assert_eq!(spec.segments_for(0, 4), vec![(100, 50)]);
        assert_eq!(spec.segments_for(3, 4), vec![(250, 50)]);
        assert_eq!(spec.span(4), (100, 300));
        assert_eq!(spec.bytes_per_rank(), 50);
    }

    #[test]
    fn interleaved_round_robins() {
        let spec = AccessSpec::Interleaved {
            base: 0,
            block: 10,
            count: 3,
        };
        assert_eq!(spec.segments_for(1, 4), vec![(10, 10), (50, 10), (90, 10)]);
        assert_eq!(spec.span(4), (0, 120));
        assert_eq!(spec.bytes_per_rank(), 30);
        // All ranks' segments tile the span exactly once.
        let mut all: Vec<(u64, u64)> = (0..4).flat_map(|r| spec.segments_for(r, 4)).collect();
        all.sort_unstable();
        let mut pos = 0;
        for (o, l) in all {
            assert_eq!(o, pos);
            pos = o + l;
        }
        assert_eq!(pos, 120);
    }

    #[test]
    fn dataset_geometry() {
        let ds = DatasetSpec {
            dims: [100, 100],
            chunk: [30, 30],
            elem_size: 8,
        };
        assert_eq!(ds.chunk_grid(), [4, 4]);
        assert_eq!(ds.chunk_bytes(), 7200);
        assert_eq!(ds.alloc_bytes(), 16 * 7200);
    }

    #[test]
    fn hyperslab_chunk_selection() {
        let ds = DatasetSpec {
            dims: [100, 100],
            chunk: [50, 50],
            elem_size: 4,
        };
        // Slab entirely within chunk (0,0).
        let s = Hyperslab {
            start: [0, 0],
            count: [10, 10],
        };
        assert_eq!(s.touched_chunks(&ds), vec![0]);
        // Slab spanning all four chunks.
        let s = Hyperslab {
            start: [40, 40],
            count: [20, 20],
        };
        assert_eq!(s.touched_chunks(&ds), vec![0, 1, 2, 3]);
        // Row slab touching the bottom two chunks.
        let s = Hyperslab {
            start: [60, 0],
            count: [10, 100],
        };
        assert_eq!(s.touched_chunks(&ds), vec![2, 3]);
        assert_eq!(s.elements(), 1000);
    }

    #[test]
    fn empty_selections_are_empty() {
        let ds = DatasetSpec {
            dims: [10, 10],
            chunk: [5, 5],
            elem_size: 1,
        };
        let s = Hyperslab {
            start: [0, 0],
            count: [0, 5],
        };
        assert!(s.touched_chunks(&ds).is_empty());
        let spec = AccessSpec::ContiguousBlocks { base: 0, block: 0 };
        assert!(spec.segments_for(0, 4).is_empty());
    }
}
