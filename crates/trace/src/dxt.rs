//! DXT-style extended tracing.
//!
//! Darshan eXtended Tracing (Xu et al.) retains, per (rank, file), the
//! full list of data segments with timestamps — the middle ground between
//! counters and full multi-layer traces. [`DxtTrace`] filters an
//! instrumented run down to exactly that view and offers the queries DXT
//! analysis scripts typically run (per-rank timelines, bandwidth
//! estimation, slowest segments).

use pioeval_types::{FileId, IoKind, Layer, LayerRecord, Rank, RecordOp, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One traced data segment.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Read or write.
    pub kind: IoKind,
    /// Byte offset.
    pub offset: u64,
    /// Byte length.
    pub len: u64,
    /// Call entry time.
    pub start: SimTime,
    /// Call return time.
    pub end: SimTime,
}

/// A DXT-style trace: per-(rank, file) segment lists, in time order.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DxtTrace {
    /// Segments keyed by (rank, file).
    pub segments: BTreeMap<(u32, u32), Vec<Segment>>,
}

impl DxtTrace {
    /// Build from captured records (POSIX-layer data records only).
    pub fn from_records(records: &[LayerRecord]) -> Self {
        let mut t = DxtTrace::default();
        for r in records {
            if r.layer == Layer::Posix {
                if let RecordOp::Data(kind) = r.op {
                    t.segments
                        .entry((r.rank.0, r.file.0))
                        .or_default()
                        .push(Segment {
                            kind,
                            offset: r.offset,
                            len: r.len,
                            start: r.start,
                            end: r.end,
                        });
                }
            }
        }
        for segs in t.segments.values_mut() {
            segs.sort_by_key(|s| s.start);
        }
        t
    }

    /// Total traced segments.
    pub fn num_segments(&self) -> usize {
        self.segments.values().map(Vec::len).sum()
    }

    /// Segments of one (rank, file) stream.
    pub fn stream(&self, rank: Rank, file: FileId) -> &[Segment] {
        self.segments
            .get(&(rank.0, file.0))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The `n` slowest segments by (end - start), descending.
    pub fn slowest(&self, n: usize) -> Vec<(Rank, FileId, Segment)> {
        let mut all: Vec<(Rank, FileId, Segment)> = self
            .segments
            .iter()
            .flat_map(|(&(r, f), segs)| {
                segs.iter().map(move |&s| (Rank::new(r), FileId::new(f), s))
            })
            .collect();
        all.sort_by_key(|x| std::cmp::Reverse(x.2.end.since(x.2.start)));
        all.truncate(n);
        all
    }

    /// Observed bandwidth of one segment, MiB/s.
    pub fn segment_bandwidth(seg: &Segment) -> f64 {
        pioeval_types::throughput_mib_s(seg.len, seg.end.since(seg.start).as_secs_f64())
    }

    /// Job I/O activity span: (first segment start, last segment end).
    pub fn span(&self) -> Option<(SimTime, SimTime)> {
        let mut lo = SimTime::MAX;
        let mut hi = SimTime::ZERO;
        for segs in self.segments.values() {
            for s in segs {
                lo = lo.min(s.start);
                hi = hi.max(s.end);
            }
        }
        (lo != SimTime::MAX).then_some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(rank: u32, file: u32, offset: u64, len: u64, t0: u64, t1: u64) -> LayerRecord {
        LayerRecord {
            layer: Layer::Posix,
            rank: Rank::new(rank),
            file: FileId::new(file),
            op: RecordOp::Data(IoKind::Write),
            offset,
            len,
            start: SimTime::from_micros(t0),
            end: SimTime::from_micros(t1),
        }
    }

    #[test]
    fn filters_to_posix_data_only() {
        let mut meta = data(0, 1, 0, 0, 0, 1);
        meta.op = RecordOp::Meta(pioeval_types::MetaOp::Open);
        let mut mpi = data(0, 1, 0, 100, 0, 1);
        mpi.layer = Layer::MpiIo;
        let records = vec![meta, mpi, data(0, 1, 0, 100, 1, 2)];
        let t = DxtTrace::from_records(&records);
        assert_eq!(t.num_segments(), 1);
        assert_eq!(t.stream(Rank::new(0), FileId::new(1)).len(), 1);
    }

    #[test]
    fn streams_are_time_ordered() {
        let records = vec![data(0, 1, 100, 10, 5, 6), data(0, 1, 0, 10, 1, 2)];
        let t = DxtTrace::from_records(&records);
        let s = t.stream(Rank::new(0), FileId::new(1));
        assert!(s[0].start < s[1].start);
    }

    #[test]
    fn slowest_ranks_by_duration() {
        let records = vec![
            data(0, 1, 0, 10, 0, 100),
            data(1, 1, 0, 10, 0, 10),
            data(2, 1, 0, 10, 0, 50),
        ];
        let t = DxtTrace::from_records(&records);
        let slow = t.slowest(2);
        assert_eq!(slow.len(), 2);
        assert_eq!(slow[0].0, Rank::new(0));
        assert_eq!(slow[1].0, Rank::new(2));
    }

    #[test]
    fn span_and_bandwidth() {
        let records = vec![data(0, 1, 0, 1 << 20, 0, 1_000_000)]; // 1 MiB in 1 s
        let t = DxtTrace::from_records(&records);
        let (lo, hi) = t.span().unwrap();
        assert_eq!(lo, SimTime::ZERO);
        assert_eq!(hi, SimTime::from_secs(1));
        let seg = t.stream(Rank::new(0), FileId::new(1))[0];
        assert!((DxtTrace::segment_bandwidth(&seg) - 1.0).abs() < 1e-9);
        assert!(DxtTrace::default().span().is_none());
    }
}
