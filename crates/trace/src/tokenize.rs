//! Trace tokenization: record streams → symbol streams.
//!
//! Pattern-based trace compression (Hao et al.) and grammar-based I/O
//! prediction (Omnisc'IO) both operate on a *symbol* alphabet, where one
//! symbol captures the repeatable essence of an operation: what it did,
//! to which file, how many bytes, and at what offset *delta* from the
//! previous access to that file. Using deltas instead of absolute offsets
//! is what makes loop iterations map to identical symbols.
//!
//! Tokenization is lossless: [`TokenStream::detokenize`] reconstructs the
//! operation list (absolute offsets are re-derived from the deltas).

use pioeval_types::{FileId, LayerRecord, RecordOp};
use std::collections::HashMap;

/// The repeatable identity of one operation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TokenKey {
    /// What the operation did.
    pub op: RecordOp,
    /// Which file it touched.
    pub file: u32,
    /// Offset delta from the previous access's end on the same file.
    pub delta: i64,
    /// Transfer length.
    pub len: u64,
}

/// Maps operations to dense symbol ids and back.
#[derive(Clone, Debug, Default)]
pub struct Tokenizer {
    dict: HashMap<TokenKey, u32>,
    rev: Vec<TokenKey>,
}

impl Tokenizer {
    /// An empty tokenizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a key, returning its symbol.
    pub fn intern(&mut self, key: TokenKey) -> u32 {
        if let Some(&s) = self.dict.get(&key) {
            return s;
        }
        let s = self.rev.len() as u32;
        self.dict.insert(key, s);
        self.rev.push(key);
        s
    }

    /// The key of a symbol.
    pub fn key(&self, symbol: u32) -> TokenKey {
        self.rev[symbol as usize]
    }

    /// Alphabet size.
    pub fn num_symbols(&self) -> u32 {
        self.rev.len() as u32
    }
}

/// A tokenized operation stream.
#[derive(Clone, Debug)]
pub struct TokenStream {
    /// The symbol sequence.
    pub symbols: Vec<u32>,
    /// The alphabet.
    pub tokenizer: Tokenizer,
}

/// A reconstructed operation (the lossless content of a token stream).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayOp {
    /// What the operation did.
    pub op: RecordOp,
    /// Target file.
    pub file: FileId,
    /// Absolute byte offset.
    pub offset: u64,
    /// Byte length.
    pub len: u64,
}

impl TokenStream {
    /// Tokenize a record stream (typically one rank's records at one
    /// layer, in time order).
    pub fn from_records(records: &[LayerRecord]) -> Self {
        let mut tokenizer = Tokenizer::new();
        let mut last_end: HashMap<u32, u64> = HashMap::new();
        let mut symbols = Vec::with_capacity(records.len());
        for r in records {
            let prev = last_end.get(&r.file.0).copied().unwrap_or(0);
            let delta = r.offset as i64 - prev as i64;
            if r.op.is_data() {
                last_end.insert(r.file.0, r.offset + r.len);
            }
            symbols.push(tokenizer.intern(TokenKey {
                op: r.op,
                file: r.file.0,
                delta,
                len: r.len,
            }));
        }
        TokenStream { symbols, tokenizer }
    }

    /// Reconstruct the operation list (offsets re-derived from deltas).
    pub fn detokenize(&self) -> Vec<ReplayOp> {
        let mut last_end: HashMap<u32, u64> = HashMap::new();
        self.symbols
            .iter()
            .map(|&s| {
                let key = self.tokenizer.key(s);
                let prev = last_end.get(&key.file).copied().unwrap_or(0);
                let offset = (prev as i64 + key.delta) as u64;
                if key.op.is_data() {
                    last_end.insert(key.file, offset + key.len);
                }
                ReplayOp {
                    op: key.op,
                    file: FileId::new(key.file),
                    offset,
                    len: key.len,
                }
            })
            .collect()
    }

    /// Stream length in symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// True when the stream is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_types::{IoKind, Layer, Rank, SimTime};

    fn write_at(file: u32, offset: u64, len: u64) -> LayerRecord {
        LayerRecord {
            layer: Layer::Posix,
            rank: Rank::new(0),
            file: FileId::new(file),
            op: RecordOp::Data(IoKind::Write),
            offset,
            len,
            start: SimTime::ZERO,
            end: SimTime::ZERO,
        }
    }

    #[test]
    fn loop_iterations_share_symbols() {
        // Sequential 1 KiB writes: every op (including the first, whose
        // implicit previous end is 0) is (delta=0, len=1024) — a single
        // repeated symbol.
        let records: Vec<LayerRecord> = (0..10).map(|i| write_at(1, i * 1024, 1024)).collect();
        let ts = TokenStream::from_records(&records);
        assert_eq!(ts.len(), 10);
        assert_eq!(ts.tokenizer.num_symbols(), 1);
        assert_eq!(ts.symbols, [0u32; 10]);
    }

    #[test]
    fn detokenize_roundtrips_offsets() {
        let records = vec![
            write_at(1, 0, 100),
            write_at(1, 500, 100), // forward jump
            write_at(2, 0, 50),    // second file
            write_at(1, 300, 100), // backward jump
        ];
        let ts = TokenStream::from_records(&records);
        let ops = ts.detokenize();
        let expect: Vec<(u32, u64, u64)> = records
            .iter()
            .map(|r| (r.file.0, r.offset, r.len))
            .collect();
        let got: Vec<(u32, u64, u64)> = ops.iter().map(|o| (o.file.0, o.offset, o.len)).collect();
        assert_eq!(expect, got);
    }

    #[test]
    fn meta_ops_do_not_advance_offsets() {
        let mut stat = write_at(1, 0, 0);
        stat.op = RecordOp::Meta(pioeval_types::MetaOp::Stat);
        let records = vec![write_at(1, 0, 100), stat, write_at(1, 100, 100)];
        let ts = TokenStream::from_records(&records);
        let ops = ts.detokenize();
        assert_eq!(ops[2].offset, 100);
    }

    #[test]
    fn empty_stream() {
        let ts = TokenStream::from_records(&[]);
        assert!(ts.is_empty());
        assert!(ts.detokenize().is_empty());
    }
}
