//! Darshan-style I/O characterization profiles.
//!
//! A profile reduces an instrumented run to per-(rank, file) counters in
//! the spirit of Darshan's POSIX module: operation counts, byte totals,
//! transfer-size histograms, sequential/consecutive/random access
//! fractions, first/last access timestamps, and per-op metadata counts.
//! Job-level aggregation detects shared files (accessed by more than one
//! rank) and computes the read/write byte mix that Sec. V of the paper
//! revisits ("HPC storage systems may no longer be dominated by write
//! I/O").

use pioeval_types::{
    size_bucket, FileId, IoKind, Layer, LayerRecord, PatternDetector, Rank, RecordOp, SimDuration,
    SimTime,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Counters for one (rank, file) pair at the POSIX layer.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FileRecord {
    /// Observing rank.
    pub rank: Rank,
    /// The file.
    pub file: FileId,
    /// Read calls.
    pub reads: u64,
    /// Write calls.
    pub writes: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// Transfer-size histogram, reads (Darshan's SIZE_READ_* buckets).
    pub read_size_hist: [u64; 10],
    /// Transfer-size histogram, writes.
    pub write_size_hist: [u64; 10],
    /// Per-metadata-op counts (indexed by [`pioeval_types::MetaOp::index`]).
    pub meta_counts: [u64; 8],
    /// Access-pattern statistics (reads and writes combined).
    pub pattern: PatternDetector,
    /// Time of the first data access.
    pub first_access: SimTime,
    /// Time of the last data access completing.
    pub last_access: SimTime,
    /// Cumulative time inside data calls.
    pub io_time: SimDuration,
    /// Cumulative time inside metadata calls.
    pub meta_time: SimDuration,
}

impl FileRecord {
    fn new(rank: Rank, file: FileId) -> Self {
        FileRecord {
            rank,
            file,
            reads: 0,
            writes: 0,
            bytes_read: 0,
            bytes_written: 0,
            read_size_hist: [0; 10],
            write_size_hist: [0; 10],
            meta_counts: [0; 8],
            pattern: PatternDetector::new(),
            first_access: SimTime::MAX,
            last_access: SimTime::ZERO,
            io_time: SimDuration::ZERO,
            meta_time: SimDuration::ZERO,
        }
    }

    /// Total data calls.
    pub fn data_ops(&self) -> u64 {
        self.reads + self.writes
    }

    /// Mean read size (0 when no reads).
    pub fn mean_read_size(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.bytes_read as f64 / self.reads as f64
        }
    }

    /// Mean write size (0 when no writes).
    pub fn mean_write_size(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.bytes_written as f64 / self.writes as f64
        }
    }
}

/// A job-level profile: per-(rank, file) records plus aggregates.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct JobProfile {
    /// Per-(rank, file) records, keyed for deterministic ordering.
    pub records: BTreeMap<(u32, u32), FileRecord>,
    /// Barriers observed.
    pub barriers: u64,
    /// Total compute time observed.
    pub compute_time: SimDuration,
}

impl JobProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a profile from captured records (only POSIX-layer records
    /// feed the file counters, as in Darshan's POSIX module; Application
    /// records feed barrier/compute totals).
    pub fn from_records(records: &[LayerRecord]) -> Self {
        let mut p = JobProfile::new();
        for r in records {
            p.observe(r);
        }
        p
    }

    /// Streaming observation of one record.
    pub fn observe(&mut self, r: &LayerRecord) {
        match (r.layer, r.op) {
            (Layer::Posix, RecordOp::Data(kind)) => {
                let rec = self
                    .records
                    .entry((r.rank.0, r.file.0))
                    .or_insert_with(|| FileRecord::new(r.rank, r.file));
                match kind {
                    IoKind::Read => {
                        rec.reads += 1;
                        rec.bytes_read += r.len;
                        rec.read_size_hist[size_bucket(r.len)] += 1;
                    }
                    IoKind::Write => {
                        rec.writes += 1;
                        rec.bytes_written += r.len;
                        rec.write_size_hist[size_bucket(r.len)] += 1;
                    }
                }
                rec.pattern.observe(r.offset, r.len);
                rec.first_access = rec.first_access.min(r.start);
                rec.last_access = rec.last_access.max(r.end);
                rec.io_time += r.elapsed();
            }
            (Layer::Posix, RecordOp::Meta(op)) => {
                let rec = self
                    .records
                    .entry((r.rank.0, r.file.0))
                    .or_insert_with(|| FileRecord::new(r.rank, r.file));
                rec.meta_counts[op.index()] += 1;
                rec.meta_time += r.elapsed();
            }
            (Layer::Application, RecordOp::Barrier) => self.barriers += 1,
            (Layer::Application, RecordOp::Compute) => self.compute_time += r.elapsed(),
            _ => {}
        }
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.records.values().map(|r| r.bytes_read).sum()
    }

    /// Total bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.records.values().map(|r| r.bytes_written).sum()
    }

    /// Read fraction of total data volume (0 when no I/O).
    pub fn read_fraction(&self) -> f64 {
        let r = self.bytes_read();
        let w = self.bytes_written();
        if r + w == 0 {
            return 0.0;
        }
        r as f64 / (r + w) as f64
    }

    /// Total metadata operations.
    pub fn meta_ops(&self) -> u64 {
        self.records
            .values()
            .map(|r| r.meta_counts.iter().sum::<u64>())
            .sum()
    }

    /// Total data operations.
    pub fn data_ops(&self) -> u64 {
        self.records.values().map(|r| r.data_ops()).sum()
    }

    /// Metadata operations per data operation — high values flag the
    /// metadata-intensive behaviour of workflow/DL workloads (Sec. V-C).
    pub fn meta_per_data_op(&self) -> f64 {
        let d = self.data_ops();
        if d == 0 {
            return 0.0;
        }
        self.meta_ops() as f64 / d as f64
    }

    /// Files accessed by more than one rank ("shared files").
    pub fn shared_files(&self) -> Vec<FileId> {
        let mut ranks_per_file: BTreeMap<u32, u32> = BTreeMap::new();
        for &(_, file) in self.records.keys() {
            *ranks_per_file.entry(file).or_insert(0) += 1;
        }
        ranks_per_file
            .into_iter()
            .filter(|&(_, n)| n > 1)
            .map(|(f, _)| FileId::new(f))
            .collect()
    }

    /// Distinct files touched.
    pub fn num_files(&self) -> usize {
        let mut files: Vec<u32> = self.records.keys().map(|&(_, f)| f).collect();
        files.sort_unstable();
        files.dedup();
        files.len()
    }

    /// Job-wide per-file pattern summary, merged across ranks.
    pub fn pattern_for_file(&self, file: FileId) -> PatternDetector {
        let mut merged = PatternDetector::new();
        for ((_, f), rec) in &self.records {
            if *f == file.0 {
                merged.merge(&rec.pattern);
            }
        }
        merged
    }

    /// Aggregate transfer-size histogram for reads.
    pub fn read_size_hist(&self) -> [u64; 10] {
        let mut h = [0u64; 10];
        for rec in self.records.values() {
            for (i, v) in rec.read_size_hist.iter().enumerate() {
                h[i] += v;
            }
        }
        h
    }

    /// Aggregate transfer-size histogram for writes.
    pub fn write_size_hist(&self) -> [u64; 10] {
        let mut h = [0u64; 10];
        for rec in self.records.values() {
            for (i, v) in rec.write_size_hist.iter().enumerate() {
                h[i] += v;
            }
        }
        h
    }

    /// Approximate in-memory/serialized footprint: the number of counter
    /// records (used by the tracing-vs-profiling volume experiment).
    pub fn footprint_records(&self) -> usize {
        self.records.len()
    }

    /// Merge another profile into this one (cross-rank aggregation: each
    /// rank maintains its own streaming profile; the job-level view is
    /// the merge, exactly like Darshan's reduction step).
    pub fn merge(&mut self, other: &JobProfile) {
        for (key, rec) in &other.records {
            match self.records.get_mut(key) {
                None => {
                    self.records.insert(*key, rec.clone());
                }
                Some(mine) => {
                    mine.reads += rec.reads;
                    mine.writes += rec.writes;
                    mine.bytes_read += rec.bytes_read;
                    mine.bytes_written += rec.bytes_written;
                    for i in 0..10 {
                        mine.read_size_hist[i] += rec.read_size_hist[i];
                        mine.write_size_hist[i] += rec.write_size_hist[i];
                    }
                    for i in 0..8 {
                        mine.meta_counts[i] += rec.meta_counts[i];
                    }
                    mine.pattern.merge(&rec.pattern);
                    mine.first_access = mine.first_access.min(rec.first_access);
                    mine.last_access = mine.last_access.max(rec.last_access);
                    mine.io_time += rec.io_time;
                    mine.meta_time += rec.meta_time;
                }
            }
        }
        self.barriers += other.barriers;
        self.compute_time += other.compute_time;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_types::MetaOp;

    fn rec(
        rank: u32,
        file: u32,
        op: RecordOp,
        offset: u64,
        len: u64,
        t0: u64,
        t1: u64,
    ) -> LayerRecord {
        LayerRecord {
            layer: Layer::Posix,
            rank: Rank::new(rank),
            file: FileId::new(file),
            op,
            offset,
            len,
            start: SimTime::from_micros(t0),
            end: SimTime::from_micros(t1),
        }
    }

    #[test]
    fn counts_bytes_and_ops() {
        let records = vec![
            rec(0, 1, RecordOp::Data(IoKind::Write), 0, 1000, 0, 10),
            rec(0, 1, RecordOp::Data(IoKind::Write), 1000, 1000, 10, 20),
            rec(0, 1, RecordOp::Data(IoKind::Read), 0, 500, 20, 25),
            rec(0, 1, RecordOp::Meta(MetaOp::Close), 0, 0, 25, 26),
        ];
        let p = JobProfile::from_records(&records);
        assert_eq!(p.bytes_written(), 2000);
        assert_eq!(p.bytes_read(), 500);
        assert_eq!(p.data_ops(), 3);
        assert_eq!(p.meta_ops(), 1);
        assert!((p.read_fraction() - 0.2).abs() < 1e-12);
        let fr = &p.records[&(0, 1)];
        assert_eq!(fr.reads, 1);
        assert_eq!(fr.writes, 2);
        assert_eq!(fr.mean_write_size(), 1000.0);
        assert_eq!(fr.io_time, SimDuration::from_micros(25));
        assert_eq!(fr.first_access, SimTime::ZERO);
        assert_eq!(fr.last_access, SimTime::from_micros(25));
    }

    #[test]
    fn size_histograms_bucket_correctly() {
        let records = vec![
            rec(0, 1, RecordOp::Data(IoKind::Write), 0, 50, 0, 1),
            rec(0, 1, RecordOp::Data(IoKind::Write), 50, 5000, 1, 2),
            rec(0, 1, RecordOp::Data(IoKind::Read), 0, 2_000_000, 2, 3),
        ];
        let p = JobProfile::from_records(&records);
        let wh = p.write_size_hist();
        assert_eq!(wh[0], 1); // 0-100
        assert_eq!(wh[2], 1); // 1K-10K
        let rh = p.read_size_hist();
        assert_eq!(rh[5], 1); // 1M-4M
    }

    #[test]
    fn shared_file_detection() {
        let records = vec![
            rec(0, 7, RecordOp::Data(IoKind::Write), 0, 10, 0, 1),
            rec(1, 7, RecordOp::Data(IoKind::Write), 10, 10, 0, 1),
            rec(1, 8, RecordOp::Data(IoKind::Write), 0, 10, 1, 2),
        ];
        let p = JobProfile::from_records(&records);
        assert_eq!(p.shared_files(), vec![FileId::new(7)]);
        assert_eq!(p.num_files(), 2);
    }

    #[test]
    fn pattern_merges_across_ranks() {
        // Rank 0 sequential, rank 1 random on the same file.
        let records = vec![
            rec(0, 3, RecordOp::Data(IoKind::Read), 0, 100, 0, 1),
            rec(0, 3, RecordOp::Data(IoKind::Read), 100, 100, 1, 2),
            rec(1, 3, RecordOp::Data(IoKind::Read), 500, 100, 0, 1),
            rec(1, 3, RecordOp::Data(IoKind::Read), 0, 100, 1, 2),
        ];
        let p = JobProfile::from_records(&records);
        let merged = p.pattern_for_file(FileId::new(3));
        assert_eq!(merged.total, 4);
        assert_eq!(merged.random, 1);
    }

    #[test]
    fn app_layer_records_feed_job_aggregates() {
        let mut barrier = rec(0, 0, RecordOp::Barrier, 0, 0, 0, 5);
        barrier.layer = Layer::Application;
        let mut compute = rec(0, 0, RecordOp::Compute, 0, 0, 5, 105);
        compute.layer = Layer::Application;
        let p = JobProfile::from_records(&[barrier, compute]);
        assert_eq!(p.barriers, 1);
        assert_eq!(p.compute_time, SimDuration::from_micros(100));
        assert_eq!(p.data_ops(), 0);
    }

    #[test]
    fn non_posix_data_records_do_not_pollute_file_counters() {
        let mut r = rec(0, 1, RecordOp::Data(IoKind::Write), 0, 4096, 0, 1);
        r.layer = Layer::MpiIo;
        let p = JobProfile::from_records(&[r]);
        // MPI-IO-layer records describe logical volume; the POSIX module
        // only counts what reached the file system interface.
        assert_eq!(p.bytes_written(), 0);
        assert_eq!(p.meta_per_data_op(), 0.0);
    }

    #[test]
    fn merge_aggregates_ranks() {
        let a = JobProfile::from_records(&[rec(0, 1, RecordOp::Data(IoKind::Write), 0, 100, 0, 1)]);
        let b = JobProfile::from_records(&[
            rec(0, 1, RecordOp::Data(IoKind::Write), 100, 50, 1, 2),
            rec(1, 2, RecordOp::Data(IoKind::Read), 0, 30, 0, 1),
        ]);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.bytes_written(), 150);
        assert_eq!(merged.bytes_read(), 30);
        assert_eq!(merged.records[&(0, 1)].writes, 2);
        assert_eq!(merged.num_files(), 2);
    }
}
