//! Trace serialization: a compact binary format and a JSON form.
//!
//! The binary format exists so the tracing-volume experiments (paper
//! Sec. IV-A2: traces "produce much more log data" than profiles) measure
//! a realistic on-disk footprint, not a pretty-printed one.
//!
//! Layout: 8-byte magic/version header, a u64 record count, then one
//! 43-byte little-endian record per entry.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use pioeval_types::{
    Error, FileId, IoKind, Layer, LayerRecord, MetaOp, Rank, RecordOp, Result, SimTime,
};

const MAGIC: &[u8; 6] = b"PIOTRC";
const VERSION: u16 = 1;

fn layer_code(l: Layer) -> u8 {
    match l {
        Layer::Application => 0,
        Layer::Hdf5 => 1,
        Layer::MpiIo => 2,
        Layer::Posix => 3,
    }
}

fn layer_from(code: u8) -> Result<Layer> {
    Ok(match code {
        0 => Layer::Application,
        1 => Layer::Hdf5,
        2 => Layer::MpiIo,
        3 => Layer::Posix,
        other => return Err(Error::Codec(format!("bad layer code {other}"))),
    })
}

fn op_code(op: RecordOp) -> u8 {
    match op {
        RecordOp::Data(IoKind::Read) => 0,
        RecordOp::Data(IoKind::Write) => 1,
        RecordOp::CollectiveData(IoKind::Read) => 2,
        RecordOp::CollectiveData(IoKind::Write) => 3,
        RecordOp::Barrier => 4,
        RecordOp::Compute => 5,
        RecordOp::Meta(m) => 6 + m.index() as u8,
    }
}

fn op_from(code: u8) -> Result<RecordOp> {
    Ok(match code {
        0 => RecordOp::Data(IoKind::Read),
        1 => RecordOp::Data(IoKind::Write),
        2 => RecordOp::CollectiveData(IoKind::Read),
        3 => RecordOp::CollectiveData(IoKind::Write),
        4 => RecordOp::Barrier,
        5 => RecordOp::Compute,
        c @ 6..=13 => RecordOp::Meta(MetaOp::ALL[(c - 6) as usize]),
        other => return Err(Error::Codec(format!("bad op code {other}"))),
    })
}

/// Encode records into the compact binary trace format.
pub fn encode_records(records: &[LayerRecord]) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + records.len() * 43);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u64_le(records.len() as u64);
    for r in records {
        buf.put_u8(layer_code(r.layer));
        buf.put_u8(op_code(r.op));
        buf.put_u32_le(r.rank.0);
        buf.put_u32_le(r.file.0);
        buf.put_u64_le(r.offset);
        buf.put_u64_le(r.len);
        buf.put_u64_le(r.start.as_nanos());
        buf.put_u64_le(r.end.as_nanos());
    }
    buf.freeze()
}

/// Decode a binary trace produced by [`encode_records`].
pub fn decode_records(mut data: &[u8]) -> Result<Vec<LayerRecord>> {
    if data.len() < 16 {
        return Err(Error::Codec("truncated header".into()));
    }
    let mut magic = [0u8; 6];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(Error::Codec("bad magic".into()));
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(Error::Codec(format!("unsupported version {version}")));
    }
    let count = data.get_u64_le() as usize;
    if data.remaining() < count * 42 {
        return Err(Error::Codec(format!(
            "truncated body: {} bytes for {count} records",
            data.remaining()
        )));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let layer = layer_from(data.get_u8())?;
        let op = op_from(data.get_u8())?;
        let rank = Rank::new(data.get_u32_le());
        let file = FileId::new(data.get_u32_le());
        let offset = data.get_u64_le();
        let len = data.get_u64_le();
        let start = SimTime::from_nanos(data.get_u64_le());
        let end = SimTime::from_nanos(data.get_u64_le());
        out.push(LayerRecord {
            layer,
            rank,
            file,
            op,
            offset,
            len,
            start,
            end,
        });
    }
    Ok(out)
}

/// Serialize records to JSON (interchange/debugging form).
pub fn records_to_json(records: &[LayerRecord]) -> String {
    serde_json::to_string(records).expect("LayerRecord serialization cannot fail")
}

/// Parse records from JSON.
pub fn records_from_json(json: &str) -> Result<Vec<LayerRecord>> {
    serde_json::from_str(json).map_err(|e| Error::Codec(e.to_string()))
}

/// Serialize a characterization profile to JSON (what a Darshan-style
/// tool writes per job — the "log volume" of profile mode). The map of
/// (rank, file) records is flattened to a list, since JSON object keys
/// must be strings.
pub fn profile_to_json(profile: &crate::profile::JobProfile) -> String {
    #[derive(serde::Serialize)]
    struct ProfileView<'a> {
        records: Vec<&'a crate::profile::FileRecord>,
        barriers: u64,
        compute_time_ns: u64,
    }
    let view = ProfileView {
        records: profile.records.values().collect(),
        barriers: profile.barriers,
        compute_time_ns: profile.compute_time.as_nanos(),
    };
    serde_json::to_string(&view).expect("profile view serialization cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<LayerRecord> {
        let mut out = Vec::new();
        for i in 0..20u64 {
            out.push(LayerRecord {
                layer: Layer::ALL[(i % 4) as usize],
                rank: Rank::new((i % 3) as u32),
                file: FileId::new((i % 5) as u32),
                op: match i % 5 {
                    0 => RecordOp::Data(IoKind::Read),
                    1 => RecordOp::Data(IoKind::Write),
                    2 => RecordOp::Meta(MetaOp::ALL[(i % 8) as usize]),
                    3 => RecordOp::Barrier,
                    _ => RecordOp::CollectiveData(IoKind::Write),
                },
                offset: i * 4096,
                len: 4096,
                start: SimTime::from_micros(i),
                end: SimTime::from_micros(i + 1),
            });
        }
        out
    }

    #[test]
    fn binary_roundtrip_is_lossless() {
        let records = sample();
        let encoded = encode_records(&records);
        let decoded = decode_records(&encoded).unwrap();
        assert_eq!(records, decoded);
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let records = sample();
        let json = records_to_json(&records);
        let decoded = records_from_json(&json).unwrap();
        assert_eq!(records, decoded);
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let records = sample();
        let bin = encode_records(&records).len();
        let json = records_to_json(&records).len();
        assert!(bin * 2 < json, "binary {bin} vs json {json}");
    }

    #[test]
    fn corrupt_inputs_are_rejected() {
        assert!(decode_records(b"short").is_err());
        let mut bad_magic = encode_records(&sample()).to_vec();
        bad_magic[0] = b'X';
        assert!(decode_records(&bad_magic).is_err());
        let mut truncated = encode_records(&sample()).to_vec();
        truncated.truncate(30);
        assert!(decode_records(&truncated).is_err());
        assert!(records_from_json("not json").is_err());
    }

    #[test]
    fn all_op_codes_roundtrip() {
        for code in 0..14u8 {
            let op = op_from(code).unwrap();
            assert_eq!(op_code(op), code);
        }
        assert!(op_from(99).is_err());
        for l in Layer::ALL {
            assert_eq!(layer_from(layer_code(l)).unwrap(), l);
        }
        assert!(layer_from(9).is_err());
    }

    #[test]
    fn empty_trace_roundtrips() {
        let encoded = encode_records(&[]);
        assert_eq!(decode_records(&encoded).unwrap(), Vec::new());
    }
}
