//! Grammar-based trace compression (Re-Pair).
//!
//! Hao et al. compress I/O traces by factoring repeated structure (loop
//! bodies) into grammar rules before generating replay benchmarks. We
//! implement the Re-Pair algorithm (Larsson & Moffat), a member of the
//! same grammar-compression family as the suffix-tree approach in the
//! paper: repeatedly replace the most frequent adjacent symbol pair with
//! a fresh nonterminal until no pair repeats. Expansion is exact, so
//! compression is lossless over the token stream.

use std::collections::HashMap;

/// A straight-line grammar: a start sequence plus binary rules.
///
/// Symbols `< terminals` are terminals; symbol `terminals + i` expands to
/// `rules[i].0, rules[i].1`.
#[derive(Clone, Debug)]
pub struct Grammar {
    /// Number of terminal symbols.
    pub terminals: u32,
    /// Binary rules, in creation order.
    pub rules: Vec<(u32, u32)>,
    /// The start sequence.
    pub sequence: Vec<u32>,
}

impl Grammar {
    /// Total grammar size in symbols (sequence + rule bodies) — the
    /// standard grammar-compression size measure.
    pub fn size(&self) -> usize {
        self.sequence.len() + 2 * self.rules.len()
    }

    /// Expand back to the original terminal sequence.
    pub fn expand(&self) -> Vec<u32> {
        // Memoized rule expansions, computed in creation order (rules
        /* only reference earlier rules or terminals). */
        let mut expansions: Vec<Vec<u32>> = Vec::with_capacity(self.rules.len());
        for &(a, b) in &self.rules {
            let mut body = Vec::new();
            for &s in &[a, b] {
                if s < self.terminals {
                    body.push(s);
                } else {
                    body.extend_from_slice(&expansions[(s - self.terminals) as usize]);
                }
            }
            expansions.push(body);
        }
        let mut out = Vec::new();
        for &s in &self.sequence {
            if s < self.terminals {
                out.push(s);
            } else {
                out.extend_from_slice(&expansions[(s - self.terminals) as usize]);
            }
        }
        out
    }

    /// Compression ratio: original length / grammar size (≥ 1 for
    /// compressible inputs; < 1 possible only on tiny inputs).
    pub fn ratio(&self, original_len: usize) -> f64 {
        if self.size() == 0 {
            return 1.0;
        }
        original_len as f64 / self.size() as f64
    }
}

/// The Re-Pair compressor.
pub struct RePair;

impl RePair {
    /// Compress `seq` (symbols drawn from `0..terminals`).
    pub fn compress(seq: &[u32], terminals: u32) -> Grammar {
        let mut sequence = seq.to_vec();
        let mut rules: Vec<(u32, u32)> = Vec::new();
        let mut next_symbol = terminals;

        loop {
            // Count non-overlapping digram occurrences, left to right.
            let mut counts: HashMap<(u32, u32), u32> = HashMap::new();
            let mut i = 0;
            while i + 1 < sequence.len() {
                let d = (sequence[i], sequence[i + 1]);
                let c = counts.entry(d).or_insert(0);
                *c += 1;
                // Skip the middle of an overlapping run (aaa counts one).
                if i + 2 < sequence.len() && sequence[i + 2] == d.0 && d.0 == d.1 {
                    i += 2;
                } else {
                    i += 1;
                }
            }
            // Most frequent digram; deterministic tie-break.
            let Some((&digram, &count)) = counts
                .iter()
                .max_by_key(|(&d, &c)| (c, std::cmp::Reverse(d)))
            else {
                break;
            };
            if count < 2 {
                break;
            }

            // Replace non-overlapping occurrences left to right.
            let rule_sym = next_symbol;
            next_symbol += 1;
            rules.push(digram);
            let mut out = Vec::with_capacity(sequence.len());
            let mut i = 0;
            while i < sequence.len() {
                if i + 1 < sequence.len() && (sequence[i], sequence[i + 1]) == digram {
                    out.push(rule_sym);
                    i += 2;
                } else {
                    out.push(sequence[i]);
                    i += 1;
                }
            }
            sequence = out;
        }

        Grammar {
            terminals,
            rules,
            sequence,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(seq: &[u32], terminals: u32) -> Grammar {
        let g = RePair::compress(seq, terminals);
        assert_eq!(g.expand(), seq, "expansion mismatch");
        g
    }

    #[test]
    fn repetitive_sequence_compresses_well() {
        // 64 repetitions of the 4-symbol motif 0,1,2,3.
        let seq: Vec<u32> = (0..256).map(|i| i % 4).collect();
        let g = roundtrip(&seq, 4);
        assert!(
            g.size() < 32,
            "repetitive input should compress far below {} (got {})",
            seq.len(),
            g.size()
        );
        assert!(g.ratio(seq.len()) > 8.0);
    }

    #[test]
    fn random_like_sequence_stays_flat() {
        // All-distinct symbols: nothing repeats, no rules.
        let seq: Vec<u32> = (0..100).collect();
        let g = roundtrip(&seq, 100);
        assert!(g.rules.is_empty());
        assert_eq!(g.size(), 100);
    }

    #[test]
    fn overlapping_runs_are_counted_safely() {
        // "aaaa" — digram (a,a) occurs twice non-overlapping.
        let seq = vec![0, 0, 0, 0];
        let g = roundtrip(&seq, 1);
        assert!(g.size() <= 4);
        // "aaa" — only one non-overlapping occurrence; no rule.
        let seq = vec![0, 0, 0];
        let g = roundtrip(&seq, 1);
        assert!(g.rules.is_empty());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let g = roundtrip(&[], 4);
        assert_eq!(g.size(), 0);
        let g = roundtrip(&[2], 4);
        assert_eq!(g.size(), 1);
    }

    #[test]
    fn nested_structure_compresses_hierarchically() {
        // (ab)^2 c (ab)^2 c ... — rules should stack.
        let motif = [0u32, 1, 0, 1, 2];
        let seq: Vec<u32> = motif.iter().copied().cycle().take(60).collect();
        let g = roundtrip(&seq, 3);
        assert!(g.rules.len() >= 2);
        assert!(g.ratio(seq.len()) > 3.0);
    }

    #[test]
    fn compression_is_deterministic() {
        let seq: Vec<u32> = (0..200).map(|i| (i * 7) % 5).collect();
        let g1 = RePair::compress(&seq, 5);
        let g2 = RePair::compress(&seq, 5);
        assert_eq!(g1.rules, g2.rules);
        assert_eq!(g1.sequence, g2.sequence);
    }
}
