#![warn(missing_docs)]
#![forbid(unsafe_code)]
//! # pioeval-trace
//!
//! The *measurements and statistics collection* phase of the paper's
//! evaluation cycle (Sec. IV-A2): tools that reduce the instrumented I/O
//! stack's [`pioeval_types::LayerRecord`] stream into the two classical
//! data products —
//!
//! * **Profiles** ([`profile`]) — Darshan-style characterization
//!   counters: op counts, byte totals, transfer-size histograms, access
//!   pattern fractions, shared-file detection. Small, cheap, lossy.
//! * **Traces** ([`dxt`], [`codec`]) — DXT/Recorder-style chronological
//!   records with timestamps. Large, costly, lossless.
//!
//! plus [`grammar`]-based trace compression (Hao et al.-style) and the
//! [`tokenize`] step that turns record streams into symbol streams for
//! compression and for the pattern-prediction models in `pioeval-model`.

pub mod attribution;
pub mod codec;
pub mod dxt;
pub mod grammar;
pub mod profile;
pub mod tokenize;

pub use attribution::{attribute, LayerTime};
pub use codec::{
    decode_records, encode_records, profile_to_json, records_from_json, records_to_json,
};
pub use dxt::DxtTrace;
pub use grammar::{Grammar, RePair};
pub use profile::{FileRecord, JobProfile};
pub use tokenize::{TokenStream, Tokenizer};
