//! Per-layer time attribution (Recorder-style analysis).
//!
//! Multi-level traces exist to answer "where does the time go?": of the
//! time an application spends inside an HDF5 call, how much is the
//! HDF5 library itself, how much the MPI-IO middleware, how much the
//! POSIX/storage layer? [`attribute`] computes, per rank, each layer's
//! *inclusive* time (inside any call at that layer) and *exclusive*
//! time (inclusive minus the time spent in captured calls of the next
//! layer down) — the standard flame-graph-style reduction over the
//! layered records of one rank.

use pioeval_types::{Layer, LayerRecord, SimDuration};

/// One layer's attribution for one rank.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayerTime {
    /// The layer.
    pub layer: Layer,
    /// Calls observed at this layer.
    pub calls: usize,
    /// Total time inside calls at this layer.
    pub inclusive: SimDuration,
    /// Inclusive time minus time inside the next layer down's calls
    /// (that overlap these calls) — the layer's own cost.
    pub exclusive: SimDuration,
}

/// Merge overlapping intervals and return their total length.
fn union_len(mut intervals: Vec<(u64, u64)>) -> u64 {
    if intervals.is_empty() {
        return 0;
    }
    intervals.sort_unstable();
    let mut total = 0;
    let (mut cur_s, mut cur_e) = intervals[0];
    for (s, e) in intervals.into_iter().skip(1) {
        if s > cur_e {
            total += cur_e - cur_s;
            cur_s = s;
            cur_e = e;
        } else {
            cur_e = cur_e.max(e);
        }
    }
    total + (cur_e - cur_s)
}

/// Total time inside `inner` intervals that overlaps any `outer` interval.
fn overlap_len(outer: &[(u64, u64)], inner: &[(u64, u64)]) -> u64 {
    // Clip every inner interval against the outer set, then union.
    let mut clipped = Vec::new();
    for &(is, ie) in inner {
        for &(os, oe) in outer {
            let s = is.max(os);
            let e = ie.min(oe);
            if s < e {
                clipped.push((s, e));
            }
        }
    }
    union_len(clipped)
}

/// Attribute one rank's records across the stack layers, top down.
///
/// Only library layers are attributed (Hdf5, MpiIo, Posix); Application
/// records (compute, barriers) are not I/O time.
pub fn attribute(records: &[LayerRecord]) -> Vec<LayerTime> {
    let layer_intervals = |layer: Layer| -> Vec<(u64, u64)> {
        records
            .iter()
            .filter(|r| {
                r.layer == layer
                    && (r.op.is_data() || matches!(r.op, pioeval_types::RecordOp::Meta(_)))
            })
            .map(|r| (r.start.as_nanos(), r.end.as_nanos()))
            .collect()
    };
    let stack = [Layer::Hdf5, Layer::MpiIo, Layer::Posix];
    let all: Vec<Vec<(u64, u64)>> = stack.iter().map(|&l| layer_intervals(l)).collect();
    stack
        .iter()
        .enumerate()
        .map(|(i, &layer)| {
            let inclusive = union_len(all[i].clone());
            let below = if i + 1 < stack.len() {
                overlap_len(&all[i], &all[i + 1])
            } else {
                0
            };
            LayerTime {
                layer,
                calls: all[i].len(),
                inclusive: SimDuration::from_nanos(inclusive),
                exclusive: SimDuration::from_nanos(inclusive.saturating_sub(below)),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pioeval_types::{FileId, IoKind, Rank, RecordOp, SimTime};

    fn rec(layer: Layer, t0: u64, t1: u64) -> LayerRecord {
        LayerRecord {
            layer,
            rank: Rank::new(0),
            file: FileId::new(1),
            op: RecordOp::Data(IoKind::Write),
            offset: 0,
            len: 100,
            start: SimTime::from_micros(t0),
            end: SimTime::from_micros(t1),
        }
    }

    #[test]
    fn exclusive_subtracts_nested_layers() {
        // H5 call [0,100] wrapping an MPI call [10,90] wrapping POSIX
        // calls [20,40] and [50,80].
        let records = vec![
            rec(Layer::Hdf5, 0, 100),
            rec(Layer::MpiIo, 10, 90),
            rec(Layer::Posix, 20, 40),
            rec(Layer::Posix, 50, 80),
        ];
        let att = attribute(&records);
        let get = |l: Layer| att.iter().find(|a| a.layer == l).copied().unwrap();
        assert_eq!(get(Layer::Hdf5).inclusive, SimDuration::from_micros(100));
        // H5 exclusive = 100 - 80 (MPI inside it).
        assert_eq!(get(Layer::Hdf5).exclusive, SimDuration::from_micros(20));
        // MPI exclusive = 80 - (20 + 30) POSIX.
        assert_eq!(get(Layer::MpiIo).exclusive, SimDuration::from_micros(30));
        // POSIX keeps everything (bottom captured layer).
        assert_eq!(get(Layer::Posix).exclusive, SimDuration::from_micros(50));
        assert_eq!(get(Layer::Posix).calls, 2);
    }

    #[test]
    fn non_nested_posix_does_not_reduce_mpi() {
        // A POSIX call outside the MPI call's span.
        let records = vec![rec(Layer::MpiIo, 0, 50), rec(Layer::Posix, 60, 90)];
        let att = attribute(&records);
        let mpi = att.iter().find(|a| a.layer == Layer::MpiIo).unwrap();
        assert_eq!(mpi.exclusive, SimDuration::from_micros(50));
    }

    #[test]
    fn overlapping_intervals_union_correctly() {
        assert_eq!(union_len(vec![(0, 10), (5, 15), (20, 30)]), 25);
        assert_eq!(union_len(vec![]), 0);
        assert_eq!(overlap_len(&[(0, 10)], &[(5, 20)]), 5);
        assert_eq!(overlap_len(&[(0, 10), (20, 30)], &[(5, 25)]), 10);
    }

    #[test]
    fn empty_records_are_fine() {
        let att = attribute(&[]);
        assert!(att.iter().all(|a| a.calls == 0 && a.inclusive.is_zero()));
    }
}
