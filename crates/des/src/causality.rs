//! Run-time causality sanitizer for the conservative parallel engine
//! (`--features causality-check`).
//!
//! The conservative window protocol rests on two invariants:
//!
//! 1. **Commit monotonicity.** A worker's window horizons only grow,
//!    and no event ever executes strictly below a horizon the worker
//!    has already committed (finished a window at). An event below the
//!    committed horizon is a straggler — the parallel run can no longer
//!    reproduce the sequential trajectory.
//! 2. **Send ordering.** Cross-worker mailbox batches arrive in the
//!    order they were sent (per channel), and every delivered event is
//!    at or above the receiver's committed horizon.
//!
//! Both are *supposed* to hold by construction; this module asserts
//! them at run time so a future scheduling bug aborts loudly with a
//! diagnostic snapshot (worker, window id, horizon, offending event
//! time) instead of silently corrupting results. The guard costs one
//! branch and one max per event, so it is compiled in only under the
//! `causality-check` cargo feature; release builds carry zero overhead.
//!
//! Single-worker runs bypass the parallel machinery entirely (the
//! sequential executor is definitionally causal) and are not guarded.

/// Per-worker causality state: the committed horizon, the open
/// window's horizon, and a Lamport clock over executed events.
#[derive(Debug)]
pub struct CausalityGuard {
    worker: usize,
    /// Horizon of the last *finished* window: no event may ever
    /// execute strictly below this again.
    committed: u64,
    /// Horizon of the currently open window, if one is open.
    window: Option<u64>,
    /// Lamport clock: max event timestamp executed so far.
    clock: u64,
    /// Number of windows this worker has opened (the window id).
    windows: u64,
}

impl CausalityGuard {
    /// A fresh guard for `worker`, with nothing committed.
    pub fn new(worker: usize) -> Self {
        CausalityGuard {
            worker,
            committed: 0,
            window: None,
            clock: 0,
            windows: 0,
        }
    }

    /// The committed horizon (exclusive lower bound for future events).
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Open a window at horizon `h`. Horizons must be monotone: a
    /// window below an already-committed horizon means the decide step
    /// went backwards in time.
    #[track_caller]
    pub fn begin_window(&mut self, h: u64) {
        assert!(
            h >= self.committed,
            "causality violation: worker {} window {} opens at horizon {} \
             below its committed horizon {} (clock {})",
            self.worker,
            self.windows,
            h,
            self.committed,
            self.clock,
        );
        self.windows += 1;
        self.window = Some(h);
    }

    /// Record the execution of an event at `t` nanos. Panics if the
    /// event lies strictly below the committed horizon (a straggler)
    /// or at/above the open window's horizon (a window-store leak).
    #[track_caller]
    pub fn check_execute(&mut self, t: u64) {
        let h = self
            .window
            .expect("causality-check: event executed outside any window");
        assert!(
            t >= self.committed,
            "causality violation: worker {} window {} executed an event at \
             {} ns, strictly below its committed horizon {} ns (window \
             horizon {}, clock {})",
            self.worker,
            self.windows,
            t,
            self.committed,
            h,
            self.clock,
        );
        assert!(
            t < h,
            "causality violation: worker {} window {} executed an event at \
             {} ns, at or beyond the window horizon {} ns (committed {}, \
             clock {})",
            self.worker,
            self.windows,
            t,
            h,
            self.committed,
            self.clock,
        );
        self.clock = self.clock.max(t);
    }

    /// Close the open window and commit its horizon.
    pub fn end_window(&mut self) {
        if let Some(h) = self.window.take() {
            self.committed = self.committed.max(h);
        }
    }
}

/// One cross-worker mailbox hand-off, published by the sender next to
/// the batch itself: the sending worker, its per-channel sequence
/// number, and the minimum event timestamp in the batch.
#[derive(Clone, Copy, Debug)]
pub struct CausalStamp {
    /// Sending worker index.
    pub from: usize,
    /// Per-(from → to) channel sequence number, starting at 0.
    pub seq: u64,
    /// Minimum event time (nanos) in the stamped batch.
    pub min_time: u64,
}

/// Receiver-side check of [`CausalStamp`]s: per-channel sequence
/// numbers must arrive in send order with no gaps, and no delivered
/// batch may dip below the receiver's committed horizon.
#[derive(Debug)]
pub struct ChannelCheck {
    worker: usize,
    /// Next expected sequence number per sending worker.
    expect: Vec<u64>,
}

impl ChannelCheck {
    /// A fresh checker for `worker` receiving from `threads` senders.
    pub fn new(worker: usize, threads: usize) -> Self {
        ChannelCheck {
            worker,
            expect: vec![0; threads],
        }
    }

    /// Validate one delivered stamp against the receiver's committed
    /// horizon at drain time.
    #[track_caller]
    pub fn on_deliver(&mut self, stamp: &CausalStamp, committed: u64) {
        let expected = self.expect[stamp.from];
        assert!(
            stamp.seq == expected,
            "causality violation: worker {} received batch seq {} from \
             worker {} but expected seq {} (mailbox reordered or dropped)",
            self.worker,
            stamp.seq,
            stamp.from,
            expected,
        );
        self.expect[stamp.from] = expected + 1;
        assert!(
            stamp.min_time >= committed,
            "causality violation: worker {} received a batch from worker \
             {} (seq {}) whose earliest event at {} ns is below the \
             receiver's committed horizon {} ns",
            self.worker,
            stamp.from,
            stamp.seq,
            stamp.min_time,
            committed,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_window_sequence_passes() {
        let mut g = CausalityGuard::new(0);
        g.begin_window(100);
        g.check_execute(0);
        g.check_execute(99);
        g.end_window();
        g.begin_window(250);
        g.check_execute(100);
        g.check_execute(249);
        g.end_window();
        assert_eq!(g.committed(), 250);
    }

    #[test]
    #[should_panic(expected = "strictly below its committed horizon")]
    fn straggler_event_fires_the_sanitizer() {
        // Commit a window at horizon 1000, then let an event at 999
        // slip through: the sanitizer must abort.
        let mut g = CausalityGuard::new(3);
        g.begin_window(1000);
        g.check_execute(500);
        g.end_window();
        g.begin_window(2000);
        g.check_execute(999);
    }

    #[test]
    #[should_panic(expected = "below its committed horizon")]
    fn regressing_horizon_fires_the_sanitizer() {
        let mut g = CausalityGuard::new(1);
        g.begin_window(1000);
        g.end_window();
        g.begin_window(999);
    }

    #[test]
    #[should_panic(expected = "at or beyond the window horizon")]
    fn event_beyond_window_horizon_fires_the_sanitizer() {
        let mut g = CausalityGuard::new(0);
        g.begin_window(100);
        g.check_execute(100);
    }

    #[test]
    fn in_order_channel_delivery_passes() {
        let mut c = ChannelCheck::new(1, 4);
        c.on_deliver(
            &CausalStamp {
                from: 0,
                seq: 0,
                min_time: 50,
            },
            0,
        );
        c.on_deliver(
            &CausalStamp {
                from: 0,
                seq: 1,
                min_time: 120,
            },
            100,
        );
        c.on_deliver(
            &CausalStamp {
                from: 2,
                seq: 0,
                min_time: 100,
            },
            100,
        );
    }

    #[test]
    #[should_panic(expected = "mailbox reordered or dropped")]
    fn out_of_order_delivery_fires_the_sanitizer() {
        let mut c = ChannelCheck::new(0, 2);
        c.on_deliver(
            &CausalStamp {
                from: 1,
                seq: 1,
                min_time: 10,
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "below the receiver's committed horizon")]
    fn late_delivery_fires_the_sanitizer() {
        let mut c = ChannelCheck::new(0, 2);
        c.on_deliver(
            &CausalStamp {
                from: 1,
                seq: 0,
                min_time: 99,
            },
            100,
        );
    }
}
