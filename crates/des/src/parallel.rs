//! Conservative parallel executor (barrier-synchronized, YAWNS-style).
//!
//! Entities are partitioned round-robin across worker threads. Execution
//! proceeds in *windows*: each window processes every pending event with a
//! timestamp strictly below the global minimum next-event time plus the
//! engine lookahead. Because cross-entity messages carry at least the
//! lookahead of delay, no event generated inside a window can be destined
//! for delivery inside that window on another thread — the classical
//! conservative-synchronization safety argument.
//!
//! Within a window each thread drains its local heap in [`crate::event::EventKey`]
//! order; the key depends only on the sending action, so every entity
//! observes its events in exactly the order the sequential executor would
//! deliver them, for any thread count. `tests` assert this equivalence.

use crate::event::Envelope;
use crate::queue::EventQueue;
use crate::sim::{Ctx, RunResult, Simulation};
use parking_lot::Mutex;
use pioeval_types::SimTime;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Parallel executor configuration.
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Number of worker threads (clamped to at least 1).
    pub threads: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig { threads: 4 }
    }
}

/// Owner thread of an entity: round-robin by id.
fn owner(entity_index: usize, threads: usize) -> usize {
    entity_index % threads
}

/// A spin-then-yield generation barrier.
///
/// Synchronization windows are short (often well under a millisecond),
/// so an OS-parking barrier would spend more time in wake-ups than in
/// simulation. Waiters spin briefly (fast path when every thread has its
/// own core), then fall back to `yield_now` so oversubscribed hosts —
/// including single-core machines — still make progress instead of
/// burning whole scheduler quanta.
struct SpinBarrier {
    total: usize,
    arrived: AtomicUsize,
    generation: AtomicUsize,
}

impl SpinBarrier {
    const SPINS_BEFORE_YIELD: u32 = 256;

    fn new(total: usize) -> Self {
        SpinBarrier {
            total,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    fn wait(&self) {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) == self.total - 1 {
            // Last arrival: reset and release the next generation.
            self.arrived.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::AcqRel);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == generation {
                if spins < Self::SPINS_BEFORE_YIELD {
                    std::hint::spin_loop();
                    spins += 1;
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

struct Worker<M> {
    /// (global entity index, entity) pairs owned by this thread.
    entities: Vec<(usize, Box<dyn crate::sim::Entity<M>>)>,
    /// Send sequence counters for owned entities, parallel to `entities`.
    seqs: Vec<u64>,
    /// Local slot lookup: global entity index → local slot (usize::MAX if
    /// not owned).
    slots: Vec<usize>,
    heap: EventQueue<M>,
    processed: u64,
}

/// Run the simulation to completion with the conservative parallel
/// executor. Produces the same entity state trajectories as
/// [`Simulation::run`].
///
/// Note: [`Ctx::halt`] takes effect at window granularity here (the
/// current window always completes), so halting runs may process more
/// events than the sequential executor would; all events processed are
/// still processed in the same per-entity order.
pub fn run_parallel<M: Send + 'static>(sim: &mut Simulation<M>, cfg: ParallelConfig) -> RunResult {
    let _obs_span = pioeval_obs::span(pioeval_obs::names::SPAN_DES_RUN_PAR, "des");
    let threads = cfg.threads.max(1).min(sim.num_entities().max(1));
    let n = sim.num_entities();
    let lookahead = sim.lookahead();
    let time_limit = sim.config().time_limit;
    // A zero lookahead would make windows degenerate (width clamped to
    // 1 ns below), which is legal but slow; the assertion in Ctx::send
    // already prevents zero-delay cross sends when lookahead is zero.
    let window = lookahead.as_nanos().max(1);

    // Partition entities and their seq counters out of the simulation.
    let mut workers: Vec<Worker<M>> = (0..threads)
        .map(|_| Worker {
            entities: Vec::new(),
            seqs: Vec::new(),
            slots: vec![usize::MAX; n],
            heap: EventQueue::new(),
            processed: 0,
        })
        .collect();
    for idx in 0..n {
        let w = owner(idx, threads);
        let entity = sim.entities[idx]
            .take()
            .expect("entity checked out before parallel run");
        workers[w].slots[idx] = workers[w].entities.len();
        workers[w].entities.push((idx, entity));
        workers[w].seqs.push(sim.seqs[idx]);
    }
    // Distribute pending events to their owners' heaps.
    while let Some(ev) = sim.queue.pop() {
        let w = owner(ev.dst().index(), threads);
        workers[w].heap.push(ev);
    }

    // Shared synchronization state.
    let barrier = SpinBarrier::new(threads);
    let local_mins: Vec<AtomicU64> = (0..threads).map(|_| AtomicU64::new(u64::MAX)).collect();
    // outboxes[from][to]: events sent from thread `from` to entities owned
    // by thread `to`, buffered during a window, drained after the barrier.
    let outboxes: Vec<Vec<Mutex<Vec<Envelope<M>>>>> = (0..threads)
        .map(|_| (0..threads).map(|_| Mutex::new(Vec::new())).collect())
        .collect();
    let halted = AtomicBool::new(false);
    let end_time = AtomicU64::new(0);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (tid, mut worker) in workers.drain(..).enumerate() {
            let barrier = &barrier;
            let local_mins = &local_mins;
            let outboxes = &outboxes;
            let halted = &halted;
            let end_time = &end_time;
            handles.push(scope.spawn(move || {
                // Telemetry is kept in thread-locals for the whole run and
                // published once at the end: the window loop below never
                // touches a shared lock on its hot path.
                let obs = pioeval_obs::global();
                let mut tbuf = obs.buffer(&format!("des-worker-{tid}"));
                tbuf.begin(pioeval_obs::names::SPAN_DES_WORKER, "des");
                let mut windows = 0u64;
                let mut null_windows = 0u64;
                let mut busy = std::time::Duration::ZERO;
                let mut emitted: Vec<Envelope<M>> = Vec::new();
                // Per-destination-thread staging buffers: cross-thread
                // sends are batched here and flushed under one lock per
                // (window, destination) instead of one lock per event.
                let mut staged: Vec<Vec<Envelope<M>>> = (0..threads).map(|_| Vec::new()).collect();
                loop {
                    // Phase 1: publish local minimum, wait for everyone.
                    let lm = worker
                        .heap
                        .next_time()
                        .map(SimTime::as_nanos)
                        .unwrap_or(u64::MAX);
                    local_mins[tid].store(lm, Ordering::Relaxed);
                    barrier.wait();

                    // Phase 2: compute global window. Every thread reads
                    // the same slots after the barrier, so all make the
                    // same decision.
                    let t = local_mins
                        .iter()
                        .map(|m| m.load(Ordering::Relaxed))
                        .min()
                        .unwrap_or(u64::MAX);
                    let stop_at = time_limit.map(SimTime::as_nanos);
                    let done = t == u64::MAX
                        || halted.load(Ordering::Relaxed)
                        || stop_at.is_some_and(|limit| t > limit);
                    if done {
                        barrier.wait();
                        break;
                    }
                    let mut horizon = t.saturating_add(window);
                    if let Some(limit) = stop_at {
                        // Events at exactly `limit` are still processed.
                        horizon = horizon.min(limit.saturating_add(1));
                    }

                    // Phase 3: process the window from the local heap.
                    windows += 1;
                    let window_start = std::time::Instant::now();
                    let processed_before = worker.processed;
                    let mut halt_flag = false;
                    while let Some(key) = worker.heap.peek_key() {
                        if key.time.as_nanos() >= horizon {
                            break;
                        }
                        let ev = worker.heap.pop().expect("peeked event vanished");
                        let dst = ev.dst();
                        let slot = worker.slots[dst.index()];
                        let now = ev.time();
                        end_time.fetch_max(now.as_nanos(), Ordering::Relaxed);
                        let (_, entity) = &mut worker.entities[slot];
                        let mut ctx = Ctx {
                            now,
                            me: dst,
                            lookahead,
                            seq: &mut worker.seqs[slot],
                            emitted: &mut emitted,
                            halt: &mut halt_flag,
                        };
                        entity.on_event(ev, &mut ctx);
                        worker.processed += 1;
                        for out in emitted.drain(..) {
                            let dest_thread = owner(out.dst().index(), threads);
                            if dest_thread == tid {
                                worker.heap.push(out);
                            } else {
                                staged[dest_thread].push(out);
                            }
                        }
                    }
                    for (dest, batch) in staged.iter_mut().enumerate() {
                        if !batch.is_empty() {
                            outboxes[tid][dest].lock().append(batch);
                        }
                    }
                    if worker.processed == processed_before {
                        // A pure synchronization round for this thread: it
                        // only announced its lower bound — the conservative
                        // engine's null message.
                        null_windows += 1;
                    } else {
                        busy += window_start.elapsed();
                    }
                    if halt_flag {
                        halted.store(true, Ordering::Relaxed);
                    }

                    // Phase 4: barrier, then drain inboxes into the heap.
                    barrier.wait();
                    for outbox_row in outboxes {
                        let mut inbox = outbox_row[tid].lock();
                        for ev in inbox.drain(..) {
                            worker.heap.push(ev);
                        }
                    }
                }
                // Publish the run's telemetry: every thread counts its own
                // null windows, but the window total is identical across
                // threads, so only thread 0 reports it.
                if tid == 0 {
                    obs.counter(pioeval_obs::names::DES_PAR_WINDOWS)
                        .add(windows);
                }
                obs.counter(pioeval_obs::names::DES_PAR_NULL_WINDOWS)
                    .add(null_windows);
                obs.histogram(pioeval_obs::names::DES_PAR_THREAD_BUSY_US)
                    .observe(busy.as_micros() as u64);
                obs.histogram(pioeval_obs::names::DES_PAR_THREAD_EVENTS)
                    .observe(worker.processed);
                tbuf.end();
                obs.merge(tbuf);
                worker
            }));
        }
        workers = handles
            .into_iter()
            .map(|h| h.join().expect("parallel DES worker panicked"))
            .collect();
    });

    // Reinstall entities, seq counters, and any unprocessed events (time
    // limit / halt may leave events pending, same as the sequential path).
    let mut events = 0u64;
    let mut max_queue = 0usize;
    for worker in &mut workers {
        events += worker.processed;
        max_queue += worker.heap.max_len;
        for ((idx, entity), seq) in worker.entities.drain(..).zip(worker.seqs.drain(..)) {
            sim.entities[idx] = Some(entity);
            sim.seqs[idx] = seq;
        }
        while let Some(ev) = worker.heap.pop() {
            sim.queue.push(ev);
        }
    }

    let obs = pioeval_obs::global();
    obs.counter(pioeval_obs::names::DES_EVENTS).add(events);
    obs.counter(pioeval_obs::names::DES_RUNS_PAR).inc();
    obs.gauge(pioeval_obs::names::DES_QUEUE_HWM)
        .record(max_queue as u64);

    RunResult {
        end_time: SimTime::from_nanos(end_time.load(Ordering::Relaxed)),
        events,
        max_queue,
        halted: halted.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EntityId;
    use crate::sim::{Entity, SimConfig};
    use pioeval_types::SimDuration;

    /// An entity that forwards tokens around a ring and records a running
    /// hash of everything it observes (event order fingerprint).
    struct RingNode {
        next: EntityId,
        fingerprint: u64,
        forwards_left: u32,
    }

    impl Entity<u64> for RingNode {
        fn on_event(&mut self, ev: Envelope<u64>, ctx: &mut Ctx<'_, u64>) {
            // Order-sensitive fingerprint: combines payload and time.
            self.fingerprint =
                self.fingerprint.wrapping_mul(0x100000001B3) ^ ev.msg ^ ev.time().as_nanos();
            if self.forwards_left > 0 {
                self.forwards_left -= 1;
                let delay = SimDuration::from_micros(1 + (ev.msg % 7));
                ctx.send(self.next, delay, ev.msg.wrapping_mul(31).wrapping_add(1));
            }
        }
    }

    fn build_ring(nodes: u32, tokens: u32, forwards: u32) -> Simulation<u64> {
        let mut sim = Simulation::new(SimConfig::default());
        for i in 0..nodes {
            let next = EntityId((i + 1) % nodes);
            sim.add_entity(
                format!("ring{i}"),
                Box::new(RingNode {
                    next,
                    fingerprint: 0,
                    forwards_left: forwards,
                }),
            );
        }
        for t in 0..tokens {
            sim.schedule(
                SimTime::from_nanos(t as u64 * 100),
                EntityId(t % nodes),
                t as u64,
            );
        }
        sim
    }

    fn fingerprints(sim: &Simulation<u64>, nodes: u32) -> Vec<u64> {
        (0..nodes)
            .map(|i| sim.entity_ref::<RingNode>(EntityId(i)).unwrap().fingerprint)
            .collect()
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let nodes = 13;
        let mut seq_sim = build_ring(nodes, 8, 50);
        let seq_res = seq_sim.run();
        let seq_fp = fingerprints(&seq_sim, nodes);

        for threads in [1, 2, 3, 4, 8] {
            let mut par_sim = build_ring(nodes, 8, 50);
            let par_res = run_parallel(&mut par_sim, ParallelConfig { threads });
            assert_eq!(
                fingerprints(&par_sim, nodes),
                seq_fp,
                "fingerprint mismatch at {threads} threads"
            );
            assert_eq!(par_res.events, seq_res.events);
            assert_eq!(par_res.end_time, seq_res.end_time);
        }
    }

    #[test]
    fn parallel_respects_time_limit() {
        let cfg = SimConfig {
            time_limit: Some(SimTime::from_micros(20)),
            ..SimConfig::default()
        };
        let build = |cfg: SimConfig| {
            let mut sim = Simulation::new(cfg);
            for i in 0..4u32 {
                sim.add_entity(
                    format!("n{i}"),
                    Box::new(RingNode {
                        next: EntityId((i + 1) % 4),
                        fingerprint: 0,
                        forwards_left: u32::MAX,
                    }),
                );
            }
            sim.schedule(SimTime::ZERO, EntityId(0), 1);
            sim
        };
        let mut s = build(cfg);
        let seq = s.run();
        let mut p = build(cfg);
        let par = run_parallel(&mut p, ParallelConfig { threads: 2 });
        assert_eq!(seq.events, par.events);
        assert_eq!(fingerprints(&s, 4), fingerprints(&p, 4));
        assert!(par.end_time <= SimTime::from_micros(20));
    }

    #[test]
    fn more_threads_than_entities_is_clamped() {
        // One token bouncing between two nodes, each willing to forward 10
        // times: 20 forwards plus the initial delivery = 21 events.
        let mut sim = build_ring(2, 1, 10);
        let res = run_parallel(&mut sim, ParallelConfig { threads: 16 });
        assert_eq!(res.events, 21);
    }

    #[test]
    fn empty_simulation_terminates() {
        let mut sim: Simulation<u64> = Simulation::default();
        sim.add_entity(
            "lonely",
            Box::new(RingNode {
                next: EntityId(0),
                fingerprint: 0,
                forwards_left: 0,
            }),
        );
        let res = run_parallel(&mut sim, ParallelConfig { threads: 2 });
        assert_eq!(res.events, 0);
        assert!(!res.halted);
    }

    #[test]
    fn pending_events_survive_limit_and_rerun() {
        // Events past the limit stay queued; a second (sequential) run
        // with a raised limit picks them up.
        let cfg = SimConfig {
            time_limit: Some(SimTime::from_micros(5)),
            ..SimConfig::default()
        };
        let mut sim = Simulation::new(cfg);
        sim.add_entity(
            "n0",
            Box::new(RingNode {
                next: EntityId(0),
                fingerprint: 0,
                forwards_left: 0,
            }),
        );
        sim.schedule(SimTime::from_micros(2), EntityId(0), 1);
        sim.schedule(SimTime::from_micros(50), EntityId(0), 2);
        let res = run_parallel(&mut sim, ParallelConfig { threads: 1 });
        assert_eq!(res.events, 1);
        // The t=50us event is still pending inside the simulation.
        let res2 = sim.run(); // same limit: still out of reach
        assert_eq!(res2.events, 0);
    }
}
